//! Integration tests for the paper's central optimality results (Theorem 1 /
//! Corollary 1) across the voting and JQ crates.

use jury_integration_tests::random_jury;
use jury_jq::{exact_bv_jq, exact_jq, mv_jq};
use jury_model::{enumerate_binary_votings, Jury, Prior};
use jury_voting::{all_strategies, BayesianVoting, StrategyKind, VotingStrategy};

#[test]
fn bv_dominates_every_catalogue_strategy_on_random_juries() {
    for seed in 0..20u64 {
        let jury = random_jury(1 + (seed as usize % 7), seed);
        for alpha in [0.2, 0.5, 0.8] {
            let prior = Prior::new(alpha).unwrap();
            let bv = exact_bv_jq(&jury, prior).unwrap();
            for entry in all_strategies() {
                let other = exact_jq(&jury, entry.strategy.as_ref(), prior).unwrap();
                assert!(
                    other <= bv + 1e-9,
                    "seed {seed}, alpha {alpha}: {} achieved {other} > BV {bv}",
                    entry.name()
                );
            }
        }
    }
}

#[test]
fn bv_dominates_arbitrary_randomized_strategies() {
    // Theorem 1 covers *all* strategies, not just the catalogue. Build
    // adversarial randomized strategies (random h(V) per voting) and verify
    // none of them beats BV.
    struct TableStrategy {
        table: Vec<f64>,
    }
    impl VotingStrategy for TableStrategy {
        fn name(&self) -> &'static str {
            "table"
        }
        fn kind(&self) -> StrategyKind {
            StrategyKind::Randomized
        }
        fn prob_no(
            &self,
            jury: &Jury,
            votes: &[jury_model::Answer],
            _prior: Prior,
        ) -> jury_model::ModelResult<f64> {
            jury.check_voting(votes)?;
            let mut index = 0usize;
            for v in votes {
                index = index * 2 + v.as_index();
            }
            Ok(self.table[index % self.table.len()])
        }
    }

    let jury = Jury::from_qualities(&[0.9, 0.6, 0.6, 0.75]).unwrap();
    let prior = Prior::new(0.4).unwrap();
    let bv = exact_bv_jq(&jury, prior).unwrap();
    // A deterministic pseudo-random table sweep (no RNG dependency needed).
    for variant in 0..50u64 {
        let table: Vec<f64> = (0..16)
            .map(|i| {
                let x = (variant
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(i * 2654435761)
                    % 1000) as f64;
                x / 1000.0
            })
            .collect();
        let strategy = TableStrategy { table };
        let jq = exact_jq(&jury, &strategy, prior).unwrap();
        assert!(jq <= bv + 1e-9, "variant {variant} beat BV: {jq} > {bv}");
    }
}

#[test]
fn bv_equals_the_pointwise_maximum_of_posteriors() {
    // JQ(BV) = Σ_V max(P0, P1): check the strategy-level formulation agrees
    // with the closed form on random juries.
    for seed in 20..30u64 {
        let jury = random_jury(1 + (seed as usize % 6), seed);
        for alpha in [0.1, 0.5, 0.9] {
            let prior = Prior::new(alpha).unwrap();
            let closed = exact_bv_jq(&jury, prior).unwrap();
            let via_strategy = exact_jq(&jury, &BayesianVoting::new(), prior).unwrap();
            assert!((closed - via_strategy).abs() < 1e-12);
        }
    }
}

#[test]
fn paper_worked_examples_hold() {
    // Example 2 and Example 3 of the paper, plus the introduction's jury.
    let jury = Jury::from_qualities(&[0.9, 0.6, 0.6]).unwrap();
    assert!((mv_jq(&jury, Prior::uniform()).unwrap() - 0.792).abs() < 1e-12);
    assert!((exact_bv_jq(&jury, Prior::uniform()).unwrap() - 0.900).abs() < 1e-12);
    let intro = Jury::from_qualities(&[0.7, 0.6, 0.6]).unwrap();
    assert!((mv_jq(&intro, Prior::uniform()).unwrap() - 0.696).abs() < 1e-12);
}

#[test]
fn deterministic_strategies_have_indicator_h() {
    // Definition 1: a deterministic strategy's h(V) is 0 or 1 for every V.
    let jury = random_jury(5, 99);
    for entry in all_strategies() {
        if entry.kind != StrategyKind::Deterministic {
            continue;
        }
        for votes in enumerate_binary_votings(jury.size()) {
            let h = entry
                .strategy
                .prob_no(&jury, &votes, Prior::uniform())
                .unwrap();
            assert!(h == 0.0 || h == 1.0, "{}: h = {h}", entry.name());
        }
    }
}

#[test]
fn jq_of_any_strategy_is_bounded_by_prior_certainty_and_bv() {
    // For every strategy S: max(α, 1-α) ≤ JQ(BV) and JQ(S) ≤ JQ(BV).
    for seed in 40..45u64 {
        let jury = random_jury(4, seed);
        for alpha in [0.3, 0.6] {
            let prior = Prior::new(alpha).unwrap();
            let bv = exact_bv_jq(&jury, prior).unwrap();
            assert!(bv >= alpha.max(1.0 - alpha) - 1e-12);
            for entry in all_strategies() {
                let jq = exact_jq(&jury, entry.strategy.as_ref(), prior).unwrap();
                assert!(jq <= bv + 1e-9);
                assert!((0.0..=1.0 + 1e-9).contains(&jq));
            }
        }
    }
}
