//! Deadline-aware serving: the cooperative-cancellation contract end to
//! end. A generous deadline changes nothing (bit-identical juries); an
//! impossible deadline returns `DeadlineExceeded` carrying a feasible
//! anytime jury; a deadline on one batch slot cancels only that slot; and
//! a repair cut short by its deadline never commits a jury worse than the
//! pre-repair state.

use std::time::Duration;

use jury_model::{Answer, Prior, TaskId, WorkerId, WorkerPool};
use jury_service::{
    JuryService, MixedResponse, SelectionRequest, ServiceConfig, ServiceError, SolverPolicy,
};
use jury_stream::{AnswerEvent, DriftDetector, RegistryConfig, WorkerRegistry};

/// A 30-worker pool past every exact cutoff, with enough quality and cost
/// spread that the annealing search has real structure to explore.
fn annealing_pool() -> WorkerPool {
    let qualities: Vec<f64> = (0..30).map(|w| 0.55 + 0.012 * (w as f64)).collect();
    let costs: Vec<f64> = (0..30).map(|w| 1.0 + ((w * 7) % 5) as f64).collect();
    WorkerPool::from_qualities_and_costs(&qualities, &costs).unwrap()
}

fn annealing_request() -> SelectionRequest {
    SelectionRequest::new(annealing_pool(), 12.0).with_prior(Prior::uniform())
}

#[test]
fn generous_deadline_matches_the_unbudgeted_solve_exactly() {
    // Fresh services so the two runs cannot share cache state.
    let plain = JuryService::new(ServiceConfig::fast())
        .select(&annealing_request())
        .unwrap();
    let budgeted = JuryService::new(ServiceConfig::fast())
        .select(&annealing_request().with_deadline(Duration::from_secs(3600)))
        .unwrap();

    // An unexhausted budget must not perturb the search at all: same jury,
    // same quality, same solver, same evaluation count.
    assert_eq!(plain.worker_ids(), budgeted.worker_ids());
    assert!((plain.quality - budgeted.quality).abs() < 1e-9);
    assert!((plain.cost - budgeted.cost).abs() < 1e-9);
    assert_eq!(plain.solver, budgeted.solver);
    assert_eq!(plain.evaluations, budgeted.evaluations);
}

#[test]
fn zero_deadline_returns_a_feasible_anytime_jury() {
    let full = JuryService::new(ServiceConfig::fast())
        .select(&annealing_request())
        .unwrap();

    let err = JuryService::new(ServiceConfig::fast())
        .select(&annealing_request().with_deadline(Duration::ZERO))
        .unwrap_err();
    let ServiceError::DeadlineExceeded {
        best_so_far: Some(best),
    } = err
    else {
        panic!("expected DeadlineExceeded with a partial result, got {err}");
    };
    let MixedResponse::Binary(partial) = *best else {
        panic!("binary request must yield a binary partial result");
    };

    // The anytime jury is a valid selection: non-empty, budget-respecting,
    // with a sane quality — found with far less work than the full solve.
    assert!(partial.jury_size() > 0);
    assert!(partial.cost <= 12.0 + 1e-9);
    assert!(partial.quality > 0.0 && partial.quality <= 1.0);
    assert!(
        partial.evaluations < full.evaluations / 2,
        "truncated search spent {} evaluations, full solve {}",
        partial.evaluations,
        full.evaluations
    );
    // The full search can only do better (or tie) from the same seed.
    assert!(full.quality >= partial.quality - 1e-9);
}

#[test]
fn evaluation_cap_truncates_without_a_clock() {
    // A tiny evaluation cap trips the same anytime path deterministically —
    // no wall clock involved, so this cannot flake on slow machines.
    let err = JuryService::new(ServiceConfig::fast())
        .select(&annealing_request().with_evaluation_limit(3))
        .unwrap_err();
    let ServiceError::DeadlineExceeded {
        best_so_far: Some(best),
    } = err
    else {
        panic!("expected DeadlineExceeded with a partial result, got {err}");
    };
    let partial = best.as_binary().expect("binary partial").clone();
    assert!(partial.jury_size() > 0);
    assert!(partial.cost <= 12.0 + 1e-9);
}

#[test]
fn mid_batch_deadline_cancels_only_the_slow_slot() {
    let service = JuryService::new(ServiceConfig::fast());
    let batch = vec![
        annealing_request(),
        annealing_request().with_deadline(Duration::ZERO),
        annealing_request(),
    ];
    let results = service.select_batch(&batch);
    assert_eq!(results.len(), 3);

    // The deadline is anchored at each request's own serve start, so the
    // impossible slot fails alone and its peers finish untouched.
    let reference = JuryService::new(ServiceConfig::fast())
        .select(&annealing_request())
        .unwrap();
    for index in [0, 2] {
        let response = results[index].as_ref().unwrap();
        assert_eq!(response.worker_ids(), reference.worker_ids());
        assert!((response.quality - reference.quality).abs() < 1e-9);
    }
    assert!(matches!(
        results[1],
        Err(ServiceError::DeadlineExceeded {
            best_so_far: Some(_)
        })
    ));
}

/// Six unit-cost workers at two close quality tiers, pinned with 100
/// pseudo-observations — the same shape the service crate's repair tests
/// use: no single worker dominates a three-member Bayesian vote, so a
/// degraded member genuinely costs JQ.
fn seeded_registry() -> WorkerRegistry {
    let mut registry = WorkerRegistry::new(RegistryConfig::default()).unwrap();
    for (w, quality) in [0.8, 0.8, 0.8, 0.75, 0.75, 0.75].into_iter().enumerate() {
        registry
            .register_with_quality(WorkerId(w as u32), quality, 100.0, 1.0)
            .unwrap();
    }
    registry
}

/// Selects under budget 3, tracks the jury, then drags worker 1 (always a
/// member at this budget) to the useless 0.5 point with 60 wrong golden
/// answers. Returns the tracked id.
fn tracked_and_degraded(
    service: &JuryService,
    registry: &mut WorkerRegistry,
    detector: &mut DriftDetector,
) -> jury_stream::SelectionId {
    let snapshot = registry.snapshot_pool().unwrap();
    let response = service
        .select(&SelectionRequest::new(snapshot, 3.0).with_prior(Prior::uniform()))
        .unwrap();
    let id = detector.track(
        response.jury.ids(),
        3.0,
        Prior::uniform(),
        response.quality,
        registry.epoch(),
    );
    assert!(detector.get(id).unwrap().members().contains(&WorkerId(1)));
    for t in 0..60 {
        registry
            .observe(AnswerEvent::golden(
                WorkerId(1),
                TaskId(t),
                Answer::No,
                Answer::Yes,
            ))
            .unwrap();
    }
    id
}

#[test]
fn repair_under_a_zero_deadline_never_commits_a_worse_jury() {
    let service = JuryService::new(ServiceConfig::fast());
    let mut registry = seeded_registry();
    let mut detector = DriftDetector::new(0.02);
    let id = tracked_and_degraded(&service, &mut registry, &mut detector);

    // What the degraded jury is worth before any repair runs.
    let snapshot = registry.snapshot_pool().unwrap();
    let before = service
        .rescore(
            &snapshot,
            detector.get(id).unwrap().members(),
            Prior::uniform(),
        )
        .unwrap();

    // An impossible deadline is NOT an error for repair: the swap search
    // only commits improving moves, so whatever it holds is still valid.
    let truncated = service
        .repair_with_deadline(&registry, &mut detector, id, Duration::ZERO)
        .unwrap();
    assert!(truncated.truncated);
    assert!(
        truncated.quality >= before - 1e-9,
        "truncated repair committed {} below the pre-repair quality {}",
        truncated.quality,
        before
    );
    assert!(truncated.cost <= 3.0 + 1e-9);
    // A truncated no-op does not rebaseline: the drift stays flagged, so a
    // later repair with room to work can still fix the jury.
    assert!(!truncated.changed());
    let tracked = detector.get(id).unwrap();
    assert_eq!(tracked.members(), truncated.jury.ids());
    assert!(tracked.baseline_quality() > before + 0.02);

    // A follow-up repair with room to work finishes the job and can only
    // improve on the anytime commit.
    let full = service.repair(&registry, &mut detector, id).unwrap();
    assert!(!full.truncated);
    assert!(full.quality >= truncated.quality - 1e-9);
    assert!(!full.jury.contains(WorkerId(1)));
}

#[test]
fn generous_repair_deadline_matches_the_undeadlined_repair() {
    // Two identical worlds: one repairs with an hour of headroom, the other
    // with no deadline at all. The outcomes must agree exactly.
    let run = |deadline: Option<Duration>| {
        let service = JuryService::new(ServiceConfig::fast());
        let mut registry = seeded_registry();
        let mut detector = DriftDetector::new(0.02);
        let id = tracked_and_degraded(&service, &mut registry, &mut detector);
        match deadline {
            Some(d) => service
                .repair_with_deadline(&registry, &mut detector, id, d)
                .unwrap(),
            None => service.repair(&registry, &mut detector, id).unwrap(),
        }
    };
    let plain = run(None);
    let generous = run(Some(Duration::from_secs(3600)));
    assert_eq!(plain.worker_ids(), generous.worker_ids());
    assert!((plain.quality - generous.quality).abs() < 1e-9);
    assert_eq!(plain.outcome, generous.outcome);
    assert!(!generous.truncated);
}

#[test]
fn explicit_policies_respect_deadlines_too() {
    // The greedy marginal search polls the same budget token as annealing.
    let err = JuryService::new(ServiceConfig::fast())
        .select(
            &annealing_request()
                .with_policy(SolverPolicy::Greedy)
                .with_deadline(Duration::ZERO),
        )
        .unwrap_err();
    assert!(matches!(err, ServiceError::DeadlineExceeded { .. }));

    let ok = JuryService::new(ServiceConfig::fast())
        .select(
            &annealing_request()
                .with_policy(SolverPolicy::Greedy)
                .with_deadline(Duration::from_secs(3600)),
        )
        .unwrap();
    assert!(ok.jury_size() > 0);
}
