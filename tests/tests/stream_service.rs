//! End-to-end test of the online serving loop: answers stream into the
//! worker registry, a jury degrades mid-stream, the drift detector flags
//! exactly that jury, and the service repairs it to cold-re-solve quality —
//! while a drift-free control jury is left untouched.

use jury_model::{Answer, Label, Prior, TaskId, WorkerId};
use jury_service::{
    JuryService, MultiClassSelectionRequest, RepairOutcome, SelectionRequest, ServiceConfig,
};
use jury_stream::{
    AnswerEvent, DriftDetector, DriftStatus, RegistryConfig, UpdatePolicy, WorkerRegistry,
};

/// Streams `count` golden answers for `worker`, answering wrong whenever
/// `t % wrong_every == 0` — a deterministic way to hold a target accuracy.
fn stream_golden(
    registry: &mut WorkerRegistry,
    worker: WorkerId,
    count: u64,
    wrong_every: u64,
    task_offset: u64,
) {
    for t in 0..count {
        let vote = if t % wrong_every == 0 {
            Answer::No
        } else {
            Answer::Yes
        };
        registry
            .observe(AnswerEvent::golden(
                worker,
                TaskId(task_offset + t),
                vote,
                Answer::Yes,
            ))
            .unwrap();
    }
}

#[test]
fn online_loop_detects_and_repairs_mid_stream_degradation() {
    let service = JuryService::new(ServiceConfig::fast());
    let mut registry = WorkerRegistry::new(RegistryConfig::default()).unwrap();
    for w in 0..8 {
        registry.register(WorkerId(w), 1.0).unwrap();
    }

    // Phase 1 — the stream establishes two quality tiers: workers 0–3 wrong
    // every 5th answer (→ ~0.79 posterior mean), workers 4–7 wrong every
    // 4th (→ ~0.75).
    for w in 0..8u32 {
        let wrong_every = if w < 4 { 5 } else { 4 };
        stream_golden(&mut registry, WorkerId(w), 100, wrong_every, 0);
    }
    let top = registry.estimate(WorkerId(0)).unwrap();
    assert!((top.mean - 81.0 / 102.0).abs() < 1e-12);
    assert_eq!(top.observations, 100);

    // Hand out two juries and track both. Jury A is selected by the
    // service on the streamed snapshot; jury B is a disjoint control.
    let mut detector = DriftDetector::new(0.02);
    let snapshot = registry.snapshot_pool().unwrap();
    let response = service
        .select(&SelectionRequest::new(snapshot.clone(), 3.0).with_prior(Prior::uniform()))
        .unwrap();
    assert_eq!(
        response.worker_ids(),
        vec![WorkerId(0), WorkerId(1), WorkerId(2)]
    );
    let jury_a = detector.track(
        response.jury.ids(),
        3.0,
        Prior::uniform(),
        response.quality,
        registry.epoch(),
    );
    let control_members = vec![WorkerId(5), WorkerId(6), WorkerId(7)];
    let control_quality = service
        .rescore(&snapshot, &control_members, Prior::uniform())
        .unwrap();
    let jury_b = detector.track(
        control_members.clone(),
        3.0,
        Prior::uniform(),
        control_quality,
        registry.epoch(),
    );

    // Phase 2 — worker 1 collapses to coin-flipping (Beta counts (81, 21),
    // so 60 straight wrong answers land it at exactly 0.5) while the
    // control members keep answering at their usual rate.
    stream_golden(&mut registry, WorkerId(1), 60, 1, 1000);
    assert!((registry.estimate(WorkerId(1)).unwrap().mean - 0.5).abs() < 1e-12);
    for &w in &control_members {
        stream_golden(&mut registry, w, 40, 4, 2000);
    }

    // The scan flags exactly the degraded jury.
    let reports = service.drift_scan(&registry, &detector).unwrap();
    assert_eq!(reports.len(), 2);
    let report_a = reports.iter().find(|r| r.id == jury_a).unwrap();
    let report_b = reports.iter().find(|r| r.id == jury_b).unwrap();
    assert_eq!(report_a.status, DriftStatus::Drifted);
    assert!(report_a.drift < -0.02, "drift was {}", report_a.drift);
    assert_eq!(report_b.status, DriftStatus::Steady);

    // Repair swaps the degraded member out, within the original budget, and
    // lands within 1e-9 of a cold re-solve on the updated pool.
    let repaired = service.repair(&registry, &mut detector, jury_a).unwrap();
    assert!(matches!(
        repaired.outcome,
        RepairOutcome::Patched { .. } | RepairOutcome::Resolved
    ));
    assert!(!repaired.jury.contains(WorkerId(1)));
    assert!(repaired.cost <= 3.0 + 1e-9);
    let cold = service
        .select(
            &SelectionRequest::new(registry.snapshot_pool().unwrap(), 3.0)
                .with_prior(Prior::uniform()),
        )
        .unwrap();
    assert!(
        (repaired.quality - cold.quality).abs() < 1e-9,
        "repaired {} vs cold re-solve {}",
        repaired.quality,
        cold.quality
    );

    // The control jury was never touched, and the repaired ledger entry is
    // steady on the next scan.
    assert_eq!(
        detector.get(jury_b).unwrap().members(),
        &control_members[..]
    );
    let reports = service.drift_scan(&registry, &detector).unwrap();
    assert!(reports.iter().all(|r| r.status == DriftStatus::Steady));

    // Repairing an already-repaired jury is a no-op.
    let again = service.repair(&registry, &mut detector, jury_a).unwrap();
    assert_eq!(again.outcome, RepairOutcome::Unchanged);
    assert_eq!(again.jury.ids(), repaired.jury.ids());
}

#[test]
fn majority_proxy_stream_drives_the_same_loop_without_golden_truth() {
    let service = JuryService::new(ServiceConfig::fast());
    let mut registry = WorkerRegistry::new(RegistryConfig {
        policy: UpdatePolicy::MajorityProxy { min_votes: 3 },
        ..RegistryConfig::default()
    })
    .unwrap();
    for w in 0..4 {
        registry.register(WorkerId(w), 1.0).unwrap();
    }

    // Workers 0–2 agree on every task; worker 3 dissents on every other
    // one. The majority proxy resolves each task at the quorum and scores
    // everyone — no ground truth ever enters the stream.
    for t in 0..40u64 {
        for w in 0..3 {
            registry
                .observe(AnswerEvent::binary(WorkerId(w), TaskId(t), Answer::Yes))
                .unwrap();
        }
        let dissent = if t % 2 == 0 { Answer::No } else { Answer::Yes };
        registry
            .observe(AnswerEvent::binary(WorkerId(3), TaskId(t), dissent))
            .unwrap();
    }
    let consensus = registry.estimate(WorkerId(0)).unwrap();
    let dissenter = registry.estimate(WorkerId(3)).unwrap();
    assert!(consensus.mean > 0.9);
    assert!((dissenter.mean - consensus.mean).abs() > 0.2);

    // The proxy-estimated snapshot serves selections and drift scans alike.
    let mut detector = DriftDetector::new(0.05);
    let response = service
        .select(
            &SelectionRequest::new(registry.snapshot_pool().unwrap(), 3.0)
                .with_prior(Prior::uniform()),
        )
        .unwrap();
    assert!(!response.jury.contains(WorkerId(3)));
    let id = detector.track(
        response.jury.ids(),
        3.0,
        Prior::uniform(),
        response.quality,
        registry.epoch(),
    );
    let reports = service.drift_scan(&registry, &detector).unwrap();
    assert_eq!(reports[0].id, id);
    assert_eq!(reports[0].status, DriftStatus::Steady);
}

#[test]
fn multiclass_requests_ride_streaming_confusion_estimates() {
    let service = JuryService::new(ServiceConfig::fast());
    let mut registry = WorkerRegistry::new(RegistryConfig {
        num_choices: 3,
        ..RegistryConfig::default()
    })
    .unwrap();
    for w in 0..4 {
        registry.register(WorkerId(w), 1.0).unwrap();
    }

    // Workers 0–1 answer correctly except every 6th task; workers 2–3
    // systematically confuse label 1 with label 2 on every 3rd task.
    for t in 0..60u64 {
        let truth = Label((t % 3) as usize);
        for w in 0..4u32 {
            let vote = match w {
                0 | 1 if t % 6 == 0 => Label(((t + 1) % 3) as usize),
                2 | 3 if t % 3 == 1 => Label(2),
                _ => truth,
            };
            registry
                .observe(AnswerEvent::multiclass(
                    WorkerId(w),
                    TaskId(t),
                    vote,
                    Some(truth),
                ))
                .unwrap();
        }
    }

    // The matrix snapshot carries the *estimated* confusion matrices into
    // the multi-class serving path.
    let matrix_pool = registry.snapshot_matrix_pool().unwrap();
    assert_eq!(matrix_pool.num_choices(), 3);
    let response = service
        .select_multiclass(&MultiClassSelectionRequest::new(matrix_pool, 2.0))
        .unwrap();
    assert_eq!(response.jury_size(), 2);
    // Worker 0 (high accuracy) anchors the jury. Note the second seat is
    // *not* forced to worker 1: worker 2's systematic 1→2 confusion is
    // itself informative under Bayesian voting, so the solver may prefer
    // its decorrelated error structure over a clone of worker 0.
    assert!(response.worker_ids().contains(&WorkerId(0)));
    assert!(response
        .worker_ids()
        .iter()
        .all(|id| registry.is_registered(*id)));
    assert!(response.quality > 0.5);
    assert!(response.cost <= 2.0 + 1e-9);
}
