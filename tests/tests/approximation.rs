//! Integration tests for the bucket-based JQ approximation (Algorithm 1/2,
//! Theorem 3, and the Section 4.4 error bound) against the exact back-ends.

use jury_integration_tests::random_jury;
use jury_jq::{
    error_bound, exact_bv_jq, fold_prior, recommended_multiplier, BucketCount, BucketJqConfig,
    BucketJqEstimator, JqEngine,
};
use jury_model::{Jury, Prior};

#[test]
fn approximation_error_is_within_one_percent_at_the_paper_setting() {
    // The paper's guarantee: d >= 200 buckets per worker keeps the additive
    // error below 1 % (and in practice far below).
    let estimator = BucketJqEstimator::default();
    let mut worst: f64 = 0.0;
    for seed in 0..40u64 {
        let jury = random_jury(1 + (seed as usize % 9), seed);
        for alpha in [0.25, 0.5, 0.75] {
            let prior = Prior::new(alpha).unwrap();
            let exact = exact_bv_jq(&jury, prior).unwrap();
            let estimate = estimator.estimate(&jury, prior);
            let err = (exact - estimate.value).abs();
            worst = worst.max(err);
            assert!(
                err <= 0.01 + 1e-9,
                "seed {seed}, alpha {alpha}: error {err}"
            );
            assert!(err <= estimate.error_bound.max(0.01) + 1e-9);
        }
    }
    // In practice the error is far below the bound (the paper reports a
    // maximum of 0.01 % at numBuckets = 50; with 200·n buckets it is tiny).
    assert!(
        worst < 0.005,
        "worst observed error {worst} suspiciously large"
    );
}

#[test]
fn error_shrinks_as_buckets_grow() {
    // The quantization error is not pointwise monotone in the bucket count
    // (a coarse grid can get lucky on one jury), so compare the *average*
    // error over several juries: it must drop from the coarsest to the
    // finest setting, and the finest setting must be essentially exact.
    let juries: Vec<_> = (0..10u64).map(|seed| random_jury(9, 7 + seed)).collect();
    let mean_error = |buckets: usize| -> f64 {
        let estimator = BucketJqEstimator::new(
            BucketJqConfig::default()
                .with_buckets(BucketCount::Fixed(buckets))
                .with_high_quality_shortcut(false),
        );
        juries
            .iter()
            .map(|jury| {
                let exact = exact_bv_jq(jury, Prior::uniform()).unwrap();
                (estimator.jq(jury, Prior::uniform()) - exact).abs()
            })
            .sum::<f64>()
            / juries.len() as f64
    };
    let coarse = mean_error(5);
    let medium = mean_error(50);
    let fine = mean_error(500);
    assert!(
        medium <= coarse + 1e-9,
        "mean error at 50 buckets ({medium}) above 5 buckets ({coarse})"
    );
    assert!(
        fine <= medium + 1e-9,
        "mean error at 500 buckets ({fine}) above 50 buckets ({medium})"
    );
    assert!(fine < 1e-4, "mean error at 500 buckets still {fine}");
}

#[test]
fn pruning_is_an_exact_optimization() {
    for seed in 50..60u64 {
        let jury = random_jury(1 + (seed as usize % 12), seed);
        let with = BucketJqEstimator::new(BucketJqConfig::paper_experiments())
            .estimate(&jury, Prior::uniform());
        let without =
            BucketJqEstimator::new(BucketJqConfig::paper_experiments().with_pruning(false))
                .estimate(&jury, Prior::uniform());
        assert!(
            (with.value - without.value).abs() < 1e-12,
            "pruning changed the estimate: {} vs {}",
            with.value,
            without.value
        );
    }
}

#[test]
fn theorem_3_holds_through_the_whole_stack() {
    // JQ(J, BV, α) computed three ways: exact with α, exact after folding,
    // and approximate with α — all must agree (the first two exactly, the
    // third within the error bound).
    for seed in 70..80u64 {
        let jury = random_jury(1 + (seed as usize % 7), seed);
        for alpha in [0.1, 0.35, 0.65, 0.9] {
            let prior = Prior::new(alpha).unwrap();
            let direct = exact_bv_jq(&jury, prior).unwrap();
            let folded_jury = fold_prior(&jury, prior);
            let folded = exact_bv_jq(&folded_jury, Prior::uniform()).unwrap();
            assert!((direct - folded).abs() < 1e-10);
            let approx = BucketJqEstimator::default().jq(&jury, prior);
            assert!((direct - approx).abs() < 0.01);
        }
    }
}

#[test]
fn error_bound_formula_matches_the_paper_numbers() {
    // e^{5/(4·200)} − 1 ≈ 0.627 % and the recommended multiplier for a 1 %
    // target is at most 200.
    let bound = error_bound(1, 5.0 / 200.0);
    assert!((bound - 0.00627).abs() < 2e-4, "bound {bound}");
    assert!(recommended_multiplier(0.01) <= 200);
    assert!(recommended_multiplier(0.001) > recommended_multiplier(0.01));
}

#[test]
fn engine_backends_agree_where_they_overlap() {
    let engine = JqEngine::default();
    for seed in 90..95u64 {
        let jury = random_jury(8, seed);
        let prior = Prior::new(0.4).unwrap();
        let auto = engine.bv_jq(&jury, prior).value;
        let exact = exact_bv_jq(&jury, prior).unwrap();
        assert!(
            (auto - exact).abs() < 1e-12,
            "engine chose enumeration for n=8"
        );
        let approx_engine = JqEngine::approximate_only(BucketJqConfig::default());
        let approx = approx_engine.bv_jq(&jury, prior).value;
        assert!((approx - exact).abs() < 0.01);
    }
}

#[test]
fn adversarial_and_perfect_workers_are_handled() {
    // Workers below 0.5 are reinterpreted; workers at 0.995 trigger the
    // shortcut; both still respect the exact value within 1 %.
    let jury = Jury::from_qualities(&[0.2, 0.4, 0.995, 0.7]).unwrap();
    let exact = exact_bv_jq(&jury, Prior::uniform()).unwrap();
    let approx = BucketJqEstimator::default().estimate(&jury, Prior::uniform());
    assert!(approx.used_shortcut);
    assert!((exact - approx.value).abs() <= 0.01);
    let no_shortcut =
        BucketJqEstimator::new(BucketJqConfig::default().with_high_quality_shortcut(false))
            .estimate(&jury, Prior::uniform());
    assert!((exact - no_shortcut.value).abs() <= 0.02);
}
