//! Integration tests for the simulated AMT campaign and the Figure 10(d)
//! "is JQ a good prediction?" machinery.

use jury_jq::JqEngine;
use jury_model::Prior;
use jury_sim::{
    dawid_skene_fit, empirical_qualities, mean_absolute_error, prefix_sweep, AmtCampaignConfig,
    AmtSimulator, DawidSkeneConfig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn campaign(seed: u64) -> jury_model::CrowdDataset {
    let simulator = AmtSimulator::new(AmtCampaignConfig {
        num_tasks: 120,
        num_workers: 48,
        votes_per_task: 12,
        questions_per_hit: 12,
        cost_mean: 0.05,
        cost_std_dev: 0.2,
    });
    let mut rng = StdRng::seed_from_u64(seed);
    simulator.run(&mut rng).expect("valid campaign")
}

#[test]
fn campaign_statistics_match_the_configured_shape() {
    let dataset = campaign(1);
    assert_eq!(dataset.num_tasks(), 120);
    assert_eq!(dataset.num_workers(), 48);
    assert_eq!(dataset.num_votes(), 120 * 12);
    for task in dataset.tasks() {
        assert_eq!(task.num_votes(), 12);
    }
    let mean = dataset.mean_empirical_quality();
    assert!((0.6..0.85).contains(&mean), "mean empirical quality {mean}");
}

#[test]
fn predicted_jq_tracks_realized_accuracy() {
    // The core Figure 10(d) claim: the two curves are highly similar and
    // both (weakly) improve as more votes are used.
    let dataset = campaign(2);
    let engine = JqEngine::default();
    let points = prefix_sweep(&dataset, &[3, 6, 9, 12], Prior::uniform(), &engine);
    assert_eq!(points.len(), 4);
    for point in &points {
        assert!(
            (point.accuracy - point.average_jq).abs() < 0.08,
            "z={}: accuracy {} vs predicted {}",
            point.votes_used,
            point.accuracy,
            point.average_jq
        );
    }
    assert!(points[3].average_jq >= points[0].average_jq - 1e-9);
    assert!(points[3].accuracy >= points[0].accuracy - 0.05);
}

#[test]
fn unsupervised_quality_estimation_agrees_with_the_supervised_one() {
    // Dawid-Skene (no ground truth) should land close to the empirical
    // accuracies (which use the ground truth) on a well-behaved campaign.
    let dataset = campaign(3);
    let supervised = empirical_qualities(&dataset, 0.0);
    let unsupervised = dawid_skene_fit(&dataset, DawidSkeneConfig::default());
    let mae = mean_absolute_error(&unsupervised.qualities, &supervised);
    assert!(mae < 0.08, "MAE between EM and empirical qualities: {mae}");
    assert!(unsupervised.accuracy_against(&dataset) > 0.85);
}

#[test]
fn different_seeds_give_different_but_valid_campaigns() {
    let a = campaign(10);
    let b = campaign(11);
    assert_ne!(a, b);
    for dataset in [a, b] {
        for quality in empirical_qualities(&dataset, 0.0).values() {
            assert!((0.0..=1.0).contains(quality));
        }
    }
}
