//! Integration tests for the JSP solvers: the annealing heuristic against
//! the exhaustive optimum (the Figure 7(a) / Table 3 experiment in miniature)
//! and the closed-form special cases.

use jury_integration_tests::random_pool;
use jury_jq::BucketJqConfig;
use jury_model::{stats, Prior, WorkerPool};
use jury_selection::{
    try_special_case, AnnealingConfig, AnnealingSolver, BvObjective, ExhaustiveSolver,
    GreedyQualitySolver, JspInstance, JuryObjective, JurySolver, MvjsSolver,
};

fn bv_objective() -> BvObjective {
    BvObjective::with_config(BucketJqConfig::paper_experiments())
}

#[test]
fn annealing_error_distribution_mirrors_table_3() {
    // N = 11 candidates, budgets in [0.05, 0.5]: collect the error
    // JQ(J*) − JQ(Ĵ) in percent over many runs and bucket it into the
    // paper's Table 3 ranges. The paper finds >90 % of runs below 0.01 % and
    // nothing above 3 %; the robust solver configuration reproduces that.
    let mut errors_percent = Vec::new();
    for seed in 0..30u64 {
        let pool = random_pool(11, seed);
        let budget = 0.05 + 0.05 * (seed % 10) as f64;
        let instance = JspInstance::new(pool, budget, Prior::uniform()).unwrap();
        let optimal = ExhaustiveSolver::new(bv_objective()).solve(&instance);
        let annealed = AnnealingSolver::new(bv_objective()).solve(&instance);
        errors_percent.push((optimal.objective_value - annealed.objective_value).max(0.0) * 100.0);
    }
    let edges = [0.0, 0.01, 0.1, 1.0, 3.0, f64::INFINITY];
    let counts = stats::range_counts(&errors_percent, &edges);
    let total: u64 = counts.iter().sum();
    assert_eq!(total as usize, errors_percent.len());
    // Most runs must be essentially exact, and none catastrophically wrong.
    assert!(
        counts[0] as f64 / total as f64 >= 0.8,
        "only {}/{} runs were within 0.01%",
        counts[0],
        total
    );
    assert_eq!(
        counts[4], 0,
        "some runs were more than 3% away from optimal"
    );
}

#[test]
fn annealing_respects_budgets_across_scales() {
    for &n in &[11usize, 30, 60] {
        let pool = random_pool(n, n as u64);
        for budget in [0.1, 0.5] {
            let instance = JspInstance::new(pool.clone(), budget, Prior::uniform()).unwrap();
            let result = AnnealingSolver::new(bv_objective()).solve(&instance);
            assert!(instance.is_feasible(&result.jury), "n={n}, budget={budget}");
            assert!(result.objective_value >= 0.5 - 1e-9);
        }
    }
}

#[test]
fn mvjs_baseline_never_beats_optjs_objective() {
    for seed in 100..110u64 {
        let pool = random_pool(20, seed);
        let instance = JspInstance::new(pool, 0.5, Prior::uniform()).unwrap();
        let optjs = AnnealingSolver::new(bv_objective()).solve(&instance);
        let mvjs = MvjsSolver::new().solve(&instance);
        assert!(
            optjs.objective_value >= mvjs.objective_value - 0.01,
            "seed {seed}: OPTJS {} vs MVJS {}",
            optjs.objective_value,
            mvjs.objective_value
        );
    }
}

#[test]
fn special_cases_shortcut_the_search() {
    // Uniform costs: the closed-form top-k jury matches the exhaustive
    // optimum and the annealing result.
    let pool = WorkerPool::from_qualities_and_costs(
        &[0.9, 0.62, 0.74, 0.81, 0.58, 0.69],
        &[0.1, 0.1, 0.1, 0.1, 0.1, 0.1],
    )
    .unwrap();
    let instance = JspInstance::with_uniform_prior(pool, 0.35).unwrap();
    let (special_jury, _) = try_special_case(&instance).expect("uniform costs");
    let objective = bv_objective();
    let special_value = objective.evaluate(&special_jury, Prior::uniform());
    let optimal = ExhaustiveSolver::new(bv_objective()).solve(&instance);
    let annealed = AnnealingSolver::new(bv_objective()).solve(&instance);
    assert!((special_value - optimal.objective_value).abs() < 1e-9);
    assert!(annealed.objective_value <= optimal.objective_value + 1e-9);
    assert!(annealed.objective_value >= optimal.objective_value - 0.01);
}

#[test]
fn greedy_is_a_lower_bound_for_annealing_with_candidates_enabled() {
    // With greedy candidates enabled (the default), the annealing result is
    // at least as good as the plain greedy-by-quality result.
    for seed in 200..205u64 {
        let pool = random_pool(30, seed);
        let instance = JspInstance::new(pool, 0.4, Prior::uniform()).unwrap();
        let annealed = AnnealingSolver::new(bv_objective()).solve(&instance);
        let greedy = GreedyQualitySolver::new(bv_objective()).solve(&instance);
        assert!(annealed.objective_value >= greedy.objective_value - 1e-9);
    }
}

#[test]
fn single_run_configuration_matches_the_paper_schedule() {
    let config = AnnealingConfig::paper_single_run();
    assert_eq!(config.restarts, 1);
    assert!(!config.use_greedy_candidates);
    assert_eq!(config.num_sweeps(), 27);
    // It still produces feasible, sensible juries.
    let pool = random_pool(25, 9);
    let instance = JspInstance::new(pool, 0.5, Prior::uniform()).unwrap();
    let result = AnnealingSolver::with_config(bv_objective(), config).solve(&instance);
    assert!(instance.is_feasible(&result.jury));
    assert!(result.objective_value >= 0.5);
}
