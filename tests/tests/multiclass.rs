//! Integration tests for the Section 7 extension: multiple-choice tasks and
//! confusion-matrix workers, across the model, voting, and jq crates.

use jury_jq::{
    approx_multiclass_bv_jq, exact_bv_jq, exact_multiclass_bv_jq, exact_multiclass_jq,
    MultiClassBucketConfig,
};
use jury_model::{
    CategoricalPrior, ConfusionMatrix, Jury, Label, MatrixJury, MatrixWorker, Prior, WorkerId,
};
use jury_voting::{
    BayesianMultiClassVoting, BayesianVoting, MultiClassVotingStrategy, PluralityVoting,
};

#[test]
fn binary_tasks_are_a_special_case_of_the_multiclass_model() {
    // Two-label confusion matrices built from plain qualities must reproduce
    // the binary results exactly: decisions and jury quality.
    let qualities = [0.85, 0.6, 0.7, 0.55];
    let binary_jury = Jury::from_qualities(&qualities).unwrap();
    let matrix_jury = MatrixJury::from_qualities(&qualities, 2).unwrap();
    for alpha in [0.3, 0.5, 0.7] {
        let prior_bin = Prior::new(alpha).unwrap();
        let prior_cat = CategoricalPrior::new(vec![alpha, 1.0 - alpha]).unwrap();
        // Same decision on every voting.
        for votes in jury_model::enumerate_binary_votings(qualities.len()) {
            let labels: Vec<Label> = votes.iter().map(|v| v.to_label()).collect();
            let binary = BayesianVoting::result(&binary_jury, &votes, prior_bin).unwrap();
            let multi =
                BayesianMultiClassVoting::result(&matrix_jury, &labels, &prior_cat).unwrap();
            assert_eq!(binary.as_index(), multi.index());
        }
        // Same jury quality.
        let jq_bin = exact_bv_jq(&binary_jury, prior_bin).unwrap();
        let jq_multi = exact_multiclass_bv_jq(&matrix_jury, &prior_cat).unwrap();
        assert!((jq_bin - jq_multi).abs() < 1e-10);
    }
}

#[test]
fn multiclass_bv_dominates_plurality_on_varied_juries() {
    let juries = [
        MatrixJury::from_qualities(&[0.9, 0.5, 0.45], 3).unwrap(),
        MatrixJury::from_qualities(&[0.7, 0.7, 0.7, 0.7], 3).unwrap(),
        MatrixJury::from_qualities(&[0.85, 0.4, 0.6, 0.5], 4).unwrap(),
    ];
    for jury in &juries {
        let prior = CategoricalPrior::uniform(jury.num_choices()).unwrap();
        let bv = exact_multiclass_bv_jq(jury, &prior).unwrap();
        let plurality = exact_multiclass_jq(jury, &PluralityVoting::new(), &prior).unwrap();
        assert!(bv >= plurality - 1e-10, "BV {bv} vs plurality {plurality}");
        assert!((0.0..=1.0 + 1e-9).contains(&bv));
    }
}

#[test]
fn asymmetric_confusion_matrices_are_exploited_by_bv() {
    // A worker who never confuses label 0 with label 2 is extremely
    // informative about that distinction; BV should leverage it while
    // plurality cannot.
    let sharp = MatrixWorker::new(
        WorkerId(0),
        ConfusionMatrix::new(3, vec![0.98, 0.02, 0.0, 0.3, 0.4, 0.3, 0.0, 0.02, 0.98]).unwrap(),
        1.0,
    )
    .unwrap();
    let noisy_a = MatrixWorker::new(
        WorkerId(1),
        ConfusionMatrix::from_quality(0.45, 3).unwrap(),
        1.0,
    )
    .unwrap();
    let noisy_b = MatrixWorker::new(
        WorkerId(2),
        ConfusionMatrix::from_quality(0.45, 3).unwrap(),
        1.0,
    )
    .unwrap();
    let jury = MatrixJury::new(vec![sharp, noisy_a, noisy_b]).unwrap();
    let prior = CategoricalPrior::uniform(3).unwrap();
    let bv = exact_multiclass_bv_jq(&jury, &prior).unwrap();
    let plurality = exact_multiclass_jq(&jury, &PluralityVoting::new(), &prior).unwrap();
    assert!(
        bv > plurality + 0.03,
        "BV {bv} should clearly beat plurality {plurality}"
    );
    // The sharp worker votes 1 but the noisy pair votes 0: plurality says 0,
    // BV weighs the confusion structure.
    let votes = vec![Label(1), Label(0), Label(0)];
    let plu = PluralityVoting::new()
        .decide(&jury, &votes, &prior)
        .unwrap();
    let bay = BayesianMultiClassVoting::new()
        .decide(&jury, &votes, &prior)
        .unwrap();
    assert_eq!(plu, Label(0));
    assert_eq!(bay, Label(1));
}

#[test]
fn tuple_key_approximation_tracks_the_exact_multiclass_jq() {
    let cases = [
        (
            MatrixJury::from_qualities(&[0.8, 0.7, 0.6], 3).unwrap(),
            vec![0.4, 0.35, 0.25],
        ),
        (
            MatrixJury::from_qualities(&[0.9, 0.55], 4).unwrap(),
            vec![0.25, 0.25, 0.25, 0.25],
        ),
        (
            MatrixJury::from_qualities(&[0.65; 6], 3).unwrap(),
            vec![1.0 / 3.0; 3],
        ),
    ];
    for (jury, prior_vec) in cases {
        let prior = CategoricalPrior::new(prior_vec).unwrap();
        let exact = exact_multiclass_bv_jq(&jury, &prior).unwrap();
        let approx =
            approx_multiclass_bv_jq(&jury, &prior, MultiClassBucketConfig::default()).unwrap();
        assert!(
            (exact - approx).abs() < 0.01,
            "exact {exact} vs approx {approx} for a {}-worker jury",
            jury.size()
        );
    }
}

#[test]
fn more_multiclass_workers_never_hurt() {
    // The Lemma 1 extension sketched in Section 7: adding a worker does not
    // decrease the multi-class JQ under BV.
    let prior = CategoricalPrior::uniform(3).unwrap();
    let small = MatrixJury::from_qualities(&[0.7, 0.6], 3).unwrap();
    let large = MatrixJury::from_qualities(&[0.7, 0.6, 0.65], 3).unwrap();
    let jq_small = exact_multiclass_bv_jq(&small, &prior).unwrap();
    let jq_large = exact_multiclass_bv_jq(&large, &prior).unwrap();
    assert!(jq_large >= jq_small - 1e-10);
}

#[test]
fn informativeness_identifies_spammers() {
    let good = ConfusionMatrix::from_quality(0.85, 3).unwrap();
    let spammer = ConfusionMatrix::spammer(3).unwrap();
    let biased = ConfusionMatrix::new(
        3,
        // Always votes label 0 regardless of the truth: also a spammer in
        // the Raykar-Yu sense (rows identical), despite 1/3 "accuracy".
        vec![1.0, 0.0, 0.0, 1.0, 0.0, 0.0, 1.0, 0.0, 0.0],
    )
    .unwrap();
    assert!(good.informativeness() > 0.3);
    assert!(spammer.informativeness() < 1e-9);
    assert!(biased.informativeness() < 1e-9);
}

#[test]
fn confusion_matrix_selection_runs_through_the_incremental_hot_path() {
    // End-to-end Section 7 selection: a confusion-matrix pool too large for
    // exact scoring is searched by the annealing and marginal-greedy solvers
    // through `IncrementalMultiClassJq` sessions, and the winning shadow
    // jury resolves back to its confusion matrices with a quality the exact
    // enumeration confirms.
    use jury_jq::MultiClassIncrementalConfig;
    use jury_model::MatrixPool;
    use jury_selection::{
        AnnealingConfig, AnnealingSolver, GreedyMarginalSolver, JurySolver, MultiClassJsp,
    };

    let qualities: Vec<f64> = (0..16).map(|i| 0.5 + 0.025 * (i % 14) as f64).collect();
    let costs: Vec<f64> = (0..16).map(|i| 1.0 + (i % 3) as f64).collect();
    let pool = MatrixPool::from_qualities_and_costs(&qualities, &costs, 3).unwrap();
    let prior = CategoricalPrior::new(vec![0.5, 0.3, 0.2]).unwrap();
    let problem = MultiClassJsp::new(pool, 5.0, prior.clone()).unwrap();
    // Coarse session grids keep the unoptimized test build fast, and the
    // lowered crossover cutoff makes this 16-candidate pool session-driven;
    // reported qualities come from the exact batch objective either way.
    let session_grid = MultiClassIncrementalConfig::default().with_num_buckets(12);
    let session_objective = || {
        problem
            .objective()
            .with_incremental_config(session_grid)
            .with_session_pool_cutoff(8)
    };

    let annealed = AnnealingSolver::with_config(
        session_objective(),
        AnnealingConfig::default()
            .with_epsilon(1e-4)
            .with_restarts(2),
    )
    .solve(problem.instance());
    let greedy = GreedyMarginalSolver::new(session_objective()).solve(problem.instance());

    for result in [&annealed, &greedy] {
        assert!(problem.instance().is_feasible(&result.jury));
        assert!(!result.jury.is_empty());
        assert!(result.evaluations > 0);
        let matrix_jury = problem.matrix_jury(&result.jury).unwrap();
        let exact = exact_multiclass_bv_jq(&matrix_jury, &prior).unwrap();
        // Reported values come from the batch objective (exact here: the
        // selected juries are small), so they must agree with the ground
        // truth enumeration.
        assert!(
            (result.objective_value - exact).abs() < 1e-9,
            "{}: reported {} vs exact {exact}",
            result.solver,
            result.objective_value
        );
    }
}

#[test]
fn incremental_multiclass_engine_tracks_the_scratch_dp_across_mutations() {
    // Cross-crate regression: mutate a jury through the engine while
    // recomputing the scratch DP on the same grids after every step.
    use jury_jq::{multiclass_grid_deltas, IncrementalMultiClassJq};

    let pool = MatrixJury::from_qualities(&[0.9, 0.8, 0.75, 0.7, 0.65, 0.6], 3).unwrap();
    let prior = CategoricalPrior::uniform(3).unwrap();
    let config = MultiClassBucketConfig { num_buckets: 40 };
    let deltas = multiclass_grid_deltas(&pool, &prior, config).unwrap();
    let mut engine = IncrementalMultiClassJq::new(&prior, &deltas).unwrap();

    let mut live: Vec<usize> = Vec::new();
    let script: &[(&str, usize)] = &[
        ("push", 0),
        ("push", 3),
        ("push", 5),
        ("pop", 3),
        ("push", 1),
        ("push", 2),
        ("pop", 0),
        ("push", 4),
    ];
    for &(op, index) in script {
        match op {
            "push" => {
                engine.push_worker(&pool.workers()[index]).unwrap();
                live.push(index);
            }
            _ => {
                engine.pop_worker(&pool.workers()[index]).unwrap();
                live.retain(|&i| i != index);
            }
        }
        let members: Vec<MatrixWorker> = live.iter().map(|&i| pool.workers()[i].clone()).collect();
        let jury = MatrixJury::new(members).unwrap();
        // The scratch DP derives per-jury grids; evaluate it on the pool
        // grids instead by rebuilding the engine's own member set.
        let scratch = engine.from_scratch_jq();
        assert!(
            (engine.jq() - scratch).abs() < 1e-9,
            "incremental {} vs rebuild {scratch} after {op} {index}",
            engine.jq()
        );
        // And the quantized value stays within the coarse-grid ballpark of
        // the exact enumeration.
        let exact = exact_multiclass_bv_jq(&jury, &prior).unwrap();
        assert!(
            (engine.jq() - exact).abs() < 0.05,
            "incremental {} vs exact {exact} after {op} {index}",
            engine.jq()
        );
    }
}
