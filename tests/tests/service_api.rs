//! Integration tests for the `jury-service` request/response API: the
//! paper-example round-trip through both `select` and `select_batch`, and
//! every documented error path — all reported as values, never as panics.

use jury_model::{paper_example_pool, Prior, WorkerId, WorkerPool};
use jury_service::{
    JuryService, SelectionRequest, ServiceConfig, ServiceError, SolverPolicy, Strategy,
};

fn service() -> JuryService {
    JuryService::paper_experiments()
}

#[test]
fn paper_example_round_trips_through_select_and_select_batch() {
    let service = service();
    let request = SelectionRequest::new(paper_example_pool(), 15.0)
        .with_prior(Prior::uniform())
        .with_strategy(Strategy::Bv);

    // Single call: the {B, C, G} jury at 84.5 % for 14 units.
    let single = service.select(&request).unwrap();
    assert_eq!(
        single.worker_ids(),
        vec![WorkerId(1), WorkerId(2), WorkerId(6)]
    );
    assert!((single.quality - 0.845).abs() < 1e-9);
    assert!((single.cost - 14.0).abs() < 1e-9);

    // Batch call: same answer in every slot.
    let batch: Vec<SelectionRequest> = (0..64).map(|_| request.clone()).collect();
    for response in service.select_batch(&batch) {
        let response = response.unwrap();
        assert_eq!(
            response.worker_ids(),
            vec![WorkerId(1), WorkerId(2), WorkerId(6)]
        );
        assert!((response.quality - 0.845).abs() < 1e-9);
    }
}

#[test]
fn empty_pool_is_an_error() {
    let request = SelectionRequest::new(WorkerPool::new(), 10.0);
    assert_eq!(
        service().select(&request).unwrap_err(),
        ServiceError::EmptyPool
    );
}

#[test]
fn zero_and_negative_and_non_finite_budgets_are_errors() {
    let service = service();
    for bad in [
        0.0,
        -1.0,
        -0.001,
        f64::NAN,
        f64::INFINITY,
        f64::NEG_INFINITY,
    ] {
        let request = SelectionRequest::new(paper_example_pool(), bad);
        match service.select(&request) {
            Err(ServiceError::InvalidBudget { .. }) => {}
            other => panic!("budget {bad}: expected InvalidBudget, got {other:?}"),
        }
    }
}

#[test]
fn budget_below_the_cheapest_worker_is_an_error() {
    // The paper pool's cheapest worker (G) costs 2.
    let request = SelectionRequest::new(paper_example_pool(), 1.5);
    assert_eq!(
        service().select(&request).unwrap_err(),
        ServiceError::BudgetBelowCheapestWorker {
            budget: 1.5,
            cheapest: 2.0
        }
    );
    // ... unless the request opts into empty selections.
    let allowed = SelectionRequest::new(paper_example_pool(), 1.5).allow_empty_selection(true);
    let response = service().select(&allowed).unwrap();
    assert!(response.jury.is_empty());
    assert!((response.quality - 0.5).abs() < 1e-12);
}

#[test]
fn invalid_priors_are_errors() {
    let service = service();
    for bad in [-0.1, 1.5, f64::NAN] {
        let request = SelectionRequest::new(paper_example_pool(), 15.0).with_prior_alpha(bad);
        match service.select(&request) {
            Err(ServiceError::InvalidPrior { .. }) => {}
            other => panic!("prior {bad}: expected InvalidPrior, got {other:?}"),
        }
    }
}

#[test]
fn exact_policy_on_an_oversized_pool_is_an_error() {
    let pool = WorkerPool::from_qualities_and_costs(&[0.7; 30], &[0.1; 30]).unwrap();
    let request = SelectionRequest::new(pool.clone(), 2.0).with_policy(SolverPolicy::Exact);
    match service().select(&request) {
        Err(ServiceError::PoolTooLargeForExact { size: 30, .. }) => {}
        other => panic!("expected PoolTooLargeForExact, got {other:?}"),
    }
    // The same pool under Auto falls back to annealing and succeeds.
    let auto = SelectionRequest::new(pool, 2.0);
    assert!(service().select(&auto).is_ok());
}

#[test]
fn batch_reports_errors_per_request_without_aborting() {
    let service = service();
    let good = SelectionRequest::new(paper_example_pool(), 15.0);
    let batch = vec![
        good.clone(),
        SelectionRequest::new(WorkerPool::new(), 15.0), // empty pool
        good.clone(),
        SelectionRequest::new(paper_example_pool(), -3.0), // invalid budget
        SelectionRequest::new(paper_example_pool(), 15.0).with_prior_alpha(7.0), // bad prior
        good,
    ];
    let results = service.select_batch(&batch);
    assert_eq!(results.len(), 6);
    assert!(results[0].is_ok());
    assert_eq!(results[1], Err(ServiceError::EmptyPool));
    assert!(results[2].is_ok());
    assert_eq!(results[3], Err(ServiceError::InvalidBudget { value: -3.0 }));
    assert!(matches!(results[4], Err(ServiceError::InvalidPrior { value }) if value == 7.0));
    assert!(results[5].is_ok());
    // The successes are unaffected by their failing neighbours.
    for ok in [&results[0], &results[2], &results[5]] {
        let response = ok.as_ref().unwrap();
        assert!((response.quality - 0.845).abs() < 1e-9);
    }
}

#[test]
fn batch_results_preserve_request_order() {
    let service = service();
    let budgets = [5.0, 10.0, 15.0, 20.0, 5.0, 10.0, 15.0, 20.0];
    let batch: Vec<SelectionRequest> = budgets
        .iter()
        .map(|&b| SelectionRequest::new(paper_example_pool(), b))
        .collect();
    let results = service.select_batch(&batch);
    let expected = [0.75, 0.80, 0.845, 0.8695, 0.75, 0.80, 0.845, 0.8695];
    for (result, want) in results.iter().zip(expected.iter()) {
        let got = result.as_ref().unwrap().quality;
        assert!((got - want).abs() < 1e-9, "{got} vs {want}");
    }
}

#[test]
fn batch_shares_the_jq_cache_across_requests() {
    let service = JuryService::new(ServiceConfig::paper_experiments());
    let batch: Vec<SelectionRequest> = (0..32)
        .map(|_| SelectionRequest::new(paper_example_pool(), 15.0))
        .collect();
    let results = service.select_batch(&batch);
    assert!(results.iter().all(|r| r.is_ok()));
    let stats = service.cache_stats();
    assert!(stats.hits > 0, "expected shared-cache hits, got {stats:?}");
    assert!(
        stats.hit_rate() > 0.5,
        "batch of identical requests: {stats:?}"
    );
    // Later identical responses report their cache usage.
    assert!(results.last().unwrap().as_ref().unwrap().cache_hits > 0);
}

#[test]
fn strategies_and_policies_compose_with_the_error_path() {
    let service = service();
    // An MV-strategy request with an invalid budget still errors cleanly.
    let request = SelectionRequest::new(paper_example_pool(), f64::NAN)
        .with_strategy(Strategy::Mv)
        .with_policy(SolverPolicy::Greedy);
    assert!(matches!(
        service.select(&request),
        Err(ServiceError::InvalidBudget { .. })
    ));
    // And a valid MV greedy request succeeds with a feasible jury.
    let request = SelectionRequest::new(paper_example_pool(), 15.0)
        .with_strategy(Strategy::Mv)
        .with_policy(SolverPolicy::Greedy);
    let response = service.select(&request).unwrap();
    assert!(response.cost <= 15.0 + 1e-9);
    assert_eq!(response.strategy, Strategy::Mv);
}

#[test]
fn budget_quality_table_propagates_invalid_budgets() {
    let service = service();
    let err = service
        .budget_quality_table(&paper_example_pool(), &[5.0, f64::NAN], Prior::uniform())
        .unwrap_err();
    assert!(matches!(err, ServiceError::InvalidBudget { .. }));
}
