//! Integration tests for the multi-class serving path of `jury-service`:
//! `MatrixPool` requests round-tripping through `select_multiclass`,
//! `select_multiclass_batch`, mixed batches, and
//! `multiclass_budget_quality_table`, pinned against direct
//! `jury_selection::MultiClassJsp` solves — plus the per-kind cache
//! accounting of the shared store and every documented error path.

use jury_model::{CategoricalPrior, MatrixPool, ModelError};
use jury_selection::{
    AnnealingSolver, ExhaustiveSolver, GreedyMarginalSolver, GreedyQualitySolver,
    GreedyRatioSolver, JurySolver, MultiClassJsp,
};
use jury_service::{
    JuryService, MixedRequest, MultiClassSelectionRequest, SelectionRequest, ServiceConfig,
    ServiceError, SolverPolicy, SweepPolicy,
};

fn small_pool() -> MatrixPool {
    MatrixPool::from_qualities_and_costs(
        &[0.9, 0.6, 0.7, 0.8, 0.65, 0.75],
        &[3.0, 1.0, 1.5, 2.5, 1.0, 2.0],
        3,
    )
    .unwrap()
}

fn large_pool(n: usize) -> MatrixPool {
    let qualities: Vec<f64> = (0..n).map(|i| 0.52 + 0.017 * (i % 22) as f64).collect();
    let costs: Vec<f64> = (0..n).map(|i| 1.0 + (i % 4) as f64 * 0.5).collect();
    MatrixPool::from_qualities_and_costs(&qualities, &costs, 3).unwrap()
}

fn uniform3() -> CategoricalPrior {
    CategoricalPrior::uniform(3).unwrap()
}

#[test]
fn select_matches_the_direct_exhaustive_solve_to_1e9() {
    // Small pool → the Auto policy enumerates exhaustively; the service
    // answer must match a direct MultiClassJsp + ExhaustiveSolver run on
    // both the jury and the quality.
    let service = JuryService::paper_experiments();
    for budget in [2.0, 4.0, 6.5] {
        let response = service
            .select_multiclass(&MultiClassSelectionRequest::new(small_pool(), budget))
            .unwrap();
        let problem = MultiClassJsp::new(small_pool(), budget, uniform3()).unwrap();
        let direct = ExhaustiveSolver::new(problem.objective()).solve(problem.instance());
        let mut direct_ids = direct.jury.ids();
        direct_ids.sort();
        assert_eq!(response.worker_ids(), direct_ids, "budget {budget}");
        assert!(
            (response.quality - direct.objective_value).abs() < 1e-9,
            "budget {budget}: service {} vs direct {}",
            response.quality,
            direct.objective_value
        );
        assert!((response.cost - direct.jury.cost()).abs() < 1e-9);
    }
}

#[test]
fn every_policy_matches_its_direct_solver_counterpart() {
    // The policy dispatch must be exactly the documented solver per policy;
    // the shared cache may change *when* values are computed, never what
    // they are.
    let service = JuryService::paper_experiments();
    let budget = 5.0;
    let problem = MultiClassJsp::new(small_pool(), budget, uniform3()).unwrap();

    let exact = service
        .select_multiclass(
            &MultiClassSelectionRequest::new(small_pool(), budget).with_policy(SolverPolicy::Exact),
        )
        .unwrap();
    let direct = ExhaustiveSolver::new(problem.objective()).solve(problem.instance());
    assert!((exact.quality - direct.objective_value).abs() < 1e-9);

    let annealed = service
        .select_multiclass(
            &MultiClassSelectionRequest::new(small_pool(), budget)
                .with_policy(SolverPolicy::Annealing),
        )
        .unwrap();
    let direct_annealed =
        AnnealingSolver::with_config(problem.objective(), service.config().annealing)
            .solve(problem.instance());
    assert!((annealed.quality - direct_annealed.objective_value).abs() < 1e-9);
    assert_eq!(annealed.solver, "simulated-annealing");

    let greedy = service
        .select_multiclass(
            &MultiClassSelectionRequest::new(small_pool(), budget)
                .with_policy(SolverPolicy::Greedy),
        )
        .unwrap();
    let direct_greedy = [
        GreedyQualitySolver::new(problem.objective()).solve(problem.instance()),
        GreedyRatioSolver::new(problem.objective()).solve(problem.instance()),
        GreedyMarginalSolver::new(problem.objective()).solve(problem.instance()),
    ]
    .into_iter()
    .max_by(|a, b| a.objective_value.partial_cmp(&b.objective_value).unwrap())
    .unwrap();
    assert!((greedy.quality - direct_greedy.objective_value).abs() < 1e-9);
}

#[test]
fn batch_parity_and_mixed_kind_cache_accounting() {
    // A mixed batch of repeated binary and multi-class requests: every slot
    // must match its single-request answer, and the shared store must show
    // reuse for *both* kinds (the acceptance criterion for the one-store
    // design).
    let service = JuryService::paper_experiments();
    let binary_request = SelectionRequest::new(jury_model::paper_example_pool(), 15.0);
    let multi_request = MultiClassSelectionRequest::new(small_pool(), 5.0);
    let binary_single = service.select(&binary_request).unwrap();
    let multi_single = service.select_multiclass(&multi_request).unwrap();

    let before = service.cache_stats();
    let mut batch: Vec<MixedRequest> = Vec::new();
    for _ in 0..12 {
        batch.push(binary_request.clone().into());
        batch.push(multi_request.clone().into());
    }
    let responses = service.select_mixed_batch(&batch);
    assert_eq!(responses.len(), 24);
    for pair in responses.chunks(2) {
        let binary = pair[0].as_ref().unwrap().as_binary().unwrap();
        assert_eq!(binary.worker_ids(), binary_single.worker_ids());
        assert!((binary.quality - binary_single.quality).abs() < 1e-12);
        let multi = pair[1].as_ref().unwrap().as_multi_class().unwrap();
        assert_eq!(multi.worker_ids(), multi_single.worker_ids());
        assert!((multi.quality - multi_single.quality).abs() < 1e-12);
    }
    let after = service.cache_stats();
    assert!(
        after.binary.hits > before.binary.hits,
        "binary entries must be re-served from the shared store: {after:?}"
    );
    assert!(
        after.multiclass.hits > before.multiclass.hits,
        "multi-class entries must be re-served from the shared store: {after:?}"
    );
    // The single-request warm-up already inserted every signature the batch
    // needs, so the batch adds no misses of either kind — proof the two
    // kinds share one store rather than shadowing each other.
    assert_eq!(after.binary.misses, before.binary.misses);
    assert_eq!(after.multiclass.misses, before.multiclass.misses);
    assert_eq!(after.hits, after.binary.hits + after.multiclass.hits);
    assert_eq!(after.misses, after.binary.misses + after.multiclass.misses);
}

#[test]
fn large_pools_run_the_multiclass_session_path_deterministically() {
    // Past the (lowered) session crossover the searches ride the
    // incremental multi-class engine; results must stay feasible,
    // deterministic, and within the documented tolerance of a direct
    // session-enabled solve.
    let pool = large_pool(14);
    // Coarse session grid + lowered crossover: exercises the session path
    // cheaply (the production defaults only engage it past 20 candidates,
    // where debug-mode tests would crawl).
    let config = ServiceConfig::fast()
        .with_multiclass_session_cutoff(8)
        .with_multiclass_incremental(
            jury_jq::MultiClassIncrementalConfig::default().with_num_buckets(12),
        );
    let service = JuryService::new(config);
    for policy in [SolverPolicy::Annealing, SolverPolicy::Greedy] {
        let request = MultiClassSelectionRequest::new(pool.clone(), 4.0)
            .with_policy(policy.clone())
            .with_config(config);
        let a = service.select_multiclass(&request).unwrap();
        let b = service.select_multiclass(&request).unwrap();
        assert_eq!(a.worker_ids(), b.worker_ids(), "{policy}");
        assert!(!a.members.is_empty(), "{policy}");
        assert!(a.cost <= 4.0 + 1e-9, "{policy}");
        assert!(a.quality >= 1.0 / 3.0, "{policy}");
        assert!(a.evaluations > 0, "{policy}");
    }
}

#[test]
fn empty_matrix_pools_cannot_exist_and_other_errors_are_typed() {
    // The "empty MatrixPool" error path lives at the model layer: the pool
    // type itself refuses to be empty, so no service request can ever carry
    // one.
    let err = MatrixPool::new(Vec::new()).unwrap_err();
    assert!(matches!(err, ModelError::Empty { .. }));

    let service = JuryService::paper_experiments();
    for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -1.0] {
        let err = service
            .select_multiclass(&MultiClassSelectionRequest::new(small_pool(), bad))
            .unwrap_err();
        // (No `assert_eq!` against the NaN case — NaN never compares equal.)
        let ServiceError::InvalidBudget { value } = err else {
            panic!("expected InvalidBudget for {bad}, got {err}");
        };
        assert!(value == bad || (value.is_nan() && bad.is_nan()));
    }
    // Zero budget without the empty opt-in.
    assert!(matches!(
        service
            .select_multiclass(&MultiClassSelectionRequest::new(small_pool(), 0.0))
            .unwrap_err(),
        ServiceError::InvalidBudget { .. }
    ));
    // Prior arity mismatch and non-distribution vectors.
    for bad_prior in [
        vec![0.5, 0.5],
        vec![0.9, 0.9, 0.9],
        vec![f64::NAN, 0.5, 0.5],
    ] {
        let err = service
            .select_multiclass(
                &MultiClassSelectionRequest::new(small_pool(), 5.0)
                    .with_prior_probs(bad_prior.clone()),
            )
            .unwrap_err();
        assert!(
            matches!(err, ServiceError::InvalidPriorVector { .. }),
            "{bad_prior:?} → {err}"
        );
    }
    // Exact policy on a pool too large to enumerate.
    let err = service
        .select_multiclass(
            &MultiClassSelectionRequest::new(large_pool(23), 5.0).with_policy(SolverPolicy::Exact),
        )
        .unwrap_err();
    assert!(matches!(err, ServiceError::PoolTooLargeForExact { .. }));
}

#[test]
fn cell_budget_overflow_is_a_typed_error_not_a_panic() {
    // 24 four-label candidates need the incremental engine (past both the
    // session crossover and the exact voting cutoff); with a one-cell
    // budget even a one-bucket grid cannot fit — the service must refuse
    // with the dedicated error, and batches must carry it per slot.
    let qualities: Vec<f64> = (0..24).map(|i| 0.5 + 0.015 * (i % 20) as f64).collect();
    let pool = MatrixPool::from_qualities_and_costs(&qualities, &[1.0; 24], 4).unwrap();
    let config = ServiceConfig::fast().with_multiclass_incremental(
        jury_jq::MultiClassIncrementalConfig::default().with_max_cells(1),
    );
    let service = JuryService::new(config);
    let request = MultiClassSelectionRequest::new(pool, 6.0);
    let err = service.select_multiclass(&request).unwrap_err();
    assert!(matches!(err, ServiceError::MultiClassStateTooLarge { .. }));

    let slots = service.select_multiclass_batch(&[request.clone(), request]);
    for slot in slots {
        assert!(matches!(
            slot.unwrap_err(),
            ServiceError::MultiClassStateTooLarge { .. }
        ));
    }
}

#[test]
fn budget_quality_table_matches_direct_solves_on_small_pools() {
    let service = JuryService::paper_experiments();
    let budgets = [2.0, 4.0, 6.0, 9.0];
    let table = service
        .multiclass_budget_quality_table(&small_pool(), &budgets, &uniform3())
        .unwrap();
    assert_eq!(table.rows().len(), budgets.len());
    for (row, &budget) in table.rows().iter().zip(&budgets) {
        let problem = MultiClassJsp::new(small_pool(), budget, uniform3()).unwrap();
        let direct = ExhaustiveSolver::new(problem.objective()).solve(problem.instance());
        assert!(
            (row.quality - direct.objective_value).abs() < 1e-9,
            "budget {budget}: row {} vs direct {}",
            row.quality,
            direct.objective_value
        );
        assert!(row.required_budget <= row.budget + 1e-9);
    }
}

#[test]
fn warm_and_cold_multiclass_sweeps_agree_on_uniform_costs() {
    // Uniform costs: greedy prefixes nest, so the warm marginal sweep, the
    // warm annealing sweep, and cold per-budget solves must produce the
    // same row qualities on a large pool.
    let qualities: Vec<f64> = (0..16).map(|i| 0.88 - 0.02 * i as f64).collect();
    let pool = MatrixPool::from_qualities_and_costs(&qualities, &[1.0; 16], 3).unwrap();
    let budgets = [2.0, 4.0, 7.0];

    let tables: Vec<_> = [
        SweepPolicy::WarmMarginal,
        SweepPolicy::WarmAnnealing,
        SweepPolicy::Cold,
    ]
    .into_iter()
    .map(|sweep| {
        let service = JuryService::new(ServiceConfig::fast().with_sweep_policy(sweep));
        (
            sweep,
            service
                .multiclass_budget_quality_table(&pool, &budgets, &uniform3())
                .unwrap(),
        )
    })
    .collect();

    let (_, cold) = tables.last().unwrap();
    for (sweep, table) in &tables {
        let mut previous = 0.0;
        for (row, reference) in table.rows().iter().zip(cold.rows()) {
            assert!(
                (row.quality - reference.quality).abs() < 1e-9,
                "{sweep:?} at budget {}: {} vs cold {}",
                row.budget,
                row.quality,
                reference.quality
            );
            assert!(row.quality >= previous - 1e-12, "{sweep:?} monotone");
            previous = row.quality;
        }
    }

    // The warm paths validate budgets and prior arity as typed errors too.
    let warm = JuryService::new(ServiceConfig::fast());
    assert!(matches!(
        warm.multiclass_budget_quality_table(&pool, &[1.0, f64::NAN], &uniform3())
            .unwrap_err(),
        ServiceError::InvalidBudget { .. }
    ));
    assert!(matches!(
        warm.multiclass_budget_quality_table(
            &pool,
            &budgets,
            &CategoricalPrior::uniform(4).unwrap()
        )
        .unwrap_err(),
        ServiceError::InvalidPriorVector { .. }
    ));
}
