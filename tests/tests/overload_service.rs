//! Admission control under pressure: a bounded in-flight gate with more
//! batch threads than slots must shed (typed `Overloaded`, never a hang)
//! or coarsen (serve everything at the greedy floor) — with gate counters
//! that always account for every slot exactly once.

use jury_model::{MatrixPool, Prior, WorkerPool};
use jury_service::{
    JuryService, MixedRequest, OverloadPolicy, SelectionRequest, ServiceConfig, ServiceError,
    SolverPolicy,
};

/// A 30-worker pool past the exact cutoff: every request pays a real
/// annealing search, long enough that 4 batch threads genuinely overlap.
fn annealing_pool() -> WorkerPool {
    let qualities: Vec<f64> = (0..30).map(|w| 0.55 + 0.012 * (w as f64)).collect();
    let costs: Vec<f64> = (0..30).map(|w| 1.0 + ((w * 7) % 5) as f64).collect();
    WorkerPool::from_qualities_and_costs(&qualities, &costs).unwrap()
}

fn annealing_request() -> SelectionRequest {
    SelectionRequest::new(annealing_pool(), 12.0).with_prior(Prior::uniform())
}

fn gated_config(overload: OverloadPolicy) -> ServiceConfig {
    ServiceConfig::fast()
        .with_max_in_flight(1)
        .with_overload_policy(overload)
        .with_batch_threads(4)
}

#[test]
fn shed_rejects_over_capacity_slots_with_a_typed_error() {
    let service = JuryService::new(gated_config(OverloadPolicy::Shed));
    let batch: Vec<SelectionRequest> = (0..16).map(|_| annealing_request()).collect();

    // This call returning at all is the first assertion: the gate is
    // non-blocking, so a full queue can never hang the batch.
    let outcome = service.select_batch_with_metrics(&batch);
    assert_eq!(outcome.results.len(), batch.len());

    let mut served = 0;
    for slot in &outcome.results {
        match slot {
            Ok(response) => {
                served += 1;
                assert!(response.jury_size() > 0);
            }
            Err(ServiceError::Overloaded {
                in_flight,
                max_in_flight,
            }) => {
                assert_eq!(*max_in_flight, 1);
                assert!(*in_flight > *max_in_flight);
            }
            Err(other) => panic!("unexpected error under shed: {other}"),
        }
    }
    // Every slot is accounted for exactly once, and the gate let at least
    // one request through (the slot holder always serves).
    assert_eq!(served, outcome.metrics.admitted);
    assert_eq!(outcome.metrics.admitted + outcome.metrics.shed, batch.len());
    assert!(outcome.metrics.admitted >= 1);
    assert_eq!(outcome.metrics.coarsened, 0);
    // 4 threads against a limit of 1: sheds happen iff the peak exceeded
    // the limit, and the counters must agree about it.
    assert_eq!(outcome.metrics.shed > 0, outcome.metrics.peak_in_flight > 1);
}

#[test]
fn coarsen_serves_every_slot_at_no_worse_than_the_greedy_floor() {
    // The floor: what a full greedy dispatch earns on this instance.
    let floor = JuryService::new(ServiceConfig::fast())
        .select(&annealing_request().with_policy(SolverPolicy::Greedy))
        .unwrap();

    let service = JuryService::new(gated_config(OverloadPolicy::Coarsen));
    let batch: Vec<SelectionRequest> = (0..16).map(|_| annealing_request()).collect();
    let outcome = service.select_batch_with_metrics(&batch);

    // Coarsening never sheds: every slot is served.
    let mut downgraded = 0;
    for slot in &outcome.results {
        let response = slot.as_ref().unwrap();
        if response.policy == SolverPolicy::Greedy {
            // A coarsened slot reports the downgraded policy and earns
            // exactly the greedy floor.
            downgraded += 1;
            assert!(
                response.quality >= floor.quality - 1e-9,
                "coarsened slot at {} fell below the greedy floor {}",
                response.quality,
                floor.quality
            );
        }
        assert!(response.jury_size() > 0);
        assert!(response.cost <= 12.0 + 1e-9);
    }
    assert_eq!(
        outcome.metrics.admitted + outcome.metrics.coarsened,
        batch.len()
    );
    assert_eq!(outcome.metrics.shed, 0);
    assert_eq!(downgraded, outcome.metrics.coarsened);
}

#[test]
fn the_gate_is_off_by_default_and_singletons_always_fit() {
    // Default config: no limit, nothing shed, the peak is never tracked.
    let service = JuryService::new(ServiceConfig::fast());
    let outcome = service.select_batch_with_metrics(&[annealing_request(), annealing_request()]);
    assert!(outcome.results.iter().all(Result::is_ok));
    assert_eq!(outcome.metrics.admitted, 2);
    assert_eq!(outcome.metrics.peak_in_flight, 0);
    assert_eq!(outcome.metrics.shards.len(), service.num_cache_shards());

    // A batch of one can never exceed a limit of one, whatever the policy.
    let gated = JuryService::new(gated_config(OverloadPolicy::Shed));
    let outcome = gated.select_batch_with_metrics(&[annealing_request()]);
    assert!(outcome.results[0].is_ok());
    assert_eq!(outcome.metrics.admitted, 1);
    assert_eq!(outcome.metrics.shed, 0);
}

#[test]
fn mixed_batches_pass_the_same_gate_regardless_of_kind() {
    let service = JuryService::new(gated_config(OverloadPolicy::Shed));
    let matrix_pool = MatrixPool::from_qualities_and_costs(
        &[0.9, 0.8, 0.7, 0.65, 0.6, 0.55],
        &[2.0, 2.0, 1.0, 1.0, 1.0, 1.0],
        3,
    )
    .unwrap();
    let batch: Vec<MixedRequest> = (0..12)
        .map(|slot| -> MixedRequest {
            if slot % 2 == 0 {
                annealing_request().into()
            } else {
                jury_service::MultiClassSelectionRequest::new(matrix_pool.clone(), 4.0).into()
            }
        })
        .collect();

    let outcome = service.select_mixed_batch_with_metrics(&batch);
    assert_eq!(outcome.results.len(), batch.len());
    for (slot, result) in outcome.results.iter().enumerate() {
        match result {
            // A served slot keeps its kind.
            Ok(response) => assert_eq!(slot % 2 == 0, response.as_binary().is_some()),
            Err(ServiceError::Overloaded { .. }) => {}
            Err(other) => panic!("unexpected error under shed: {other}"),
        }
    }
    assert_eq!(outcome.metrics.admitted + outcome.metrics.shed, batch.len());
    assert!(outcome.metrics.admitted >= 1);
}

#[test]
fn shard_snapshots_in_metrics_reflect_the_configured_store() {
    let service = JuryService::new(ServiceConfig::fast().with_cache_shards(3));
    assert_eq!(service.num_cache_shards(), 3);
    let outcome = service.select_batch_with_metrics(&[annealing_request()]);
    assert_eq!(outcome.metrics.shards.len(), 3);
    // The batch populated the store: the shard counters saw the traffic.
    let total_misses: u64 = outcome.metrics.shards.iter().map(|s| s.misses).sum();
    assert!(total_misses > 0);
    assert_eq!(service.cache_stats().misses, total_misses);
}
