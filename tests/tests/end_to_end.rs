//! End-to-end integration tests: the full OPTJS system against the paper's
//! worked examples and against the MVJS baseline, across crates.

use jury_integration_tests::random_pool;
use jury_model::{paper_example_pool, Answer, Prior, WorkerId};
use jury_optjs::{
    compare_systems, run_on_dataset, run_simulated_task, Mvjs, Optjs, SystemConfig, SystemKind,
};
use jury_sim::{AmtCampaignConfig, AmtSimulator};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn figure_1_budget_quality_table_is_reproduced_end_to_end() {
    let system = Optjs::new(SystemConfig::paper_experiments());
    let table = system
        .budget_quality_table(
            &paper_example_pool(),
            &[5.0, 10.0, 15.0, 20.0],
            Prior::uniform(),
        )
        .expect("the Figure 1 budgets are valid");
    let expected_quality = [0.75, 0.80, 0.845, 0.8695];
    let expected_required = [5.0, 9.0, 14.0, 20.0];
    for ((row, &quality), &required) in table
        .rows()
        .iter()
        .zip(expected_quality.iter())
        .zip(expected_required.iter())
    {
        assert!(
            (row.quality - quality).abs() < 1e-9,
            "budget {}: quality {} vs paper {}",
            row.budget,
            row.quality,
            quality
        );
        // Several juries can tie on quality, so the required budget may be at
        // most the paper's figure (never more).
        assert!(
            row.required_budget <= required + 1e-9,
            "budget {}: required {} exceeds paper {}",
            row.budget,
            row.required_budget,
            required
        );
    }
}

#[test]
fn figure_1_budget_15_jury_is_b_c_g() {
    let system = Optjs::new(SystemConfig::paper_experiments());
    let outcome = system
        .select(&paper_example_pool(), 15.0, Prior::uniform())
        .unwrap();
    assert_eq!(
        outcome.worker_ids(),
        vec![WorkerId(1), WorkerId(2), WorkerId(6)]
    );
    assert!((outcome.cost - 14.0).abs() < 1e-9);
    assert!((outcome.estimated_quality - 0.845).abs() < 1e-9);
}

#[test]
fn optjs_beats_or_matches_mvjs_on_synthetic_pools() {
    // The Figure 6 claim at the system level, across several random pools
    // and budgets, with each system scored under its own strategy.
    let config = SystemConfig::fast();
    let optjs = Optjs::new(config);
    let mvjs = Mvjs::new(config);
    for seed in 0..5u64 {
        let pool = random_pool(40, seed);
        for budget in [0.2, 0.5, 0.8] {
            let (o, m) = compare_systems(&optjs, &mvjs, &pool, budget, Prior::uniform()).unwrap();
            assert_eq!(o.system, SystemKind::Optjs);
            assert_eq!(m.system, SystemKind::Mvjs);
            assert!(
                o.estimated_quality >= m.estimated_quality - 0.01,
                "seed {seed} budget {budget}: OPTJS {} < MVJS {}",
                o.estimated_quality,
                m.estimated_quality
            );
            assert!(o.cost <= budget + 1e-9);
            assert!(m.cost <= budget + 1e-9);
        }
    }
}

#[test]
fn simulated_task_pipeline_is_calibrated() {
    // Selecting, collecting simulated votes, and aggregating with BV yields
    // an empirical accuracy close to the predicted JQ.
    let system = Optjs::new(SystemConfig::fast());
    let pool = paper_example_pool();
    let mut rng = StdRng::seed_from_u64(77);
    let trials = 400;
    let mut correct = 0;
    let mut predicted = 0.0;
    for i in 0..trials {
        let truth = if i % 2 == 0 { Answer::Yes } else { Answer::No };
        let outcome =
            run_simulated_task(&system, &pool, 20.0, Prior::uniform(), truth, &mut rng).unwrap();
        assert!(outcome.cost <= 20.0 + 1e-9);
        if outcome.is_correct() {
            correct += 1;
        }
        predicted += outcome.predicted_jq;
    }
    let accuracy = correct as f64 / trials as f64;
    let predicted = predicted / trials as f64;
    assert!(
        (accuracy - predicted).abs() < 0.06,
        "accuracy {accuracy} should track predicted JQ {predicted}"
    );
}

#[test]
fn amt_campaign_replay_improves_with_budget() {
    let simulator = AmtSimulator::new(AmtCampaignConfig::small());
    let mut rng = StdRng::seed_from_u64(5);
    let dataset = simulator.run(&mut rng).unwrap();
    let system = Optjs::new(SystemConfig::fast());
    let low = run_on_dataset(&system, &dataset, 0.1).unwrap();
    let high = run_on_dataset(&system, &dataset, 1.0).unwrap();
    assert!(high.mean_predicted_jq >= low.mean_predicted_jq - 1e-9);
    assert!(high.mean_cost >= low.mean_cost - 1e-9);
    assert!(high.accuracy >= low.accuracy - 0.1);
    assert_eq!(low.outcomes.len(), dataset.num_tasks());
}

#[test]
fn selections_never_include_workers_outside_the_pool() {
    let config = SystemConfig::fast();
    let optjs = Optjs::new(config);
    for seed in 0..3u64 {
        let pool = random_pool(25, seed);
        let outcome = optjs.select(&pool, 0.4, Prior::uniform()).unwrap();
        for id in outcome.worker_ids() {
            assert!(pool.contains(id), "selected unknown worker {id}");
        }
    }
}
