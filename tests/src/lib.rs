//! Cross-crate integration tests for the jury-selection workspace.
//!
//! The actual tests live under `tests/`; this library only exposes a few
//! shared helpers for them.

use jury_model::{GaussianWorkerGenerator, Jury, WorkerPool};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A reproducible random jury drawn from the paper's synthetic worker model.
pub fn random_jury(n: usize, seed: u64) -> Jury {
    let generator = GaussianWorkerGenerator::paper_defaults();
    let mut rng = StdRng::seed_from_u64(seed);
    let qualities: Vec<f64> = (0..n).map(|_| generator.sample_quality(&mut rng)).collect();
    Jury::from_qualities(&qualities).expect("clamped qualities are valid")
}

/// A reproducible random candidate pool drawn from the paper's synthetic
/// worker model (qualities and costs).
pub fn random_pool(n: usize, seed: u64) -> WorkerPool {
    let generator = GaussianWorkerGenerator::paper_defaults();
    let mut rng = StdRng::seed_from_u64(seed);
    generator.generate(n, &mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_are_reproducible() {
        assert_eq!(random_jury(5, 1), random_jury(5, 1));
        assert_eq!(random_pool(5, 1), random_pool(5, 1));
        assert_ne!(random_pool(5, 1), random_pool(5, 2));
    }
}
