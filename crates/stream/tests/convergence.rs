//! Property tests for the streaming estimators: replaying a simulated
//! crowdsourcing campaign (the `jury-sim` platform) into the registry must
//! drive the Beta / Dirichlet posteriors to the workers' latent qualities,
//! and a drift-free stream must never trip the drift detector.

use jury_model::{Answer, ConfusionMatrix, Label, Prior, TaskId, WorkerId, WorkerPool};
use jury_sim::platform::{PlatformConfig, SimulatedPlatform};
use jury_stream::{AnswerEvent, DriftDetector, DriftStatus, RegistryConfig, WorkerRegistry};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runs a simulated campaign over `num_tasks` tasks in which every worker
/// answers every task, and replays all votes into the registry as golden
/// events (the simulation knows each task's planted truth).
fn replay_campaign(
    registry: &mut WorkerRegistry,
    workers: &WorkerPool,
    num_tasks: usize,
    seed: u64,
) {
    let platform = SimulatedPlatform::new(PlatformConfig {
        questions_per_hit: 10,
        assignments_per_hit: workers.len(),
        reward_per_hit: 0.02,
    });
    let truths: Vec<Answer> = (0..num_tasks)
        .map(|t| if t % 2 == 0 { Answer::Yes } else { Answer::No })
        .collect();
    let activity = vec![1.0; workers.len()];
    let mut rng = StdRng::seed_from_u64(seed);
    let dataset = platform
        .run_campaign(workers, &truths, &activity, &mut rng)
        .unwrap();
    for (t, record) in dataset.tasks().iter().enumerate() {
        let truth = record.ground_truth();
        for vote in record.votes() {
            registry
                .observe(AnswerEvent::golden(
                    vote.worker,
                    TaskId(t as u64),
                    vote.answer,
                    truth,
                ))
                .unwrap();
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The Beta posterior mean converges to each worker's latent quality:
    /// after a 150-task campaign the error is within the posterior's own
    /// credible width (up to simulation noise), and the snapshot pool
    /// reports exactly the posterior means.
    #[test]
    fn beta_posteriors_converge_to_latent_qualities(
        qualities in proptest::collection::vec(0.55f64..0.95, 4..8),
        seed in 0u64..500,
    ) {
        let workers = WorkerPool::from_qualities(&qualities).unwrap();
        let mut registry = WorkerRegistry::new(RegistryConfig::default()).unwrap();
        for worker in workers.workers() {
            registry.register(worker.id(), 1.0).unwrap();
        }
        replay_campaign(&mut registry, &workers, 150, seed);

        let snapshot = registry.snapshot_pool().unwrap();
        for worker in workers.workers() {
            let estimate = registry.estimate(worker.id()).unwrap();
            prop_assert_eq!(estimate.observations, 150);
            // credible_width is 2σ of the posterior; 1.5·width = 3σ, plus
            // slack for the Beta(1,1) prior's pull toward 0.5.
            let tolerance = 1.5 * estimate.credible_width + 0.03;
            prop_assert!(
                (estimate.mean - worker.quality()).abs() < tolerance,
                "worker {:?}: posterior {} vs latent {} (tolerance {})",
                worker.id(), estimate.mean, worker.quality(), tolerance
            );
            let snapshotted = snapshot.get(worker.id()).unwrap();
            prop_assert!((snapshotted.quality() - estimate.mean).abs() < 1e-12);
        }
    }

    /// The Dirichlet-counted confusion rows converge to the latent
    /// confusion matrix on a golden multi-class stream.
    #[test]
    fn dirichlet_rows_converge_to_the_latent_confusion_matrix(
        quality in 0.6f64..0.9,
        seed in 0u64..500,
    ) {
        let choices = 3;
        let latent = ConfusionMatrix::from_quality(quality, choices).unwrap();
        let mut registry = WorkerRegistry::new(RegistryConfig {
            num_choices: choices,
            ..RegistryConfig::default()
        })
        .unwrap();
        registry.register(WorkerId(0), 1.0).unwrap();

        let mut rng = StdRng::seed_from_u64(seed);
        for t in 0..300u64 {
            let truth = Label((t % choices as u64) as usize);
            // Draw the vote from the latent confusion row.
            let mut u: f64 = rng.gen();
            let mut vote = Label(choices - 1);
            for v in 0..choices {
                u -= latent.prob(truth, Label(v));
                if u <= 0.0 {
                    vote = Label(v);
                    break;
                }
            }
            registry
                .observe(AnswerEvent::multiclass(WorkerId(0), TaskId(t), vote, Some(truth)))
                .unwrap();
        }

        let estimated = registry.confusion(WorkerId(0)).unwrap().unwrap();
        for truth in 0..choices {
            for vote in 0..choices {
                let (t, v) = (Label(truth), Label(vote));
                prop_assert!(
                    (estimated.prob(t, v) - latent.prob(t, v)).abs() < 0.15,
                    "cell ({truth}, {vote}): estimated {} vs latent {}",
                    estimated.prob(t, v), latent.prob(t, v)
                );
            }
        }
    }

    /// Regression: a drift-free stream — answers drawn at exactly the
    /// latent rates the selections were scored against — never flags a
    /// tracked selection, whichever seed drives the simulation.
    #[test]
    fn drift_detector_never_flags_on_a_drift_free_stream(
        qualities in proptest::collection::vec(0.6f64..0.9, 4..8),
        seed in 0u64..500,
    ) {
        let workers = WorkerPool::from_qualities(&qualities).unwrap();
        let mut registry = WorkerRegistry::new(RegistryConfig::default()).unwrap();
        // Warm-start every worker at its latent quality with 400
        // pseudo-observations, as a batch estimator would.
        for worker in workers.workers() {
            registry
                .register_with_quality(worker.id(), worker.quality(), 400.0, 1.0)
                .unwrap();
        }

        // Track one jury per worker triple, baselined at the mean of the
        // members' current estimates (the stream crate is scorer-agnostic;
        // the service scores real JQ through its cache).
        let mut detector = DriftDetector::new(0.05);
        let ids = workers.ids();
        let mean_of = |registry: &WorkerRegistry, members: &[WorkerId]| -> f64 {
            members
                .iter()
                .map(|&id| registry.estimate(id).unwrap().mean)
                .sum::<f64>()
                / members.len() as f64
        };
        for triple in ids.windows(3) {
            let baseline = mean_of(&registry, triple);
            detector.track(
                triple.to_vec(),
                3.0,
                Prior::uniform(),
                baseline,
                registry.epoch(),
            );
        }

        // The stream answers at the latent rates: no drift by construction.
        replay_campaign(&mut registry, &workers, 150, seed);

        let reports = detector.scan_with(|_, selection| {
            Some(mean_of(&registry, selection.members()))
        });
        for report in reports {
            prop_assert_eq!(
                report.status,
                DriftStatus::Steady,
                "selection {} drifted by {} on a drift-free stream",
                report.id, report.drift
            );
        }
    }
}
