//! The unit of streaming input: one worker's answer to one task.

use jury_model::{Answer, Label, TaskId, WorkerId};

/// One streamed answer: `worker` voted `vote` on `task`.
///
/// When the task is a *golden question* (ground truth planted in the stream,
/// as in CDAS \[25\]) the truth rides along in [`AnswerEvent::truth`] and
/// truth-aware update policies consume it directly; for ordinary tasks the
/// truth is `None` and the registry falls back to its configured proxy
/// (majority vote or a periodic Dawid–Skene refit).
///
/// Votes are multi-class [`Label`]s; binary streams use the paper's
/// `{0 = no, 1 = yes}` encoding via the [`AnswerEvent::binary`] and
/// [`AnswerEvent::golden`] constructors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnswerEvent {
    /// The worker who answered.
    pub worker: WorkerId,
    /// The task being answered.
    pub task: TaskId,
    /// The label the worker voted for.
    pub vote: Label,
    /// The task's ground truth, when known (golden question).
    pub truth: Option<Label>,
}

impl AnswerEvent {
    /// A multi-class answer, optionally golden.
    pub fn multiclass(worker: WorkerId, task: TaskId, vote: Label, truth: Option<Label>) -> Self {
        AnswerEvent {
            worker,
            task,
            vote,
            truth,
        }
    }

    /// A binary answer to an ordinary (non-golden) task.
    pub fn binary(worker: WorkerId, task: TaskId, vote: Answer) -> Self {
        AnswerEvent {
            worker,
            task,
            vote: vote.to_label(),
            truth: None,
        }
    }

    /// A binary answer to a golden question with known ground truth.
    pub fn golden(worker: WorkerId, task: TaskId, vote: Answer, truth: Answer) -> Self {
        AnswerEvent {
            worker,
            task,
            vote: vote.to_label(),
            truth: Some(truth.to_label()),
        }
    }

    /// Whether the event carries ground truth.
    pub fn is_golden(&self) -> bool {
        self.truth.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_encode_the_paper_convention() {
        let event = AnswerEvent::binary(WorkerId(3), TaskId(7), Answer::Yes);
        assert_eq!(event.vote, Label(1));
        assert_eq!(event.truth, None);
        assert!(!event.is_golden());

        let golden = AnswerEvent::golden(WorkerId(3), TaskId(7), Answer::No, Answer::Yes);
        assert_eq!(golden.vote, Label(0));
        assert_eq!(golden.truth, Some(Label(1)));
        assert!(golden.is_golden());

        let multi = AnswerEvent::multiclass(WorkerId(0), TaskId(1), Label(2), Some(Label(2)));
        assert_eq!(multi.vote, Label(2));
        assert!(multi.is_golden());
    }
}
