//! Per-worker streaming quality state.
//!
//! The registry is the online counterpart of `jury-sim`'s batch estimators:
//! instead of scoring a finished [`jury_model::CrowdDataset`], it folds one
//! [`AnswerEvent`] at a time into conjugate posteriors — a Beta posterior
//! over each worker's binary accuracy and Dirichlet-counted confusion rows
//! for multi-class — and can snapshot the current point estimates into the
//! `WorkerPool` / `MatrixPool` shapes the solvers consume.
//!
//! Three update policies decide what counts as "the truth" for an incoming
//! vote, mirroring the estimator spectrum of `jury-sim::estimation`:
//!
//! * [`UpdatePolicy::GoldenTruth`] — only golden questions (events carrying
//!   ground truth) update the posteriors; everything else is ignored.
//! * [`UpdatePolicy::MajorityProxy`] — votes buffer per task until
//!   `min_votes` arrive, then the majority label becomes the proxy truth
//!   (ties wait for more votes); golden events resolve their task
//!   immediately.
//! * [`UpdatePolicy::PeriodicDawidSkene`] — binary streams only: votes are
//!   logged, golden events update immediately, and every `refit_every`
//!   events the full log is refit with `jury-sim`'s Dawid–Skene EM, which
//!   re-anchors every Beta posterior at the EM estimate.

use std::collections::BTreeMap;

use jury_model::{
    Answer, ConfusionMatrix, Label, MatrixPool, ModelError, ModelResult, Prior, TaskId, WorkerId,
    WorkerPool,
};
use jury_sim::dawid_skene::{self, DawidSkeneConfig};
use jury_sim::estimation::dataset_from_votes;

use crate::event::AnswerEvent;

/// How the registry decides what the truth of a voted task is.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum UpdatePolicy {
    /// Update only on golden questions (events carrying ground truth).
    GoldenTruth,
    /// Resolve each task's truth to the majority label once `min_votes`
    /// votes arrived (ties wait for more votes); golden events resolve
    /// immediately. Every buffered vote is scored against the resolved
    /// label, and later votes on a resolved task score immediately.
    MajorityProxy {
        /// Votes a task needs before its majority is trusted.
        min_votes: usize,
    },
    /// Log every (binary) vote and refit the whole log with the Dawid–Skene
    /// EM every `refit_every` events, re-anchoring the Beta posteriors at
    /// the EM estimates; golden events also update immediately.
    PeriodicDawidSkene {
        /// Events between refits.
        refit_every: u64,
    },
}

/// Configuration of a [`WorkerRegistry`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegistryConfig {
    /// Beta prior pseudo-count on *correct* answers (`a₀`); with
    /// `prior_wrong` this anchors new workers at
    /// `a₀ / (a₀ + b₀)` accuracy.
    pub prior_correct: f64,
    /// Beta prior pseudo-count on *wrong* answers (`b₀`).
    pub prior_wrong: f64,
    /// Dirichlet pseudo-count per confusion-matrix cell.
    pub dirichlet_prior: f64,
    /// Number of labels `ℓ` tracked by the confusion rows (2 = binary).
    pub num_choices: usize,
    /// What counts as truth for an incoming vote.
    pub policy: UpdatePolicy,
}

impl Default for RegistryConfig {
    fn default() -> Self {
        RegistryConfig {
            prior_correct: 1.0,
            prior_wrong: 1.0,
            dirichlet_prior: 1.0,
            num_choices: 2,
            policy: UpdatePolicy::GoldenTruth,
        }
    }
}

impl RegistryConfig {
    fn validate(&self) -> ModelResult<()> {
        for &(prior, what) in &[
            (self.prior_correct, "prior_correct"),
            (self.prior_wrong, "prior_wrong"),
            (self.dirichlet_prior, "dirichlet_prior"),
        ] {
            if !prior.is_finite() || prior <= 0.0 {
                return Err(ModelError::InvalidPriorVector {
                    reason: format!("{what} {prior} must be finite and positive"),
                });
            }
        }
        if self.num_choices < 2 {
            return Err(ModelError::InvalidConfusionMatrix {
                reason: format!("{} choices; need at least 2", self.num_choices),
            });
        }
        match self.policy {
            UpdatePolicy::MajorityProxy { min_votes: 0 } => Err(ModelError::Empty {
                what: "majority-proxy vote quorum",
            }),
            UpdatePolicy::PeriodicDawidSkene { refit_every: 0 } => Err(ModelError::Empty {
                what: "Dawid–Skene refit interval",
            }),
            UpdatePolicy::PeriodicDawidSkene { .. } if self.num_choices != 2 => {
                Err(ModelError::InvalidConfusionMatrix {
                    reason: format!(
                        "the Dawid–Skene refit policy is binary-only, got {} choices",
                        self.num_choices
                    ),
                })
            }
            _ => Ok(()),
        }
    }
}

/// A point estimate of one worker's binary accuracy, with uncertainty.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QualityEstimate {
    /// Posterior mean accuracy `a / (a + b)`.
    pub mean: f64,
    /// Width of the central credible interval, `2·σ` of the Beta posterior:
    /// shrinks as `O(1/√observations)`, so callers can gate decisions on how
    /// settled an estimate is.
    pub credible_width: f64,
    /// Number of truth-scored answers folded in (pseudo-counts excluded).
    pub observations: u64,
}

/// Per-worker streaming state.
#[derive(Debug, Clone)]
struct WorkerState {
    cost: f64,
    /// Beta posterior pseudo-count of correct answers (prior included).
    correct: f64,
    /// Beta posterior pseudo-count of wrong answers (prior included).
    wrong: f64,
    /// Dirichlet confusion counts, row-major `ℓ × ℓ` (prior included).
    confusion: Vec<f64>,
    observations: u64,
    /// The registry epoch at which this worker's estimate last changed —
    /// lets drift scans skip selections none of whose members moved.
    last_update: u64,
}

/// Streaming per-worker quality state over a stream of [`AnswerEvent`]s.
///
/// See the [module docs](self) for the update policies. Snapshots
/// ([`WorkerRegistry::snapshot_pool`] / [`snapshot_matrix_pool`]) keep the
/// ids the answers were observed under, so selections made on one snapshot
/// can be re-scored or repaired against a later one.
///
/// [`snapshot_matrix_pool`]: WorkerRegistry::snapshot_matrix_pool
#[derive(Debug, Clone)]
pub struct WorkerRegistry {
    config: RegistryConfig,
    workers: BTreeMap<WorkerId, WorkerState>,
    /// Majority-proxy state: tasks whose truth is settled, and buffered
    /// votes for tasks still short of the quorum.
    resolved: BTreeMap<TaskId, Label>,
    pending: BTreeMap<TaskId, Vec<(WorkerId, Label)>>,
    /// Dawid–Skene state: the full binary vote log.
    vote_log: Vec<(TaskId, WorkerId, Answer)>,
    events_seen: u64,
    epoch: u64,
}

impl WorkerRegistry {
    /// Creates an empty registry, validating the configuration.
    pub fn new(config: RegistryConfig) -> ModelResult<Self> {
        config.validate()?;
        Ok(WorkerRegistry {
            config,
            workers: BTreeMap::new(),
            resolved: BTreeMap::new(),
            pending: BTreeMap::new(),
            vote_log: Vec::new(),
            events_seen: 0,
            epoch: 0,
        })
    }

    /// The configuration the registry was built with.
    pub fn config(&self) -> &RegistryConfig {
        &self.config
    }

    /// Registers a worker at the prior estimate. Errors on duplicate ids
    /// and invalid costs.
    pub fn register(&mut self, id: WorkerId, cost: f64) -> ModelResult<()> {
        self.register_with_quality(id, self.config.prior_correct_mean(), 0.0, cost)
    }

    /// Registers a worker with an initial quality estimate worth `strength`
    /// pseudo-observations — e.g. carried over from a batch estimator
    /// before the stream starts.
    pub fn register_with_quality(
        &mut self,
        id: WorkerId,
        quality: f64,
        strength: f64,
        cost: f64,
    ) -> ModelResult<()> {
        if !(0.0..=1.0).contains(&quality) || !quality.is_finite() {
            return Err(ModelError::InvalidQuality { value: quality });
        }
        if !strength.is_finite() || strength < 0.0 {
            return Err(ModelError::InvalidQuality { value: strength });
        }
        if !cost.is_finite() || cost < 0.0 {
            return Err(ModelError::InvalidCost { value: cost });
        }
        if self.workers.contains_key(&id) {
            return Err(ModelError::DuplicateWorker { id: id.raw() });
        }
        let choices = self.config.num_choices;
        // Seed the confusion counts with the symmetric matrix the quality
        // induces, spread evenly over rows, on top of the Dirichlet prior.
        let mut confusion = vec![self.config.dirichlet_prior; choices * choices];
        if strength > 0.0 {
            let seed = ConfusionMatrix::from_quality(quality, choices)?;
            let per_row = strength / choices as f64;
            for (j, cell) in confusion.iter_mut().enumerate() {
                let (truth, vote) = (j / choices, j % choices);
                *cell += per_row * seed.prob(Label(truth), Label(vote));
            }
        }
        self.epoch += 1;
        self.workers.insert(
            id,
            WorkerState {
                cost,
                correct: self.config.prior_correct + quality * strength,
                wrong: self.config.prior_wrong + (1.0 - quality) * strength,
                confusion,
                observations: 0,
                last_update: self.epoch,
            },
        );
        Ok(())
    }

    /// Whether a worker is registered.
    pub fn is_registered(&self, id: WorkerId) -> bool {
        self.workers.contains_key(&id)
    }

    /// The registered worker ids, ascending.
    pub fn ids(&self) -> Vec<WorkerId> {
        self.workers.keys().copied().collect()
    }

    /// Number of registered workers.
    pub fn len(&self) -> usize {
        self.workers.len()
    }

    /// Whether no workers are registered.
    pub fn is_empty(&self) -> bool {
        self.workers.is_empty()
    }

    /// Total number of events observed (including ones the policy ignored).
    pub fn events_seen(&self) -> u64 {
        self.events_seen
    }

    /// Monotone counter bumped on every estimate change — snapshot this
    /// alongside a selection so a drift scan can tell which estimates the
    /// selection was scored against.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Folds one answer event into the registry under the configured
    /// update policy. Errors when the worker is unregistered or the vote /
    /// truth labels are out of range for `num_choices`.
    pub fn observe(&mut self, event: AnswerEvent) -> ModelResult<()> {
        if !self.workers.contains_key(&event.worker) {
            return Err(ModelError::UnknownWorker {
                id: event.worker.raw(),
            });
        }
        event.vote.validate(self.config.num_choices)?;
        if let Some(truth) = event.truth {
            truth.validate(self.config.num_choices)?;
        }
        self.events_seen += 1;

        match self.config.policy {
            UpdatePolicy::GoldenTruth => {
                if let Some(truth) = event.truth {
                    self.score(event.worker, event.vote, truth);
                }
            }
            UpdatePolicy::MajorityProxy { min_votes } => {
                self.observe_majority(event, min_votes);
            }
            UpdatePolicy::PeriodicDawidSkene { refit_every } => {
                // Binary-only (enforced at construction): log the vote for
                // the next refit; golden events also score immediately.
                let answer = event.vote.to_answer()?;
                self.vote_log.push((event.task, event.worker, answer));
                if let Some(truth) = event.truth {
                    self.score(event.worker, event.vote, truth);
                }
                if self.events_seen.is_multiple_of(refit_every) {
                    self.refit_dawid_skene()?;
                }
            }
        }
        Ok(())
    }

    fn observe_majority(&mut self, event: AnswerEvent, min_votes: usize) {
        if let Some(truth) = event.truth {
            // Golden: settle the task, flush anything buffered on it.
            self.resolved.insert(event.task, truth);
            if let Some(buffered) = self.pending.remove(&event.task) {
                for (worker, vote) in buffered {
                    self.score(worker, vote, truth);
                }
            }
            self.score(event.worker, event.vote, truth);
            return;
        }
        if let Some(&truth) = self.resolved.get(&event.task) {
            self.score(event.worker, event.vote, truth);
            return;
        }
        let buffered = self.pending.entry(event.task).or_default();
        buffered.push((event.worker, event.vote));
        if buffered.len() < min_votes {
            return;
        }
        // Majority over the buffer; a tie keeps buffering (the proxy truth
        // is not trustworthy yet).
        let mut tallies = vec![0usize; self.config.num_choices];
        for &(_, vote) in buffered.iter() {
            tallies[vote.index()] += 1;
        }
        let top = *tallies.iter().max().expect("num_choices >= 2");
        if tallies.iter().filter(|&&t| t == top).count() != 1 {
            return;
        }
        let majority = Label(tallies.iter().position(|&t| t == top).expect("max exists"));
        let buffered = self.pending.remove(&event.task).expect("buffered above");
        self.resolved.insert(event.task, majority);
        for (worker, vote) in buffered {
            self.score(worker, vote, majority);
        }
    }

    /// Scores one vote against a truth label: a Beta observation plus a
    /// Dirichlet count.
    fn score(&mut self, worker: WorkerId, vote: Label, truth: Label) {
        let choices = self.config.num_choices;
        let state = self.workers.get_mut(&worker).expect("checked by observe");
        if vote == truth {
            state.correct += 1.0;
        } else {
            state.wrong += 1.0;
        }
        state.confusion[truth.index() * choices + vote.index()] += 1.0;
        state.observations += 1;
        self.epoch += 1;
        state.last_update = self.epoch;
    }

    /// Refits the vote log with the Dawid–Skene EM and re-anchors every
    /// logged worker's Beta posterior at the EM estimate, weighted by how
    /// many answers the worker has in the log.
    fn refit_dawid_skene(&mut self) -> ModelResult<()> {
        if self.vote_log.is_empty() {
            return Ok(());
        }
        let votes: Vec<(TaskId, WorkerId, Answer)> = self
            .vote_log
            .iter()
            .filter(|(_, worker, _)| self.workers.contains_key(worker))
            .copied()
            .collect();
        let dataset = dataset_from_votes(&votes, Prior::uniform())?;
        let fit = dawid_skene::fit(&dataset, DawidSkeneConfig::default());
        let mut answered: BTreeMap<WorkerId, u64> = BTreeMap::new();
        for &(_, worker, _) in &votes {
            *answered.entry(worker).or_insert(0) += 1;
        }
        self.epoch += 1;
        for (worker, quality) in fit.qualities {
            let Some(state) = self.workers.get_mut(&worker) else {
                continue;
            };
            let n = answered.get(&worker).copied().unwrap_or(0);
            state.correct = self.config.prior_correct + quality * n as f64;
            state.wrong = self.config.prior_wrong + (1.0 - quality) * n as f64;
            state.observations = n;
            state.last_update = self.epoch;
        }
        Ok(())
    }

    /// The worker's current binary-accuracy estimate, or `None` when the
    /// worker is unregistered.
    pub fn estimate(&self, id: WorkerId) -> Option<QualityEstimate> {
        let state = self.workers.get(&id)?;
        let (a, b) = (state.correct, state.wrong);
        let total = a + b;
        let variance = a * b / (total * total * (total + 1.0));
        Some(QualityEstimate {
            mean: a / total,
            credible_width: 2.0 * variance.sqrt(),
            observations: state.observations,
        })
    }

    /// The worker's current confusion-matrix estimate (Dirichlet posterior
    /// means, row by row), or `None` when the worker is unregistered.
    pub fn confusion(&self, id: WorkerId) -> Option<ModelResult<ConfusionMatrix>> {
        let state = self.workers.get(&id)?;
        Some(ConfusionMatrix::from_counts(
            self.config.num_choices,
            &state.confusion,
        ))
    }

    /// The worker's registered cost.
    pub fn cost(&self, id: WorkerId) -> Option<f64> {
        self.workers.get(&id).map(|s| s.cost)
    }

    /// The registry epoch at which this worker's estimate last changed
    /// (its registration counts), or `None` when the worker is
    /// unregistered. A selection tracked at epoch `e` whose members all
    /// report `last_update_epoch ≤ e` would re-score to exactly its
    /// baseline — drift scans use this to skip the evaluation.
    pub fn last_update_epoch(&self, id: WorkerId) -> Option<u64> {
        self.workers.get(&id).map(|s| s.last_update)
    }

    /// Snapshots every registered worker's posterior-mean accuracy into a
    /// [`WorkerPool`] (the shape the binary solvers consume), keeping ids
    /// and costs.
    pub fn snapshot_pool(&self) -> ModelResult<WorkerPool> {
        let estimates: Vec<(WorkerId, f64, f64)> = self
            .workers
            .iter()
            .map(|(&id, state)| {
                let total = state.correct + state.wrong;
                (id, state.correct / total, state.cost)
            })
            .collect();
        WorkerPool::from_estimates(&estimates)
    }

    /// Snapshots every registered worker's confusion estimate into a
    /// [`MatrixPool`] (the shape the multi-class solvers consume) — this is
    /// how `MatrixPool` requests ride *estimated* confusion matrices.
    pub fn snapshot_matrix_pool(&self) -> ModelResult<MatrixPool> {
        let estimates = self
            .workers
            .iter()
            .map(|(&id, state)| {
                let confusion =
                    ConfusionMatrix::from_counts(self.config.num_choices, &state.confusion)?;
                Ok((id, confusion, state.cost))
            })
            .collect::<ModelResult<Vec<_>>>()?;
        MatrixPool::from_confusions(estimates)
    }
}

impl RegistryConfig {
    fn prior_correct_mean(&self) -> f64 {
        self.prior_correct / (self.prior_correct + self.prior_wrong)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry(policy: UpdatePolicy) -> WorkerRegistry {
        WorkerRegistry::new(RegistryConfig {
            policy,
            ..RegistryConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn config_validation_rejects_bad_knobs() {
        let bad_prior = RegistryConfig {
            prior_correct: 0.0,
            ..RegistryConfig::default()
        };
        assert!(WorkerRegistry::new(bad_prior).is_err());
        let bad_choices = RegistryConfig {
            num_choices: 1,
            ..RegistryConfig::default()
        };
        assert!(WorkerRegistry::new(bad_choices).is_err());
        let bad_quorum = RegistryConfig {
            policy: UpdatePolicy::MajorityProxy { min_votes: 0 },
            ..RegistryConfig::default()
        };
        assert!(WorkerRegistry::new(bad_quorum).is_err());
        let multiclass_ds = RegistryConfig {
            num_choices: 3,
            policy: UpdatePolicy::PeriodicDawidSkene { refit_every: 10 },
            ..RegistryConfig::default()
        };
        assert!(WorkerRegistry::new(multiclass_ds).is_err());
    }

    #[test]
    fn registration_and_estimates() {
        let mut reg = registry(UpdatePolicy::GoldenTruth);
        reg.register(WorkerId(0), 1.0).unwrap();
        assert!(reg.is_registered(WorkerId(0)));
        assert!(reg.register(WorkerId(0), 1.0).is_err());
        assert!(reg
            .register_with_quality(WorkerId(1), 1.5, 10.0, 1.0)
            .is_err());
        assert!(reg
            .register_with_quality(WorkerId(1), 0.8, -1.0, 1.0)
            .is_err());
        assert!(reg
            .register_with_quality(WorkerId(1), 0.8, 10.0, -1.0)
            .is_err());
        reg.register_with_quality(WorkerId(1), 0.8, 20.0, 2.0)
            .unwrap();

        // Uniform prior: a fresh worker sits at 0.5 with wide credibility.
        let fresh = reg.estimate(WorkerId(0)).unwrap();
        assert!((fresh.mean - 0.5).abs() < 1e-12);
        assert_eq!(fresh.observations, 0);
        // A warm-started worker sits near the seeded quality, tighter.
        let warm = reg.estimate(WorkerId(1)).unwrap();
        assert!((warm.mean - (1.0 + 0.8 * 20.0) / 22.0).abs() < 1e-12);
        assert!(warm.credible_width < fresh.credible_width);
        assert!(reg.estimate(WorkerId(9)).is_none());
        assert_eq!(reg.cost(WorkerId(1)), Some(2.0));
    }

    #[test]
    fn golden_truth_updates_only_on_golden_events() {
        let mut reg = registry(UpdatePolicy::GoldenTruth);
        reg.register(WorkerId(0), 1.0).unwrap();
        let epoch_before = reg.epoch();
        reg.observe(AnswerEvent::binary(WorkerId(0), TaskId(0), Answer::Yes))
            .unwrap();
        assert_eq!(reg.epoch(), epoch_before, "non-golden must be ignored");
        for t in 0..10 {
            reg.observe(AnswerEvent::golden(
                WorkerId(0),
                TaskId(t),
                Answer::Yes,
                Answer::Yes,
            ))
            .unwrap();
        }
        let est = reg.estimate(WorkerId(0)).unwrap();
        assert_eq!(est.observations, 10);
        assert!((est.mean - 11.0 / 12.0).abs() < 1e-12);
        assert_eq!(reg.events_seen(), 11);
        assert!(reg.epoch() > epoch_before);
    }

    #[test]
    fn observe_validates_worker_and_labels() {
        let mut reg = registry(UpdatePolicy::GoldenTruth);
        reg.register(WorkerId(0), 1.0).unwrap();
        let unknown = AnswerEvent::binary(WorkerId(5), TaskId(0), Answer::Yes);
        assert!(matches!(
            reg.observe(unknown),
            Err(ModelError::UnknownWorker { id: 5 })
        ));
        let bad_vote = AnswerEvent::multiclass(WorkerId(0), TaskId(0), Label(2), None);
        assert!(reg.observe(bad_vote).is_err());
        let bad_truth = AnswerEvent::multiclass(WorkerId(0), TaskId(0), Label(0), Some(Label(7)));
        assert!(reg.observe(bad_truth).is_err());
    }

    #[test]
    fn majority_proxy_resolves_at_quorum_and_scores_the_buffer() {
        let mut reg = registry(UpdatePolicy::MajorityProxy { min_votes: 3 });
        for w in 0..4 {
            reg.register(WorkerId(w), 1.0).unwrap();
        }
        // Two votes: below quorum, nothing scored.
        reg.observe(AnswerEvent::binary(WorkerId(0), TaskId(0), Answer::Yes))
            .unwrap();
        reg.observe(AnswerEvent::binary(WorkerId(1), TaskId(0), Answer::Yes))
            .unwrap();
        assert_eq!(reg.estimate(WorkerId(0)).unwrap().observations, 0);
        // Third vote resolves the majority (yes) and scores all three.
        reg.observe(AnswerEvent::binary(WorkerId(2), TaskId(0), Answer::No))
            .unwrap();
        assert_eq!(reg.estimate(WorkerId(0)).unwrap().observations, 1);
        assert_eq!(reg.estimate(WorkerId(2)).unwrap().observations, 1);
        assert!(reg.estimate(WorkerId(0)).unwrap().mean > 0.5);
        assert!(reg.estimate(WorkerId(2)).unwrap().mean < 0.5);
        // A late vote on the resolved task scores immediately.
        reg.observe(AnswerEvent::binary(WorkerId(3), TaskId(0), Answer::Yes))
            .unwrap();
        assert_eq!(reg.estimate(WorkerId(3)).unwrap().observations, 1);
    }

    #[test]
    fn majority_proxy_ties_wait_and_goldens_resolve_immediately() {
        let mut reg = registry(UpdatePolicy::MajorityProxy { min_votes: 2 });
        for w in 0..3 {
            reg.register(WorkerId(w), 1.0).unwrap();
        }
        reg.observe(AnswerEvent::binary(WorkerId(0), TaskId(0), Answer::Yes))
            .unwrap();
        reg.observe(AnswerEvent::binary(WorkerId(1), TaskId(0), Answer::No))
            .unwrap();
        // 1–1 tie at quorum: still unresolved.
        assert_eq!(reg.estimate(WorkerId(0)).unwrap().observations, 0);
        // A golden event settles the task and flushes the buffer.
        reg.observe(AnswerEvent::golden(
            WorkerId(2),
            TaskId(0),
            Answer::Yes,
            Answer::Yes,
        ))
        .unwrap();
        assert_eq!(reg.estimate(WorkerId(0)).unwrap().observations, 1);
        assert_eq!(reg.estimate(WorkerId(1)).unwrap().observations, 1);
        assert!(reg.estimate(WorkerId(1)).unwrap().mean < 0.5);
    }

    #[test]
    fn dawid_skene_refit_reanchors_the_posteriors() {
        let mut reg = registry(UpdatePolicy::PeriodicDawidSkene { refit_every: 40 });
        for w in 0..4 {
            reg.register(WorkerId(w), 1.0).unwrap();
        }
        // Workers 0–2 agree on every task; worker 3 always dissents. The EM
        // should push the dissenter well below the consensus workers.
        let mut events = 0u64;
        for t in 0..10 {
            let truth = if t % 2 == 0 { Answer::Yes } else { Answer::No };
            for w in 0..3 {
                reg.observe(AnswerEvent::binary(WorkerId(w), TaskId(t), truth))
                    .unwrap();
                events += 1;
            }
            reg.observe(AnswerEvent::binary(WorkerId(3), TaskId(t), truth.flip()))
                .unwrap();
            events += 1;
        }
        assert_eq!(events, 40, "test must land exactly on the refit boundary");
        let consensus = reg.estimate(WorkerId(0)).unwrap();
        let dissenter = reg.estimate(WorkerId(3)).unwrap();
        assert!(
            consensus.mean > 0.8,
            "consensus worker at {}",
            consensus.mean
        );
        assert!(dissenter.mean < 0.3, "dissenter at {}", dissenter.mean);
        assert_eq!(consensus.observations, 10);
    }

    #[test]
    fn per_worker_epochs_track_only_their_own_updates() {
        let mut reg = registry(UpdatePolicy::GoldenTruth);
        reg.register(WorkerId(0), 1.0).unwrap();
        reg.register(WorkerId(1), 1.0).unwrap();
        let w0_registered = reg.last_update_epoch(WorkerId(0)).unwrap();
        let w1_registered = reg.last_update_epoch(WorkerId(1)).unwrap();
        assert!(w1_registered > w0_registered, "registration counts");
        assert!(reg.last_update_epoch(WorkerId(9)).is_none());

        // Scoring worker 1 moves only worker 1's epoch.
        reg.observe(AnswerEvent::golden(
            WorkerId(1),
            TaskId(0),
            Answer::Yes,
            Answer::Yes,
        ))
        .unwrap();
        assert_eq!(reg.last_update_epoch(WorkerId(0)), Some(w0_registered));
        assert_eq!(reg.last_update_epoch(WorkerId(1)), Some(reg.epoch()));
        assert!(reg.last_update_epoch(WorkerId(1)).unwrap() > w1_registered);
    }

    #[test]
    fn snapshots_keep_ids_and_costs() {
        let mut reg = registry(UpdatePolicy::GoldenTruth);
        reg.register_with_quality(WorkerId(4), 0.9, 50.0, 3.0)
            .unwrap();
        reg.register_with_quality(WorkerId(9), 0.6, 50.0, 1.0)
            .unwrap();
        let pool = reg.snapshot_pool().unwrap();
        assert_eq!(pool.ids(), vec![WorkerId(4), WorkerId(9)]);
        let strong = pool.get(WorkerId(4)).unwrap();
        assert!((strong.cost() - 3.0).abs() < 1e-12);
        assert!(strong.quality() > 0.85);

        let matrices = reg.snapshot_matrix_pool().unwrap();
        assert_eq!(matrices.len(), 2);
        let m = reg.confusion(WorkerId(4)).unwrap().unwrap();
        assert!(m.mean_accuracy() > 0.8);
        assert!(reg.confusion(WorkerId(0)).is_none());
    }

    #[test]
    fn multiclass_confusion_rows_track_golden_truth() {
        let mut reg = WorkerRegistry::new(RegistryConfig {
            num_choices: 3,
            ..RegistryConfig::default()
        })
        .unwrap();
        reg.register(WorkerId(0), 1.0).unwrap();
        // The worker confuses truth 1 with vote 2, and is right on truth 0.
        for t in 0..30 {
            let (truth, vote) = if t % 2 == 0 {
                (Label(0), Label(0))
            } else {
                (Label(1), Label(2))
            };
            reg.observe(AnswerEvent::multiclass(
                WorkerId(0),
                TaskId(t),
                vote,
                Some(truth),
            ))
            .unwrap();
        }
        let m = reg.confusion(WorkerId(0)).unwrap().unwrap();
        assert!(m.prob(Label(0), Label(0)) > 0.8);
        assert!(m.prob(Label(1), Label(2)) > 0.8);
        // Truth 2 was never observed: the prior keeps the row uniform.
        assert!((m.prob(Label(2), Label(2)) - 1.0 / 3.0).abs() < 1e-12);
    }
}
