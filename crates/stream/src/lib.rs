//! # jury-stream
//!
//! Streaming worker-quality state for the online jury-serving loop.
//!
//! The paper's pipeline (*"On Optimality of Jury Selection in
//! Crowdsourcing"*, EDBT 2015) is one-shot: estimate worker qualities,
//! solve the Jury Selection Problem once, hand out the jury. A long-running
//! service cannot stop there — answers keep streaming in, the estimates
//! keep moving, and a jury that was optimal at selection time can silently
//! go stale. This crate supplies the two stateful pieces that close the
//! loop (the related literature motivates both: posterior-style online
//! quality tracking follows the *bandit survey* line of work, and the
//! refit policy grounds in Dawid & Skene's EM):
//!
//! * [`WorkerRegistry`] — per-worker streaming quality state: a Beta
//!   posterior over binary accuracy and Dirichlet-counted confusion rows
//!   for multi-class, folded forward one [`AnswerEvent`] at a time under a
//!   configurable notion of truth ([`UpdatePolicy`]: golden questions,
//!   majority-vote proxy, or periodic Dawid–Skene refits via `jury-sim`).
//!   Snapshots ([`WorkerRegistry::snapshot_pool`] /
//!   [`WorkerRegistry::snapshot_matrix_pool`]) produce the pool shapes the
//!   solvers consume, keeping worker ids stable across snapshots.
//! * [`DriftDetector`] — a ledger of handed-out selections that re-scores
//!   each against fresh estimates through a caller-supplied scorer and
//!   flags the ones whose quality moved past a threshold
//!   ([`DriftStatus::Drifted`]) or that can no longer be scored at all
//!   ([`DriftStatus::Stale`]).
//!
//! The repair step that acts on flagged juries lives upstream:
//! `jury-selection::repair_jury` performs the swap search and
//! `jury-service` wires registry, detector, cache, and solvers into
//! `repair` / `repair_batch` endpoints.
//!
//! ```
//! use jury_model::{Answer, TaskId, WorkerId};
//! use jury_stream::{AnswerEvent, RegistryConfig, WorkerRegistry};
//!
//! let mut registry = WorkerRegistry::new(RegistryConfig::default()).unwrap();
//! registry.register(WorkerId(0), 1.0).unwrap();
//! // Ten golden questions, all answered correctly.
//! for t in 0..10u64 {
//!     let event = AnswerEvent::golden(WorkerId(0), TaskId(t), Answer::Yes, Answer::Yes);
//!     registry.observe(event).unwrap();
//! }
//! let estimate = registry.estimate(WorkerId(0)).unwrap();
//! assert!(estimate.mean > 0.9);
//! let pool = registry.snapshot_pool().unwrap(); // ready for the solvers
//! assert_eq!(pool.ids(), vec![WorkerId(0)]);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod drift;
pub mod event;
pub mod registry;

pub use drift::{DriftDetector, DriftReport, DriftStatus, SelectionId, TrackedSelection};
pub use event::AnswerEvent;
pub use registry::{QualityEstimate, RegistryConfig, UpdatePolicy, WorkerRegistry};
