//! Drift detection over tracked selections.
//!
//! Handing out a jury is not the end of the story: the worker estimates the
//! jury was scored against keep moving as answers stream into the
//! [`WorkerRegistry`](crate::WorkerRegistry). The [`DriftDetector`] keeps a
//! ledger of handed-out selections (members, budget, prior, and the quality
//! they were promised at) and, on demand, re-scores each one against fresh
//! estimates through a caller-supplied scorer — in `jury-service` that
//! scorer is the signature-keyed JQ cache, so a scan of many juries over
//! one snapshot shares evaluations. A selection whose fresh quality moved
//! past the configured threshold is flagged for repair.

use std::collections::BTreeMap;

use jury_model::{Prior, WorkerId};

/// Identifier of a tracked selection, unique within one [`DriftDetector`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SelectionId(pub u64);

impl SelectionId {
    /// The raw id.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for SelectionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "selection#{}", self.0)
    }
}

/// A handed-out jury the detector watches.
#[derive(Debug, Clone, PartialEq)]
pub struct TrackedSelection {
    members: Vec<WorkerId>,
    budget: f64,
    prior: Prior,
    baseline_quality: f64,
    epoch: u64,
}

impl TrackedSelection {
    /// The jury's member ids.
    pub fn members(&self) -> &[WorkerId] {
        &self.members
    }

    /// The budget the jury was selected under (repairs stay within it).
    pub fn budget(&self) -> f64 {
        self.budget
    }

    /// The task prior the jury was scored against.
    pub fn prior(&self) -> Prior {
        self.prior
    }

    /// The quality the jury was promised when handed out (or last
    /// re-baselined at).
    pub fn baseline_quality(&self) -> f64 {
        self.baseline_quality
    }

    /// The registry epoch of the estimates behind `baseline_quality`.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

/// How a tracked selection scored against fresh estimates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriftStatus {
    /// Fresh quality within the threshold of the baseline.
    Steady,
    /// Fresh quality moved past the threshold — repair candidate.
    Drifted,
    /// The selection could not be re-scored (e.g. a member disappeared
    /// from the fresh snapshot).
    Stale,
}

/// One row of a drift scan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftReport {
    /// The tracked selection.
    pub id: SelectionId,
    /// The quality the selection was promised at.
    pub baseline: f64,
    /// The quality under fresh estimates, or `None` when un-scorable.
    pub fresh: Option<f64>,
    /// Signed drift `fresh − baseline` (`0` when un-scorable).
    pub drift: f64,
    /// The verdict against the detector's threshold.
    pub status: DriftStatus,
}

impl DriftReport {
    /// Whether the selection needs attention (drifted or stale).
    pub fn needs_attention(&self) -> bool {
        !matches!(self.status, DriftStatus::Steady)
    }
}

/// Ledger of handed-out selections plus the drift threshold that decides
/// when one is flagged. Scoring is delegated to the caller (see
/// [`DriftDetector::scan_with`]) so the detector stays agnostic of JQ
/// engines and caches.
#[derive(Debug, Clone)]
pub struct DriftDetector {
    threshold: f64,
    capacity: Option<usize>,
    next_id: u64,
    tracked: BTreeMap<SelectionId, TrackedSelection>,
}

impl DriftDetector {
    /// Creates a detector flagging selections whose fresh quality moved
    /// more than `threshold` (absolute JQ) from the baseline. Non-finite or
    /// negative thresholds are clamped to `0`, which flags any movement
    /// beyond floating-point noise.
    pub fn new(threshold: f64) -> Self {
        DriftDetector {
            threshold: if threshold.is_finite() && threshold >= 0.0 {
                threshold
            } else {
                0.0
            },
            capacity: None,
            next_id: 0,
            tracked: BTreeMap::new(),
        }
    }

    /// Caps the ledger at `capacity` selections (clamped to at least one):
    /// tracking a new selection past the cap evicts the **oldest** tracked
    /// entry, so a long-running serving loop that forgets to
    /// [`untrack`](Self::untrack) cannot grow the ledger — and every scan
    /// over it — without bound.
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.capacity = Some(capacity.max(1));
        self
    }

    /// The ledger capacity, or `None` when unbounded (the default).
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// The drift threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Starts watching a handed-out jury, returning its ledger id. At
    /// capacity (see [`Self::with_capacity`]) the oldest tracked selection
    /// is evicted first.
    pub fn track(
        &mut self,
        members: Vec<WorkerId>,
        budget: f64,
        prior: Prior,
        baseline_quality: f64,
        epoch: u64,
    ) -> SelectionId {
        if let Some(capacity) = self.capacity {
            while self.tracked.len() >= capacity {
                let oldest = *self.tracked.keys().next().expect("len >= capacity >= 1");
                self.tracked.remove(&oldest);
            }
        }
        let id = SelectionId(self.next_id);
        self.next_id += 1;
        self.tracked.insert(
            id,
            TrackedSelection {
                members,
                budget,
                prior,
                baseline_quality,
                epoch,
            },
        );
        id
    }

    /// Looks up a tracked selection.
    pub fn get(&self, id: SelectionId) -> Option<&TrackedSelection> {
        self.tracked.get(&id)
    }

    /// Stops watching a selection, returning its final ledger entry.
    pub fn untrack(&mut self, id: SelectionId) -> Option<TrackedSelection> {
        self.tracked.remove(&id)
    }

    /// Iterates the ledger in id order.
    pub fn iter(&self) -> impl Iterator<Item = (SelectionId, &TrackedSelection)> {
        self.tracked.iter().map(|(&id, sel)| (id, sel))
    }

    /// Number of tracked selections.
    pub fn len(&self) -> usize {
        self.tracked.len()
    }

    /// Whether the ledger is empty.
    pub fn is_empty(&self) -> bool {
        self.tracked.is_empty()
    }

    /// Re-scores every tracked selection through `scorer` (fresh quality of
    /// the selection's members under its prior, or `None` when un-scorable)
    /// and reports each against the threshold, in id order. The detector
    /// itself is not mutated — committing a new baseline is a separate,
    /// deliberate step ([`DriftDetector::rebaseline`]) taken after a repair.
    pub fn scan_with<F>(&self, mut scorer: F) -> Vec<DriftReport>
    where
        F: FnMut(SelectionId, &TrackedSelection) -> Option<f64>,
    {
        self.tracked
            .iter()
            .map(|(&id, selection)| match scorer(id, selection) {
                Some(fresh) => {
                    let drift = fresh - selection.baseline_quality;
                    DriftReport {
                        id,
                        baseline: selection.baseline_quality,
                        fresh: Some(fresh),
                        drift,
                        status: if drift.abs() > self.threshold {
                            DriftStatus::Drifted
                        } else {
                            DriftStatus::Steady
                        },
                    }
                }
                None => DriftReport {
                    id,
                    baseline: selection.baseline_quality,
                    fresh: None,
                    drift: 0.0,
                    status: DriftStatus::Stale,
                },
            })
            .collect()
    }

    /// Commits a repaired (or re-validated) selection back to the ledger:
    /// new members, the quality they score under the estimates of `epoch`,
    /// and that epoch as the new baseline. Returns `false` when the id is
    /// not tracked.
    pub fn rebaseline(
        &mut self,
        id: SelectionId,
        members: Vec<WorkerId>,
        quality: f64,
        epoch: u64,
    ) -> bool {
        match self.tracked.get_mut(&id) {
            Some(selection) => {
                selection.members = members;
                selection.baseline_quality = quality;
                selection.epoch = epoch;
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn track_pair(detector: &mut DriftDetector) -> (SelectionId, SelectionId) {
        let a = detector.track(
            vec![WorkerId(0), WorkerId(1)],
            5.0,
            Prior::uniform(),
            0.9,
            1,
        );
        let b = detector.track(vec![WorkerId(2)], 2.0, Prior::uniform(), 0.8, 1);
        (a, b)
    }

    #[test]
    fn ids_are_unique_and_lookups_work() {
        let mut detector = DriftDetector::new(0.05);
        let (a, b) = track_pair(&mut detector);
        assert_ne!(a, b);
        assert_eq!(detector.len(), 2);
        assert_eq!(
            detector.get(a).unwrap().members(),
            &[WorkerId(0), WorkerId(1)]
        );
        assert!((detector.get(b).unwrap().budget() - 2.0).abs() < 1e-12);
        assert!(detector.untrack(b).is_some());
        assert!(detector.untrack(b).is_none());
        assert_eq!(detector.len(), 1);
        assert_eq!(a.to_string(), "selection#0");
    }

    #[test]
    fn scan_classifies_steady_drifted_and_stale() {
        let mut detector = DriftDetector::new(0.05);
        let (a, b) = track_pair(&mut detector);
        let c = detector.track(vec![WorkerId(9)], 1.0, Prior::uniform(), 0.7, 1);
        let reports = detector.scan_with(|id, selection| {
            if id == a {
                Some(selection.baseline_quality() - 0.01) // within threshold
            } else if id == b {
                Some(selection.baseline_quality() - 0.2) // degraded
            } else {
                None // member vanished
            }
        });
        assert_eq!(reports.len(), 3);
        assert_eq!(reports[0].status, DriftStatus::Steady);
        assert!(!reports[0].needs_attention());
        assert_eq!(reports[1].status, DriftStatus::Drifted);
        assert!((reports[1].drift + 0.2).abs() < 1e-12);
        assert_eq!(reports[2].status, DriftStatus::Stale);
        assert_eq!(reports[2].id, c);
        assert!(reports[2].needs_attention());
    }

    #[test]
    fn improvement_drift_is_also_flagged() {
        let mut detector = DriftDetector::new(0.05);
        let id = detector.track(vec![WorkerId(0)], 1.0, Prior::uniform(), 0.7, 1);
        let reports = detector.scan_with(|_, _| Some(0.9));
        assert_eq!(reports[0].id, id);
        assert_eq!(reports[0].status, DriftStatus::Drifted);
        assert!(reports[0].drift > 0.0);
    }

    #[test]
    fn rebaseline_commits_new_members_and_quality() {
        let mut detector = DriftDetector::new(0.05);
        let (a, _) = track_pair(&mut detector);
        assert!(detector.rebaseline(a, vec![WorkerId(0), WorkerId(3)], 0.95, 7));
        let selection = detector.get(a).unwrap();
        assert_eq!(selection.members(), &[WorkerId(0), WorkerId(3)]);
        assert!((selection.baseline_quality() - 0.95).abs() < 1e-12);
        assert_eq!(selection.epoch(), 7);
        assert!(!detector.rebaseline(SelectionId(99), vec![], 0.5, 0));
    }

    #[test]
    fn capacity_evicts_the_oldest_selection() {
        let mut detector = DriftDetector::new(0.05).with_capacity(2);
        assert_eq!(detector.capacity(), Some(2));
        let (a, b) = track_pair(&mut detector);
        let c = detector.track(vec![WorkerId(5)], 1.0, Prior::uniform(), 0.6, 2);
        assert_eq!(detector.len(), 2);
        assert!(detector.get(a).is_none(), "oldest entry evicted");
        assert!(detector.get(b).is_some());
        assert!(detector.get(c).is_some());
        // Ids never recycle, even across evictions.
        let d = detector.track(vec![WorkerId(6)], 1.0, Prior::uniform(), 0.6, 2);
        assert!(d.raw() > c.raw());
        assert_eq!(detector.len(), 2);

        // A capacity of zero clamps to one instead of rejecting everything.
        let mut tiny = DriftDetector::new(0.05).with_capacity(0);
        assert_eq!(tiny.capacity(), Some(1));
        track_pair(&mut tiny);
        assert_eq!(tiny.len(), 1);
    }

    #[test]
    fn bad_thresholds_clamp_to_zero() {
        assert_eq!(DriftDetector::new(f64::NAN).threshold(), 0.0);
        assert_eq!(DriftDetector::new(-1.0).threshold(), 0.0);
        assert_eq!(DriftDetector::new(0.1).threshold(), 0.1);
    }
}
