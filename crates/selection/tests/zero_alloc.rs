//! Proves the scratch-arena claim of the kernel layer end to end: once an
//! objective's arena is warm, the incremental-session hot path (push, pop,
//! value) performs **zero** heap allocations, and reopening a session costs
//! at most the session box itself.
//!
//! The counting allocator lives here — not in `jury-jq`, which is
//! `#![forbid(unsafe_code)]` — and this file intentionally holds a single
//! `#[test]` so no concurrent test thread can pollute the counters.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use jury_jq::SharedJqScratch;
use jury_model::WorkerPool;
use jury_selection::{ArenaObjective, BvObjective, JspInstance, JuryObjective, MvObjective};

/// Forwards to the system allocator, counting every allocation entry point
/// (`alloc`, `alloc_zeroed`, `realloc`); frees are not counted.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// One full session lifecycle: open, push/pop the same worker sequence the
/// warm-up used (so no buffer ever needs to grow), read the value, drop
/// (which recycles the engine buffers into the objective's arena).
fn run_session_cycle(
    objective: &dyn JuryObjective,
    instance: &JspInstance,
    pool: &WorkerPool,
) -> f64 {
    let mut session = objective
        .incremental_session(instance)
        .expect("session must be available");
    let workers = pool.workers();
    for worker in &workers[..8] {
        session.push(worker);
    }
    let mut value = session.value();
    for worker in &workers[..8] {
        assert!(session.pop(worker));
    }
    for worker in &workers[4..12] {
        session.push(worker);
    }
    value += session.value();
    for worker in &workers[4..12] {
        assert!(session.pop(worker));
    }
    value
}

#[test]
fn warm_incremental_sessions_do_not_allocate() {
    let qualities: Vec<f64> = (0..20).map(|i| 0.55 + 0.02 * (i % 10) as f64).collect();
    let pool = WorkerPool::from_qualities_and_costs(&qualities, &[1.0; 20]).unwrap();
    // 20 candidates exceed the exact cutoff (14), so the BV objective opens
    // real incremental sessions.
    let instance = JspInstance::with_uniform_prior(pool.clone(), 8.0).unwrap();

    let bv = BvObjective::new();
    let mv = MvObjective::new();
    for (name, objective) in [
        ("JQ(BV)", &bv as &dyn JuryObjective),
        ("JQ(MV)", &mv as &dyn JuryObjective),
    ] {
        // Warm-up: the first cycle pays every allocation once and returns
        // the buffers to the objective's arena when the session drops.
        let warm = run_session_cycle(objective, &instance, &pool);

        let before = allocations();
        let hot = run_session_cycle(objective, &instance, &pool);
        let spent = allocations() - before;

        assert_eq!(
            warm, hot,
            "{name}: warm and hot cycles must compute identical values"
        );
        // The session itself is boxed (one allocation); everything the
        // engine touches — distributions, scratch buffers, member lists —
        // must come out of the warm arena.
        assert!(
            spent <= 1,
            "{name}: a warm session cycle performed {spent} allocations \
             (expected at most the session box)"
        );
    }

    // Parallel phase — the portfolio's lane setup. Each lane wraps the one
    // shared BV objective in an [`ArenaObjective`] over its **own** arena,
    // pays its warm-up once, and then a steady-state cycle running in every
    // lane *concurrently* costs at most the session box per lane: no lane
    // ever locks another lane's arena or the inner objective's shared
    // scratch from the hot loop.
    const LANES: usize = 4;
    let arenas: Vec<SharedJqScratch> = (0..LANES).map(|_| SharedJqScratch::new()).collect();
    let warmed = std::sync::Barrier::new(LANES + 1);
    let measured = std::sync::Barrier::new(LANES + 1);
    let mut spent_parallel = 0;
    std::thread::scope(|scope| {
        let handles: Vec<_> = arenas
            .iter()
            .map(|arena| {
                let (bv, instance, pool) = (&bv, &instance, &pool);
                let (warmed, measured) = (&warmed, &measured);
                scope.spawn(move || {
                    let lane = ArenaObjective::new(bv, arena);
                    let warm = run_session_cycle(&lane, instance, pool);
                    warmed.wait();
                    measured.wait();
                    let hot = run_session_cycle(&lane, instance, pool);
                    assert_eq!(
                        warm, hot,
                        "a lane's warm and hot cycles must compute identical values"
                    );
                })
            })
            .collect();
        warmed.wait();
        let before = allocations();
        measured.wait();
        for handle in handles {
            handle.join().unwrap();
        }
        spent_parallel = allocations() - before;
    });
    assert!(
        spent_parallel <= LANES as u64,
        "steady-state cycles across {LANES} lanes performed {spent_parallel} \
         allocations (expected at most one session box per lane)"
    );
}
