//! Tabu search over the JSP swap neighbourhood.
//!
//! Simulated annealing (Algorithm 3) escapes local optima by *sometimes*
//! accepting a worsening random swap; tabu search does it deterministically:
//! every iteration evaluates a whole neighbourhood — all affordable adds
//! plus all affordable swaps against one outgoing member — and moves to the
//! **best** neighbour even when that worsens the objective, while a
//! Taillard-style tenure list bars recently moved workers from moving again
//! for a fixed number of iterations so the walk cannot cycle back
//! immediately. An **aspiration** rule overrides the tenure: a tabu move
//! that would beat the best jury seen anywhere in the run is always allowed.
//!
//! Like the annealing solver, [`TabuSolver`] drives the objective's
//! incremental session when one is available (each probe is an in-place
//! push/value/pop costing `O(buckets)`), polls its [`SearchBudget`] at every
//! probe, re-scores the winning jury through the batch objective, and races
//! independent restarts from diversified starting juries. It plugs into the
//! same [`JurySolver`] surface as every other solver and is one of the
//! members a `SolverPolicy::Portfolio` can race.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use jury_model::{Jury, Worker};

use crate::annealing::{greedy_candidate_juries, SearchState};
use crate::budget::SearchBudget;
use crate::objective::{IncrementalSession, JuryObjective};
use crate::parallel::SharedBestBound;
use crate::problem::JspInstance;
use crate::solver::{JurySolver, SolverResult};

/// Configuration of the tabu search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TabuConfig {
    /// How many iterations a moved worker stays tabu — barred from entering
    /// or leaving the jury again (Taillard's fixed-tenure rule).
    pub tenure: usize,
    /// Move iterations per run; each evaluates up to `2n` neighbours.
    pub iterations: usize,
    /// Independent runs, each from a different starting jury (run 0 climbs
    /// from the greedy-quality fill, later runs from random fills); the
    /// best result is kept.
    pub restarts: usize,
    /// RNG seed (run `r` uses `seed + r`), so runs are reproducible.
    pub seed: u64,
    /// Whether the greedy top-quality and quality-per-cost fills also
    /// compete as candidate solutions.
    pub use_greedy_candidates: bool,
    /// Whether to probe neighbours through the objective's incremental
    /// session when it offers one.
    pub use_incremental: bool,
}

impl Default for TabuConfig {
    fn default() -> Self {
        TabuConfig {
            tenure: 7,
            iterations: 128,
            restarts: 2,
            seed: 0x7AB0,
            use_greedy_candidates: true,
            use_incremental: true,
        }
    }
}

impl TabuConfig {
    /// Sets the tenure (at least one iteration).
    pub fn with_tenure(mut self, tenure: usize) -> Self {
        self.tenure = tenure.max(1);
        self
    }

    /// Sets the number of move iterations per run.
    pub fn with_iterations(mut self, iterations: usize) -> Self {
        self.iterations = iterations;
        self
    }

    /// Sets the number of independent restarts (at least one).
    pub fn with_restarts(mut self, restarts: usize) -> Self {
        self.restarts = restarts.max(1);
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables or disables the greedy candidate juries.
    pub fn with_greedy_candidates(mut self, enabled: bool) -> Self {
        self.use_greedy_candidates = enabled;
        self
    }

    /// Enables or disables incremental-session probing.
    pub fn with_incremental(mut self, enabled: bool) -> Self {
        self.use_incremental = enabled;
        self
    }
}

/// A candidate move out of the current jury.
#[derive(Clone, Copy)]
enum Move {
    /// Add the unselected worker at this pool position.
    Add(usize),
    /// Swap the selected worker (first) for the unselected one (second).
    Swap(usize, usize),
}

/// The tabu-search JSP solver; see the module docs for the algorithm.
pub struct TabuSolver<O: JuryObjective> {
    objective: O,
    config: TabuConfig,
    budget: SearchBudget,
}

impl<O: JuryObjective> TabuSolver<O> {
    /// Creates a solver with the default configuration.
    pub fn new(objective: O) -> Self {
        TabuSolver {
            objective,
            config: TabuConfig::default(),
            budget: SearchBudget::unlimited(),
        }
    }

    /// Creates a solver with a custom configuration.
    pub fn with_config(objective: O, config: TabuConfig) -> Self {
        TabuSolver {
            objective,
            config,
            budget: SearchBudget::unlimited(),
        }
    }

    /// Bounds the search with a cooperative compute budget: every probe
    /// polls it, and an exhausted budget stops the run while keeping the
    /// best jury found so far ([`SolverResult::truncated`] anytime
    /// semantics).
    pub fn with_budget(mut self, budget: SearchBudget) -> Self {
        self.budget = budget;
        self
    }

    /// The tabu configuration.
    pub fn config(&self) -> &TabuConfig {
        &self.config
    }

    /// The underlying objective.
    pub fn objective(&self) -> &O {
        &self.objective
    }

    /// The starting jury of run `restart`: run 0 climbs from the greedy
    /// quality-ordered fill, later runs diversify from a random-order fill.
    fn start_order(&self, instance: &JspInstance, restart: usize, rng: &mut StdRng) -> Vec<usize> {
        let n = instance.num_candidates();
        let workers = instance.pool().workers();
        let mut order: Vec<usize> = (0..n).collect();
        if restart == 0 {
            order.sort_by(|&a, &b| {
                workers[b]
                    .effective_quality()
                    .partial_cmp(&workers[a].effective_quality())
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| workers[a].id().cmp(&workers[b].id()))
            });
        } else {
            // Fisher–Yates off the run's own RNG stream.
            for i in (1..n).rev() {
                let j = rng.gen_range(0..=i);
                order.swap(i, j);
            }
        }
        order
    }

    /// One tabu run. Returns the best jury of the run, its **batch**
    /// objective value, and whether the budget cut the run short.
    ///
    /// Crate-visible so the portfolio solver can race tabu one restart at a
    /// time with exactly the per-restart behaviour of a standalone
    /// [`TabuSolver::solve`] call.
    pub(crate) fn run_once(&self, instance: &JspInstance, restart: usize) -> (Jury, f64, bool) {
        self.run_once_shared(instance, restart, None)
    }

    /// [`run_once`](Self::run_once) with an optional cross-lane best bound.
    ///
    /// When a bound is supplied (only by the threaded portfolio under a
    /// limited budget), the aspiration floor is raised to the best value
    /// published by **any** lane — a tabu move must beat the global race
    /// leader, not just this run, to override its tenure — and the run's
    /// final batch score is published back. With `bound = None` the run is
    /// bit-identical to the pre-parallel solver (no atomic reads).
    pub(crate) fn run_once_shared(
        &self,
        instance: &JspInstance,
        restart: usize,
        bound: Option<&SharedBestBound>,
    ) -> (Jury, f64, bool) {
        let n = instance.num_candidates();
        let workers = instance.pool().workers();
        let mut rng = StdRng::seed_from_u64(self.config.seed.wrapping_add(restart as u64));
        let mut state = SearchState::new(n);
        let mut session: Option<Box<dyn IncrementalSession + '_>> = if self.config.use_incremental {
            self.objective.incremental_session(instance)
        } else {
            None
        };

        for index in self.start_order(instance, restart, &mut rng) {
            if !state.selected[index]
                && state.spent + workers[index].cost() <= instance.budget() + 1e-12
            {
                state.add(index, &workers[index]);
                if let Some(live) = &mut session {
                    live.push(&workers[index]);
                }
            }
        }

        let mut current = match &session {
            Some(live) => live.value(),
            None => self.objective.evaluate(&state.jury(), instance.prior()),
        };
        let mut best_jury = state.jury();
        let mut best_value = current;
        // `tabu_until[i] > iter` bars worker `i` from entering or leaving.
        let mut tabu_until = vec![0usize; n];
        let mut truncated = false;

        'iterations: for iter in 1..=self.config.iterations {
            if n == 0 {
                break;
            }
            // One outgoing member per iteration bounds the neighbourhood to
            // O(n) probes; the random rotation covers all members over the
            // run.
            let selected = state.selected_indices();
            let out_index = if selected.is_empty() {
                None
            } else {
                Some(selected[rng.gen_range(0..selected.len())])
            };

            // With a cross-lane bound, aspiration must clear the whole
            // race's best, not just this run's (one relaxed read per
            // iteration; `None` in sequential mode keeps replay exact).
            let aspiration_floor = match bound {
                Some(shared) => best_value.max(shared.current()),
                None => best_value,
            };

            let mut best_move: Option<(Move, f64)> = None;
            let mut consider = |mv: Move, value: f64, is_tabu: bool, best_value: f64| {
                // Aspiration: a tabu move good enough to set a new global
                // best is always admissible.
                if is_tabu && value <= best_value + 1e-12 {
                    return;
                }
                if best_move.is_none_or(|(_, best)| value > best) {
                    best_move = Some((mv, value));
                }
            };

            // Adds: every affordable unselected worker.
            for in_index in 0..n {
                if state.selected[in_index]
                    || state.spent + workers[in_index].cost() > instance.budget() + 1e-12
                {
                    continue;
                }
                // Cooperative checkpoint between probes; the session is
                // balanced here, so stopping keeps it consistent.
                if self.budget.exhausted(self.objective.evaluations()) {
                    truncated = true;
                    break 'iterations;
                }
                let worker = &workers[in_index];
                let value = match &mut session {
                    Some(live) => {
                        live.push(worker);
                        let value = live.value();
                        live.pop(worker);
                        value
                    }
                    None => self
                        .objective
                        .evaluate(&state.jury().with_worker(worker.clone()), instance.prior()),
                };
                consider(
                    Move::Add(in_index),
                    value,
                    tabu_until[in_index] > iter,
                    aspiration_floor,
                );
            }

            // Swaps: every affordable replacement for the outgoing member.
            if let Some(out_index) = out_index {
                let out_worker = &workers[out_index];
                let mut out_popped = false;
                if let Some(live) = &mut session {
                    out_popped = live.pop(out_worker);
                    if !out_popped {
                        // The session lost track of the jury (cannot happen
                        // with the engines shipped here): abandon it and
                        // probe by batch evaluation for the rest of the run.
                        session = None;
                    }
                }
                for in_index in 0..n {
                    if state.selected[in_index]
                        || in_index == out_index
                        || state.spent - out_worker.cost() + workers[in_index].cost()
                            > instance.budget() + 1e-12
                    {
                        continue;
                    }
                    if self.budget.exhausted(self.objective.evaluations()) {
                        truncated = true;
                        if out_popped {
                            if let Some(live) = &mut session {
                                live.push(out_worker);
                            }
                        }
                        break 'iterations;
                    }
                    let in_worker = &workers[in_index];
                    let value = match &mut session {
                        Some(live) => {
                            live.push(in_worker);
                            let value = live.value();
                            live.pop(in_worker);
                            value
                        }
                        None => {
                            let mut members: Vec<Worker> = state
                                .jury_members
                                .iter()
                                .filter(|w| w.id() != out_worker.id())
                                .cloned()
                                .collect();
                            members.push(in_worker.clone());
                            self.objective
                                .evaluate(&Jury::new(members), instance.prior())
                        }
                    };
                    consider(
                        Move::Swap(out_index, in_index),
                        value,
                        tabu_until[out_index] > iter || tabu_until[in_index] > iter,
                        aspiration_floor,
                    );
                }
                if out_popped {
                    if let Some(live) = &mut session {
                        live.push(out_worker);
                    }
                }
            }

            // Move to the best admissible neighbour — even a worsening one;
            // the tenure list is what keeps the walk from cycling back.
            let Some((mv, value)) = best_move else {
                break;
            };
            match mv {
                Move::Add(in_index) => {
                    state.add(in_index, &workers[in_index]);
                    if let Some(live) = &mut session {
                        live.push(&workers[in_index]);
                    }
                    tabu_until[in_index] = iter + self.config.tenure;
                }
                Move::Swap(out_index, in_index) => {
                    let out_worker = workers[out_index].clone();
                    state.swap(out_index, &out_worker, in_index, &workers[in_index]);
                    if let Some(live) = &mut session {
                        live.pop(&out_worker);
                        live.push(&workers[in_index]);
                    }
                    tabu_until[out_index] = iter + self.config.tenure;
                    tabu_until[in_index] = iter + self.config.tenure;
                }
            }
            current = value;
            if current > best_value {
                best_value = current;
                best_jury = state.jury();
            }
        }

        // Session values are quantized search guidance; report the batch
        // objective's score of the run's best jury.
        let value = self.objective.evaluate(&best_jury, instance.prior());
        if let Some(shared) = bound {
            shared.observe(value);
        }
        (best_jury, value, truncated)
    }
}

impl<O: JuryObjective> JurySolver for TabuSolver<O> {
    fn name(&self) -> &'static str {
        "tabu"
    }

    fn solve(&self, instance: &JspInstance) -> SolverResult {
        let start = Instant::now();
        let evaluations_before = self.objective.evaluations();

        let mut best_jury = Jury::empty();
        let mut best_value = self.objective.evaluate(&best_jury, instance.prior());
        let mut truncated = false;

        for restart in 0..self.config.restarts.max(1) {
            if self.budget.exhausted(self.objective.evaluations()) {
                truncated = true;
                break;
            }
            let (jury, value, cut) = self.run_once(instance, restart);
            truncated |= cut;
            if value > best_value {
                best_value = value;
                best_jury = jury;
            }
        }

        if self.config.use_greedy_candidates {
            for jury in greedy_candidate_juries(instance) {
                let value = self.objective.evaluate(&jury, instance.prior());
                if value > best_value {
                    best_value = value;
                    best_jury = jury;
                }
            }
        }

        SolverResult {
            jury: best_jury,
            objective_value: best_value,
            evaluations: self.objective.evaluations() - evaluations_before,
            elapsed: start.elapsed(),
            solver: self.name(),
            truncated,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive::ExhaustiveSolver;
    use crate::objective::BvObjective;
    use jury_model::paper_example_pool;

    fn paper_instance(budget: f64) -> JspInstance {
        JspInstance::with_uniform_prior(paper_example_pool(), budget).unwrap()
    }

    #[test]
    fn config_builders_clamp_and_update() {
        let config = TabuConfig::default()
            .with_tenure(0)
            .with_iterations(9)
            .with_restarts(0)
            .with_seed(3)
            .with_greedy_candidates(false)
            .with_incremental(false);
        assert_eq!(config.tenure, 1);
        assert_eq!(config.iterations, 9);
        assert_eq!(config.restarts, 1);
        assert_eq!(config.seed, 3);
        assert!(!config.use_greedy_candidates);
        assert!(!config.use_incremental);
    }

    #[test]
    fn results_are_feasible_and_deterministic() {
        let instance = paper_instance(14.0);
        let a = TabuSolver::new(BvObjective::new()).solve(&instance);
        let b = TabuSolver::new(BvObjective::new()).solve(&instance);
        assert!(instance.is_feasible(&a.jury));
        assert_eq!(a.jury.ids(), b.jury.ids(), "same seed, same jury");
        assert!((a.objective_value - b.objective_value).abs() < 1e-15);
        assert!(a.evaluations > 0);
        assert!(!a.truncated);
    }

    #[test]
    fn matches_the_exhaustive_optimum_on_the_paper_pool() {
        for budget in [5.0, 10.0, 15.0, 20.0] {
            let instance = paper_instance(budget);
            let optimal = ExhaustiveSolver::new(BvObjective::new()).solve(&instance);
            let tabu = TabuSolver::new(BvObjective::new()).solve(&instance);
            assert!(
                tabu.objective_value >= optimal.objective_value - 1e-9,
                "budget {budget}: tabu {} vs optimal {}",
                tabu.objective_value,
                optimal.objective_value
            );
            assert!(tabu.objective_value <= optimal.objective_value + 1e-9);
        }
    }

    #[test]
    fn escapes_the_cheap_worker_trap() {
        // The instance from the annealing suite that strands add-only local
        // search: one excellent expensive worker, many cheap mediocre ones.
        // Tabu's swap neighbourhood (plus the greedy-quality start) must
        // recover the optimum.
        let mut qualities = vec![0.93];
        let mut costs = vec![0.9];
        for _ in 0..8 {
            qualities.push(0.55);
            costs.push(0.12);
        }
        let pool = jury_model::WorkerPool::from_qualities_and_costs(&qualities, &costs).unwrap();
        let instance = JspInstance::with_uniform_prior(pool, 0.95).unwrap();
        let optimal = ExhaustiveSolver::new(BvObjective::new()).solve(&instance);
        let tabu = TabuSolver::new(BvObjective::new()).solve(&instance);
        assert!(tabu.objective_value >= optimal.objective_value - 1e-9);
    }

    #[test]
    fn evaluation_cap_truncates_with_a_feasible_jury() {
        let instance = paper_instance(15.0);
        let solver = TabuSolver::new(BvObjective::new())
            .with_budget(SearchBudget::unlimited().with_max_evaluations(5));
        let result = solver.solve(&instance);
        assert!(result.truncated);
        assert!(instance.is_feasible(&result.jury));
    }

    #[test]
    fn different_seeds_stay_feasible() {
        let instance = paper_instance(12.0);
        for seed in 0..4u64 {
            let solver =
                TabuSolver::with_config(BvObjective::new(), TabuConfig::default().with_seed(seed));
            let result = solver.solve(&instance);
            assert!(instance.is_feasible(&result.jury), "seed {seed}");
            assert!(result.objective_value >= 0.5);
        }
    }

    #[test]
    fn empty_pool_and_zero_budget_return_empty_juries() {
        let empty = JspInstance::with_uniform_prior(jury_model::WorkerPool::new(), 1.0).unwrap();
        let result = TabuSolver::new(BvObjective::new()).solve(&empty);
        assert!(result.jury.is_empty());

        let broke = paper_instance(0.0);
        let result = TabuSolver::new(BvObjective::new()).solve(&broke);
        assert!(result.jury.is_empty());
    }

    #[test]
    fn incremental_and_classic_probing_agree_on_quality() {
        let qualities: Vec<f64> = (0..24).map(|i| 0.52 + 0.015 * i as f64).collect();
        let costs: Vec<f64> = (0..24).map(|i| 1.0 + (i % 5) as f64).collect();
        let pool = jury_model::WorkerPool::from_qualities_and_costs(&qualities, &costs).unwrap();
        let instance = JspInstance::with_uniform_prior(pool, 10.0).unwrap();
        let incremental = TabuSolver::new(BvObjective::new()).solve(&instance);
        let classic = TabuSolver::with_config(
            BvObjective::new(),
            TabuConfig::default().with_incremental(false),
        )
        .solve(&instance);
        assert!(instance.is_feasible(&incremental.jury));
        assert!(instance.is_feasible(&classic.jury));
        assert!(
            (incremental.objective_value - classic.objective_value).abs() < 0.02,
            "incremental {} vs classic {}",
            incremental.objective_value,
            classic.objective_value
        );
    }
}
