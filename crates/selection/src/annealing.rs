//! The simulated-annealing JSP heuristic (Algorithms 3 and 4 of the paper).
//!
//! JSP is NP-hard even with a polynomial JQ oracle (Theorem 4), so the paper
//! uses simulated annealing with a swap-based local neighbourhood:
//!
//! * Start from the empty jury with temperature `T = 1`.
//! * While `T ≥ ε`: perform `N` local searches, each picking a random worker
//!   `r`. If `r` is unselected and affordable, select it (adding a worker
//!   never hurts, by Lemma 1). Otherwise attempt a **swap** between a
//!   selected and an unselected worker: the swap is accepted if it does not
//!   decrease the objective, or with probability `exp(Δ/T)` when it does
//!   (the Boltzmann acceptance rule).
//! * Halve `T` and repeat.
//!
//! One practical limitation of Algorithm 3 as written is that the jury's
//! cardinality never decreases: workers are only added or swapped one-for-one,
//! so a run that greedily fills the budget with cheap workers can be unable
//! to reach an optimum that uses fewer, more expensive workers. The paper's
//! evaluation (Table 3) reports occasional errors of up to 3 % consistent
//! with this. To keep the solver dependable on such instances this
//! implementation adds two engineering refinements, both configurable and
//! both off-by-default-able for ablations: independent restarts with
//! different random orders, and considering the two greedy juries
//! (top-quality and quality-per-cost) as additional candidate solutions. The
//! best jury over all candidates is returned.
//!
//! When the objective offers an incremental session (see
//! [`crate::objective::IncrementalSession`]), each add/swap step mutates a
//! live dense-DP state in `O(buckets)` instead of re-evaluating a cloned
//! jury from scratch — the engine behind the paper's "thousands of JQ
//! evaluations per search" hot path. Final juries are always re-scored
//! through the batch objective, so reported qualities are unaffected.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use jury_model::{Jury, Worker};

use crate::budget::SearchBudget;
use crate::objective::{IncrementalSession, JuryObjective};
use crate::problem::JspInstance;
use crate::solver::{JurySolver, SolverResult};

/// Configuration of the simulated-annealing search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnnealingConfig {
    /// Initial temperature `T` (the paper uses 1.0).
    pub initial_temperature: f64,
    /// Stop once the temperature drops below this value (the paper uses
    /// `ε = 10⁻⁸`, i.e. 27 cooling steps).
    pub epsilon: f64,
    /// Multiplicative cooling factor applied after each sweep (the paper
    /// halves the temperature).
    pub cooling_factor: f64,
    /// RNG seed, so experiments are reproducible.
    pub seed: u64,
    /// Number of independent annealing runs (each with its own random
    /// insertion order); the best result is kept. `1` reproduces the paper's
    /// single-run heuristic.
    pub restarts: usize,
    /// Whether to also evaluate the greedy top-quality and quality-per-cost
    /// juries as candidate solutions.
    pub use_greedy_candidates: bool,
    /// Whether to steer the search through the objective's incremental
    /// session (when it offers one), so each add/swap step costs
    /// `O(buckets)` instead of a from-scratch JQ evaluation. The final jury
    /// is always re-scored through the batch objective, so this switch
    /// affects only search *speed* and tie-breaking on near-equal
    /// neighbours; turning it off recovers the historical evaluate-per-step
    /// behaviour for ablations.
    pub use_incremental: bool,
}

impl Default for AnnealingConfig {
    fn default() -> Self {
        AnnealingConfig {
            initial_temperature: 1.0,
            epsilon: 1e-8,
            cooling_factor: 0.5,
            seed: 0x5EED,
            restarts: 4,
            use_greedy_candidates: true,
            use_incremental: true,
        }
    }
}

impl AnnealingConfig {
    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the stopping temperature `ε`.
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon.max(f64::MIN_POSITIVE);
        self
    }

    /// Sets the cooling factor (must be in `(0, 1)`).
    pub fn with_cooling_factor(mut self, factor: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&factor),
            "cooling factor must be in (0, 1)"
        );
        self.cooling_factor = factor;
        self
    }

    /// Sets the number of independent restarts (at least one).
    pub fn with_restarts(mut self, restarts: usize) -> Self {
        self.restarts = restarts.max(1);
        self
    }

    /// Enables or disables the greedy candidate juries.
    pub fn with_greedy_candidates(mut self, enabled: bool) -> Self {
        self.use_greedy_candidates = enabled;
        self
    }

    /// Enables or disables incremental-session search guidance.
    pub fn with_incremental(mut self, enabled: bool) -> Self {
        self.use_incremental = enabled;
        self
    }

    /// The paper's plain single-run heuristic: one annealing run, no greedy
    /// candidates. Used by the Figure 7 ablation.
    pub fn paper_single_run() -> Self {
        AnnealingConfig::default()
            .with_restarts(1)
            .with_greedy_candidates(false)
    }

    /// Number of cooling sweeps this configuration performs.
    pub fn num_sweeps(&self) -> usize {
        let mut t = self.initial_temperature;
        let mut sweeps = 0;
        while t >= self.epsilon && sweeps < 10_000 {
            sweeps += 1;
            t *= self.cooling_factor;
        }
        sweeps
    }
}

/// The simulated-annealing JSP solver (Algorithm 3), generic over the
/// objective so it serves both OPTJS (`JQ(BV)`) and the MVJS baseline
/// (`JQ(MV)`).
pub struct AnnealingSolver<O: JuryObjective> {
    objective: O,
    config: AnnealingConfig,
    budget: SearchBudget,
}

/// Mutable search state: selection flags, the selected jury, and its cost
/// (the `X`, `Ĵ`, `H`, `M` variables of Algorithm 3). Shared with the tabu
/// search, which walks the same add/swap neighbourhood.
pub(crate) struct SearchState {
    pub(crate) selected: Vec<bool>,
    pub(crate) jury_members: Vec<Worker>,
    pub(crate) spent: f64,
    pub(crate) current_value: Option<f64>,
}

impl SearchState {
    pub(crate) fn new(n: usize) -> Self {
        SearchState {
            selected: vec![false; n],
            jury_members: Vec::new(),
            spent: 0.0,
            current_value: None,
        }
    }

    pub(crate) fn jury(&self) -> Jury {
        Jury::new(self.jury_members.clone())
    }

    pub(crate) fn selected_indices(&self) -> Vec<usize> {
        self.selected
            .iter()
            .enumerate()
            .filter(|(_, &s)| s)
            .map(|(i, _)| i)
            .collect()
    }

    fn unselected_indices(&self) -> Vec<usize> {
        self.selected
            .iter()
            .enumerate()
            .filter(|(_, &s)| !s)
            .map(|(i, _)| i)
            .collect()
    }

    pub(crate) fn add(&mut self, index: usize, worker: &Worker) {
        self.selected[index] = true;
        self.jury_members.push(worker.clone());
        self.spent += worker.cost();
        self.current_value = None;
    }

    pub(crate) fn swap(
        &mut self,
        out_index: usize,
        out_worker: &Worker,
        in_index: usize,
        in_worker: &Worker,
    ) {
        self.selected[out_index] = false;
        self.selected[in_index] = true;
        self.jury_members.retain(|w| w.id() != out_worker.id());
        self.jury_members.push(in_worker.clone());
        self.spent += in_worker.cost() - out_worker.cost();
        self.current_value = None;
    }
}

/// The greedy candidate juries shared by the annealing, tabu, and portfolio
/// searches: the top-quality-first and best-log-odds-per-cost-first fills of
/// the budget. Cheap (two sorts, no objective evaluations) and a reliable
/// floor on instances that trap swap-based local search.
pub(crate) fn greedy_candidate_juries(instance: &JspInstance) -> Vec<Jury> {
    let budget = instance.budget();
    let mut by_quality = instance.pool().workers().to_vec();
    by_quality.sort_by(|a, b| {
        b.effective_quality()
            .partial_cmp(&a.effective_quality())
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.id().cmp(&b.id()))
    });
    let mut by_ratio = instance.pool().workers().to_vec();
    by_ratio.sort_by(|a, b| {
        let ra = a.log_odds() / a.cost().max(1e-9);
        let rb = b.log_odds() / b.cost().max(1e-9);
        rb.partial_cmp(&ra)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.id().cmp(&b.id()))
    });
    [by_quality, by_ratio]
        .into_iter()
        .map(|order| {
            let mut jury = Jury::empty();
            let mut spent = 0.0;
            for worker in order {
                if spent + worker.cost() <= budget + 1e-12 {
                    spent += worker.cost();
                    jury.push(worker);
                }
            }
            jury
        })
        .collect()
}

impl<O: JuryObjective> AnnealingSolver<O> {
    /// Creates a solver with the default (paper) configuration.
    pub fn new(objective: O) -> Self {
        AnnealingSolver {
            objective,
            config: AnnealingConfig::default(),
            budget: SearchBudget::unlimited(),
        }
    }

    /// Creates a solver with a custom configuration.
    pub fn with_config(objective: O, config: AnnealingConfig) -> Self {
        AnnealingSolver {
            objective,
            config,
            budget: SearchBudget::unlimited(),
        }
    }

    /// Bounds the search with a cooperative compute budget: the temperature
    /// loop and the restart loop poll it and stop early when it is
    /// exhausted, marking the result [`SolverResult::truncated`]. The best
    /// jury found before the cutoff is still returned (anytime semantics).
    /// The default unlimited budget leaves the search bit-identical to a
    /// budget-free solver.
    pub fn with_budget(mut self, budget: SearchBudget) -> Self {
        self.budget = budget;
        self
    }

    /// The annealing configuration.
    pub fn config(&self) -> &AnnealingConfig {
        &self.config
    }

    /// The underlying objective.
    pub fn objective(&self) -> &O {
        &self.objective
    }

    /// The search-guidance value of the current state: the session's value
    /// when one is active (quantized, `O(buckets)`), the batch objective
    /// otherwise.
    fn current_value(
        &self,
        state: &mut SearchState,
        instance: &JspInstance,
        session: &Option<Box<dyn IncrementalSession + '_>>,
    ) -> f64 {
        if let Some(v) = state.current_value {
            return v;
        }
        let v = match session {
            Some(session) => session.value(),
            None => self.objective.evaluate(&state.jury(), instance.prior()),
        };
        state.current_value = Some(v);
        v
    }

    /// One call of Algorithm 4: attempt to swap worker `r` with a randomly
    /// chosen counterpart on the other side of the selection.
    ///
    /// With an active session the candidate is evaluated in place — swap in,
    /// read the value, and swap back on rejection — so a neighbour costs
    /// `O(buckets)`; without one it falls back to evaluating a cloned jury.
    fn try_swap(
        &self,
        state: &mut SearchState,
        instance: &JspInstance,
        r: usize,
        temperature: f64,
        rng: &mut StdRng,
        session: &mut Option<Box<dyn IncrementalSession + '_>>,
    ) {
        let workers = instance.pool().workers();
        // Decide which worker leaves (`a`) and which enters (`b`).
        let (out_index, in_index) = if !state.selected[r] {
            let selected = state.selected_indices();
            if selected.is_empty() {
                return;
            }
            (selected[rng.gen_range(0..selected.len())], r)
        } else {
            let unselected = state.unselected_indices();
            if unselected.is_empty() {
                return;
            }
            (r, unselected[rng.gen_range(0..unselected.len())])
        };
        let out_worker = &workers[out_index];
        let in_worker = &workers[in_index];
        if state.spent - out_worker.cost() + in_worker.cost() > instance.budget() + 1e-12 {
            return;
        }

        let current = self.current_value(state, instance, session);
        let candidate_value = match session {
            Some(live) => {
                if !live.pop(out_worker) {
                    // The session lost track of the jury (cannot happen with
                    // the engines shipped here, but a third-party objective
                    // might misbehave): abandon it and fall back.
                    *session = None;
                    state.current_value = None;
                    return self.try_swap(state, instance, r, temperature, rng, session);
                }
                live.push(in_worker);
                live.value()
            }
            None => {
                let mut candidate_members: Vec<Worker> = state
                    .jury_members
                    .iter()
                    .filter(|w| w.id() != out_worker.id())
                    .cloned()
                    .collect();
                candidate_members.push(in_worker.clone());
                self.objective
                    .evaluate(&Jury::new(candidate_members), instance.prior())
            }
        };
        let delta = candidate_value - current;

        let accept = delta >= 0.0 || rng.gen::<f64>() <= (delta / temperature).exp();
        if accept {
            state.swap(out_index, out_worker, in_index, in_worker);
            state.current_value = Some(candidate_value);
        } else if let Some(live) = session {
            // Revert the in-place trial swap.
            live.pop(in_worker);
            live.push(out_worker);
            state.current_value = Some(current);
        }
    }
}

impl<O: JuryObjective> AnnealingSolver<O> {
    /// One run of the paper's Algorithm 3, starting from `start` (the empty
    /// jury for a cold run; warm-started budget sweeps hand in the previous
    /// budget's jury).
    ///
    /// When the objective offers an incremental session (and the
    /// configuration allows it), the temperature loop steers itself entirely
    /// through that session; the returned value is always a fresh batch
    /// evaluation of the final jury, so callers compare restarts and report
    /// results on the objective's own scale.
    ///
    /// Returns the jury, its batch-objective value, and whether the search
    /// budget cut the temperature loop short.
    ///
    /// Crate-visible so the portfolio solver can race annealing one restart
    /// at a time with exactly the per-restart RNG stream of a standalone
    /// [`AnnealingSolver::solve`] call.
    pub(crate) fn anneal_once(
        &self,
        instance: &JspInstance,
        seed: u64,
        start: &Jury,
    ) -> (Jury, f64, bool) {
        let n = instance.num_candidates();
        let workers = instance.pool().workers();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut state = SearchState::new(n);
        let mut session = if self.config.use_incremental {
            self.objective.incremental_session(instance)
        } else {
            None
        };
        let session_used = session.is_some();

        // Warm start: replay the seed jury into the search state (and the
        // session) before the temperature loop. Members that no longer fit —
        // a foreign id, a duplicate, or a worker the budget cannot afford —
        // are skipped, so any jury is a safe seed.
        for member in start.workers() {
            let Some(index) = workers.iter().position(|w| w.id() == member.id()) else {
                continue;
            };
            if state.selected[index]
                || state.spent + workers[index].cost() > instance.budget() + 1e-12
            {
                continue;
            }
            state.add(index, &workers[index]);
            if let Some(live) = &mut session {
                live.push(&workers[index]);
            }
        }

        let mut truncated = false;
        if n > 0 {
            let mut temperature = self.config.initial_temperature;
            'cooling: while temperature >= self.config.epsilon {
                for _ in 0..n {
                    // Cooperative checkpoint: an unlimited budget answers
                    // without reading the clock, so budget-free runs keep
                    // the exact historical RNG stream and step order.
                    if self.budget.exhausted(self.objective.evaluations()) {
                        truncated = true;
                        break 'cooling;
                    }
                    let r = rng.gen_range(0..n);
                    if !state.selected[r]
                        && state.spent + workers[r].cost() <= instance.budget() + 1e-12
                    {
                        // Adding an affordable worker never hurts (Lemma 1).
                        state.add(r, &workers[r]);
                        if let Some(live) = &mut session {
                            live.push(&workers[r]);
                        }
                    } else {
                        self.try_swap(&mut state, instance, r, temperature, &mut rng, &mut session);
                    }
                }
                temperature *= self.config.cooling_factor;
            }
        }

        let jury = state.jury();
        // Session values are quantized search guidance; the reported value
        // must come from the batch objective. Without a session the cached
        // value already is one.
        let value = if session_used {
            self.objective.evaluate(&jury, instance.prior())
        } else {
            state
                .current_value
                .unwrap_or_else(|| self.objective.evaluate(&jury, instance.prior()))
        };
        (jury, value, truncated)
    }

    /// The greedy candidate juries: top-quality-first and
    /// best-log-odds-per-cost-first fills of the budget.
    fn greedy_candidates(&self, instance: &JspInstance) -> Vec<Jury> {
        greedy_candidate_juries(instance)
    }
}

impl<O: JuryObjective> AnnealingSolver<O> {
    /// Solves the instance with every annealing restart **seeded** by the
    /// given jury instead of starting empty: the seed is replayed into the
    /// search state (skipping members the pool or budget no longer admits)
    /// before the temperature loop runs. The seed jury itself also competes
    /// as a candidate solution, so a warm-started run never reports a worse
    /// jury than the seed it was handed — the contract behind
    /// [`crate::BudgetQualityTable::build_warm_annealing`]'s monotone rows.
    ///
    /// `solve` is exactly `solve_seeded` with the empty jury.
    pub fn solve_seeded(&self, instance: &JspInstance, seed_jury: &Jury) -> SolverResult {
        let start = Instant::now();
        let evaluations_before = self.objective.evaluations();

        let mut best_jury = Jury::empty();
        let mut best_value = self.objective.evaluate(&best_jury, instance.prior());
        let mut truncated = false;

        for restart in 0..self.config.restarts.max(1) {
            if self.budget.exhausted(self.objective.evaluations()) {
                truncated = true;
                break;
            }
            let (jury, value, cut) = self.anneal_once(
                instance,
                self.config.seed.wrapping_add(restart as u64),
                seed_jury,
            );
            truncated |= cut;
            if value > best_value {
                best_value = value;
                best_jury = jury;
            }
        }

        if !seed_jury.is_empty() && instance.is_feasible(seed_jury) {
            let value = self.objective.evaluate(seed_jury, instance.prior());
            if value > best_value {
                best_value = value;
                best_jury = seed_jury.clone();
            }
        }

        if self.config.use_greedy_candidates {
            for jury in self.greedy_candidates(instance) {
                let value = self.objective.evaluate(&jury, instance.prior());
                if value > best_value {
                    best_value = value;
                    best_jury = jury;
                }
            }
        }

        SolverResult {
            jury: best_jury,
            objective_value: best_value,
            evaluations: self.objective.evaluations() - evaluations_before,
            elapsed: start.elapsed(),
            solver: self.name(),
            truncated,
        }
    }
}

impl<O: JuryObjective> JurySolver for AnnealingSolver<O> {
    fn name(&self) -> &'static str {
        "simulated-annealing"
    }

    fn solve(&self, instance: &JspInstance) -> SolverResult {
        self.solve_seeded(instance, &Jury::empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive::ExhaustiveSolver;
    use crate::objective::{BvObjective, MvObjective};
    use jury_model::{paper_example_pool, GaussianWorkerGenerator, Prior};

    fn paper_instance(budget: f64) -> JspInstance {
        JspInstance::with_uniform_prior(paper_example_pool(), budget).unwrap()
    }

    #[test]
    fn config_builder_and_sweep_count() {
        let config = AnnealingConfig::default();
        // T halves from 1.0 down to 1e-8: 27 sweeps.
        assert_eq!(config.num_sweeps(), 27);
        let fast = AnnealingConfig::default()
            .with_epsilon(1e-2)
            .with_cooling_factor(0.25);
        assert_eq!(fast.num_sweeps(), 4);
        assert_eq!(AnnealingConfig::default().with_seed(7).seed, 7);
    }

    #[test]
    #[should_panic(expected = "cooling factor")]
    fn invalid_cooling_factor_rejected() {
        let _ = AnnealingConfig::default().with_cooling_factor(1.5);
    }

    #[test]
    fn results_are_feasible_and_reproducible() {
        let instance = paper_instance(14.0);
        let a = AnnealingSolver::new(BvObjective::new()).solve(&instance);
        let b = AnnealingSolver::new(BvObjective::new()).solve(&instance);
        assert!(instance.is_feasible(&a.jury));
        assert_eq!(
            a.jury.ids(),
            b.jury.ids(),
            "same seed must give the same jury"
        );
        assert!(a.evaluations > 0);
    }

    #[test]
    fn matches_the_exhaustive_optimum_on_the_paper_pool() {
        // On the 7-worker example the heuristic should find the optimum for
        // every budget of the Figure 1 table.
        for budget in [5.0, 10.0, 15.0, 20.0] {
            let instance = paper_instance(budget);
            let optimal = ExhaustiveSolver::new(BvObjective::new()).solve(&instance);
            let annealed = AnnealingSolver::new(BvObjective::new()).solve(&instance);
            assert!(
                annealed.objective_value >= optimal.objective_value - 0.02,
                "budget {budget}: annealing {} vs optimal {}",
                annealed.objective_value,
                optimal.objective_value
            );
            assert!(annealed.objective_value <= optimal.objective_value + 1e-9);
        }
    }

    #[test]
    fn restarts_and_greedy_candidates_help_on_hard_instances() {
        // A pool designed to trap the plain single-run heuristic: one
        // excellent expensive worker and many cheap mediocre ones. Once any
        // cheap worker is added the expensive one no longer fits, and
        // Algorithm 3 cannot shrink the jury to recover.
        let mut qualities = vec![0.93];
        let mut costs = vec![0.9];
        for _ in 0..8 {
            qualities.push(0.55);
            costs.push(0.12);
        }
        let pool = jury_model::WorkerPool::from_qualities_and_costs(&qualities, &costs).unwrap();
        let instance = JspInstance::with_uniform_prior(pool, 0.95).unwrap();
        let optimal = ExhaustiveSolver::new(BvObjective::new()).solve(&instance);
        let robust = AnnealingSolver::new(BvObjective::new()).solve(&instance);
        assert!(
            robust.objective_value >= optimal.objective_value - 1e-9,
            "robust solver {} vs optimal {}",
            robust.objective_value,
            optimal.objective_value
        );
        // The plain paper configuration may or may not find it; it must at
        // least stay feasible and never beat the optimum.
        let plain =
            AnnealingSolver::with_config(BvObjective::new(), AnnealingConfig::paper_single_run())
                .solve(&instance);
        assert!(instance.is_feasible(&plain.jury));
        assert!(plain.objective_value <= optimal.objective_value + 1e-9);
    }

    #[test]
    fn stays_close_to_optimal_on_random_pools() {
        // Figure 7(a): N = 11, budgets in [0.05, 0.5]; the returned JQ nearly
        // coincides with the optimum.
        let generator = GaussianWorkerGenerator::paper_defaults();
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        for trial in 0..5 {
            let pool = generator.generate(11, &mut rng);
            let budget = 0.05 + 0.1 * trial as f64;
            let instance = JspInstance::new(pool, budget, Prior::uniform()).unwrap();
            let optimal = ExhaustiveSolver::new(BvObjective::new()).solve(&instance);
            let annealed = AnnealingSolver::new(BvObjective::new()).solve(&instance);
            let gap = optimal.objective_value - annealed.objective_value;
            assert!(
                (-1e-9..=0.03).contains(&gap),
                "trial {trial}: gap {gap} too large"
            );
            assert!(instance.is_feasible(&annealed.jury));
        }
    }

    #[test]
    fn works_with_the_mv_objective_too() {
        let instance = paper_instance(20.0);
        let annealed = AnnealingSolver::new(MvObjective::new()).solve(&instance);
        let optimal = ExhaustiveSolver::new(MvObjective::new()).solve(&instance);
        assert!(annealed.objective_value <= optimal.objective_value + 1e-9);
        assert!(annealed.objective_value >= optimal.objective_value - 0.05);
    }

    #[test]
    fn incremental_guidance_keeps_search_quality_above_the_cutoff() {
        // A pool above the exact cutoff engages the BV incremental session;
        // the result must stay feasible, reproducible, and as good as the
        // historical evaluate-per-step search (both re-scored by the same
        // batch objective).
        let generator = GaussianWorkerGenerator::paper_defaults();
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        let pool = generator.generate(24, &mut rng);
        let instance = JspInstance::new(pool, 0.4, Prior::uniform()).unwrap();

        let incremental = AnnealingSolver::new(BvObjective::new()).solve(&instance);
        let incremental_again = AnnealingSolver::new(BvObjective::new()).solve(&instance);
        let classic = AnnealingSolver::with_config(
            BvObjective::new(),
            AnnealingConfig::default().with_incremental(false),
        )
        .solve(&instance);

        assert!(instance.is_feasible(&incremental.jury));
        assert_eq!(
            incremental.jury.ids(),
            incremental_again.jury.ids(),
            "incremental guidance must stay deterministic"
        );
        assert!(
            (incremental.objective_value - classic.objective_value).abs() < 0.02,
            "incremental {} vs classic {}",
            incremental.objective_value,
            classic.objective_value
        );
        assert!(incremental.evaluations > 0);
    }

    #[test]
    fn seeded_solve_matches_cold_solve_semantics() {
        // Seeding with the empty jury is exactly `solve`.
        let instance = paper_instance(15.0);
        let solver = AnnealingSolver::new(BvObjective::new());
        let cold = solver.solve(&instance);
        let seeded = solver.solve_seeded(&instance, &jury_model::Jury::empty());
        assert_eq!(cold.jury.ids(), seeded.jury.ids());
        assert!((cold.objective_value - seeded.objective_value).abs() < 1e-12);
    }

    #[test]
    fn seeded_solve_never_reports_below_the_seed() {
        // Seed with the known optimum at budget 15 ({B, C, G}); the seeded
        // run must report at least its quality, whatever the search does.
        let instance = paper_instance(15.0);
        let optimal = ExhaustiveSolver::new(BvObjective::new()).solve(&instance);
        let weak = AnnealingSolver::with_config(
            BvObjective::new(),
            AnnealingConfig::paper_single_run().with_epsilon(0.5),
        );
        let seeded = weak.solve_seeded(&instance, &optimal.jury);
        assert!(seeded.objective_value >= optimal.objective_value - 1e-12);
        assert!(instance.is_feasible(&seeded.jury));
    }

    #[test]
    fn infeasible_and_foreign_seeds_are_tolerated() {
        // A seed the budget cannot afford (or whose members are unknown)
        // must be skipped gracefully, not crash or produce infeasible rows.
        let instance = paper_instance(5.0);
        let rich = paper_instance(37.0);
        let full = AnnealingSolver::new(BvObjective::new()).solve(&rich);
        assert!(full.jury.cost() > 5.0);
        let solver = AnnealingSolver::new(BvObjective::new());
        let result = solver.solve_seeded(&instance, &full.jury);
        assert!(instance.is_feasible(&result.jury));
        let foreign = jury_model::Jury::new(vec![jury_model::Worker::new(
            jury_model::WorkerId(999),
            0.9,
            1.0,
        )
        .unwrap()]);
        let result = solver.solve_seeded(&instance, &foreign);
        assert!(instance.is_feasible(&result.jury));
    }

    #[test]
    fn empty_pool_returns_empty_jury() {
        let instance = JspInstance::with_uniform_prior(jury_model::WorkerPool::new(), 1.0).unwrap();
        let result = AnnealingSolver::new(BvObjective::new()).solve(&instance);
        assert!(result.jury.is_empty());
        assert!((result.objective_value - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_budget_returns_empty_jury() {
        let instance = paper_instance(0.0);
        let result = AnnealingSolver::new(BvObjective::new()).solve(&instance);
        assert!(result.jury.is_empty());
    }

    #[test]
    fn different_seeds_explore_but_remain_feasible() {
        let instance = paper_instance(12.0);
        for seed in 0..5u64 {
            let solver = AnnealingSolver::with_config(
                BvObjective::new(),
                AnnealingConfig::default().with_seed(seed),
            );
            let result = solver.solve(&instance);
            assert!(instance.is_feasible(&result.jury), "seed {seed}");
            assert!(result.objective_value >= 0.5);
        }
    }
}
