//! Multi-class (confusion-matrix) jury selection — Section 7 driven through
//! the binary JSP machinery.
//!
//! The solvers in this crate are generic over a [`JuryObjective`] and
//! operate on plain [`Jury`]s of `(quality, cost)` workers. Confusion-matrix
//! selection reuses them wholesale via a *shadow pool*: the
//! [`jury_model::MatrixPool`] projects each worker onto her mean diagonal
//! accuracy (same ids, same costs), the solvers mutate shadow juries, and
//! [`MultiClassBvObjective`] looks the full matrices back up by id to score
//! `JQ(J, BV, ~α)` — exactly enumerated for tiny juries, otherwise via the
//! Section 7 tuple-key bucket DP.
//!
//! The objective also implements
//! [`JuryObjective::incremental_session`] on top of
//! [`jury_jq::IncrementalMultiClassJq`], so [`crate::AnnealingSolver`] and
//! [`crate::GreedyMarginalSolver`] drive confusion-matrix search through the
//! same push/pop/swap hot path as the binary engines: an annealing neighbour
//! or a greedy extension probe updates `ℓ` live dense DPs instead of
//! rebuilding them from scratch.
//!
//! ```
//! use jury_model::{CategoricalPrior, MatrixPool};
//! use jury_selection::{AnnealingSolver, JurySolver, MultiClassJsp};
//!
//! let pool = MatrixPool::from_qualities_and_costs(
//!     &[0.9, 0.75, 0.7, 0.65, 0.6],
//!     &[3.0, 2.0, 1.0, 1.0, 1.0],
//!     3,
//! )
//! .unwrap();
//! let prior = CategoricalPrior::uniform(3).unwrap();
//! let problem = MultiClassJsp::new(pool, 5.0, prior).unwrap();
//! let result = AnnealingSolver::new(problem.objective()).solve(problem.instance());
//! assert!(result.jury.cost() <= 5.0 + 1e-9);
//! assert!(result.objective_value >= 1.0 / 3.0);
//! ```

use std::sync::atomic::{AtomicU64, Ordering};

use jury_jq::{
    approx_multiclass_bv_jq, exact_multiclass_bv_jq, IncrementalMultiClassJq,
    MultiClassBucketConfig, MultiClassIncrementalConfig,
};
use jury_model::{
    CategoricalPrior, Jury, MatrixJury, MatrixPool, ModelError, ModelResult, Prior, Worker,
};

use crate::objective::{IncrementalSession, JuryObjective};
use crate::problem::JspInstance;

/// Voting-space sizes up to this bound are scored by exact enumeration
/// inside [`MultiClassBvObjective::evaluate`]; larger juries use the bucket
/// DP.
pub const DEFAULT_MULTICLASS_EXACT_VOTINGS: u64 = 1 << 12;

/// Pools of at most this many candidates do not get incremental sessions
/// by default. The dense per-target boxes of the incremental engine cost
/// `O((pool · buckets)^{ℓ−1})` per mutation while the scratch tuple DP's
/// sparse map stays tiny for small juries, so the engine only wins beyond
/// a crossover (the `multiclass` criterion bench on this repo's reference
/// box measures the scratch DP ~86× *faster* at 10 candidates and ~22×
/// *slower* at 30). Tune per workload with
/// [`MultiClassBvObjective::with_session_pool_cutoff`].
pub const DEFAULT_MULTICLASS_SESSION_POOL_CUTOFF: usize = 20;

/// A multi-class JSP instance: a confusion-matrix candidate pool, a budget,
/// and a categorical prior, bridged onto the binary solver machinery via
/// the pool's shadow projection.
#[derive(Debug, Clone)]
pub struct MultiClassJsp {
    pool: MatrixPool,
    prior: CategoricalPrior,
    instance: JspInstance,
}

impl MultiClassJsp {
    /// Creates the instance, validating the budget and that the prior's
    /// label count matches the pool's.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidPriorVector`] on a label-count mismatch
    /// and [`ModelError::InvalidCost`] on a bad budget.
    pub fn new(pool: MatrixPool, budget: f64, prior: CategoricalPrior) -> ModelResult<Self> {
        if prior.num_choices() != pool.num_choices() {
            return Err(ModelError::InvalidPriorVector {
                reason: format!(
                    "prior has {} classes but the pool votes over {}",
                    prior.num_choices(),
                    pool.num_choices()
                ),
            });
        }
        // The shadow instance carries ids, costs, and the budget; the binary
        // prior slot is unused (the objective owns the categorical prior).
        let instance = JspInstance::new(pool.shadow_pool(), budget, Prior::uniform())?;
        Ok(MultiClassJsp {
            pool,
            prior,
            instance,
        })
    }

    /// The shadow [`JspInstance`] the binary solvers operate on.
    pub fn instance(&self) -> &JspInstance {
        &self.instance
    }

    /// The confusion-matrix candidate pool.
    pub fn pool(&self) -> &MatrixPool {
        &self.pool
    }

    /// The categorical prior.
    pub fn prior(&self) -> &CategoricalPrior {
        &self.prior
    }

    /// Builds the multi-class BV objective for this instance (with default
    /// bucket and incremental configurations).
    pub fn objective(&self) -> MultiClassBvObjective {
        MultiClassBvObjective::new(self.pool.clone(), self.prior.clone())
            .expect("instance construction already validated the dimensions")
    }

    /// Resolves a shadow jury returned by a solver back into the full
    /// confusion-matrix jury.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnknownWorker`] for foreign ids and
    /// [`ModelError::Empty`] for the empty jury.
    pub fn matrix_jury(&self, jury: &Jury) -> ModelResult<MatrixJury> {
        self.pool.jury(&jury.ids())
    }
}

/// The Section 7 objective `JQ(J, BV, ~α)` over a [`MatrixPool`], usable by
/// every solver in this crate through the shadow-jury convention described
/// in the [module docs](crate::multiclass).
///
/// The binary `prior` argument of [`JuryObjective::evaluate`] is ignored —
/// the categorical prior is part of the objective's identity.
#[derive(Debug)]
pub struct MultiClassBvObjective {
    pool: MatrixPool,
    prior: CategoricalPrior,
    bucket: MultiClassBucketConfig,
    incremental: MultiClassIncrementalConfig,
    exact_votings: u64,
    session_pool_cutoff: usize,
    evaluations: AtomicU64,
}

impl MultiClassBvObjective {
    /// Creates the objective with default configurations.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidPriorVector`] when the prior's label
    /// count does not match the pool's.
    pub fn new(pool: MatrixPool, prior: CategoricalPrior) -> ModelResult<Self> {
        if prior.num_choices() != pool.num_choices() {
            return Err(ModelError::InvalidPriorVector {
                reason: format!(
                    "prior has {} classes but the pool votes over {}",
                    prior.num_choices(),
                    pool.num_choices()
                ),
            });
        }
        Ok(MultiClassBvObjective {
            pool,
            prior,
            bucket: MultiClassBucketConfig::default(),
            incremental: MultiClassIncrementalConfig::default(),
            exact_votings: DEFAULT_MULTICLASS_EXACT_VOTINGS,
            session_pool_cutoff: DEFAULT_MULTICLASS_SESSION_POOL_CUTOFF,
            evaluations: AtomicU64::new(0),
        })
    }

    /// Sets the scratch bucket configuration used by batch evaluations.
    pub fn with_bucket_config(mut self, bucket: MultiClassBucketConfig) -> Self {
        self.bucket = bucket;
        self
    }

    /// Sets the incremental engine configuration used by sessions.
    pub fn with_incremental_config(mut self, incremental: MultiClassIncrementalConfig) -> Self {
        self.incremental = incremental;
        self
    }

    /// Sets the exact-enumeration cutoff (`ℓ^n` votings) of batch
    /// evaluations.
    pub fn with_exact_votings(mut self, votings: u64) -> Self {
        self.exact_votings = votings;
        self
    }

    /// Sets the smallest pool size that gets incremental sessions (see
    /// [`DEFAULT_MULTICLASS_SESSION_POOL_CUTOFF`] for the crossover
    /// rationale).
    pub fn with_session_pool_cutoff(mut self, cutoff: usize) -> Self {
        self.session_pool_cutoff = cutoff;
        self
    }

    /// The confusion-matrix candidate pool this objective scores against.
    pub fn pool(&self) -> &MatrixPool {
        &self.pool
    }

    /// The categorical prior (part of the objective's identity).
    pub fn prior(&self) -> &CategoricalPrior {
        &self.prior
    }

    /// The scratch bucket configuration batch evaluations use.
    pub fn bucket_config(&self) -> MultiClassBucketConfig {
        self.bucket
    }

    /// The incremental engine configuration sessions use.
    pub fn incremental_config(&self) -> MultiClassIncrementalConfig {
        self.incremental
    }

    /// The exact-enumeration voting-space cutoff of batch evaluations.
    pub fn exact_votings(&self) -> u64 {
        self.exact_votings
    }

    /// The smallest pool size that gets incremental sessions.
    pub fn session_pool_cutoff(&self) -> usize {
        self.session_pool_cutoff
    }

    /// `ℓ^n`, saturating.
    fn votings(&self, jurors: usize) -> u64 {
        (self.pool.num_choices() as u64).saturating_pow(jurors.min(u32::MAX as usize) as u32)
    }

    /// Whether a search over `candidates` pool members runs on incremental
    /// sessions under this objective's configuration — true exactly when
    /// the pool is past both the session crossover cutoff and the exact
    /// voting-space cutoff. This is the single source of the gating that
    /// [`JuryObjective::incremental_session`] applies; serving layers use
    /// it to decide whether a pool *requires* the incremental engine.
    pub fn session_required(&self, candidates: usize) -> bool {
        candidates > self.session_pool_cutoff && self.votings(candidates) > self.exact_votings
    }

    /// The JQ of the empty jury: Bayesian voting answers the prior argmax.
    fn prior_argmax_mass(&self) -> f64 {
        self.prior.probs().iter().copied().fold(0.0f64, f64::max)
    }
}

impl JuryObjective for MultiClassBvObjective {
    fn name(&self) -> &'static str {
        "JQ(BV, multi-class)"
    }

    fn evaluate(&self, jury: &Jury, _prior: Prior) -> f64 {
        self.evaluations.fetch_add(1, Ordering::Relaxed);
        // Shadow juries reference pool members by id; foreign ids cannot be
        // scored and contribute nothing.
        let members: Vec<_> = jury
            .ids()
            .into_iter()
            .filter_map(|id| self.pool.get(id).ok().cloned())
            .collect();
        if members.is_empty() {
            return self.prior_argmax_mass();
        }
        let votings = self.votings(members.len());
        let matrix_jury = match MatrixJury::new(members) {
            Ok(jury) => jury,
            Err(_) => return self.prior_argmax_mass(),
        };
        let value = if votings <= self.exact_votings {
            exact_multiclass_bv_jq(&matrix_jury, &self.prior).ok()
        } else {
            None
        };
        value
            .or_else(|| approx_multiclass_bv_jq(&matrix_jury, &self.prior, self.bucket).ok())
            .unwrap_or_else(|| self.prior_argmax_mass())
    }

    fn evaluations(&self) -> u64 {
        self.evaluations.load(Ordering::Relaxed)
    }

    fn incremental_session<'a>(
        &'a self,
        instance: &JspInstance,
    ) -> Option<Box<dyn IncrementalSession + 'a>> {
        // Pools whose whole voting space fits the exact cutoff score every
        // candidate by exact enumeration anyway, and below the crossover
        // pool size the sparse scratch DP beats the dense boxes outright —
        // the quantized session only pays off beyond both bounds.
        if !self.session_required(instance.num_candidates()) {
            return None;
        }
        let engine =
            IncrementalMultiClassJq::for_pool(self.pool.workers(), &self.prior, self.incremental)
                .ok()?;
        Some(Box::new(MultiClassSession {
            engine,
            pool: &self.pool,
            evaluations: &self.evaluations,
            broken: false,
        }))
    }
}

/// [`IncrementalSession`] over `JQ(J, BV, ~α)` via
/// [`IncrementalMultiClassJq`]. Shadow workers are resolved back to their
/// confusion matrices by id; a push that cannot be honoured (foreign id or
/// cell-budget overflow — neither can happen for juries drawn from the
/// pool the session was sized for) marks the session broken, and the next
/// `pop` reports failure so the solver falls back to batch evaluation.
struct MultiClassSession<'a> {
    engine: IncrementalMultiClassJq,
    pool: &'a MatrixPool,
    evaluations: &'a AtomicU64,
    broken: bool,
}

impl IncrementalSession for MultiClassSession<'_> {
    fn push(&mut self, worker: &Worker) {
        if self.broken {
            return;
        }
        match self.pool.get(worker.id()) {
            Ok(member) => {
                if self.engine.push_worker(member).is_err() {
                    self.broken = true;
                }
            }
            Err(_) => self.broken = true,
        }
    }

    fn pop(&mut self, worker: &Worker) -> bool {
        !self.broken && self.engine.pop_id(worker.id()).is_ok()
    }

    fn value(&self) -> f64 {
        self.evaluations.fetch_add(1, Ordering::Relaxed);
        self.engine.jq()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annealing::{AnnealingConfig, AnnealingSolver};
    use crate::exhaustive::ExhaustiveSolver;
    use crate::greedy::GreedyMarginalSolver;
    use crate::solver::JurySolver;

    /// A deliberately coarse-but-fast configuration for unit tests.
    fn fast_incremental() -> MultiClassIncrementalConfig {
        MultiClassIncrementalConfig::default().with_num_buckets(12)
    }

    /// A session-enabled objective on a coarse grid: the 14-candidate test
    /// pool sits below the production crossover cutoff, so tests lower it
    /// to exercise the session path cheaply.
    fn session_objective(problem: &MultiClassJsp) -> MultiClassBvObjective {
        problem
            .objective()
            .with_incremental_config(fast_incremental())
            .with_session_pool_cutoff(8)
    }

    fn fast_annealing() -> AnnealingConfig {
        AnnealingConfig::default()
            .with_epsilon(1e-4)
            .with_restarts(2)
    }

    fn big_pool() -> MatrixPool {
        let qualities: Vec<f64> = (0..14).map(|i| 0.5 + 0.03 * (i % 12) as f64).collect();
        let costs: Vec<f64> = (0..14).map(|i| 1.0 + (i % 4) as f64 * 0.5).collect();
        MatrixPool::from_qualities_and_costs(&qualities, &costs, 3).unwrap()
    }

    #[test]
    fn dimension_mismatch_is_rejected() {
        let pool = MatrixPool::from_qualities_and_costs(&[0.8, 0.7], &[1.0, 1.0], 3).unwrap();
        let prior = CategoricalPrior::uniform(4).unwrap();
        assert!(MultiClassJsp::new(pool.clone(), 2.0, prior.clone()).is_err());
        assert!(MultiClassBvObjective::new(pool.clone(), prior).is_err());
        assert!(MultiClassJsp::new(pool, -1.0, CategoricalPrior::uniform(3).unwrap()).is_err());
    }

    #[test]
    fn empty_and_foreign_juries_score_the_prior_argmax() {
        let pool = MatrixPool::from_qualities_and_costs(&[0.8, 0.7], &[1.0, 1.0], 3).unwrap();
        let prior = CategoricalPrior::new(vec![0.2, 0.5, 0.3]).unwrap();
        let objective = MultiClassBvObjective::new(pool, prior).unwrap();
        assert!((objective.evaluate(&Jury::empty(), Prior::uniform()) - 0.5).abs() < 1e-12);
        let foreign = Jury::new(vec![Worker::free(jury_model::WorkerId(99), 0.9).unwrap()]);
        assert!((objective.evaluate(&foreign, Prior::uniform()) - 0.5).abs() < 1e-12);
        assert_eq!(objective.evaluations(), 2);
        assert_eq!(objective.name(), "JQ(BV, multi-class)");
    }

    #[test]
    fn exhaustive_beats_or_matches_every_heuristic_on_a_small_pool() {
        let pool = MatrixPool::from_qualities_and_costs(&[0.9, 0.6, 0.7, 0.8, 0.65], &[2.0; 5], 3)
            .unwrap();
        let prior = CategoricalPrior::uniform(3).unwrap();
        let problem = MultiClassJsp::new(pool, 6.0, prior).unwrap();
        let optimal = ExhaustiveSolver::new(problem.objective()).solve(problem.instance());
        let annealed = AnnealingSolver::with_config(problem.objective(), fast_annealing())
            .solve(problem.instance());
        let greedy = GreedyMarginalSolver::new(problem.objective()).solve(problem.instance());
        assert!(problem.instance().is_feasible(&optimal.jury));
        assert!(annealed.objective_value <= optimal.objective_value + 1e-9);
        assert!(greedy.objective_value <= optimal.objective_value + 1e-9);
        // Uniform costs: the annealing search (with its greedy top-quality
        // candidate) finds the exact optimum on this tiny pool. Marginal
        // greedy may tie-break onto a weaker third member — two-juror BV
        // plateaus at the stronger juror's accuracy, so round-two extensions
        // can all look equal — but must stay within a few points.
        assert!((annealed.objective_value - optimal.objective_value).abs() < 1e-9);
        assert!(greedy.objective_value >= optimal.objective_value - 0.05);
        // The selected jury resolves back to its confusion matrices.
        let matrix_jury = problem.matrix_jury(&optimal.jury).unwrap();
        assert_eq!(matrix_jury.size(), optimal.jury.size());
    }

    #[test]
    fn annealing_drives_the_incremental_session_on_large_pools() {
        let problem =
            MultiClassJsp::new(big_pool(), 4.0, CategoricalPrior::uniform(3).unwrap()).unwrap();
        // Above the (lowered) crossover cutoff a session must exist; at the
        // production default this 14-candidate pool stays session-free.
        assert!(session_objective(&problem)
            .incremental_session(problem.instance())
            .is_some());
        assert!(problem
            .objective()
            .incremental_session(problem.instance())
            .is_none());

        let incremental =
            AnnealingSolver::with_config(session_objective(&problem), fast_annealing())
                .solve(problem.instance());
        let incremental_again =
            AnnealingSolver::with_config(session_objective(&problem), fast_annealing())
                .solve(problem.instance());
        let classic = AnnealingSolver::with_config(
            problem.objective(),
            fast_annealing().with_incremental(false),
        )
        .solve(problem.instance());

        assert!(problem.instance().is_feasible(&incremental.jury));
        assert!(!incremental.jury.is_empty());
        assert_eq!(
            incremental.jury.ids(),
            incremental_again.jury.ids(),
            "incremental guidance must stay deterministic"
        );
        // Both searches are re-scored by the same batch objective; the
        // session only steers, so the results must land close together.
        assert!(
            (incremental.objective_value - classic.objective_value).abs() < 0.05,
            "incremental {} vs classic {}",
            incremental.objective_value,
            classic.objective_value
        );
        assert!(incremental.evaluations > 0);
    }

    #[test]
    fn marginal_greedy_probes_through_the_session() {
        let problem =
            MultiClassJsp::new(big_pool(), 5.0, CategoricalPrior::uniform(3).unwrap()).unwrap();
        let a = GreedyMarginalSolver::new(session_objective(&problem)).solve(problem.instance());
        let b = GreedyMarginalSolver::new(session_objective(&problem)).solve(problem.instance());
        assert!(problem.instance().is_feasible(&a.jury));
        assert!(!a.jury.is_empty());
        assert_eq!(a.jury.ids(), b.jury.ids());
        assert!(a.evaluations > 0);
        assert!(a.objective_value >= 1.0 / 3.0);
    }

    #[test]
    fn two_class_pools_agree_with_the_binary_objective() {
        use crate::objective::BvObjective;
        let qualities = [0.9, 0.6, 0.6, 0.75];
        let costs = [1.0; 4];
        let pool = MatrixPool::from_qualities_and_costs(&qualities, &costs, 2).unwrap();
        let problem = MultiClassJsp::new(pool, 3.0, CategoricalPrior::uniform(2).unwrap()).unwrap();
        let multi = ExhaustiveSolver::new(problem.objective()).solve(problem.instance());

        let binary_pool =
            jury_model::WorkerPool::from_qualities_and_costs(&qualities, &costs).unwrap();
        let binary_instance = JspInstance::with_uniform_prior(binary_pool, 3.0).unwrap();
        let binary = ExhaustiveSolver::new(BvObjective::new()).solve(&binary_instance);

        assert_eq!(multi.jury.ids(), binary.jury.ids());
        assert!(
            (multi.objective_value - binary.objective_value).abs() < 1e-9,
            "multi {} vs binary {}",
            multi.objective_value,
            binary.objective_value
        );
    }
}
