//! Intra-solve parallel execution: the lane policy shared by the threaded
//! solvers, the cross-lane best-so-far bound, and the per-lane arena
//! adapter.
//!
//! The serving stack has been data-parallel across *requests* since the
//! batch engine landed; this module makes a *single* large solve
//! multi-core. Three solvers opt in through [`ParallelPolicy`]:
//!
//! * [`crate::PortfolioSolver`] races each member on its own scoped OS
//!   thread (per-lane [`jury_jq::JqScratch`] arena via [`ArenaObjective`],
//!   one shared evaluation counter, one [`SharedBestBound`]);
//! * [`crate::RestartSolver`] fans its restart units out across threads —
//!   lane seeds are pure functions of the restart index, so the candidate
//!   set is independent of thread interleaving and the fold replays the
//!   sequential tie-break exactly;
//! * [`crate::GreedyMarginalSolver`] evaluates the pool-many probes of each
//!   forward-selection round across threads, merging the probe values
//!   through the sequential pool-order scan so the round winner stays
//!   deterministic.
//!
//! **Determinism contract.** [`ParallelPolicy::Sequential`] (the default)
//! never spawns, never reads the new atomics, and runs the exact pre-policy
//! code paths — bit-identical replay. A threaded *unbudgeted* run keeps
//! every lane a pure replay of its standalone sequential sequence (the
//! bound is published but never steers), so the result is invariant in the
//! thread count. Only a threaded *budgeted* run lets the bound cut losing
//! work early (tabu aspiration against the cross-lane best, restart
//! acceptance skipping the final re-score of a provably losing planting) —
//! budgeted runs are anytime by contract, not replays.

use std::sync::atomic::{AtomicU64, Ordering};

use jury_jq::SharedJqScratch;
use jury_model::{Jury, Prior};

use crate::objective::{IncrementalSession, JuryObjective};
use crate::problem::JspInstance;

/// How a solver spreads one solve across OS threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ParallelPolicy {
    /// Run on the calling thread, bit-identical to the pre-parallel
    /// solver (no thread spawns, no new atomic or clock reads). The
    /// default.
    #[default]
    Sequential,
    /// Spread the solve's independent units (portfolio lanes, restart
    /// units, greedy probes) across this many scoped OS threads; `0` means
    /// one per available CPU core. `Threads(1)` runs the parallel
    /// orchestration on a single lane — same results, useful for tests.
    Threads(usize),
}

impl ParallelPolicy {
    /// Whether this policy spawns threads at all.
    #[must_use]
    pub fn is_threaded(&self) -> bool {
        matches!(self, ParallelPolicy::Threads(_))
    }

    /// The number of worker threads to spawn for `work_items` independent
    /// units: 1 for [`Sequential`](Self::Sequential), otherwise the
    /// configured count (`0` resolved to the available parallelism),
    /// clamped to the unit count so no thread starts idle.
    #[must_use]
    pub fn lanes(&self, work_items: usize) -> usize {
        match *self {
            ParallelPolicy::Sequential => 1,
            ParallelPolicy::Threads(n) => {
                let configured = if n == 0 {
                    std::thread::available_parallelism()
                        .map(|n| n.get())
                        .unwrap_or(1)
                } else {
                    n
                };
                configured.clamp(1, work_items.max(1))
            }
        }
    }
}

/// A cross-lane best-so-far JQ bound: lanes publish each batch-scored
/// improvement, so other lanes can cut work that provably cannot win.
///
/// JQ values live in `[0, 1]`, where the IEEE-754 bit pattern of an `f64`
/// is monotone in the value — `fetch_max` on the raw bits is a lock-free
/// floating-point max. The bound starts at `0.0` (below any real jury
/// quality), so no cut can trigger before a lane has published a real
/// batch value.
///
/// Publishing uses `Relaxed` ordering: the bound is a heuristic pruning
/// hint, never a synchronization edge — a stale read only costs a wasted
/// probe, never correctness.
#[derive(Debug, Default)]
pub struct SharedBestBound {
    bits: AtomicU64,
}

impl SharedBestBound {
    /// Creates a bound at `0.0` (below every reachable jury quality).
    #[must_use]
    pub fn new() -> Self {
        SharedBestBound::default()
    }

    /// Publishes a batch-scored jury quality; keeps the running maximum.
    /// Negative or NaN values are ignored (their bit patterns would not
    /// order monotonically).
    pub fn observe(&self, value: f64) {
        if value >= 0.0 {
            self.bits.fetch_max(value.to_bits(), Ordering::Relaxed);
        }
    }

    /// The best value published so far (`0.0` before any publication).
    #[must_use]
    pub fn current(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// A per-lane view of a shared objective: delegates evaluation (and the
/// shared evaluation counter) to the inner objective, but hands out
/// incremental sessions backed by this lane's **own** scratch arena.
///
/// This is what gives each portfolio lane its private `JqScratch`: the
/// inner objective's shared arena is never locked from the lane's hot
/// loop, and once a lane has paid its warm-up, reopening sessions across
/// restart units is allocation-free within the lane (asserted by
/// `crates/selection/tests/zero_alloc.rs`).
#[derive(Debug)]
pub struct ArenaObjective<'o, O: JuryObjective> {
    inner: &'o O,
    arena: &'o SharedJqScratch,
}

impl<'o, O: JuryObjective> ArenaObjective<'o, O> {
    /// Wraps the shared objective with a lane-owned arena. The arena is
    /// borrowed (not owned) so the spawning side can keep it past the
    /// lane's lifetime and hand its warm buffers back to a parent arena
    /// via [`SharedJqScratch::absorb`] when the lane retires.
    pub fn new(inner: &'o O, arena: &'o SharedJqScratch) -> Self {
        ArenaObjective { inner, arena }
    }

    /// The lane's arena.
    pub fn arena(&self) -> &SharedJqScratch {
        self.arena
    }
}

impl<O: JuryObjective> JuryObjective for ArenaObjective<'_, O> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn evaluate(&self, jury: &Jury, prior: Prior) -> f64 {
        self.inner.evaluate(jury, prior)
    }

    fn evaluations(&self) -> u64 {
        self.inner.evaluations()
    }

    fn incremental_session<'a>(
        &'a self,
        instance: &JspInstance,
    ) -> Option<Box<dyn IncrementalSession + 'a>> {
        self.inner.incremental_session_in(instance, self.arena)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::BvObjective;
    use jury_model::WorkerPool;

    #[test]
    fn sequential_policy_never_spawns() {
        assert_eq!(ParallelPolicy::Sequential.lanes(100), 1);
        assert!(!ParallelPolicy::Sequential.is_threaded());
        assert_eq!(ParallelPolicy::default(), ParallelPolicy::Sequential);
    }

    #[test]
    fn thread_lanes_clamp_to_the_work() {
        assert_eq!(ParallelPolicy::Threads(8).lanes(3), 3);
        assert_eq!(ParallelPolicy::Threads(2).lanes(100), 2);
        assert_eq!(ParallelPolicy::Threads(4).lanes(0), 1);
        assert!(ParallelPolicy::Threads(0).lanes(64) >= 1);
        assert!(ParallelPolicy::Threads(0).is_threaded());
    }

    #[test]
    fn bound_is_a_lock_free_float_max() {
        let bound = SharedBestBound::new();
        assert_eq!(bound.current(), 0.0);
        bound.observe(0.7);
        bound.observe(0.6);
        assert!((bound.current() - 0.7).abs() < 1e-15);
        bound.observe(0.93);
        assert!((bound.current() - 0.93).abs() < 1e-15);
        // Garbage is ignored rather than corrupting the maximum.
        bound.observe(f64::NAN);
        bound.observe(-1.0);
        assert!((bound.current() - 0.93).abs() < 1e-15);
    }

    #[test]
    fn arena_objective_delegates_and_uses_its_own_arena() {
        let qualities: Vec<f64> = (0..20).map(|i| 0.55 + 0.02 * (i % 10) as f64).collect();
        let pool = WorkerPool::from_qualities_and_costs(&qualities, &[1.0; 20]).unwrap();
        let instance = JspInstance::with_uniform_prior(pool.clone(), 8.0).unwrap();
        let inner = BvObjective::new();
        let arena = SharedJqScratch::new();
        let lane = ArenaObjective::new(&inner, &arena);

        assert_eq!(lane.name(), inner.name());
        let jury = Jury::new(pool.workers()[..3].to_vec());
        let direct = inner.evaluate(&jury, Prior::uniform());
        let via_lane = lane.evaluate(&jury, Prior::uniform());
        assert!((direct - via_lane).abs() < 1e-15);
        assert_eq!(lane.evaluations(), inner.evaluations());

        // Sessions exist past the exact cutoff and recycle into the lane's
        // arena, not the inner objective's.
        {
            let mut session = lane.incremental_session(&instance).unwrap();
            session.push(&pool.workers()[0]);
            assert!(session.value() > 0.0);
            assert!(session.pop(&pool.workers()[0]));
        }
        assert!(lane.arena().lock().buffers_held() > 0);
    }
}
