//! Special-case JSP solvers derived from the monotonicity lemmas
//! (Section 5, Lemmas 1 and 2).
//!
//! * If every worker is free, or the whole pool fits in the budget, Lemma 1
//!   ("the more workers, the better JQ for BV") says selecting everybody is
//!   optimal.
//! * If every worker charges the same cost `c`, Lemma 2 says the optimal
//!   jury is the top-`k` workers by quality with `k = min(⌊B/c⌋, N)`.
//!
//! These cases are cheap to detect and solve exactly, so the high-level
//! system tries them before falling back to the annealing heuristic.

use jury_model::Jury;

use crate::problem::JspInstance;

/// The special case that applied, if any.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpecialCase {
    /// The entire candidate pool fits within the budget (Lemma 1).
    WholePoolAffordable,
    /// All workers share one cost, so top-`k` by quality is optimal (Lemma 2).
    UniformCosts,
}

/// Attempts to solve the instance by one of the closed-form special cases.
/// Returns the optimal jury and which case applied, or `None` when neither
/// case holds and a search is required.
pub fn try_special_case(instance: &JspInstance) -> Option<(Jury, SpecialCase)> {
    if instance.whole_pool_is_feasible() {
        let jury = Jury::new(instance.pool().workers().to_vec());
        return Some((jury, SpecialCase::WholePoolAffordable));
    }
    if instance.has_uniform_costs() && !instance.pool().is_empty() {
        let cost = instance.pool().workers()[0].cost();
        let k = if cost <= 0.0 {
            instance.pool().len()
        } else {
            ((instance.budget() / cost).floor() as usize).min(instance.pool().len())
        };
        let top_k: Vec<_> = instance
            .pool()
            .sorted_by_quality_desc()
            .into_iter()
            .take(k)
            .collect();
        return Some((Jury::new(top_k), SpecialCase::UniformCosts));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive::ExhaustiveSolver;
    use crate::objective::{BvObjective, JuryObjective};
    use crate::solver::JurySolver;
    use jury_model::{paper_example_pool, Prior, WorkerPool};

    #[test]
    fn whole_pool_affordable_selects_everyone() {
        let instance = JspInstance::with_uniform_prior(paper_example_pool(), 100.0).unwrap();
        let (jury, case) = try_special_case(&instance).unwrap();
        assert_eq!(case, SpecialCase::WholePoolAffordable);
        assert_eq!(jury.size(), 7);
    }

    #[test]
    fn free_workers_are_all_selected() {
        let pool = WorkerPool::from_qualities(&[0.6, 0.7, 0.8]).unwrap();
        let instance = JspInstance::with_uniform_prior(pool, 0.0).unwrap();
        let (jury, case) = try_special_case(&instance).unwrap();
        assert_eq!(case, SpecialCase::WholePoolAffordable);
        assert_eq!(jury.size(), 3);
    }

    #[test]
    fn uniform_costs_take_top_k_by_quality() {
        let pool = WorkerPool::from_qualities_and_costs(
            &[0.6, 0.9, 0.7, 0.8, 0.55],
            &[2.0, 2.0, 2.0, 2.0, 2.0],
        )
        .unwrap();
        let instance = JspInstance::with_uniform_prior(pool, 6.9).unwrap();
        let (jury, case) = try_special_case(&instance).unwrap();
        assert_eq!(case, SpecialCase::UniformCosts);
        // ⌊6.9 / 2⌋ = 3 workers, the three best qualities.
        assert_eq!(jury.size(), 3);
        let mut qualities = jury.qualities();
        qualities.sort_by(|a, b| b.partial_cmp(a).unwrap());
        assert_eq!(qualities, vec![0.9, 0.8, 0.7]);
    }

    #[test]
    fn uniform_cost_special_case_is_optimal() {
        let pool = WorkerPool::from_qualities_and_costs(
            &[0.6, 0.9, 0.7, 0.8, 0.55, 0.65],
            &[1.5, 1.5, 1.5, 1.5, 1.5, 1.5],
        )
        .unwrap();
        let instance = JspInstance::with_uniform_prior(pool, 4.6).unwrap();
        let (jury, _) = try_special_case(&instance).unwrap();
        let objective = BvObjective::new();
        let special_value = objective.evaluate(&jury, Prior::uniform());
        let optimal = ExhaustiveSolver::new(BvObjective::new()).solve(&instance);
        assert!((special_value - optimal.objective_value).abs() < 1e-9);
    }

    #[test]
    fn general_instances_are_not_special() {
        let instance = JspInstance::with_uniform_prior(paper_example_pool(), 20.0).unwrap();
        assert!(try_special_case(&instance).is_none());
    }

    #[test]
    fn empty_pool_is_trivially_whole_pool_affordable() {
        let instance = JspInstance::with_uniform_prior(WorkerPool::new(), 1.0).unwrap();
        let (jury, case) = try_special_case(&instance).unwrap();
        assert_eq!(case, SpecialCase::WholePoolAffordable);
        assert!(jury.is_empty());
    }

    #[test]
    fn uniform_costs_too_expensive_for_anyone() {
        let pool = WorkerPool::from_qualities_and_costs(&[0.8, 0.7], &[5.0, 5.0]).unwrap();
        let instance = JspInstance::with_uniform_prior(pool, 3.0).unwrap();
        let (jury, case) = try_special_case(&instance).unwrap();
        assert_eq!(case, SpecialCase::UniformCosts);
        assert!(jury.is_empty());
    }
}
