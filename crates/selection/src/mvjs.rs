//! The MVJS baseline — jury selection under Majority Voting, reproducing the
//! behaviour of Cao et al. ("Whom to ask? Jury selection for decision making
//! tasks on micro-blog services", PVLDB 2012), cited as \[7\] and used as the
//! comparison system throughout Section 6.
//!
//! MVJS solves `argmax_{J ∈ C} JQ(J, MV, 0.5)`. The original implementation
//! is not available, so this reproduction combines three exact-or-strong
//! search strategies and keeps the best MV-quality jury found:
//!
//! 1. exhaustive enumeration when the pool is small enough (exact);
//! 2. for each odd jury size `k`, the `k` highest-quality workers that fit in
//!    the budget (the shape of the heuristic described in \[7\], where MV
//!    quality is driven by the size and the member qualities);
//! 3. the same simulated-annealing search as OPTJS but with the MV objective.
//!
//! Because the selection criterion is MV quality — not BV quality — the
//! returned juries are systematically weaker than OPTJS's, which is exactly
//! the gap Figures 6 and 10 measure.

use std::time::Instant;

use jury_model::Jury;

use crate::annealing::{AnnealingConfig, AnnealingSolver};
use crate::exhaustive::{ExhaustiveSolver, MAX_EXHAUSTIVE_POOL};
use crate::objective::{JuryObjective, MvObjective};
use crate::problem::JspInstance;
use crate::solver::{JurySolver, SolverResult};

/// The MVJS baseline solver.
#[derive(Default)]
pub struct MvjsSolver {
    annealing_config: AnnealingConfig,
}

impl MvjsSolver {
    /// Creates the baseline with the default annealing fallback.
    pub fn new() -> Self {
        MvjsSolver::default()
    }

    /// Creates the baseline with a custom annealing configuration (seed,
    /// cooling schedule) for the fallback search.
    pub fn with_annealing_config(config: AnnealingConfig) -> Self {
        MvjsSolver {
            annealing_config: config,
        }
    }

    /// Runs the MVJS search against a caller-supplied objective instead of a
    /// freshly constructed [`MvObjective`]. This is how `jury-service` routes
    /// the baseline through its shared, memoizing JQ cache: the search logic
    /// is identical, only the evaluation back-end changes.
    pub fn solve_with_objective<O: JuryObjective>(
        &self,
        instance: &JspInstance,
        objective: &O,
    ) -> SolverResult {
        let start = Instant::now();
        let evaluations_before = objective.evaluations();
        let mut best_jury = Jury::empty();
        let mut best_value = objective.evaluate(&best_jury, instance.prior());

        if instance.num_candidates() <= MAX_EXHAUSTIVE_POOL {
            let exact = ExhaustiveSolver::new(objective).solve(instance);
            if exact.objective_value > best_value {
                best_value = exact.objective_value;
                best_jury = exact.jury;
            }
        } else {
            // Odd-size top-quality juries: MV benefits from odd sizes (no
            // ties) and from the best individual qualities.
            let mut k = 1usize;
            while k <= instance.num_candidates() {
                let jury = MvjsSolver::top_quality_within_budget(instance, k);
                let value = objective.evaluate(&jury, instance.prior());
                if value > best_value {
                    best_value = value;
                    best_jury = jury;
                }
                k += 2;
            }

            let annealed =
                AnnealingSolver::with_config(objective, self.annealing_config).solve(instance);
            if annealed.objective_value > best_value {
                best_value = annealed.objective_value;
                best_jury = annealed.jury;
            }
        }

        SolverResult {
            jury: best_jury,
            objective_value: best_value,
            evaluations: objective.evaluations() - evaluations_before,
            elapsed: start.elapsed(),
            solver: self.name(),
            truncated: false,
        }
    }

    /// Candidate jury: the `k` best-quality workers that fit in the budget,
    /// scanning qualities in decreasing order.
    fn top_quality_within_budget(instance: &JspInstance, k: usize) -> Jury {
        let mut jury = Jury::empty();
        let mut spent = 0.0;
        for worker in instance.pool().sorted_by_quality_desc() {
            if jury.size() == k {
                break;
            }
            if spent + worker.cost() <= instance.budget() + 1e-12 {
                spent += worker.cost();
                jury.push(worker);
            }
        }
        jury
    }
}

impl JurySolver for MvjsSolver {
    fn name(&self) -> &'static str {
        "MVJS"
    }

    fn solve(&self, instance: &JspInstance) -> SolverResult {
        self.solve_with_objective(instance, &MvObjective::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annealing::AnnealingSolver;
    use crate::objective::BvObjective;
    use jury_model::{paper_example_pool, GaussianWorkerGenerator, Prior};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn paper_instance(budget: f64) -> JspInstance {
        JspInstance::with_uniform_prior(paper_example_pool(), budget).unwrap()
    }

    #[test]
    fn mvjs_finds_the_mv_optimal_jury_on_the_paper_pool() {
        // With 7 candidates MVJS is exact; at B = 20 the MV-optimal jury is
        // {A, C, G}, which the introduction describes as the best solution
        // found by the prior work.
        let result = MvjsSolver::new().solve(&paper_instance(20.0));
        let mut ids = result.jury.ids();
        ids.sort();
        assert_eq!(
            ids,
            vec![
                jury_model::WorkerId(0),
                jury_model::WorkerId(2),
                jury_model::WorkerId(6)
            ]
        );
        assert!(result.objective_value > 0.85 && result.objective_value < 0.87);
    }

    #[test]
    fn optjs_jury_has_higher_bv_quality_than_mvjs_jury() {
        // The core claim of the system comparison: evaluating each system's
        // returned jury under its own strategy, OPTJS ≥ MVJS.
        let bv_objective = BvObjective::new();
        for budget in [10.0, 15.0, 20.0, 25.0] {
            let instance = paper_instance(budget);
            let mvjs = MvjsSolver::new().solve(&instance);
            let optjs = AnnealingSolver::new(BvObjective::new()).solve(&instance);
            let optjs_quality = optjs.objective_value;
            let mvjs_quality = mvjs.objective_value;
            assert!(
                optjs_quality >= mvjs_quality - 1e-9,
                "budget {budget}: OPTJS {optjs_quality} < MVJS {mvjs_quality}"
            );
            // The MVJS jury re-evaluated under BV also cannot beat OPTJS.
            let mvjs_under_bv = bv_objective.evaluate(&mvjs.jury, instance.prior());
            assert!(optjs_quality >= mvjs_under_bv - 5e-3);
        }
    }

    #[test]
    fn mvjs_is_feasible_on_larger_random_pools() {
        let generator = GaussianWorkerGenerator::paper_defaults();
        let mut rng = StdRng::seed_from_u64(5);
        let pool = generator.generate(30, &mut rng);
        let instance = JspInstance::new(pool, 0.5, Prior::uniform()).unwrap();
        let result = MvjsSolver::new().solve(&instance);
        assert!(instance.is_feasible(&result.jury));
        assert!(result.objective_value >= 0.5);
        assert!(result.evaluations > 0);
    }

    #[test]
    fn top_quality_within_budget_respects_both_limits() {
        let instance = paper_instance(10.0);
        let jury = MvjsSolver::top_quality_within_budget(&instance, 3);
        assert!(jury.size() <= 3);
        assert!(jury.cost() <= 10.0 + 1e-9);
        // The best affordable worker (C, 0.8, $6) is picked first.
        assert!((jury.workers()[0].quality() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn zero_budget_gives_empty_jury() {
        let result = MvjsSolver::new().solve(&paper_instance(0.0));
        assert!(result.jury.is_empty());
        assert!((result.objective_value - 0.5).abs() < 1e-12);
    }
}
