//! The solver abstraction shared by all JSP algorithms.

use std::time::Duration;

use jury_model::Jury;

use crate::problem::JspInstance;

/// A precondition violation detected by a checked solve.
///
/// [`JurySolver::solve`] keeps its historical contract of panicking on
/// violated preconditions (experiment binaries rely on loud failures);
/// [`JurySolver::try_solve`] reports the same conditions as values so that
/// request-driven callers — `jury-service` in particular — can turn them
/// into API errors instead of crashing the process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveError {
    /// The candidate pool exceeds what the solver can enumerate.
    PoolTooLarge {
        /// Number of candidates in the instance.
        size: usize,
        /// Largest pool the solver accepts.
        max: usize,
    },
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveError::PoolTooLarge { size, max } => {
                write!(
                    f,
                    "pool of {size} candidates exceeds the solver limit of {max}"
                )
            }
        }
    }
}

impl std::error::Error for SolveError {}

/// The outcome of a JSP solver run.
#[derive(Debug, Clone, PartialEq)]
pub struct SolverResult {
    /// The selected jury `Ĵ` (possibly empty when nothing is affordable).
    pub jury: Jury,
    /// The objective value of the selected jury (a jury quality in `[0, 1]`).
    pub objective_value: f64,
    /// How many objective evaluations the search performed.
    pub evaluations: u64,
    /// Wall-clock time of the search.
    pub elapsed: Duration,
    /// The solver's name, for reports.
    pub solver: &'static str,
    /// Whether a [`crate::SearchBudget`] cut the search short. The jury is
    /// still the best found before the cutoff (anytime semantics); exact
    /// solvers and unbudgeted runs always report `false`.
    pub truncated: bool,
}

impl SolverResult {
    /// The jury cost of the selected jury.
    pub fn cost(&self) -> f64 {
        self.jury.cost()
    }

    /// The jury size of the selected jury.
    pub fn size(&self) -> usize {
        self.jury.size()
    }
}

/// A Jury Selection Problem solver.
pub trait JurySolver {
    /// The solver's name.
    fn name(&self) -> &'static str;

    /// Solves the instance, returning the selected jury and diagnostics.
    ///
    /// May panic if the instance violates a solver precondition (e.g. a pool
    /// too large to enumerate); use [`JurySolver::try_solve`] on
    /// request-driven paths that must not panic.
    fn solve(&self, instance: &JspInstance) -> SolverResult;

    /// Checked entry point: validates the solver's preconditions against the
    /// instance and reports violations as [`SolveError`]s instead of
    /// panicking. The default implementation accepts every instance.
    fn try_solve(&self, instance: &JspInstance) -> Result<SolverResult, SolveError> {
        Ok(self.solve(instance))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jury_model::Jury;

    #[test]
    fn result_helpers() {
        let jury = Jury::from_qualities(&[0.7, 0.8]).unwrap();
        let result = SolverResult {
            jury,
            objective_value: 0.8,
            evaluations: 3,
            elapsed: Duration::from_millis(5),
            solver: "test",
            truncated: false,
        };
        assert_eq!(result.size(), 2);
        assert_eq!(result.cost(), 0.0);
        assert_eq!(result.solver, "test");
    }
}
