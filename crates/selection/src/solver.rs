//! The solver abstraction shared by all JSP algorithms.

use std::time::Duration;

use jury_model::Jury;

use crate::problem::JspInstance;

/// The outcome of a JSP solver run.
#[derive(Debug, Clone, PartialEq)]
pub struct SolverResult {
    /// The selected jury `Ĵ` (possibly empty when nothing is affordable).
    pub jury: Jury,
    /// The objective value of the selected jury (a jury quality in `[0, 1]`).
    pub objective_value: f64,
    /// How many objective evaluations the search performed.
    pub evaluations: u64,
    /// Wall-clock time of the search.
    pub elapsed: Duration,
    /// The solver's name, for reports.
    pub solver: &'static str,
}

impl SolverResult {
    /// The jury cost of the selected jury.
    pub fn cost(&self) -> f64 {
        self.jury.cost()
    }

    /// The jury size of the selected jury.
    pub fn size(&self) -> usize {
        self.jury.size()
    }
}

/// A Jury Selection Problem solver.
pub trait JurySolver {
    /// The solver's name.
    fn name(&self) -> &'static str;

    /// Solves the instance, returning the selected jury and diagnostics.
    fn solve(&self, instance: &JspInstance) -> SolverResult;
}

#[cfg(test)]
mod tests {
    use super::*;
    use jury_model::Jury;

    #[test]
    fn result_helpers() {
        let jury = Jury::from_qualities(&[0.7, 0.8]).unwrap();
        let result = SolverResult {
            jury,
            objective_value: 0.8,
            evaluations: 3,
            elapsed: Duration::from_millis(5),
            solver: "test",
        };
        assert_eq!(result.size(), 2);
        assert_eq!(result.cost(), 0.0);
        assert_eq!(result.solver, "test");
    }
}
