//! Random-restart wrapper around the marginal-greedy forward selection.
//!
//! The marginal search ([`crate::GreedyMarginalSolver`]) is deterministic:
//! it always commits the best single-worker extension, so it lands in the
//! same local optimum every time. [`RestartSolver`] diversifies it the way
//! random-restart hill climbing diversifies a local search: restart 0 is the
//! plain marginal search, and every later restart first **plants** a random
//! affordable worker subset (covering a random fraction of the budget) and
//! only then lets the marginal rounds fill the rest. Different plantings
//! reach different local optima; the best jury over all restarts — scored by
//! the batch objective — wins.
//!
//! Budget checkpoints ride the marginal search's own probe loop, so a
//! truncated run keeps the jury committed so far (anytime semantics), and a
//! fixed seed makes the whole race reproducible.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use jury_model::Jury;

use crate::annealing::greedy_candidate_juries;
use crate::budget::SearchBudget;
use crate::greedy::MarginalSearch;
use crate::objective::JuryObjective;
use crate::parallel::{ParallelPolicy, SharedBestBound};
use crate::problem::JspInstance;
use crate::solver::{JurySolver, SolverResult};

/// Slack for the cross-lane restart acceptance cut: a planting whose
/// session-guided value trails the published best by more than this is
/// returned without the final batch re-score. The slack absorbs the BV
/// session's bucket-grid quantization (~1e-2 on the shipped grids), so a
/// cut restart provably could not have won the fold.
const RESTART_ACCEPTANCE_SLACK: f64 = 0.05;

/// Configuration of the randomized-restart search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RestartConfig {
    /// Independent restarts; restart 0 is the plain (unseeded) marginal
    /// search, later restarts plant a random worker subset first.
    pub restarts: usize,
    /// RNG seed (restart `r` draws from `seed + r`), so runs are
    /// reproducible.
    pub seed: u64,
    /// Upper bound on the budget fraction a random planting may cover, in
    /// `(0, 1]`; each restart draws its own fraction below this.
    pub max_seed_fraction: f64,
    /// Whether the greedy top-quality and quality-per-cost fills also
    /// compete as candidate solutions.
    pub use_greedy_candidates: bool,
    /// How the restart units are spread across threads. Each restart's
    /// planting is a pure function of `(seed, restart index)` — the lane a
    /// restart lands on never changes its RNG stream — and the fold
    /// replays the sequential restart order, so the solved jury is
    /// identical at every thread count.
    pub parallel: ParallelPolicy,
}

impl Default for RestartConfig {
    fn default() -> Self {
        RestartConfig {
            restarts: 4,
            seed: 0xD1CE,
            max_seed_fraction: 0.5,
            use_greedy_candidates: true,
            parallel: ParallelPolicy::Sequential,
        }
    }
}

impl RestartConfig {
    /// Sets the number of restarts (at least one).
    pub fn with_restarts(mut self, restarts: usize) -> Self {
        self.restarts = restarts.max(1);
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the maximum planted budget fraction (clamped into `(0, 1]`).
    pub fn with_max_seed_fraction(mut self, fraction: f64) -> Self {
        self.max_seed_fraction = fraction.clamp(f64::MIN_POSITIVE, 1.0);
        self
    }

    /// Enables or disables the greedy candidate juries.
    pub fn with_greedy_candidates(mut self, enabled: bool) -> Self {
        self.use_greedy_candidates = enabled;
        self
    }

    /// Sets the restart fan-out policy (see [`RestartConfig::parallel`]).
    pub fn with_parallel(mut self, parallel: ParallelPolicy) -> Self {
        self.parallel = parallel;
        self
    }
}

/// The random-restart marginal-search solver; see the module docs.
pub struct RestartSolver<O: JuryObjective> {
    objective: O,
    config: RestartConfig,
    budget: SearchBudget,
}

impl<O: JuryObjective> RestartSolver<O> {
    /// Creates a solver with the default configuration.
    pub fn new(objective: O) -> Self {
        RestartSolver {
            objective,
            config: RestartConfig::default(),
            budget: SearchBudget::unlimited(),
        }
    }

    /// Creates a solver with a custom configuration.
    pub fn with_config(objective: O, config: RestartConfig) -> Self {
        RestartSolver {
            objective,
            config,
            budget: SearchBudget::unlimited(),
        }
    }

    /// Bounds the search with a cooperative compute budget; the marginal
    /// probe loops poll it and a truncated run keeps its best-so-far jury.
    pub fn with_budget(mut self, budget: SearchBudget) -> Self {
        self.budget = budget;
        self
    }

    /// The restart configuration.
    pub fn config(&self) -> &RestartConfig {
        &self.config
    }

    /// The underlying objective.
    pub fn objective(&self) -> &O {
        &self.objective
    }

    /// One restart. Returns the jury, its **batch** objective value, and
    /// whether the budget cut the run short.
    ///
    /// Crate-visible so the portfolio solver can race restarts one at a
    /// time with exactly the per-restart behaviour of a standalone
    /// [`RestartSolver::solve`] call.
    pub(crate) fn run_once(&self, instance: &JspInstance, restart: usize) -> (Jury, f64, bool) {
        self.run_once_shared(instance, restart, None)
    }

    /// [`run_once`](Self::run_once) with an optional cross-lane best bound.
    ///
    /// When a bound is supplied (only by the threaded portfolio under a
    /// limited budget), a finished restart whose session-guided value
    /// trails the published best by more than [`RESTART_ACCEPTANCE_SLACK`]
    /// skips its final batch re-score — it provably cannot win the fold —
    /// and a restart that *is* re-scored publishes its value back. With
    /// `bound = None` the run is bit-identical to the pre-parallel solver.
    pub(crate) fn run_once_shared(
        &self,
        instance: &JspInstance,
        restart: usize,
        bound: Option<&SharedBestBound>,
    ) -> (Jury, f64, bool) {
        let workers = instance.pool().workers();
        let mut search = MarginalSearch::new(&self.objective, instance).with_budget(self.budget);
        if restart > 0 {
            let n = instance.num_candidates();
            let mut rng = StdRng::seed_from_u64(self.config.seed.wrapping_add(restart as u64));
            let mut order: Vec<usize> = (0..n).collect();
            for i in (1..n).rev() {
                let j = rng.gen_range(0..=i);
                order.swap(i, j);
            }
            // Plant random workers up to a random fraction of the budget;
            // the marginal rounds then fill what remains.
            let target = instance.budget() * rng.gen::<f64>() * self.config.max_seed_fraction;
            let mut planted = Vec::new();
            let mut spent = 0.0;
            for index in order {
                let cost = workers[index].cost();
                if spent + cost <= target + 1e-12 {
                    spent += cost;
                    planted.push(index);
                }
            }
            search.preseed(workers, &planted, instance.budget());
        }
        search.extend_to(workers, instance.budget());
        let jury = search.jury().clone();
        if let Some(shared) = bound {
            let guided = search.current_value();
            if guided + RESTART_ACCEPTANCE_SLACK < shared.current() {
                // Acceptance cut: even granting the full quantization slack,
                // this planting loses to a value some lane already scored by
                // batch — returning the (strictly lower) guided value keeps
                // the fold's winner unchanged while saving the re-score.
                return (jury, guided, search.truncated());
            }
            let value = self.objective.evaluate(&jury, instance.prior());
            shared.observe(value);
            return (jury, value, search.truncated());
        }
        let value = self.objective.evaluate(&jury, instance.prior());
        (jury, value, search.truncated())
    }
}

/// One restart's outcome: the planted-and-searched jury, its value, and
/// whether the budget cut the unit short.
type RestartUnit = (Jury, f64, bool);

impl<O: JuryObjective> JurySolver for RestartSolver<O> {
    fn name(&self) -> &'static str {
        "random-restart"
    }

    fn solve(&self, instance: &JspInstance) -> SolverResult {
        let start = Instant::now();
        let evaluations_before = self.objective.evaluations();

        let mut best_jury = Jury::empty();
        let mut best_value = self.objective.evaluate(&best_jury, instance.prior());
        let mut truncated = false;

        let restarts = self.config.restarts.max(1);
        let lanes = self.config.parallel.lanes(restarts);
        if lanes > 1 {
            // Fan-out: lane `t` runs restarts `t, t + lanes, …`. Each
            // restart's planting depends only on `(seed, restart index)`,
            // so the set of candidate juries is the sequential one; the
            // fold below replays the sequential restart order (strict
            // improvement), so the winner is too.
            use std::sync::atomic::{AtomicBool, Ordering};
            let cut_flag = AtomicBool::new(false);
            let lane_results: Vec<Vec<(usize, RestartUnit)>> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..lanes)
                    .map(|lane| {
                        let cut_flag = &cut_flag;
                        scope.spawn(move || {
                            let mut out = Vec::new();
                            for restart in (lane..restarts).step_by(lanes) {
                                if self.budget.exhausted(self.objective.evaluations()) {
                                    cut_flag.store(true, Ordering::Relaxed);
                                    break;
                                }
                                out.push((restart, self.run_once(instance, restart)));
                            }
                            out
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|handle| handle.join().expect("restart lane panicked"))
                    .collect()
            });
            truncated |= cut_flag.load(Ordering::Relaxed);
            let mut ordered: Vec<Option<RestartUnit>> = vec![None; restarts];
            for (restart, result) in lane_results.into_iter().flatten() {
                ordered[restart] = Some(result);
            }
            for (jury, value, cut) in ordered.into_iter().flatten() {
                truncated |= cut;
                if value > best_value {
                    best_value = value;
                    best_jury = jury;
                }
            }
        } else {
            for restart in 0..restarts {
                if self.budget.exhausted(self.objective.evaluations()) {
                    truncated = true;
                    break;
                }
                let (jury, value, cut) = self.run_once(instance, restart);
                truncated |= cut;
                if value > best_value {
                    best_value = value;
                    best_jury = jury;
                }
            }
        }

        if self.config.use_greedy_candidates {
            for jury in greedy_candidate_juries(instance) {
                let value = self.objective.evaluate(&jury, instance.prior());
                if value > best_value {
                    best_value = value;
                    best_jury = jury;
                }
            }
        }

        SolverResult {
            jury: best_jury,
            objective_value: best_value,
            evaluations: self.objective.evaluations() - evaluations_before,
            elapsed: start.elapsed(),
            solver: self.name(),
            truncated,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive::ExhaustiveSolver;
    use crate::greedy::GreedyMarginalSolver;
    use crate::objective::BvObjective;
    use jury_model::paper_example_pool;

    fn paper_instance(budget: f64) -> JspInstance {
        JspInstance::with_uniform_prior(paper_example_pool(), budget).unwrap()
    }

    #[test]
    fn config_builders_clamp_and_update() {
        let config = RestartConfig::default()
            .with_restarts(0)
            .with_seed(9)
            .with_max_seed_fraction(2.0)
            .with_greedy_candidates(false);
        assert_eq!(config.restarts, 1);
        assert_eq!(config.seed, 9);
        assert!((config.max_seed_fraction - 1.0).abs() < 1e-12);
        assert!(!config.use_greedy_candidates);
    }

    #[test]
    fn results_are_feasible_and_deterministic() {
        let instance = paper_instance(14.0);
        let a = RestartSolver::new(BvObjective::new()).solve(&instance);
        let b = RestartSolver::new(BvObjective::new()).solve(&instance);
        assert!(instance.is_feasible(&a.jury));
        assert_eq!(a.jury.ids(), b.jury.ids(), "same seed, same jury");
        assert!(!a.truncated);
    }

    #[test]
    fn never_worse_than_the_plain_marginal_search() {
        // Restart 0 *is* the plain marginal search, so the race can only
        // improve on it.
        for budget in [3.0, 5.0, 10.0, 15.0, 20.0] {
            let instance = paper_instance(budget);
            let restarts = RestartSolver::new(BvObjective::new()).solve(&instance);
            let marginal = GreedyMarginalSolver::new(BvObjective::new()).solve(&instance);
            assert!(
                restarts.objective_value >= marginal.objective_value - 1e-9,
                "budget {budget}: restarts {} vs marginal {}",
                restarts.objective_value,
                marginal.objective_value
            );
        }
    }

    #[test]
    fn dominated_by_the_exhaustive_optimum() {
        for budget in [5.0, 10.0, 15.0] {
            let instance = paper_instance(budget);
            let optimal = ExhaustiveSolver::new(BvObjective::new()).solve(&instance);
            let restarts = RestartSolver::new(BvObjective::new()).solve(&instance);
            assert!(restarts.objective_value <= optimal.objective_value + 1e-9);
        }
    }

    #[test]
    fn evaluation_cap_truncates_with_a_feasible_jury() {
        let instance = paper_instance(15.0);
        let solver = RestartSolver::new(BvObjective::new())
            .with_budget(SearchBudget::unlimited().with_max_evaluations(3));
        let result = solver.solve(&instance);
        assert!(result.truncated);
        assert!(instance.is_feasible(&result.jury));
    }

    #[test]
    fn empty_pool_and_zero_budget_return_empty_juries() {
        let empty = JspInstance::with_uniform_prior(jury_model::WorkerPool::new(), 1.0).unwrap();
        let result = RestartSolver::new(BvObjective::new()).solve(&empty);
        assert!(result.jury.is_empty());

        let broke = paper_instance(0.0);
        let result = RestartSolver::new(BvObjective::new()).solve(&broke);
        assert!(result.jury.is_empty());
    }
}
