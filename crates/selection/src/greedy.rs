//! Greedy JSP heuristics.
//!
//! Three greedy baselines bracket the simulated-annealing heuristic:
//!
//! * [`GreedyQualitySolver`] — walk the candidates in decreasing quality and
//!   take every worker that still fits in the budget. This is optimal when
//!   all costs are equal (Lemma 2) but can waste budget on expensive workers
//!   otherwise.
//! * [`GreedyRatioSolver`] — the knapsack-style heuristic: walk candidates in
//!   decreasing information-per-cost, where a worker's "information" is her
//!   log-odds weight `φ(max(q, 1 − q))`.
//! * [`GreedyMarginalSolver`] — objective-driven forward selection: each
//!   round scores **every** affordable single-worker extension of the
//!   current jury and commits the best one. Through the objective's
//!   incremental session a round costs pool-many `O(buckets)` push/evaluate/
//!   pop probes instead of pool-many from-scratch JQ computations.
//!
//! The first two also serve as cheap initial solutions for the annealing
//! search.

use std::time::Instant;

use jury_model::{Jury, Prior, Worker};

use crate::budget::SearchBudget;
use crate::objective::{IncrementalSession, JuryObjective};
use crate::parallel::ParallelPolicy;
use crate::problem::JspInstance;
use crate::solver::{JurySolver, SolverResult};

/// Greedily adds workers in decreasing quality while the budget allows.
pub struct GreedyQualitySolver<O: JuryObjective> {
    objective: O,
}

impl<O: JuryObjective> GreedyQualitySolver<O> {
    /// Creates the solver.
    pub fn new(objective: O) -> Self {
        GreedyQualitySolver { objective }
    }
}

/// Greedily adds workers in decreasing `φ(q) / cost` ratio while the budget
/// allows.
pub struct GreedyRatioSolver<O: JuryObjective> {
    objective: O,
}

impl<O: JuryObjective> GreedyRatioSolver<O> {
    /// Creates the solver.
    pub fn new(objective: O) -> Self {
        GreedyRatioSolver { objective }
    }
}

fn greedy_by_key<O, K>(
    solver_name: &'static str,
    objective: &O,
    instance: &JspInstance,
    key: K,
) -> SolverResult
where
    O: JuryObjective,
    K: Fn(&Worker) -> f64,
{
    let start = Instant::now();
    let evaluations_before = objective.evaluations();
    let mut candidates: Vec<Worker> = instance.pool().workers().to_vec();
    candidates.sort_by(|a, b| {
        key(b)
            .partial_cmp(&key(a))
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.id().cmp(&b.id()))
    });

    let mut jury = Jury::empty();
    let mut spent = 0.0;
    for worker in candidates {
        if spent + worker.cost() <= instance.budget() + 1e-12 {
            spent += worker.cost();
            jury.push(worker);
        }
    }
    let value = objective.evaluate(&jury, instance.prior());
    SolverResult {
        jury,
        objective_value: value,
        evaluations: objective.evaluations() - evaluations_before,
        elapsed: start.elapsed(),
        solver: solver_name,
        truncated: false,
    }
}

impl<O: JuryObjective> JurySolver for GreedyQualitySolver<O> {
    fn name(&self) -> &'static str {
        "greedy-quality"
    }

    fn solve(&self, instance: &JspInstance) -> SolverResult {
        greedy_by_key(self.name(), &self.objective, instance, |w| {
            w.effective_quality()
        })
    }
}

impl<O: JuryObjective> JurySolver for GreedyRatioSolver<O> {
    fn name(&self) -> &'static str {
        "greedy-ratio"
    }

    fn solve(&self, instance: &JspInstance) -> SolverResult {
        greedy_by_key(self.name(), &self.objective, instance, |w| {
            // Zero-cost workers are infinitely attractive; order them by
            // quality among themselves.
            let cost = w.cost().max(1e-9);
            w.log_odds() / cost
        })
    }
}

/// Objective-driven forward selection: each round evaluates every affordable
/// single-worker extension of the current jury and keeps the best (ties go
/// to the earlier pool position, so runs are deterministic). Under `JQ(BV)`
/// adding a worker never lowers the objective (Lemma 1), so rounds continue
/// until no candidate fits the remaining budget; objectives that are *not*
/// monotone in the jury size — `JQ(MV)` drops when a weak even-ing member
/// joins — are protected by a stop rule: the search ends as soon as the
/// best extension scores below the current jury.
pub struct GreedyMarginalSolver<O: JuryObjective> {
    objective: O,
    budget: SearchBudget,
    parallel: ParallelPolicy,
}

impl<O: JuryObjective> GreedyMarginalSolver<O> {
    /// Creates the solver.
    pub fn new(objective: O) -> Self {
        GreedyMarginalSolver {
            objective,
            budget: SearchBudget::unlimited(),
            parallel: ParallelPolicy::Sequential,
        }
    }

    /// Bounds the forward selection with a cooperative compute budget: the
    /// probe loop polls it and stops early when it is exhausted, marking
    /// the result [`SolverResult::truncated`] while keeping the jury
    /// committed so far (anytime semantics).
    pub fn with_budget(mut self, budget: SearchBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Spreads each round's pool-many probes across threads (each thread
    /// replays the round's base jury into its own incremental session, so
    /// probe values are identical to the sequential ones and the round
    /// winner — chosen by the sequential pool-order scan over the collected
    /// values — is thread-count-invariant). The default is
    /// [`ParallelPolicy::Sequential`], a bit-identical replay of the
    /// pre-parallel solver.
    pub fn with_parallelism(mut self, parallel: ParallelPolicy) -> Self {
        self.parallel = parallel;
        self
    }
}

/// Probe values within this tolerance are treated as tied. JQ plateaus are
/// real — e.g. every second juror added to a strong first one leaves the
/// two-juror BV quality at the stronger quality — and on a plateau the
/// push/value/pop probes return values separated only by floating-point
/// drift of the incremental engine. Without a tolerance that drift, not the
/// deterministic earlier-pool-position rule, would pick the committed
/// worker (and could trip the stop rule on an exact tie).
const PROBE_TIE_TOLERANCE: f64 = 1e-9;

/// Mutable state of a marginal-gain forward selection, shared by
/// [`GreedyMarginalSolver`] and the warm-started budget sweep of
/// [`crate::BudgetQualityTable::build_warm`] (which carries one state — and
/// one incremental session — across consecutive budgets instead of
/// re-solving cold).
pub(crate) struct MarginalSearch<'a, O: JuryObjective> {
    objective: &'a O,
    prior: Prior,
    selected: Vec<bool>,
    jury: Jury,
    spent: f64,
    session: Option<Box<dyn IncrementalSession + 'a>>,
    current_value: f64,
    budget: SearchBudget,
    truncated: bool,
    parallel: ParallelPolicy,
    /// Owned copy of the instance, present only in threaded mode: probe
    /// threads open their own sessions from it (sessions are not `Send`,
    /// so each is created and dropped inside its thread).
    parallel_instance: Option<JspInstance>,
}

impl<'a, O: JuryObjective> MarginalSearch<'a, O> {
    /// Opens a search over the instance's pool, with the objective's
    /// incremental session (when it offers one) as the probe engine.
    pub(crate) fn new(objective: &'a O, instance: &JspInstance) -> Self {
        let session = objective.incremental_session(instance);
        let jury = Jury::empty();
        let current_value = match &session {
            Some(live) => live.value(),
            None => objective.evaluate(&jury, instance.prior()),
        };
        MarginalSearch {
            objective,
            prior: instance.prior(),
            selected: vec![false; instance.num_candidates()],
            jury,
            spent: 0.0,
            session,
            current_value,
            budget: SearchBudget::unlimited(),
            truncated: false,
            parallel: ParallelPolicy::Sequential,
            parallel_instance: None,
        }
    }

    /// Bounds the probe loop with a cooperative compute budget; see
    /// [`GreedyMarginalSolver::with_budget`].
    pub(crate) fn with_budget(mut self, budget: SearchBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Enables threaded probe rounds (see
    /// [`GreedyMarginalSolver::with_parallelism`]). The instance is cloned
    /// only when the policy actually spawns threads; sequential searches
    /// keep their zero-copy construction.
    pub(crate) fn with_parallelism(
        mut self,
        parallel: ParallelPolicy,
        instance: &JspInstance,
    ) -> Self {
        self.parallel = parallel;
        if parallel.is_threaded() {
            self.parallel_instance = Some(instance.clone());
        }
        self
    }

    /// The session-guided value of the committed jury (quantized when a
    /// session drives the search). Exposed so the restart fan-out can
    /// compare a planting against the cross-lane bound without paying a
    /// batch evaluation.
    pub(crate) fn current_value(&self) -> f64 {
        self.current_value
    }

    /// Whether a budget checkpoint cut the last `extend_to` short.
    pub(crate) fn truncated(&self) -> bool {
        self.truncated
    }

    /// The jury committed so far.
    pub(crate) fn jury(&self) -> &Jury {
        &self.jury
    }

    /// The budget the committed jury requires.
    pub(crate) fn spent(&self) -> f64 {
        self.spent
    }

    /// Commits the given pool positions outright — no probing, no stop rule
    /// — skipping indices already selected or unaffordable under `budget`.
    /// This is how [`crate::RestartSolver`] diversifies: each randomized
    /// restart plants a few workers before the marginal rounds take over.
    /// Costs at most one objective evaluation (to refresh the current value
    /// when the session is absent).
    pub(crate) fn preseed(&mut self, workers: &[Worker], indices: &[usize], budget: f64) {
        let mut committed = false;
        for &index in indices {
            let worker = &workers[index];
            if self.selected[index] || self.spent + worker.cost() > budget + 1e-12 {
                continue;
            }
            self.selected[index] = true;
            self.spent += worker.cost();
            self.jury.push(worker.clone());
            if let Some(live) = &mut self.session {
                live.push(worker);
            }
            committed = true;
        }
        if committed {
            self.current_value = match &self.session {
                Some(live) => live.value(),
                None => self.objective.evaluate(&self.jury, self.prior),
            };
        }
    }

    /// Greedy rounds up to `budget`: each round scores **every** affordable
    /// single-worker extension of the current jury (in place through the
    /// session: push, read, pop) and commits the best one; ties keep the
    /// earlier pool position, so runs are deterministic. The search stops
    /// when nothing fits or — protecting objectives that are not monotone
    /// in the jury size, like `JQ(MV)` — when the best extension scores
    /// below the current jury; ties still commit, so the BV search keeps
    /// filling the budget. Calling it again with a larger budget resumes
    /// from the committed state (the warm-start contract).
    pub(crate) fn extend_to(&mut self, workers: &[Worker], budget: f64) {
        if self.parallel.is_threaded() && self.parallel_instance.is_some() && !workers.is_empty() {
            let lanes = self.parallel.lanes(workers.len());
            return self.extend_to_parallel(workers, budget, lanes);
        }
        loop {
            let mut best: Option<(usize, f64)> = None;
            for (index, worker) in workers.iter().enumerate() {
                // Cooperative checkpoint, placed between probes so the
                // push/pop session stays balanced; an exhausted budget
                // abandons the uncommitted round and keeps the jury built
                // so far (anytime semantics).
                if self.budget.exhausted(self.objective.evaluations()) {
                    self.truncated = true;
                    return;
                }
                if self.selected[index] || self.spent + worker.cost() > budget + 1e-12 {
                    continue;
                }
                let mut session_broken = false;
                let mut value = match &mut self.session {
                    Some(live) => {
                        live.push(worker);
                        let value = live.value();
                        session_broken = !live.pop(worker);
                        value
                    }
                    None => self
                        .objective
                        .evaluate(&self.jury.with_worker(worker.clone()), self.prior),
                };
                if session_broken {
                    // Cannot happen with the shipped engines; guard against
                    // misbehaving third-party sessions by falling back to
                    // batch evaluation for the rest of the search.
                    self.session = None;
                    value = self
                        .objective
                        .evaluate(&self.jury.with_worker(worker.clone()), self.prior);
                }
                if best.is_none_or(|(_, best_value)| value > best_value + PROBE_TIE_TOLERANCE) {
                    best = Some((index, value));
                }
            }
            let Some((index, best_value)) = best else {
                break;
            };
            if best_value < self.current_value - PROBE_TIE_TOLERANCE {
                break;
            }
            self.selected[index] = true;
            self.spent += workers[index].cost();
            self.jury.push(workers[index].clone());
            if let Some(live) = &mut self.session {
                live.push(&workers[index]);
            }
            self.current_value = best_value;
        }
    }

    /// [`extend_to`](Self::extend_to) with each round's probes spread over
    /// `lanes` scoped threads. Every lane opens its own incremental session
    /// (sessions are not `Send`) and replays the round's base jury, so each
    /// probe value depends only on `(base jury, candidate)` — never on the
    /// interleaving. The round winner is then chosen by the **same**
    /// pool-order tie-tolerance scan as the sequential loop over the
    /// collected values, which is what makes the committed jury invariant
    /// in the thread count. The stop rule and commit path are unchanged.
    fn extend_to_parallel(&mut self, workers: &[Worker], budget: f64, lanes: usize) {
        use std::sync::atomic::{AtomicBool, Ordering};

        let instance = self
            .parallel_instance
            .clone()
            .expect("threaded extend_to requires a cloned instance");
        let objective = self.objective;
        let prior = self.prior;
        let search_budget = self.budget;

        loop {
            // Fix the round's candidate set up front so every lane probes
            // the same base jury.
            let candidates: Vec<usize> = (0..workers.len())
                .filter(|&i| !self.selected[i] && self.spent + workers[i].cost() <= budget + 1e-12)
                .collect();
            if candidates.is_empty() {
                break;
            }
            let base_members: Vec<Worker> = self.jury.workers().to_vec();
            let cut = AtomicBool::new(false);

            let lane_results: Vec<Vec<(usize, f64)>> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..lanes)
                    .map(|lane| {
                        let candidates = &candidates;
                        let base_members = &base_members;
                        let instance = &instance;
                        let cut = &cut;
                        scope.spawn(move || {
                            let mut results: Vec<(usize, f64)> = Vec::new();
                            let mut session = objective.incremental_session(instance);
                            if let Some(live) = &mut session {
                                for member in base_members {
                                    live.push(member);
                                }
                            }
                            for (slot, &index) in candidates.iter().enumerate() {
                                if slot % lanes != lane {
                                    continue;
                                }
                                // Cooperative checkpoint between probes; a
                                // cut observed by any lane stops them all.
                                if cut.load(Ordering::Relaxed)
                                    || search_budget.exhausted(objective.evaluations())
                                {
                                    cut.store(true, Ordering::Relaxed);
                                    break;
                                }
                                let worker = &workers[index];
                                let mut session_broken = false;
                                let mut value = match &mut session {
                                    Some(live) => {
                                        live.push(worker);
                                        let value = live.value();
                                        session_broken = !live.pop(worker);
                                        value
                                    }
                                    None => objective.evaluate(
                                        &Jury::new(base_members.clone())
                                            .with_worker(worker.clone()),
                                        prior,
                                    ),
                                };
                                if session_broken {
                                    session = None;
                                    value = objective.evaluate(
                                        &Jury::new(base_members.clone())
                                            .with_worker(worker.clone()),
                                        prior,
                                    );
                                }
                                results.push((index, value));
                            }
                            results
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|handle| handle.join().expect("probe lane panicked"))
                    .collect()
            });

            if cut.load(Ordering::Relaxed) {
                // Abandon the uncommitted round, exactly like the
                // sequential checkpoint (anytime semantics).
                self.truncated = true;
                return;
            }

            let mut values: Vec<Option<f64>> = vec![None; workers.len()];
            for (index, value) in lane_results.into_iter().flatten() {
                values[index] = Some(value);
            }
            // The sequential scan, replayed over the collected values: the
            // chained tie-tolerance comparison is order-sensitive, so the
            // winner must be chosen in pool order, not per-lane.
            let mut best: Option<(usize, f64)> = None;
            for (index, value) in values.iter().enumerate() {
                let Some(value) = *value else { continue };
                if best.is_none_or(|(_, best_value)| value > best_value + PROBE_TIE_TOLERANCE) {
                    best = Some((index, value));
                }
            }
            let Some((index, best_value)) = best else {
                break;
            };
            if best_value < self.current_value - PROBE_TIE_TOLERANCE {
                break;
            }
            self.selected[index] = true;
            self.spent += workers[index].cost();
            self.jury.push(workers[index].clone());
            if let Some(live) = &mut self.session {
                live.push(&workers[index]);
            }
            self.current_value = best_value;
        }
    }
}

impl<O: JuryObjective> JurySolver for GreedyMarginalSolver<O> {
    fn name(&self) -> &'static str {
        "greedy-marginal"
    }

    fn solve(&self, instance: &JspInstance) -> SolverResult {
        let start = Instant::now();
        let evaluations_before = self.objective.evaluations();
        let mut search = MarginalSearch::new(&self.objective, instance)
            .with_budget(self.budget)
            .with_parallelism(self.parallel, instance);
        search.extend_to(instance.pool().workers(), instance.budget());

        // Session values are quantized guidance; report the batch
        // objective's score of the final jury.
        let jury = search.jury().clone();
        let value = self.objective.evaluate(&jury, instance.prior());
        SolverResult {
            jury,
            objective_value: value,
            evaluations: self.objective.evaluations() - evaluations_before,
            elapsed: start.elapsed(),
            solver: self.name(),
            truncated: search.truncated(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive::ExhaustiveSolver;
    use crate::objective::BvObjective;
    use jury_model::{paper_example_pool, WorkerPool};

    fn paper_instance(budget: f64) -> JspInstance {
        JspInstance::with_uniform_prior(paper_example_pool(), budget).unwrap()
    }

    #[test]
    fn greedy_results_are_feasible() {
        for budget in [0.0, 5.0, 12.0, 20.0, 37.0] {
            let instance = paper_instance(budget);
            let by_quality = GreedyQualitySolver::new(BvObjective::new()).solve(&instance);
            let by_ratio = GreedyRatioSolver::new(BvObjective::new()).solve(&instance);
            assert!(
                instance.is_feasible(&by_quality.jury),
                "quality greedy at {budget}"
            );
            assert!(
                instance.is_feasible(&by_ratio.jury),
                "ratio greedy at {budget}"
            );
        }
    }

    #[test]
    fn greedy_is_dominated_by_exhaustive() {
        for budget in [5.0, 10.0, 15.0, 20.0] {
            let instance = paper_instance(budget);
            let optimal = ExhaustiveSolver::new(BvObjective::new()).solve(&instance);
            let by_quality = GreedyQualitySolver::new(BvObjective::new()).solve(&instance);
            let by_ratio = GreedyRatioSolver::new(BvObjective::new()).solve(&instance);
            assert!(by_quality.objective_value <= optimal.objective_value + 1e-9);
            assert!(by_ratio.objective_value <= optimal.objective_value + 1e-9);
        }
    }

    #[test]
    fn greedy_quality_is_optimal_under_uniform_costs() {
        // Lemma 2: with equal costs, taking the top-k workers by quality is
        // optimal.
        let pool = WorkerPool::from_qualities_and_costs(
            &[0.9, 0.55, 0.7, 0.8, 0.6],
            &[1.0, 1.0, 1.0, 1.0, 1.0],
        )
        .unwrap();
        let instance = JspInstance::with_uniform_prior(pool, 3.0).unwrap();
        let greedy = GreedyQualitySolver::new(BvObjective::new()).solve(&instance);
        let optimal = ExhaustiveSolver::new(BvObjective::new()).solve(&instance);
        assert!((greedy.objective_value - optimal.objective_value).abs() < 1e-9);
        assert_eq!(greedy.size(), 3);
    }

    #[test]
    fn ratio_greedy_prefers_cheap_informative_workers() {
        // Worker G (0.75, $3) has a much better ratio than A (0.77, $9).
        let instance = paper_instance(3.0);
        let result = GreedyRatioSolver::new(BvObjective::new()).solve(&instance);
        assert_eq!(result.size(), 1);
        assert!((result.jury.workers()[0].quality() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn zero_budget_gives_empty_jury() {
        let instance = paper_instance(0.0);
        let result = GreedyQualitySolver::new(BvObjective::new()).solve(&instance);
        assert!(result.jury.is_empty());
        assert!((result.objective_value - 0.5).abs() < 1e-12);
        assert_eq!(result.evaluations, 1);
    }

    #[test]
    fn marginal_greedy_is_feasible_and_dominated_by_exhaustive() {
        for budget in [3.0, 5.0, 10.0, 15.0, 20.0] {
            let instance = paper_instance(budget);
            let marginal = GreedyMarginalSolver::new(BvObjective::new()).solve(&instance);
            let optimal = ExhaustiveSolver::new(BvObjective::new()).solve(&instance);
            assert!(instance.is_feasible(&marginal.jury), "budget {budget}");
            assert!(marginal.objective_value <= optimal.objective_value + 1e-9);
            // On the paper pool the JQ-driven forward selection does at
            // least as well as the quality-ordered fill.
            let by_quality = GreedyQualitySolver::new(BvObjective::new()).solve(&instance);
            assert!(marginal.objective_value >= by_quality.objective_value - 1e-9);
        }
    }

    #[test]
    fn marginal_greedy_stops_when_extensions_hurt_the_mv_objective() {
        // JQ(MV) is not monotone in the jury size: after taking the 0.9
        // worker, extending to {0.9, 0.55} drops the MV quality from 0.9 to
        // 0.725. The stop rule must keep the better one-worker jury instead
        // of blindly filling the budget.
        use crate::objective::MvObjective;
        let pool = WorkerPool::from_qualities_and_costs(&[0.9, 0.55], &[1.0, 1.0]).unwrap();
        let instance = JspInstance::with_uniform_prior(pool, 2.0).unwrap();
        let result = GreedyMarginalSolver::new(MvObjective::new()).solve(&instance);
        assert_eq!(result.size(), 1);
        assert!((result.objective_value - 0.9).abs() < 1e-12);
        // BV keeps filling the budget on the same instance (monotone).
        let bv = GreedyMarginalSolver::new(BvObjective::new()).solve(&instance);
        assert_eq!(bv.size(), 2);
    }

    #[test]
    fn marginal_greedy_drives_the_incremental_session_on_large_pools() {
        // 30 candidates is above the exact cutoff, so scoring goes through
        // the incremental push/value/pop probes; results must match a
        // session-free run of the same strategy (evaluated per extension)
        // and stay deterministic.
        let qualities: Vec<f64> = (0..30).map(|i| 0.52 + 0.015 * i as f64).collect();
        let costs: Vec<f64> = (0..30).map(|i| 1.0 + (i % 5) as f64).collect();
        let pool = WorkerPool::from_qualities_and_costs(&qualities, &costs).unwrap();
        let instance = JspInstance::with_uniform_prior(pool, 12.0).unwrap();
        let a = GreedyMarginalSolver::new(BvObjective::new()).solve(&instance);
        let b = GreedyMarginalSolver::new(BvObjective::new()).solve(&instance);
        assert!(instance.is_feasible(&a.jury));
        assert!(!a.jury.is_empty());
        assert_eq!(a.jury.ids(), b.jury.ids());
        assert!(a.evaluations > 0);
        // The session quantizes to the pool grid; the greedy choice must
        // still land within the grid's error of the evaluate-driven pick.
        assert!(a.objective_value >= 0.5);
    }
}
