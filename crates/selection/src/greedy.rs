//! Greedy JSP heuristics.
//!
//! Two natural baselines bracket the simulated-annealing heuristic:
//!
//! * [`GreedyQualitySolver`] — walk the candidates in decreasing quality and
//!   take every worker that still fits in the budget. This is optimal when
//!   all costs are equal (Lemma 2) but can waste budget on expensive workers
//!   otherwise.
//! * [`GreedyRatioSolver`] — the knapsack-style heuristic: walk candidates in
//!   decreasing information-per-cost, where a worker's "information" is her
//!   log-odds weight `φ(max(q, 1 − q))`.
//!
//! Both also serve as cheap initial solutions for the annealing search.

use std::time::Instant;

use jury_model::{Jury, Worker};

use crate::objective::JuryObjective;
use crate::problem::JspInstance;
use crate::solver::{JurySolver, SolverResult};

/// Greedily adds workers in decreasing quality while the budget allows.
pub struct GreedyQualitySolver<O: JuryObjective> {
    objective: O,
}

impl<O: JuryObjective> GreedyQualitySolver<O> {
    /// Creates the solver.
    pub fn new(objective: O) -> Self {
        GreedyQualitySolver { objective }
    }
}

/// Greedily adds workers in decreasing `φ(q) / cost` ratio while the budget
/// allows.
pub struct GreedyRatioSolver<O: JuryObjective> {
    objective: O,
}

impl<O: JuryObjective> GreedyRatioSolver<O> {
    /// Creates the solver.
    pub fn new(objective: O) -> Self {
        GreedyRatioSolver { objective }
    }
}

fn greedy_by_key<O, K>(
    solver_name: &'static str,
    objective: &O,
    instance: &JspInstance,
    key: K,
) -> SolverResult
where
    O: JuryObjective,
    K: Fn(&Worker) -> f64,
{
    let start = Instant::now();
    let evaluations_before = objective.evaluations();
    let mut candidates: Vec<Worker> = instance.pool().workers().to_vec();
    candidates.sort_by(|a, b| {
        key(b)
            .partial_cmp(&key(a))
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.id().cmp(&b.id()))
    });

    let mut jury = Jury::empty();
    let mut spent = 0.0;
    for worker in candidates {
        if spent + worker.cost() <= instance.budget() + 1e-12 {
            spent += worker.cost();
            jury.push(worker);
        }
    }
    let value = objective.evaluate(&jury, instance.prior());
    SolverResult {
        jury,
        objective_value: value,
        evaluations: objective.evaluations() - evaluations_before,
        elapsed: start.elapsed(),
        solver: solver_name,
    }
}

impl<O: JuryObjective> JurySolver for GreedyQualitySolver<O> {
    fn name(&self) -> &'static str {
        "greedy-quality"
    }

    fn solve(&self, instance: &JspInstance) -> SolverResult {
        greedy_by_key(self.name(), &self.objective, instance, |w| {
            w.effective_quality()
        })
    }
}

impl<O: JuryObjective> JurySolver for GreedyRatioSolver<O> {
    fn name(&self) -> &'static str {
        "greedy-ratio"
    }

    fn solve(&self, instance: &JspInstance) -> SolverResult {
        greedy_by_key(self.name(), &self.objective, instance, |w| {
            // Zero-cost workers are infinitely attractive; order them by
            // quality among themselves.
            let cost = w.cost().max(1e-9);
            w.log_odds() / cost
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive::ExhaustiveSolver;
    use crate::objective::BvObjective;
    use jury_model::{paper_example_pool, WorkerPool};

    fn paper_instance(budget: f64) -> JspInstance {
        JspInstance::with_uniform_prior(paper_example_pool(), budget).unwrap()
    }

    #[test]
    fn greedy_results_are_feasible() {
        for budget in [0.0, 5.0, 12.0, 20.0, 37.0] {
            let instance = paper_instance(budget);
            let by_quality = GreedyQualitySolver::new(BvObjective::new()).solve(&instance);
            let by_ratio = GreedyRatioSolver::new(BvObjective::new()).solve(&instance);
            assert!(
                instance.is_feasible(&by_quality.jury),
                "quality greedy at {budget}"
            );
            assert!(
                instance.is_feasible(&by_ratio.jury),
                "ratio greedy at {budget}"
            );
        }
    }

    #[test]
    fn greedy_is_dominated_by_exhaustive() {
        for budget in [5.0, 10.0, 15.0, 20.0] {
            let instance = paper_instance(budget);
            let optimal = ExhaustiveSolver::new(BvObjective::new()).solve(&instance);
            let by_quality = GreedyQualitySolver::new(BvObjective::new()).solve(&instance);
            let by_ratio = GreedyRatioSolver::new(BvObjective::new()).solve(&instance);
            assert!(by_quality.objective_value <= optimal.objective_value + 1e-9);
            assert!(by_ratio.objective_value <= optimal.objective_value + 1e-9);
        }
    }

    #[test]
    fn greedy_quality_is_optimal_under_uniform_costs() {
        // Lemma 2: with equal costs, taking the top-k workers by quality is
        // optimal.
        let pool = WorkerPool::from_qualities_and_costs(
            &[0.9, 0.55, 0.7, 0.8, 0.6],
            &[1.0, 1.0, 1.0, 1.0, 1.0],
        )
        .unwrap();
        let instance = JspInstance::with_uniform_prior(pool, 3.0).unwrap();
        let greedy = GreedyQualitySolver::new(BvObjective::new()).solve(&instance);
        let optimal = ExhaustiveSolver::new(BvObjective::new()).solve(&instance);
        assert!((greedy.objective_value - optimal.objective_value).abs() < 1e-9);
        assert_eq!(greedy.size(), 3);
    }

    #[test]
    fn ratio_greedy_prefers_cheap_informative_workers() {
        // Worker G (0.75, $3) has a much better ratio than A (0.77, $9).
        let instance = paper_instance(3.0);
        let result = GreedyRatioSolver::new(BvObjective::new()).solve(&instance);
        assert_eq!(result.size(), 1);
        assert!((result.jury.workers()[0].quality() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn zero_budget_gives_empty_jury() {
        let instance = paper_instance(0.0);
        let result = GreedyQualitySolver::new(BvObjective::new()).solve(&instance);
        assert!(result.jury.is_empty());
        assert!((result.objective_value - 0.5).abs() < 1e-12);
        assert_eq!(result.evaluations, 1);
    }
}
