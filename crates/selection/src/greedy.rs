//! Greedy JSP heuristics.
//!
//! Three greedy baselines bracket the simulated-annealing heuristic:
//!
//! * [`GreedyQualitySolver`] — walk the candidates in decreasing quality and
//!   take every worker that still fits in the budget. This is optimal when
//!   all costs are equal (Lemma 2) but can waste budget on expensive workers
//!   otherwise.
//! * [`GreedyRatioSolver`] — the knapsack-style heuristic: walk candidates in
//!   decreasing information-per-cost, where a worker's "information" is her
//!   log-odds weight `φ(max(q, 1 − q))`.
//! * [`GreedyMarginalSolver`] — objective-driven forward selection: each
//!   round scores **every** affordable single-worker extension of the
//!   current jury and commits the best one. Through the objective's
//!   incremental session a round costs pool-many `O(buckets)` push/evaluate/
//!   pop probes instead of pool-many from-scratch JQ computations.
//!
//! The first two also serve as cheap initial solutions for the annealing
//! search.

use std::time::Instant;

use jury_model::{Jury, Worker};

use crate::objective::{IncrementalSession, JuryObjective};
use crate::problem::JspInstance;
use crate::solver::{JurySolver, SolverResult};

/// Greedily adds workers in decreasing quality while the budget allows.
pub struct GreedyQualitySolver<O: JuryObjective> {
    objective: O,
}

impl<O: JuryObjective> GreedyQualitySolver<O> {
    /// Creates the solver.
    pub fn new(objective: O) -> Self {
        GreedyQualitySolver { objective }
    }
}

/// Greedily adds workers in decreasing `φ(q) / cost` ratio while the budget
/// allows.
pub struct GreedyRatioSolver<O: JuryObjective> {
    objective: O,
}

impl<O: JuryObjective> GreedyRatioSolver<O> {
    /// Creates the solver.
    pub fn new(objective: O) -> Self {
        GreedyRatioSolver { objective }
    }
}

fn greedy_by_key<O, K>(
    solver_name: &'static str,
    objective: &O,
    instance: &JspInstance,
    key: K,
) -> SolverResult
where
    O: JuryObjective,
    K: Fn(&Worker) -> f64,
{
    let start = Instant::now();
    let evaluations_before = objective.evaluations();
    let mut candidates: Vec<Worker> = instance.pool().workers().to_vec();
    candidates.sort_by(|a, b| {
        key(b)
            .partial_cmp(&key(a))
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.id().cmp(&b.id()))
    });

    let mut jury = Jury::empty();
    let mut spent = 0.0;
    for worker in candidates {
        if spent + worker.cost() <= instance.budget() + 1e-12 {
            spent += worker.cost();
            jury.push(worker);
        }
    }
    let value = objective.evaluate(&jury, instance.prior());
    SolverResult {
        jury,
        objective_value: value,
        evaluations: objective.evaluations() - evaluations_before,
        elapsed: start.elapsed(),
        solver: solver_name,
    }
}

impl<O: JuryObjective> JurySolver for GreedyQualitySolver<O> {
    fn name(&self) -> &'static str {
        "greedy-quality"
    }

    fn solve(&self, instance: &JspInstance) -> SolverResult {
        greedy_by_key(self.name(), &self.objective, instance, |w| {
            w.effective_quality()
        })
    }
}

impl<O: JuryObjective> JurySolver for GreedyRatioSolver<O> {
    fn name(&self) -> &'static str {
        "greedy-ratio"
    }

    fn solve(&self, instance: &JspInstance) -> SolverResult {
        greedy_by_key(self.name(), &self.objective, instance, |w| {
            // Zero-cost workers are infinitely attractive; order them by
            // quality among themselves.
            let cost = w.cost().max(1e-9);
            w.log_odds() / cost
        })
    }
}

/// Objective-driven forward selection: each round evaluates every affordable
/// single-worker extension of the current jury and keeps the best (ties go
/// to the earlier pool position, so runs are deterministic). Under `JQ(BV)`
/// adding a worker never lowers the objective (Lemma 1), so rounds continue
/// until no candidate fits the remaining budget; objectives that are *not*
/// monotone in the jury size — `JQ(MV)` drops when a weak even-ing member
/// joins — are protected by a stop rule: the search ends as soon as the
/// best extension scores below the current jury.
pub struct GreedyMarginalSolver<O: JuryObjective> {
    objective: O,
}

impl<O: JuryObjective> GreedyMarginalSolver<O> {
    /// Creates the solver.
    pub fn new(objective: O) -> Self {
        GreedyMarginalSolver { objective }
    }
}

impl<O: JuryObjective> JurySolver for GreedyMarginalSolver<O> {
    fn name(&self) -> &'static str {
        "greedy-marginal"
    }

    fn solve(&self, instance: &JspInstance) -> SolverResult {
        let start = Instant::now();
        let evaluations_before = self.objective.evaluations();
        let workers = instance.pool().workers();
        let mut selected = vec![false; workers.len()];
        let mut jury = Jury::empty();
        let mut spent = 0.0f64;
        let mut session: Option<Box<dyn IncrementalSession + '_>> =
            self.objective.incremental_session(instance);
        let mut current_value = match &session {
            Some(live) => live.value(),
            None => self.objective.evaluate(&jury, instance.prior()),
        };

        loop {
            let mut best: Option<(usize, f64)> = None;
            for (index, worker) in workers.iter().enumerate() {
                if selected[index] || spent + worker.cost() > instance.budget() + 1e-12 {
                    continue;
                }
                let mut session_broken = false;
                let mut value = match &mut session {
                    Some(live) => {
                        // Probe the extension in place: push, read, pop.
                        live.push(worker);
                        let value = live.value();
                        session_broken = !live.pop(worker);
                        value
                    }
                    None => self
                        .objective
                        .evaluate(&jury.with_worker(worker.clone()), instance.prior()),
                };
                if session_broken {
                    // Cannot happen with the shipped engines; guard against
                    // misbehaving third-party sessions by falling back to
                    // batch evaluation for the rest of the search.
                    session = None;
                    value = self
                        .objective
                        .evaluate(&jury.with_worker(worker.clone()), instance.prior());
                }
                if best.is_none_or(|(_, best_value)| value > best_value) {
                    best = Some((index, value));
                }
            }
            let Some((index, best_value)) = best else {
                break;
            };
            // Stop rule for non-monotone objectives (MV): committing an
            // extension that scores below the current jury can only hurt.
            // Ties still commit, so the BV search keeps filling the budget.
            if best_value < current_value {
                break;
            }
            selected[index] = true;
            spent += workers[index].cost();
            jury.push(workers[index].clone());
            if let Some(live) = &mut session {
                live.push(&workers[index]);
            }
            current_value = best_value;
        }

        // Session values are quantized guidance; report the batch
        // objective's score of the final jury.
        let value = self.objective.evaluate(&jury, instance.prior());
        SolverResult {
            jury,
            objective_value: value,
            evaluations: self.objective.evaluations() - evaluations_before,
            elapsed: start.elapsed(),
            solver: self.name(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive::ExhaustiveSolver;
    use crate::objective::BvObjective;
    use jury_model::{paper_example_pool, WorkerPool};

    fn paper_instance(budget: f64) -> JspInstance {
        JspInstance::with_uniform_prior(paper_example_pool(), budget).unwrap()
    }

    #[test]
    fn greedy_results_are_feasible() {
        for budget in [0.0, 5.0, 12.0, 20.0, 37.0] {
            let instance = paper_instance(budget);
            let by_quality = GreedyQualitySolver::new(BvObjective::new()).solve(&instance);
            let by_ratio = GreedyRatioSolver::new(BvObjective::new()).solve(&instance);
            assert!(
                instance.is_feasible(&by_quality.jury),
                "quality greedy at {budget}"
            );
            assert!(
                instance.is_feasible(&by_ratio.jury),
                "ratio greedy at {budget}"
            );
        }
    }

    #[test]
    fn greedy_is_dominated_by_exhaustive() {
        for budget in [5.0, 10.0, 15.0, 20.0] {
            let instance = paper_instance(budget);
            let optimal = ExhaustiveSolver::new(BvObjective::new()).solve(&instance);
            let by_quality = GreedyQualitySolver::new(BvObjective::new()).solve(&instance);
            let by_ratio = GreedyRatioSolver::new(BvObjective::new()).solve(&instance);
            assert!(by_quality.objective_value <= optimal.objective_value + 1e-9);
            assert!(by_ratio.objective_value <= optimal.objective_value + 1e-9);
        }
    }

    #[test]
    fn greedy_quality_is_optimal_under_uniform_costs() {
        // Lemma 2: with equal costs, taking the top-k workers by quality is
        // optimal.
        let pool = WorkerPool::from_qualities_and_costs(
            &[0.9, 0.55, 0.7, 0.8, 0.6],
            &[1.0, 1.0, 1.0, 1.0, 1.0],
        )
        .unwrap();
        let instance = JspInstance::with_uniform_prior(pool, 3.0).unwrap();
        let greedy = GreedyQualitySolver::new(BvObjective::new()).solve(&instance);
        let optimal = ExhaustiveSolver::new(BvObjective::new()).solve(&instance);
        assert!((greedy.objective_value - optimal.objective_value).abs() < 1e-9);
        assert_eq!(greedy.size(), 3);
    }

    #[test]
    fn ratio_greedy_prefers_cheap_informative_workers() {
        // Worker G (0.75, $3) has a much better ratio than A (0.77, $9).
        let instance = paper_instance(3.0);
        let result = GreedyRatioSolver::new(BvObjective::new()).solve(&instance);
        assert_eq!(result.size(), 1);
        assert!((result.jury.workers()[0].quality() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn zero_budget_gives_empty_jury() {
        let instance = paper_instance(0.0);
        let result = GreedyQualitySolver::new(BvObjective::new()).solve(&instance);
        assert!(result.jury.is_empty());
        assert!((result.objective_value - 0.5).abs() < 1e-12);
        assert_eq!(result.evaluations, 1);
    }

    #[test]
    fn marginal_greedy_is_feasible_and_dominated_by_exhaustive() {
        for budget in [3.0, 5.0, 10.0, 15.0, 20.0] {
            let instance = paper_instance(budget);
            let marginal = GreedyMarginalSolver::new(BvObjective::new()).solve(&instance);
            let optimal = ExhaustiveSolver::new(BvObjective::new()).solve(&instance);
            assert!(instance.is_feasible(&marginal.jury), "budget {budget}");
            assert!(marginal.objective_value <= optimal.objective_value + 1e-9);
            // On the paper pool the JQ-driven forward selection does at
            // least as well as the quality-ordered fill.
            let by_quality = GreedyQualitySolver::new(BvObjective::new()).solve(&instance);
            assert!(marginal.objective_value >= by_quality.objective_value - 1e-9);
        }
    }

    #[test]
    fn marginal_greedy_stops_when_extensions_hurt_the_mv_objective() {
        // JQ(MV) is not monotone in the jury size: after taking the 0.9
        // worker, extending to {0.9, 0.55} drops the MV quality from 0.9 to
        // 0.725. The stop rule must keep the better one-worker jury instead
        // of blindly filling the budget.
        use crate::objective::MvObjective;
        let pool = WorkerPool::from_qualities_and_costs(&[0.9, 0.55], &[1.0, 1.0]).unwrap();
        let instance = JspInstance::with_uniform_prior(pool, 2.0).unwrap();
        let result = GreedyMarginalSolver::new(MvObjective::new()).solve(&instance);
        assert_eq!(result.size(), 1);
        assert!((result.objective_value - 0.9).abs() < 1e-12);
        // BV keeps filling the budget on the same instance (monotone).
        let bv = GreedyMarginalSolver::new(BvObjective::new()).solve(&instance);
        assert_eq!(bv.size(), 2);
    }

    #[test]
    fn marginal_greedy_drives_the_incremental_session_on_large_pools() {
        // 30 candidates is above the exact cutoff, so scoring goes through
        // the incremental push/value/pop probes; results must match a
        // session-free run of the same strategy (evaluated per extension)
        // and stay deterministic.
        let qualities: Vec<f64> = (0..30).map(|i| 0.52 + 0.015 * i as f64).collect();
        let costs: Vec<f64> = (0..30).map(|i| 1.0 + (i % 5) as f64).collect();
        let pool = WorkerPool::from_qualities_and_costs(&qualities, &costs).unwrap();
        let instance = JspInstance::with_uniform_prior(pool, 12.0).unwrap();
        let a = GreedyMarginalSolver::new(BvObjective::new()).solve(&instance);
        let b = GreedyMarginalSolver::new(BvObjective::new()).solve(&instance);
        assert!(instance.is_feasible(&a.jury));
        assert!(!a.jury.is_empty());
        assert_eq!(a.jury.ids(), b.jury.ids());
        assert!(a.evaluations > 0);
        // The session quantizes to the pool grid; the greedy choice must
        // still land within the grid's error of the evaluate-driven pick.
        assert!(a.objective_value >= 0.5);
    }
}
