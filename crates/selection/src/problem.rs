//! The Jury Selection Problem instance (Section 2.2).
//!
//! Given a candidate worker pool `W`, a budget `B`, and a task prior `α`,
//! JSP asks for the feasible jury maximizing the jury quality under the best
//! voting strategy — which, by Theorem 1, is Bayesian voting.

use jury_model::{Jury, ModelError, ModelResult, Prior, WorkerId, WorkerPool};
use serde::{Deserialize, Serialize};

/// One instance of the Jury Selection Problem.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JspInstance {
    pool: WorkerPool,
    budget: f64,
    prior: Prior,
}

impl JspInstance {
    /// Creates an instance, validating the budget.
    pub fn new(pool: WorkerPool, budget: f64, prior: Prior) -> ModelResult<Self> {
        if !budget.is_finite() || budget < 0.0 {
            return Err(ModelError::InvalidCost { value: budget });
        }
        Ok(JspInstance {
            pool,
            budget,
            prior,
        })
    }

    /// Creates an instance with the uninformative prior.
    pub fn with_uniform_prior(pool: WorkerPool, budget: f64) -> ModelResult<Self> {
        JspInstance::new(pool, budget, Prior::uniform())
    }

    /// The candidate worker pool `W`.
    #[inline]
    pub fn pool(&self) -> &WorkerPool {
        &self.pool
    }

    /// The budget `B`.
    #[inline]
    pub fn budget(&self) -> f64 {
        self.budget
    }

    /// The task prior `α`.
    #[inline]
    pub fn prior(&self) -> Prior {
        self.prior
    }

    /// Number of candidate workers `N`.
    #[inline]
    pub fn num_candidates(&self) -> usize {
        self.pool.len()
    }

    /// Whether a jury drawn from the pool satisfies the budget constraint.
    pub fn is_feasible(&self, jury: &Jury) -> bool {
        jury.is_feasible(self.budget) && jury.ids().iter().all(|&id| self.pool.contains(id))
    }

    /// Whether the whole pool fits in the budget — in that case Lemma 1 says
    /// simply selecting everybody is optimal.
    pub fn whole_pool_is_feasible(&self) -> bool {
        self.pool.total_cost() <= self.budget + 1e-12
    }

    /// Whether every worker charges the same cost (within tolerance) — in
    /// that case Lemma 2 reduces JSP to picking the top-`k` workers by
    /// quality.
    pub fn has_uniform_costs(&self) -> bool {
        let workers = self.pool.workers();
        match workers.first() {
            None => true,
            Some(first) => workers
                .iter()
                .all(|w| (w.cost() - first.cost()).abs() < 1e-12),
        }
    }

    /// Builds the jury consisting of the given worker ids.
    pub fn jury_from_ids(&self, ids: &[WorkerId]) -> ModelResult<Jury> {
        Jury::from_pool(&self.pool, ids)
    }

    /// The cheapest single worker's cost, or `None` for an empty pool; if it
    /// already exceeds the budget the only feasible jury is the empty one.
    pub fn cheapest_cost(&self) -> Option<f64> {
        self.pool
            .iter()
            .map(|w| w.cost())
            .min_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jury_model::paper_example_pool;

    #[test]
    fn construction_and_accessors() {
        let instance = JspInstance::new(paper_example_pool(), 20.0, Prior::uniform()).unwrap();
        assert_eq!(instance.num_candidates(), 7);
        assert!((instance.budget() - 20.0).abs() < 1e-12);
        assert!(instance.prior().is_uniform());
        assert!(JspInstance::new(paper_example_pool(), -1.0, Prior::uniform()).is_err());
        assert!(JspInstance::new(paper_example_pool(), f64::NAN, Prior::uniform()).is_err());
    }

    #[test]
    fn feasibility_checks() {
        let instance = JspInstance::with_uniform_prior(paper_example_pool(), 20.0).unwrap();
        // {B, E, F} costs 12 ≤ 20.
        let jury = instance
            .jury_from_ids(&[WorkerId(1), WorkerId(4), WorkerId(5)])
            .unwrap();
        assert!(instance.is_feasible(&jury));
        // {A, C, D} costs 22 > 20.
        let jury = instance
            .jury_from_ids(&[WorkerId(0), WorkerId(2), WorkerId(3)])
            .unwrap();
        assert!(!instance.is_feasible(&jury));
        // A jury with a worker outside the pool is infeasible.
        let foreign = Jury::new(vec![jury_model::Worker::free(WorkerId(99), 0.9).unwrap()]);
        assert!(!instance.is_feasible(&foreign));
    }

    #[test]
    fn whole_pool_feasibility() {
        let pool = paper_example_pool(); // total cost 37
        assert!(!JspInstance::with_uniform_prior(pool.clone(), 20.0)
            .unwrap()
            .whole_pool_is_feasible());
        assert!(JspInstance::with_uniform_prior(pool, 37.0)
            .unwrap()
            .whole_pool_is_feasible());
    }

    #[test]
    fn uniform_cost_detection() {
        let uniform =
            WorkerPool::from_qualities_and_costs(&[0.7, 0.8, 0.6], &[2.0, 2.0, 2.0]).unwrap();
        assert!(JspInstance::with_uniform_prior(uniform, 4.0)
            .unwrap()
            .has_uniform_costs());
        assert!(!JspInstance::with_uniform_prior(paper_example_pool(), 20.0)
            .unwrap()
            .has_uniform_costs());
        let empty = WorkerPool::new();
        assert!(JspInstance::with_uniform_prior(empty, 1.0)
            .unwrap()
            .has_uniform_costs());
    }

    #[test]
    fn cheapest_cost() {
        let instance = JspInstance::with_uniform_prior(paper_example_pool(), 20.0).unwrap();
        assert!((instance.cheapest_cost().unwrap() - 2.0).abs() < 1e-12);
        let empty = JspInstance::with_uniform_prior(WorkerPool::new(), 1.0).unwrap();
        assert!(empty.cheapest_cost().is_none());
    }
}
