//! The anytime solver portfolio: race heterogeneous heuristics under one
//! shared [`SearchBudget`].
//!
//! No single JSP heuristic dominates: annealing explores broadly but can
//! waste its budget re-visiting, tabu exploits a neighbourhood hard, and
//! the randomized marginal restarts are unbeatable on instances greedy
//! forward selection already solves. [`PortfolioSolver`] runs any subset of
//! them ([`PortfolioMember`]) **round-robin at restart granularity**: in
//! round `u`, every racing member executes its `u`-th restart, so a tight
//! budget is spread across strategies instead of exhausted by whichever
//! member happens to run first. All members drive the *same* objective
//! value, which means:
//!
//! * one shared evaluation counter — the portfolio's budget caps the race
//!   as a whole, not each member separately;
//! * with a caching objective (the service's sharded signature-keyed JQ
//!   store), a probe paid by one member is a cache hit for the others.
//!
//! Each member's restart sequence, fold order, and RNG streams are exactly
//! those of a standalone run of that solver, so an **unbudgeted** portfolio
//! returns exactly the jury the best member would have returned alone. On
//! truncation the best-so-far jury across all members is returned (the
//! anytime contract), and the greedy candidate fills folded into every
//! member's finish keep it at or above the greedy floor. The winning
//! member is recorded in [`SolverResult::solver`] as provenance
//! (`"portfolio:tabu"`, `"portfolio:random-restart"`,
//! `"portfolio:simulated-annealing"`).

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

use serde::{Deserialize, Serialize};

use jury_jq::SharedJqScratch;
use jury_model::Jury;

use crate::annealing::{greedy_candidate_juries, AnnealingConfig, AnnealingSolver};
use crate::budget::SearchBudget;
use crate::objective::JuryObjective;
use crate::parallel::{ArenaObjective, ParallelPolicy, SharedBestBound};
use crate::problem::JspInstance;
use crate::restart::{RestartConfig, RestartSolver};
use crate::solver::{JurySolver, SolverResult};
use crate::tabu::{TabuConfig, TabuSolver};

/// One racing member of a solver portfolio.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PortfolioMember {
    /// Tabu search ([`TabuSolver`]): tenure list + aspiration over the
    /// add/swap neighbourhood.
    Tabu,
    /// Randomized restarts around the marginal forward selection
    /// ([`RestartSolver`]).
    Restart,
    /// The paper's simulated-annealing heuristic
    /// ([`AnnealingSolver`], Algorithms 3/4).
    Annealing,
}

impl PortfolioMember {
    /// The default racing lineup: every member, diversification first.
    pub fn default_lineup() -> Vec<PortfolioMember> {
        vec![
            PortfolioMember::Tabu,
            PortfolioMember::Restart,
            PortfolioMember::Annealing,
        ]
    }

    /// The member's solver name (matches the standalone solver's
    /// [`JurySolver::name`]).
    pub fn name(&self) -> &'static str {
        match self {
            PortfolioMember::Tabu => "tabu",
            PortfolioMember::Restart => "random-restart",
            PortfolioMember::Annealing => "simulated-annealing",
        }
    }

    /// The provenance string recorded when this member wins a portfolio
    /// race.
    pub fn provenance(&self) -> &'static str {
        match self {
            PortfolioMember::Tabu => "portfolio:tabu",
            PortfolioMember::Restart => "portfolio:random-restart",
            PortfolioMember::Annealing => "portfolio:simulated-annealing",
        }
    }
}

impl std::fmt::Display for PortfolioMember {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-member configurations of a portfolio race.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PortfolioConfig {
    /// Configuration of the [`PortfolioMember::Annealing`] member.
    pub annealing: AnnealingConfig,
    /// Configuration of the [`PortfolioMember::Tabu`] member.
    pub tabu: TabuConfig,
    /// Configuration of the [`PortfolioMember::Restart`] member.
    pub restart: RestartConfig,
    /// How the race is spread across OS threads:
    /// [`ParallelPolicy::Sequential`] (the default) runs the pre-parallel
    /// round-robin race bit-identically on the calling thread;
    /// [`ParallelPolicy::Threads`] gives each member its own scoped thread
    /// with a private scratch arena, all lanes sharing one evaluation
    /// counter and one best-so-far bound.
    pub parallel: ParallelPolicy,
}

impl PortfolioConfig {
    /// Sets the annealing member's configuration.
    pub fn with_annealing(mut self, config: AnnealingConfig) -> Self {
        self.annealing = config;
        self
    }

    /// Sets the tabu member's configuration.
    pub fn with_tabu(mut self, config: TabuConfig) -> Self {
        self.tabu = config;
        self
    }

    /// Sets the restart member's configuration.
    pub fn with_restart(mut self, config: RestartConfig) -> Self {
        self.restart = config;
        self
    }

    /// Sets the thread policy of the race (see
    /// [`PortfolioConfig::parallel`]).
    pub fn with_parallel(mut self, parallel: ParallelPolicy) -> Self {
        self.parallel = parallel;
        self
    }
}

/// A member's lane in the race: its best jury so far and how many restart
/// units it still has to run.
struct Lane {
    member: PortfolioMember,
    units: usize,
    best_jury: Jury,
    best_value: f64,
}

/// The racing portfolio solver; see the module docs.
pub struct PortfolioSolver<O: JuryObjective> {
    objective: O,
    members: Vec<PortfolioMember>,
    config: PortfolioConfig,
    budget: SearchBudget,
    /// Parent scratch arena of the threaded race: warm buffers are dealt
    /// out to the lanes at spawn and absorbed back at retirement, so
    /// repeated parallel solves reuse capacity across calls. Untouched in
    /// sequential mode.
    arena: SharedJqScratch,
}

impl<O: JuryObjective> PortfolioSolver<O> {
    /// Creates a portfolio racing the default lineup.
    pub fn new(objective: O) -> Self {
        PortfolioSolver {
            objective,
            members: PortfolioMember::default_lineup(),
            config: PortfolioConfig::default(),
            budget: SearchBudget::unlimited(),
            arena: SharedJqScratch::new(),
        }
    }

    /// Creates a portfolio racing the given members (an empty list races
    /// the default lineup). Duplicate members race twice — that is allowed
    /// but rarely useful.
    pub fn with_members(objective: O, members: Vec<PortfolioMember>) -> Self {
        let members = if members.is_empty() {
            PortfolioMember::default_lineup()
        } else {
            members
        };
        PortfolioSolver {
            objective,
            members,
            config: PortfolioConfig::default(),
            budget: SearchBudget::unlimited(),
            arena: SharedJqScratch::new(),
        }
    }

    /// Sets the per-member configurations.
    pub fn with_config(mut self, config: PortfolioConfig) -> Self {
        self.config = config;
        self
    }

    /// Bounds the whole race with one cooperative compute budget, shared by
    /// every member through the common objective's evaluation counter.
    pub fn with_budget(mut self, budget: SearchBudget) -> Self {
        self.budget = budget;
        self
    }

    /// The racing members, in race order.
    pub fn members(&self) -> &[PortfolioMember] {
        &self.members
    }

    /// The underlying objective.
    pub fn objective(&self) -> &O {
        &self.objective
    }

    /// How many restart units the member contributes to the race.
    fn units_of(&self, member: PortfolioMember) -> usize {
        match member {
            PortfolioMember::Tabu => self.config.tabu.restarts.max(1),
            PortfolioMember::Restart => self.config.restart.restarts.max(1),
            PortfolioMember::Annealing => self.config.annealing.restarts.max(1),
        }
    }

    /// Whether the member folds the greedy candidate fills into its finish.
    fn member_uses_greedy(&self, member: PortfolioMember) -> bool {
        match member {
            PortfolioMember::Tabu => self.config.tabu.use_greedy_candidates,
            PortfolioMember::Restart => self.config.restart.use_greedy_candidates,
            PortfolioMember::Annealing => self.config.annealing.use_greedy_candidates,
        }
    }
}

impl<O: JuryObjective> JurySolver for PortfolioSolver<O> {
    fn name(&self) -> &'static str {
        "portfolio"
    }

    fn solve(&self, instance: &JspInstance) -> SolverResult {
        if self.config.parallel.is_threaded() {
            let lanes = self.config.parallel.lanes(self.members.len());
            return self.solve_parallel(instance, lanes);
        }
        self.solve_sequential(instance)
    }
}

impl<O: JuryObjective> PortfolioSolver<O> {
    /// The pre-parallel round-robin race, verbatim: the
    /// [`ParallelPolicy::Sequential`] path, bit-identical to the solver
    /// before the threaded mode existed (no new clock or atomic reads).
    fn solve_sequential(&self, instance: &JspInstance) -> SolverResult {
        let start = Instant::now();
        let evaluations_before = self.objective.evaluations();

        // Sub-solvers borrow the shared objective (via the blanket
        // `JuryObjective for &O` impl), so every probe lands in the same
        // evaluation counter — and, through a caching objective, the same
        // memo store — the budget and the other members see.
        let annealing = AnnealingSolver::with_config(&self.objective, self.config.annealing)
            .with_budget(self.budget);
        let tabu =
            TabuSolver::with_config(&self.objective, self.config.tabu).with_budget(self.budget);
        let restart = RestartSolver::with_config(&self.objective, self.config.restart)
            .with_budget(self.budget);

        // Every lane starts where its standalone solver would: at the empty
        // jury's value.
        let mut lanes: Vec<Lane> = self
            .members
            .iter()
            .map(|&member| Lane {
                member,
                units: self.units_of(member),
                best_jury: Jury::empty(),
                best_value: self.objective.evaluate(&Jury::empty(), instance.prior()),
            })
            .collect();

        // Round-robin race: round `u` gives every member its `u`-th
        // restart, so no member can exhaust a tight budget alone.
        let mut truncated = false;
        let rounds = lanes.iter().map(|lane| lane.units).max().unwrap_or(0);
        'race: for unit in 0..rounds {
            for lane in lanes.iter_mut() {
                if unit >= lane.units {
                    continue;
                }
                if self.budget.exhausted(self.objective.evaluations()) {
                    truncated = true;
                    break 'race;
                }
                let (jury, value, cut) = match lane.member {
                    PortfolioMember::Tabu => tabu.run_once(instance, unit),
                    PortfolioMember::Restart => restart.run_once(instance, unit),
                    PortfolioMember::Annealing => annealing.anneal_once(
                        instance,
                        self.config.annealing.seed.wrapping_add(unit as u64),
                        &Jury::empty(),
                    ),
                };
                truncated |= cut;
                if value > lane.best_value {
                    lane.best_value = value;
                    lane.best_jury = jury;
                }
            }
        }

        // Finish every lane the way its standalone solver finishes: fold
        // the greedy candidate fills. Cheap (two evaluations per lane) and
        // done even on truncation — this is what keeps a cut-short race at
        // or above the greedy floor.
        for lane in lanes.iter_mut() {
            if !self.member_uses_greedy(lane.member) {
                continue;
            }
            for jury in greedy_candidate_juries(instance) {
                let value = self.objective.evaluate(&jury, instance.prior());
                if value > lane.best_value {
                    lane.best_value = value;
                    lane.best_jury = jury;
                }
            }
        }

        // The race winner: strictly better value wins, ties keep the
        // earlier member in race order.
        let winner = lanes
            .iter()
            .enumerate()
            .max_by(|(ia, a), (ib, b)| {
                a.best_value
                    .partial_cmp(&b.best_value)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| ib.cmp(ia))
            })
            .expect("a portfolio always has at least one member");

        SolverResult {
            jury: winner.1.best_jury.clone(),
            objective_value: winner.1.best_value,
            evaluations: self.objective.evaluations() - evaluations_before,
            elapsed: start.elapsed(),
            solver: winner.1.member.provenance(),
            truncated,
        }
    }

    /// The threaded race: members are dealt round-robin onto `lanes`
    /// scoped OS threads; every lane races its members at the same
    /// restart-unit granularity as the sequential round-robin, drives the
    /// **shared** objective (one evaluation counter, one memo store)
    /// through a private [`ArenaObjective`] scratch arena, and — under a
    /// limited budget only — steers against the cross-lane
    /// [`SharedBestBound`]. Unbudgeted, every lane is a pure replay of its
    /// members' standalone sequential runs, so the fold below returns the
    /// same winner at any thread count.
    fn solve_parallel(&self, instance: &JspInstance, lanes: usize) -> SolverResult {
        let start = Instant::now();
        let evaluations_before = self.objective.evaluations();

        let bound = SharedBestBound::new();
        // The bound may only *steer* when the race can be cut short anyway:
        // a budgeted race is anytime by contract, an unbudgeted one must
        // replay its members exactly.
        let steer = !self.budget.is_unlimited();

        // Deal the parent arena's warm buffers out to per-lane arenas; the
        // lanes' hot loops then never contend on a shared scratch lock.
        let lane_arenas: Vec<SharedJqScratch> =
            (0..lanes).map(|_| SharedJqScratch::new()).collect();
        {
            let mut parent = self.arena.lock();
            let held = parent.buffers_held();
            for i in 0..held {
                let buffer = parent.take_buffer();
                lane_arenas[i % lanes].lock().recycle_buffer(buffer);
            }
        }

        let truncated = AtomicBool::new(false);
        let mut lane_states: Vec<(usize, Lane)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..lanes)
                .map(|t| {
                    let arena = &lane_arenas[t];
                    let bound = &bound;
                    let truncated = &truncated;
                    scope.spawn(move || {
                        let lane_objective = ArenaObjective::new(&self.objective, arena);
                        let annealing =
                            AnnealingSolver::with_config(&lane_objective, self.config.annealing)
                                .with_budget(self.budget);
                        let tabu = TabuSolver::with_config(&lane_objective, self.config.tabu)
                            .with_budget(self.budget);
                        let restart =
                            RestartSolver::with_config(&lane_objective, self.config.restart)
                                .with_budget(self.budget);
                        let shared = if steer { Some(bound) } else { None };

                        let mut states: Vec<(usize, Lane)> = self
                            .members
                            .iter()
                            .enumerate()
                            .filter(|(index, _)| index % lanes == t)
                            .map(|(index, &member)| {
                                (
                                    index,
                                    Lane {
                                        member,
                                        units: self.units_of(member),
                                        best_jury: Jury::empty(),
                                        best_value: lane_objective
                                            .evaluate(&Jury::empty(), instance.prior()),
                                    },
                                )
                            })
                            .collect();

                        let rounds = states.iter().map(|(_, lane)| lane.units).max().unwrap_or(0);
                        'race: for unit in 0..rounds {
                            for (_, lane) in states.iter_mut() {
                                if unit >= lane.units {
                                    continue;
                                }
                                if self.budget.exhausted(lane_objective.evaluations()) {
                                    truncated.store(true, Ordering::Relaxed);
                                    break 'race;
                                }
                                let (jury, value, cut) = match lane.member {
                                    PortfolioMember::Tabu => {
                                        tabu.run_once_shared(instance, unit, shared)
                                    }
                                    PortfolioMember::Restart => {
                                        restart.run_once_shared(instance, unit, shared)
                                    }
                                    PortfolioMember::Annealing => annealing.anneal_once(
                                        instance,
                                        self.config.annealing.seed.wrapping_add(unit as u64),
                                        &Jury::empty(),
                                    ),
                                };
                                if cut {
                                    truncated.store(true, Ordering::Relaxed);
                                }
                                if value > lane.best_value {
                                    lane.best_value = value;
                                    lane.best_jury = jury;
                                    if steer {
                                        bound.observe(value);
                                    }
                                }
                            }
                        }
                        states
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|handle| handle.join().expect("portfolio lane panicked"))
                .collect()
        });

        // Lane retirement: absorb the warm per-lane arenas back into the
        // parent so the next parallel solve starts warm.
        for arena in &lane_arenas {
            self.arena.absorb(arena);
        }

        // Greedy candidate folds, on the calling thread, exactly as the
        // sequential race finishes its lanes.
        for (_, lane) in lane_states.iter_mut() {
            if !self.member_uses_greedy(lane.member) {
                continue;
            }
            for jury in greedy_candidate_juries(instance) {
                let value = self.objective.evaluate(&jury, instance.prior());
                if value > lane.best_value {
                    lane.best_value = value;
                    lane.best_jury = jury;
                }
            }
        }

        // Restore race order, then fold with the sequential tie-break:
        // strictly better value wins, ties keep the earlier member.
        lane_states.sort_by_key(|(index, _)| *index);
        let winner = lane_states
            .iter()
            .map(|(_, lane)| lane)
            .enumerate()
            .max_by(|(ia, a), (ib, b)| {
                a.best_value
                    .partial_cmp(&b.best_value)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| ib.cmp(ia))
            })
            .expect("a portfolio always has at least one member");

        SolverResult {
            jury: winner.1.best_jury.clone(),
            objective_value: winner.1.best_value,
            evaluations: self.objective.evaluations() - evaluations_before,
            elapsed: start.elapsed(),
            solver: winner.1.member.provenance(),
            truncated: truncated.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive::ExhaustiveSolver;
    use crate::objective::BvObjective;
    use jury_model::paper_example_pool;

    fn paper_instance(budget: f64) -> JspInstance {
        JspInstance::with_uniform_prior(paper_example_pool(), budget).unwrap()
    }

    /// The expected unbudgeted portfolio outcome, computed from standalone
    /// member runs with the portfolio's own tie-break (first member wins
    /// ties).
    fn expected_winner(
        instance: &JspInstance,
        members: &[PortfolioMember],
    ) -> (Jury, f64, &'static str) {
        let mut best: Option<(Jury, f64, &'static str)> = None;
        for &member in members {
            let result = match member {
                PortfolioMember::Tabu => TabuSolver::new(BvObjective::new()).solve(instance),
                PortfolioMember::Restart => RestartSolver::new(BvObjective::new()).solve(instance),
                PortfolioMember::Annealing => {
                    AnnealingSolver::new(BvObjective::new()).solve(instance)
                }
            };
            if best
                .as_ref()
                .is_none_or(|(_, value, _)| result.objective_value > *value)
            {
                best = Some((result.jury, result.objective_value, member.provenance()));
            }
        }
        best.expect("at least one member")
    }

    #[test]
    fn unbudgeted_race_returns_exactly_the_best_member() {
        for budget in [5.0, 10.0, 15.0, 20.0] {
            let instance = paper_instance(budget);
            let members = PortfolioMember::default_lineup();
            let raced = PortfolioSolver::new(BvObjective::new()).solve(&instance);
            let (jury, value, provenance) = expected_winner(&instance, &members);
            assert_eq!(raced.jury.ids(), jury.ids(), "budget {budget}");
            assert!((raced.objective_value - value).abs() < 1e-15);
            assert_eq!(raced.solver, provenance);
            assert!(!raced.truncated);
        }
    }

    #[test]
    fn matches_the_exhaustive_optimum_on_the_paper_pool() {
        for budget in [5.0, 10.0, 15.0, 20.0] {
            let instance = paper_instance(budget);
            let optimal = ExhaustiveSolver::new(BvObjective::new()).solve(&instance);
            let raced = PortfolioSolver::new(BvObjective::new()).solve(&instance);
            assert!(
                (raced.objective_value - optimal.objective_value).abs() < 1e-9,
                "budget {budget}: portfolio {} vs optimal {}",
                raced.objective_value,
                optimal.objective_value
            );
        }
    }

    #[test]
    fn empty_member_list_races_the_default_lineup() {
        let instance = paper_instance(15.0);
        let defaulted =
            PortfolioSolver::with_members(BvObjective::new(), Vec::new()).solve(&instance);
        let explicit = PortfolioSolver::new(BvObjective::new()).solve(&instance);
        assert_eq!(defaulted.jury.ids(), explicit.jury.ids());
        assert_eq!(defaulted.solver, explicit.solver);
    }

    #[test]
    fn truncated_race_stays_feasible_and_at_the_greedy_floor() {
        use crate::greedy::{GreedyQualitySolver, GreedyRatioSolver};
        let instance = paper_instance(15.0);
        for cap in [1, 3, 10, 50] {
            let raced = PortfolioSolver::new(BvObjective::new())
                .with_budget(SearchBudget::unlimited().with_max_evaluations(cap))
                .solve(&instance);
            assert!(raced.truncated, "cap {cap}");
            assert!(instance.is_feasible(&raced.jury), "cap {cap}");
            let floor = GreedyQualitySolver::new(BvObjective::new())
                .solve(&instance)
                .objective_value
                .max(
                    GreedyRatioSolver::new(BvObjective::new())
                        .solve(&instance)
                        .objective_value,
                );
            assert!(
                raced.objective_value >= floor - 1e-9,
                "cap {cap}: {} below greedy floor {floor}",
                raced.objective_value
            );
        }
    }

    #[test]
    fn member_names_and_provenance_are_stable() {
        assert_eq!(PortfolioMember::Tabu.name(), "tabu");
        assert_eq!(PortfolioMember::Restart.to_string(), "random-restart");
        assert_eq!(
            PortfolioMember::Annealing.provenance(),
            "portfolio:simulated-annealing"
        );
        assert_eq!(PortfolioMember::default_lineup().len(), 3);
    }

    #[test]
    fn members_round_trip_through_serde() {
        use serde::{Deserialize as _, Serialize as _};
        for member in PortfolioMember::default_lineup() {
            let value = member.to_value();
            assert_eq!(PortfolioMember::from_value(&value).unwrap(), member);
        }
    }
}
