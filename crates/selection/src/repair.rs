//! Online jury repair: greedy swap search over incremental sessions.
//!
//! A long-running service hands out juries and keeps streaming worker
//! answers; when the quality estimates drift, a previously optimal jury can
//! go stale. Re-solving from scratch answers "what is the best jury *now*"
//! but throws away the work already invested in the deployed jury — and in
//! practice drift is concentrated in a few degraded members. [`repair_jury`]
//! instead hill-climbs from the deployed jury under its original budget:
//! each round probes every single-worker **swap** (evict a member, admit an
//! outsider) and every affordable **push** (admit an outsider outright), and
//! commits the best strictly improving move. Probes ride the objective's
//! [`IncrementalSession`] where one costs `O(buckets)` instead of a
//! from-scratch JQ evaluation, mirroring [`crate::GreedyMarginalSolver`].
//!
//! The search is a local one: it terminates at a swap-stable jury, which on
//! uniform-cost pools (Lemma 2 territory) is the global optimum, but on
//! adversarial cost structures may not be. Callers that need a guarantee
//! compare the repaired value against a cold re-solve and keep the better
//! jury — that is exactly what `jury-service`'s repair endpoint does.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use jury_model::{Jury, ModelError, ModelResult, Prior, Worker, WorkerId};

use crate::budget::SearchBudget;
use crate::objective::{IncrementalSession, JuryObjective};
use crate::problem::JspInstance;

/// Tuning knobs for [`repair_jury`].
#[derive(Debug, Clone, Copy)]
pub struct RepairConfig {
    /// Maximum number of committed moves (each round commits at most one
    /// swap or push). The default is far above what drift repair needs —
    /// hill climbing on real instances settles in a handful of moves.
    pub max_rounds: usize,
    /// A move must beat the current value by more than this to commit;
    /// matches the probe-tie tolerance of the greedy searches, so JQ
    /// plateaus (which are real) cannot make the search cycle.
    pub tolerance: f64,
    /// Cooperative compute budget checked between repair rounds. Because
    /// rounds only ever commit improving (or tie-push) moves, a repair cut
    /// short by the budget still never hands back a jury worse than the
    /// one it was given.
    pub budget: SearchBudget,
}

impl Default for RepairConfig {
    fn default() -> Self {
        RepairConfig {
            max_rounds: 64,
            tolerance: 1e-9,
            budget: SearchBudget::unlimited(),
        }
    }
}

impl RepairConfig {
    /// Bounds the swap search with a cooperative compute budget; see
    /// [`RepairConfig::budget`].
    pub fn with_budget(mut self, budget: SearchBudget) -> Self {
        self.budget = budget;
        self
    }
}

/// What [`repair_jury`] did to the jury.
#[derive(Debug, Clone)]
pub struct RepairResult {
    /// The repaired jury (identical membership to the input when no move
    /// improved it).
    pub jury: Jury,
    /// Objective value of the repaired jury, scored through the batch
    /// objective (sessions are quantized guidance only).
    pub objective_value: f64,
    /// Objective value the *input* jury scores on the same (fresh) pool.
    pub initial_value: f64,
    /// Number of committed member-for-outsider swaps.
    pub swaps: usize,
    /// Number of committed budget-filling pushes.
    pub pushes: usize,
    /// Objective evaluations spent, incremental probes included.
    pub evaluations: u64,
    /// Wall-clock time of the search.
    pub elapsed: Duration,
    /// Whether [`RepairConfig::budget`] cut the swap search short. The
    /// jury is still at least as good as the input (only improving moves
    /// commit), just possibly not yet swap-stable.
    pub truncated: bool,
}

impl RepairResult {
    /// Whether the search changed the jury at all.
    pub fn changed(&self) -> bool {
        self.swaps + self.pushes > 0
    }

    /// Quality gained over the input jury (non-negative by construction).
    pub fn delta(&self) -> f64 {
        self.objective_value - self.initial_value
    }
}

/// A candidate move of one repair round.
#[derive(Debug, Clone, Copy)]
enum Move {
    /// Evict the member at jury position `member`, admit pool worker
    /// `candidate`.
    Swap { member: usize, candidate: usize },
    /// Admit pool worker `candidate` outright (budget still allows it).
    Push { candidate: usize },
}

fn batch_value<O: JuryObjective>(objective: &O, members: &[Worker], prior: Prior) -> f64 {
    objective.evaluate(&Jury::new(members.to_vec()), prior)
}

/// Repairs a deployed jury against the instance's (fresh) pool under the
/// instance's budget: greedy hill climbing over single-worker swaps and
/// pushes, committing only strictly improving moves, until swap-stable.
///
/// `members` are the deployed jury's worker ids; every id must exist in the
/// instance's pool (the fresh snapshot re-estimates qualities but keeps
/// ids), otherwise [`ModelError::UnknownWorker`] is returned. Duplicate ids
/// are collapsed. The input jury may exceed the budget (costs can change
/// between snapshots); the search then only commits moves that do not
/// increase the overspend.
pub fn repair_jury<O: JuryObjective>(
    objective: &O,
    instance: &JspInstance,
    members: &[WorkerId],
    config: RepairConfig,
) -> ModelResult<RepairResult> {
    let start = Instant::now();
    let evaluations_before = objective.evaluations();
    let prior = instance.prior();
    let budget = instance.budget();
    let pool_workers = instance.pool().workers();

    let index_of: BTreeMap<WorkerId, usize> = pool_workers
        .iter()
        .enumerate()
        .map(|(i, w)| (w.id(), i))
        .collect();
    let mut in_jury = vec![false; pool_workers.len()];
    let mut jury_idx: Vec<usize> = Vec::with_capacity(members.len());
    for &id in members {
        let &index = index_of
            .get(&id)
            .ok_or(ModelError::UnknownWorker { id: id.raw() })?;
        if !in_jury[index] {
            in_jury[index] = true;
            jury_idx.push(index);
        }
    }
    let current_workers = |jury_idx: &[usize]| -> Vec<Worker> {
        jury_idx.iter().map(|&i| pool_workers[i].clone()).collect()
    };
    let mut spent: f64 = jury_idx.iter().map(|&i| pool_workers[i].cost()).sum();

    let initial_value = batch_value(objective, &current_workers(&jury_idx), prior);

    // The session tracks the current jury; probes mutate it by one worker
    // and restore. A pop that fails (impossible with the shipped engines)
    // abandons the session for batch evaluation, as in the greedy searches.
    let mut session: Option<Box<dyn IncrementalSession + '_>> =
        objective.incremental_session(instance);
    let mut current_value = match &mut session {
        Some(live) => {
            for &i in &jury_idx {
                live.push(&pool_workers[i]);
            }
            live.value()
        }
        None => initial_value,
    };

    let mut swaps = 0usize;
    let mut pushes = 0usize;
    let mut truncated = false;
    for _round in 0..config.max_rounds {
        // Cooperative checkpoint between rounds: the committed jury is
        // always a valid (never-worse) answer, so stopping here keeps the
        // anytime contract.
        if config.budget.exhausted(objective.evaluations()) {
            truncated = true;
            break;
        }
        let mut best: Option<(Move, f64)> = None;
        let mut best_push: Option<(Move, f64)> = None;
        let consider = |slot: &mut Option<(Move, f64)>, mv: Move, value: f64| {
            if slot.is_none_or(|(_, best_value)| value > best_value + config.tolerance) {
                *slot = Some((mv, value));
            }
        };

        // Phase 1: pushes — the budget may have head-room (a member got
        // cheaper, or the deployed jury never filled it).
        for (candidate, worker) in pool_workers.iter().enumerate() {
            if in_jury[candidate] || spent + worker.cost() > budget + 1e-12 {
                continue;
            }
            let mut session_broken = false;
            let mut value = match &mut session {
                Some(live) => {
                    live.push(worker);
                    let value = live.value();
                    session_broken = !live.pop(worker);
                    value
                }
                None => {
                    let mut probe = current_workers(&jury_idx);
                    probe.push(worker.clone());
                    batch_value(objective, &probe, prior)
                }
            };
            if session_broken {
                session = None;
                let mut probe = current_workers(&jury_idx);
                probe.push(worker.clone());
                value = batch_value(objective, &probe, prior);
            }
            consider(&mut best, Move::Push { candidate }, value);
            consider(&mut best_push, Move::Push { candidate }, value);
        }

        // Phase 2: swaps — evict one member, admit one outsider, under the
        // original budget.
        for member in 0..jury_idx.len() {
            let member_worker = &pool_workers[jury_idx[member]];
            let mut member_popped = false;
            if let Some(live) = &mut session {
                if live.pop(member_worker) {
                    member_popped = true;
                } else {
                    session = None;
                }
            }
            let base: Vec<Worker> = jury_idx
                .iter()
                .enumerate()
                .filter(|&(m, _)| m != member)
                .map(|(_, &i)| pool_workers[i].clone())
                .collect();
            for (candidate, worker) in pool_workers.iter().enumerate() {
                if in_jury[candidate]
                    || spent - member_worker.cost() + worker.cost() > budget + 1e-12
                {
                    continue;
                }
                let mut session_broken = false;
                let mut value = match &mut session {
                    Some(live) if member_popped => {
                        live.push(worker);
                        let value = live.value();
                        session_broken = !live.pop(worker);
                        value
                    }
                    _ => {
                        let mut probe = base.clone();
                        probe.push(worker.clone());
                        batch_value(objective, &probe, prior)
                    }
                };
                if session_broken {
                    session = None;
                    member_popped = false;
                    let mut probe = base.clone();
                    probe.push(worker.clone());
                    value = batch_value(objective, &probe, prior);
                }
                consider(&mut best, Move::Swap { member, candidate }, value);
            }
            if member_popped {
                if let Some(live) = &mut session {
                    live.push(member_worker);
                }
            }
        }

        // A swap commits only when it strictly improves — a swap search
        // that commits ties could cycle between equal-valued juries. A
        // push, though, only grows the jury (no cycle possible) and JQ
        // plateaus are real, so like the forward selection a push still
        // commits on a tie; that keeps BV repairs filling the budget.
        let improving = best.filter(|&(_, value)| value > current_value + config.tolerance);
        let tie_push = best_push.filter(|&(_, value)| value >= current_value - config.tolerance);
        let Some((mv, _best_value)) = improving.or(tie_push) else {
            break;
        };
        match mv {
            Move::Push { candidate } => {
                in_jury[candidate] = true;
                spent += pool_workers[candidate].cost();
                jury_idx.push(candidate);
                if let Some(live) = &mut session {
                    live.push(&pool_workers[candidate]);
                }
                pushes += 1;
            }
            Move::Swap { member, candidate } => {
                let evicted = jury_idx[member];
                in_jury[evicted] = false;
                in_jury[candidate] = true;
                spent += pool_workers[candidate].cost() - pool_workers[evicted].cost();
                jury_idx[member] = candidate;
                if let Some(live) = &mut session {
                    // The probe loop restored the member; re-apply the move
                    // for real. A failed pop abandons the session.
                    if live.pop(&pool_workers[evicted]) {
                        live.push(&pool_workers[candidate]);
                    } else {
                        session = None;
                    }
                }
                swaps += 1;
            }
        }
        current_value = match &mut session {
            Some(live) => live.value(),
            None => batch_value(objective, &current_workers(&jury_idx), prior),
        };
    }

    let jury = Jury::new(current_workers(&jury_idx));
    let objective_value = objective.evaluate(&jury, prior);
    Ok(RepairResult {
        jury,
        objective_value,
        initial_value,
        swaps,
        pushes,
        evaluations: objective.evaluations() - evaluations_before,
        elapsed: start.elapsed(),
        truncated,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive::ExhaustiveSolver;
    use crate::objective::{BvObjective, MvObjective};
    use crate::solver::JurySolver;
    use jury_model::WorkerPool;

    fn uniform_pool(qualities: &[f64]) -> WorkerPool {
        WorkerPool::from_qualities_and_costs(qualities, &vec![1.0; qualities.len()]).unwrap()
    }

    #[test]
    fn repair_recovers_the_optimum_after_degradation() {
        // Deployed jury {0, 1, 2} was top-3 before worker 1 degraded to
        // 0.52; the fresh optimum is {0, 2, 3}. One swap must recover it.
        let fresh = uniform_pool(&[0.9, 0.52, 0.8, 0.85, 0.6]);
        let instance = JspInstance::with_uniform_prior(fresh, 3.0).unwrap();
        let objective = BvObjective::new();
        let result = repair_jury(
            &objective,
            &instance,
            &[WorkerId(0), WorkerId(1), WorkerId(2)],
            RepairConfig::default(),
        )
        .unwrap();
        assert_eq!(result.swaps, 1);
        assert_eq!(result.pushes, 0);
        assert!(result.changed());
        assert!(result.delta() > 0.0);
        let mut ids = result.jury.ids();
        ids.sort();
        assert_eq!(ids, vec![WorkerId(0), WorkerId(2), WorkerId(3)]);
        let optimal = ExhaustiveSolver::new(BvObjective::new()).solve(&instance);
        assert!(
            (result.objective_value - optimal.objective_value).abs() < 1e-9,
            "repaired {} vs optimal {}",
            result.objective_value,
            optimal.objective_value
        );
    }

    #[test]
    fn repair_leaves_an_optimal_jury_unchanged() {
        let pool = uniform_pool(&[0.9, 0.8, 0.85, 0.6, 0.55]);
        let instance = JspInstance::with_uniform_prior(pool, 3.0).unwrap();
        let objective = BvObjective::new();
        let result = repair_jury(
            &objective,
            &instance,
            &[WorkerId(0), WorkerId(1), WorkerId(2)],
            RepairConfig::default(),
        )
        .unwrap();
        assert!(!result.changed());
        assert!((result.delta()).abs() < 1e-12);
        let mut ids = result.jury.ids();
        ids.sort();
        assert_eq!(ids, vec![WorkerId(0), WorkerId(1), WorkerId(2)]);
    }

    #[test]
    fn repair_fills_unused_budget_with_pushes() {
        // Deployed jury used 2 of 5 budget units on a pool where adding
        // more (BV-monotone) workers always helps.
        let pool = uniform_pool(&[0.9, 0.8, 0.7, 0.65, 0.6]);
        let instance = JspInstance::with_uniform_prior(pool, 5.0).unwrap();
        let objective = BvObjective::new();
        let result = repair_jury(
            &objective,
            &instance,
            &[WorkerId(0), WorkerId(1)],
            RepairConfig::default(),
        )
        .unwrap();
        assert_eq!(result.jury.size(), 5);
        assert!(result.pushes >= 3);
        assert!(result.delta() > 0.0);
    }

    #[test]
    fn repair_rejects_unknown_members() {
        let pool = uniform_pool(&[0.9, 0.8]);
        let instance = JspInstance::with_uniform_prior(pool, 2.0).unwrap();
        let objective = BvObjective::new();
        let err = repair_jury(
            &objective,
            &instance,
            &[WorkerId(0), WorkerId(42)],
            RepairConfig::default(),
        );
        assert!(matches!(err, Err(ModelError::UnknownWorker { id: 42 })));
    }

    #[test]
    fn repair_drives_the_incremental_session_on_large_pools() {
        // 30 candidates is above the exact cutoff, so probes ride the
        // incremental session; the search must stay deterministic and only
        // improve on the deployed jury.
        let qualities: Vec<f64> = (0..30)
            .map(|i| {
                if i == 3 {
                    0.51
                } else {
                    0.55 + 0.012 * i as f64
                }
            })
            .collect();
        let pool = uniform_pool(&qualities);
        let instance = JspInstance::with_uniform_prior(pool, 4.0).unwrap();
        let objective = BvObjective::new();
        let members = [WorkerId(0), WorkerId(1), WorkerId(2), WorkerId(3)];
        let a = repair_jury(&objective, &instance, &members, RepairConfig::default()).unwrap();
        let b = repair_jury(&objective, &instance, &members, RepairConfig::default()).unwrap();
        assert_eq!(a.jury.ids(), b.jury.ids());
        assert!(instance.is_feasible(&a.jury));
        assert!(a.objective_value >= a.initial_value - 1e-9);
        assert!(a.swaps >= 1, "the 0.51 member should be evicted");
        assert!(a.evaluations > 0);
    }

    #[test]
    fn repair_respects_non_uniform_costs() {
        // Swapping in the 0.9 worker would blow the budget: the only
        // affordable improvement is the cheap 0.75 one.
        let pool =
            WorkerPool::from_qualities_and_costs(&[0.9, 0.6, 0.65, 0.75], &[10.0, 1.0, 1.0, 1.0])
                .unwrap();
        let instance = JspInstance::with_uniform_prior(pool, 2.0).unwrap();
        let objective = BvObjective::new();
        let result = repair_jury(
            &objective,
            &instance,
            &[WorkerId(1), WorkerId(2)],
            RepairConfig::default(),
        )
        .unwrap();
        assert!(instance.is_feasible(&result.jury));
        assert!(result.jury.contains(WorkerId(3)));
        assert!(!result.jury.contains(WorkerId(0)));
    }

    #[test]
    fn repair_handles_the_mv_objective_and_empty_members() {
        // Empty deployment degenerates to forward selection; MV's session
        // is always available.
        let pool = uniform_pool(&[0.9, 0.55]);
        let instance = JspInstance::with_uniform_prior(pool, 2.0).unwrap();
        let objective = MvObjective::new();
        let result = repair_jury(&objective, &instance, &[], RepairConfig::default()).unwrap();
        assert!(!result.jury.is_empty());
        assert!(result.objective_value >= 0.9 - 1e-9);
    }

    #[test]
    fn duplicate_member_ids_collapse() {
        let pool = uniform_pool(&[0.9, 0.8, 0.7]);
        let instance = JspInstance::with_uniform_prior(pool, 2.0).unwrap();
        let objective = BvObjective::new();
        let result = repair_jury(
            &objective,
            &instance,
            &[WorkerId(0), WorkerId(0), WorkerId(1)],
            RepairConfig::default(),
        )
        .unwrap();
        assert_eq!(result.jury.size(), 2);
    }
}
