//! The budget–quality table of the Optimal Jury Selection System (Figure 1).
//!
//! For a list of candidate budgets, the system solves JSP at each budget and
//! reports the optimal jury, its estimated jury quality, and the budget the
//! jury actually requires. The task provider reads the table to pick the
//! budget–quality trade-off she is comfortable with (e.g. in Figure 1 the
//! jump from 15 to 20 units buys only ≈2.5 % quality, so she settles for the
//! 14-unit jury `{B, C, G}`).

use serde::{Deserialize, Serialize};

use jury_model::{Prior, WorkerId, WorkerPool};

use crate::budget::SearchBudget;
use crate::greedy::MarginalSearch;
use crate::objective::JuryObjective;
use crate::problem::JspInstance;
use crate::solver::JurySolver;

/// One row of the budget–quality table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BudgetQualityRow {
    /// The budget offered to the solver.
    pub budget: f64,
    /// The ids of the selected jury members.
    pub jury: Vec<WorkerId>,
    /// The estimated jury quality of the selected jury.
    pub quality: f64,
    /// The budget the selected jury actually requires (its jury cost).
    pub required_budget: f64,
}

/// The full budget–quality table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BudgetQualityTable {
    rows: Vec<BudgetQualityRow>,
}

impl BudgetQualityTable {
    /// Builds the table by solving JSP once per budget with the given solver.
    pub fn build<S: JurySolver>(
        pool: &WorkerPool,
        budgets: &[f64],
        prior: Prior,
        solver: &S,
    ) -> Self {
        let rows = budgets
            .iter()
            .map(|&budget| {
                let instance = JspInstance::new(pool.clone(), budget, prior)
                    .expect("budgets are validated by the caller");
                let result = solver.solve(&instance);
                let mut jury = result.jury.ids();
                jury.sort();
                BudgetQualityRow {
                    budget,
                    jury,
                    quality: result.objective_value,
                    required_budget: result.jury.cost(),
                }
            })
            .collect();
        BudgetQualityTable { rows }
    }

    /// Builds the table with a **warm-started sweep**: one marginal-gain
    /// search state — and one incremental evaluation session, when the
    /// objective offers one — is carried from each budget to the next in
    /// ascending order. Moving from budget `b` to `b + 1` only pushes the
    /// marginal workers the extra budget affords (each committed after
    /// pool-many `O(buckets)` push/value/pop probes); nothing is re-solved
    /// cold. Every row's reported quality is still a from-scratch score by
    /// the batch objective.
    ///
    /// The sweep reproduces a cold [`crate::GreedyMarginalSolver`] run at
    /// every budget whenever greedy prefixes nest — uniform-cost pools in
    /// particular (Lemma 2 territory), where affordability depends only on
    /// the jury size. On heterogeneous costs the carried jury may differ
    /// from a cold solve (the warm state cannot un-commit a cheap worker to
    /// afford an expensive one), trading a little quality for an
    /// `O(budgets)`-times-cheaper sweep; rows are always feasible and their
    /// qualities exactly re-scored. Requested budget order is preserved in
    /// the output regardless of the internal ascending traversal.
    ///
    /// # Panics
    ///
    /// Panics on non-finite or negative budgets, exactly like
    /// [`Self::build`] (whose per-budget instances reject them).
    pub fn build_warm<O: JuryObjective>(
        pool: &WorkerPool,
        budgets: &[f64],
        prior: Prior,
        objective: &O,
    ) -> Self {
        Self::build_warm_budgeted(pool, budgets, prior, objective, SearchBudget::unlimited()).0
    }

    /// [`Self::build_warm`] bounded by a cooperative [`SearchBudget`]: the
    /// carried marginal search polls the budget between probes and stops
    /// extending once it is exhausted. Later rows then repeat the last
    /// committed jury — still feasible and exactly re-scored, just not
    /// pushed further (anytime semantics). Returns the table and whether
    /// the sweep was cut short; an unlimited budget reproduces
    /// [`Self::build_warm`] bit-identically.
    ///
    /// # Panics
    ///
    /// Panics on non-finite or negative budgets, exactly like
    /// [`Self::build_warm`].
    pub fn build_warm_budgeted<O: JuryObjective>(
        pool: &WorkerPool,
        budgets: &[f64],
        prior: Prior,
        objective: &O,
        search_budget: SearchBudget,
    ) -> (Self, bool) {
        // [`Self::build`] panics on invalid budgets through its per-budget
        // instances; this path builds only one instance, so check every
        // budget explicitly — a NaN would otherwise slip through the max
        // fold below, make every worker "affordable" (NaN comparisons are
        // false), and poison the carried state for all later rows.
        for &budget in budgets {
            assert!(
                budget.is_finite() && budget >= 0.0,
                "budgets are validated by the caller (got {budget})"
            );
        }
        let mut order: Vec<usize> = (0..budgets.len()).collect();
        order.sort_by(|&a, &b| {
            budgets[a]
                .partial_cmp(&budgets[b])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let max_budget = budgets.iter().copied().fold(0.0f64, f64::max);
        // The session is sized for the pool, so one instance (at the widest
        // budget) serves the whole sweep.
        let instance = JspInstance::new(pool.clone(), max_budget, prior)
            .expect("budgets are validated by the caller");
        let mut search = MarginalSearch::new(objective, &instance).with_budget(search_budget);

        let mut rows: Vec<Option<BudgetQualityRow>> = budgets.iter().map(|_| None).collect();
        for &slot in &order {
            let budget = budgets[slot];
            search.extend_to(pool.workers(), budget);
            let mut jury = search.jury().ids();
            jury.sort();
            rows[slot] = Some(BudgetQualityRow {
                budget,
                jury,
                quality: objective.evaluate(search.jury(), prior),
                required_budget: search.spent(),
            });
        }
        let table = BudgetQualityTable {
            rows: rows
                .into_iter()
                .map(|row| row.expect("every requested budget produced a row"))
                .collect(),
        };
        (table, search.truncated())
    }

    /// Builds the table with a **warm-started annealing sweep**: budgets are
    /// walked in ascending order and each one is solved by
    /// [`crate::AnnealingSolver::solve_seeded`] with the previous budget's
    /// jury as the seed — the ROADMAP's warm-anneal follow-up for
    /// quality-critical sweeps on heterogeneous costs, where the marginal
    /// sweep of [`Self::build_warm`] can trail cold annealing rows because
    /// it can never un-commit a cheap worker to afford an expensive one.
    ///
    /// Each seeded run replays the carried jury into the annealing state
    /// (and its incremental session) instead of re-solving from cold, and
    /// the seed competes as a candidate solution, so row qualities are
    /// monotone in the budget by construction. Every row is re-scored by
    /// the batch objective; requested budget order is preserved in the
    /// output regardless of the internal ascending traversal.
    ///
    /// # Panics
    ///
    /// Panics on non-finite or negative budgets, exactly like
    /// [`Self::build`] and [`Self::build_warm`].
    pub fn build_warm_annealing<O: JuryObjective>(
        pool: &WorkerPool,
        budgets: &[f64],
        prior: Prior,
        objective: &O,
        config: crate::annealing::AnnealingConfig,
    ) -> Self {
        Self::build_warm_annealing_budgeted(
            pool,
            budgets,
            prior,
            objective,
            config,
            SearchBudget::unlimited(),
        )
        .0
    }

    /// [`Self::build_warm_annealing`] bounded by a cooperative
    /// [`SearchBudget`]: each seeded solve polls the budget in its
    /// temperature and restart loops. An exhausted budget truncates the
    /// remaining solves to their seed/greedy candidates, so every row still
    /// holds a feasible, exactly re-scored jury (anytime semantics).
    /// Returns the table and whether any row's solve was cut short; an
    /// unlimited budget reproduces [`Self::build_warm_annealing`]
    /// bit-identically.
    ///
    /// # Panics
    ///
    /// Panics on non-finite or negative budgets, exactly like
    /// [`Self::build_warm_annealing`].
    pub fn build_warm_annealing_budgeted<O: JuryObjective>(
        pool: &WorkerPool,
        budgets: &[f64],
        prior: Prior,
        objective: &O,
        config: crate::annealing::AnnealingConfig,
        search_budget: SearchBudget,
    ) -> (Self, bool) {
        for &budget in budgets {
            assert!(
                budget.is_finite() && budget >= 0.0,
                "budgets are validated by the caller (got {budget})"
            );
        }
        let mut order: Vec<usize> = (0..budgets.len()).collect();
        order.sort_by(|&a, &b| {
            budgets[a]
                .partial_cmp(&budgets[b])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let solver = crate::annealing::AnnealingSolver::with_config(objective, config)
            .with_budget(search_budget);

        let mut truncated = false;
        let mut carried = jury_model::Jury::empty();
        let mut rows: Vec<Option<BudgetQualityRow>> = budgets.iter().map(|_| None).collect();
        for &slot in &order {
            let budget = budgets[slot];
            let instance = JspInstance::new(pool.clone(), budget, prior)
                .expect("budgets are validated by the caller");
            let result = solver.solve_seeded(&instance, &carried);
            truncated |= result.truncated;
            let mut jury = result.jury.ids();
            jury.sort();
            rows[slot] = Some(BudgetQualityRow {
                budget,
                jury,
                quality: result.objective_value,
                required_budget: result.jury.cost(),
            });
            carried = result.jury;
        }
        let table = BudgetQualityTable {
            rows: rows
                .into_iter()
                .map(|row| row.expect("every requested budget produced a row"))
                .collect(),
        };
        (table, truncated)
    }

    /// Assembles a table from pre-computed rows (in budget order). Used by
    /// `jury-service`, which solves the per-budget instances through its own
    /// batched, cached execution path rather than via [`Self::build`].
    pub fn from_rows(rows: Vec<BudgetQualityRow>) -> Self {
        BudgetQualityTable { rows }
    }

    /// The table rows, in the order of the requested budgets.
    pub fn rows(&self) -> &[BudgetQualityRow] {
        &self.rows
    }

    /// The row with the smallest budget whose quality reaches `target`, if
    /// any — "how much do I have to pay for 85 %?".
    pub fn cheapest_reaching(&self, target: f64) -> Option<&BudgetQualityRow> {
        self.rows
            .iter()
            .filter(|r| r.quality >= target)
            .min_by(|a, b| a.required_budget.partial_cmp(&b.required_budget).unwrap())
    }

    /// The marginal quality gained per row relative to the previous row —
    /// the quantity the task provider eyeballs to decide when to stop paying.
    pub fn marginal_gains(&self) -> Vec<f64> {
        let mut gains = Vec::with_capacity(self.rows.len());
        for (i, row) in self.rows.iter().enumerate() {
            if i == 0 {
                gains.push(row.quality);
            } else {
                gains.push(row.quality - self.rows[i - 1].quality);
            }
        }
        gains
    }

    /// Renders the table as fixed-width text, mirroring Figure 1's layout.
    pub fn render(&self) -> String {
        let mut out = String::from("Budget | Optimal Jury Set        | Quality | Required\n");
        out.push_str("-------+-------------------------+---------+---------\n");
        for row in &self.rows {
            let jury: Vec<String> = row.jury.iter().map(|id| id.to_string()).collect();
            out.push_str(&format!(
                "{:>6.2} | {:<23} | {:>6.2}% | {:>7.2}\n",
                row.budget,
                format!("{{{}}}", jury.join(", ")),
                row.quality * 100.0,
                row.required_budget
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive::ExhaustiveSolver;
    use crate::objective::BvObjective;
    use jury_model::paper_example_pool;

    fn figure_1_table() -> BudgetQualityTable {
        let solver = ExhaustiveSolver::new(BvObjective::new());
        BudgetQualityTable::build(
            &paper_example_pool(),
            &[5.0, 10.0, 15.0, 20.0],
            Prior::uniform(),
            &solver,
        )
    }

    #[test]
    fn reproduces_the_figure_1_qualities() {
        let table = figure_1_table();
        let qualities: Vec<f64> = table.rows().iter().map(|r| r.quality).collect();
        let expected = [0.75, 0.80, 0.845, 0.8695];
        for (got, want) in qualities.iter().zip(expected.iter()) {
            assert!((got - want).abs() < 1e-9, "{got} vs {want}");
        }
        // Required budgets never exceed the offered budgets.
        for row in table.rows() {
            assert!(row.required_budget <= row.budget + 1e-9);
        }
        // The 15-unit row needs only 14 units, as Figure 1 highlights.
        assert!((table.rows()[2].required_budget - 14.0).abs() < 1e-9);
    }

    #[test]
    fn qualities_are_monotone_in_budget() {
        let table = figure_1_table();
        let mut prev = 0.0;
        for row in table.rows() {
            assert!(row.quality >= prev - 1e-12);
            prev = row.quality;
        }
    }

    #[test]
    fn cheapest_reaching_a_target() {
        let table = figure_1_table();
        let row = table.cheapest_reaching(0.84).unwrap();
        assert!((row.required_budget - 14.0).abs() < 1e-9);
        assert!(table.cheapest_reaching(0.99).is_none());
    }

    #[test]
    fn marginal_gains_match_figure_1s_argument() {
        let table = figure_1_table();
        let gains = table.marginal_gains();
        assert_eq!(gains.len(), 4);
        // Moving from budget 15 to budget 20 buys ≈2.45 % — the increase the
        // paper's task provider deems not worthwhile.
        assert!((gains[3] - 0.0245).abs() < 1e-9);
    }

    #[test]
    fn warm_sweep_matches_cold_solves_on_a_monotone_pool() {
        use crate::greedy::{GreedyMarginalSolver, GreedyQualitySolver};
        // Descending qualities, uniform costs: greedy prefixes nest, so the
        // warm-started sweep must reproduce every cold solve exactly — and
        // by Lemma 2 the top-k fill is the true optimum, so the annealing
        // policy lands on the same qualities too.
        let qualities: Vec<f64> = (0..18).map(|i| 0.92 - 0.02 * i as f64).collect();
        let pool = WorkerPool::from_qualities_and_costs(&qualities, &[1.0; 18]).unwrap();
        let budgets = [1.0, 3.0, 5.0, 8.0, 12.0];

        let objective = BvObjective::new();
        let warm = BudgetQualityTable::build_warm(&pool, &budgets, Prior::uniform(), &objective);

        let cold_marginal = BudgetQualityTable::build(
            &pool,
            &budgets,
            Prior::uniform(),
            &GreedyMarginalSolver::new(BvObjective::new()),
        );
        for (w, c) in warm.rows().iter().zip(cold_marginal.rows()) {
            assert_eq!(w.jury, c.jury, "budget {}", w.budget);
            assert!((w.quality - c.quality).abs() < 1e-9);
            assert!((w.required_budget - c.required_budget).abs() < 1e-9);
        }

        let cold_quality = BudgetQualityTable::build(
            &pool,
            &budgets,
            Prior::uniform(),
            &GreedyQualitySolver::new(BvObjective::new()),
        );
        for (w, c) in warm.rows().iter().zip(cold_quality.rows()) {
            assert_eq!(w.jury, c.jury, "budget {}", w.budget);
            assert!((w.quality - c.quality).abs() < 1e-9);
        }

        let cold_annealing = BudgetQualityTable::build(
            &pool,
            &budgets,
            Prior::uniform(),
            &crate::annealing::AnnealingSolver::with_config(
                BvObjective::new(),
                crate::annealing::AnnealingConfig::default()
                    .with_epsilon(1e-4)
                    .with_restarts(2),
            ),
        );
        for (w, c) in warm.rows().iter().zip(cold_annealing.rows()) {
            assert!(
                (w.quality - c.quality).abs() < 1e-9,
                "budget {}: warm {} vs annealing {}",
                w.budget,
                w.quality,
                c.quality
            );
        }
    }

    fn fast_annealing() -> crate::annealing::AnnealingConfig {
        crate::annealing::AnnealingConfig::default()
            .with_epsilon(1e-4)
            .with_restarts(2)
    }

    #[test]
    fn warm_annealing_matches_cold_annealing_on_a_monotone_pool() {
        // Same territory as the marginal warm-sweep test: descending
        // qualities with uniform costs, where Lemma 2 pins the optimum, so
        // the seeded sweep must land on the same row qualities as cold
        // per-budget annealing solves.
        let qualities: Vec<f64> = (0..18).map(|i| 0.92 - 0.02 * i as f64).collect();
        let pool = WorkerPool::from_qualities_and_costs(&qualities, &[1.0; 18]).unwrap();
        let budgets = [1.0, 3.0, 5.0, 8.0, 12.0];
        let objective = BvObjective::new();
        let warm = BudgetQualityTable::build_warm_annealing(
            &pool,
            &budgets,
            Prior::uniform(),
            &objective,
            fast_annealing(),
        );
        let cold = BudgetQualityTable::build(
            &pool,
            &budgets,
            Prior::uniform(),
            &crate::annealing::AnnealingSolver::with_config(BvObjective::new(), fast_annealing()),
        );
        let mut previous = 0.0;
        for (w, c) in warm.rows().iter().zip(cold.rows()) {
            assert!(
                (w.quality - c.quality).abs() < 1e-9,
                "budget {}: warm {} vs cold {}",
                w.budget,
                w.quality,
                c.quality
            );
            assert!(w.required_budget <= w.budget + 1e-9);
            assert!(w.quality >= previous - 1e-12, "rows must stay monotone");
            previous = w.quality;
        }
    }

    #[test]
    fn warm_annealing_rows_never_fall_below_the_marginal_sweep_on_hard_costs() {
        // Heterogeneous costs where the marginal sweep can get stuck: one
        // excellent expensive worker among cheap mediocre ones. The seeded
        // annealing sweep may un-commit the cheap fill; its rows must never
        // trail the marginal rows.
        let mut qualities = vec![0.93];
        let mut costs = vec![0.9];
        for _ in 0..8 {
            qualities.push(0.55);
            costs.push(0.12);
        }
        let pool = WorkerPool::from_qualities_and_costs(&qualities, &costs).unwrap();
        let budgets = [0.3, 0.95, 1.3];
        let objective = BvObjective::new();
        let annealed = BudgetQualityTable::build_warm_annealing(
            &pool,
            &budgets,
            Prior::uniform(),
            &objective,
            crate::annealing::AnnealingConfig::default(),
        );
        let marginal =
            BudgetQualityTable::build_warm(&pool, &budgets, Prior::uniform(), &objective);
        for (a, m) in annealed.rows().iter().zip(marginal.rows()) {
            assert!(
                a.quality >= m.quality - 1e-9,
                "budget {}: annealed {} vs marginal {}",
                a.budget,
                a.quality,
                m.quality
            );
        }
        // At budget 0.95 the optimum is the lone 0.93 worker; the marginal
        // sweep cannot reach it from its committed cheap workers.
        assert!((annealed.rows()[1].quality - 0.93).abs() < 1e-9);
    }

    #[test]
    fn warm_annealing_preserves_requested_budget_order() {
        let pool = WorkerPool::from_qualities_and_costs(&[0.9, 0.8, 0.7], &[1.0; 3]).unwrap();
        let budgets = [2.0, 1.0, 3.0];
        let objective = BvObjective::new();
        let table = BudgetQualityTable::build_warm_annealing(
            &pool,
            &budgets,
            Prior::uniform(),
            &objective,
            fast_annealing(),
        );
        let listed: Vec<f64> = table.rows().iter().map(|r| r.budget).collect();
        assert_eq!(listed, budgets);
    }

    #[test]
    #[should_panic(expected = "budgets are validated")]
    fn warm_annealing_rejects_bad_budgets() {
        let pool = WorkerPool::from_qualities_and_costs(&[0.8], &[1.0]).unwrap();
        let objective = BvObjective::new();
        let _ = BudgetQualityTable::build_warm_annealing(
            &pool,
            &[1.0, f64::INFINITY],
            Prior::uniform(),
            &objective,
            fast_annealing(),
        );
    }

    #[test]
    fn warm_sweep_preserves_requested_budget_order() {
        let pool = WorkerPool::from_qualities_and_costs(&[0.9, 0.8, 0.7], &[1.0; 3]).unwrap();
        let budgets = [2.0, 1.0, 3.0];
        let objective = BvObjective::new();
        let table = BudgetQualityTable::build_warm(&pool, &budgets, Prior::uniform(), &objective);
        let listed: Vec<f64> = table.rows().iter().map(|r| r.budget).collect();
        assert_eq!(listed, budgets);
        // Qualities are still monotone when read in budget order.
        assert!(table.rows()[1].quality <= table.rows()[0].quality + 1e-12);
        assert!(table.rows()[0].quality <= table.rows()[2].quality + 1e-12);
    }

    #[test]
    #[should_panic(expected = "budgets are validated")]
    fn warm_sweep_rejects_nan_budgets_like_the_cold_path() {
        let pool = WorkerPool::from_qualities_and_costs(&[0.8, 0.7, 0.6], &[1.0; 3]).unwrap();
        let objective = BvObjective::new();
        let _ =
            BudgetQualityTable::build_warm(&pool, &[f64::NAN, 1.0], Prior::uniform(), &objective);
    }

    #[test]
    fn warm_sweep_handles_degenerate_inputs() {
        let pool = WorkerPool::from_qualities_and_costs(&[0.8], &[5.0]).unwrap();
        let objective = BvObjective::new();
        // No budgets → no rows.
        let empty = BudgetQualityTable::build_warm(&pool, &[], Prior::uniform(), &objective);
        assert!(empty.rows().is_empty());
        assert!(empty.marginal_gains().is_empty());
        assert!(empty.cheapest_reaching(0.0).is_none());
        // A budget below the only worker keeps the empty jury.
        let table = BudgetQualityTable::build_warm(&pool, &[1.0], Prior::uniform(), &objective);
        assert!(table.rows()[0].jury.is_empty());
        assert!((table.rows()[0].quality - 0.5).abs() < 1e-12);
        assert_eq!(table.rows()[0].required_budget, 0.0);
    }

    #[test]
    fn cheapest_reaching_boundaries() {
        let table = figure_1_table();
        // Exact boundary: a target equal to a row's stored quality selects
        // that row (the comparison is inclusive).
        let boundary = table.rows()[2].quality;
        let row = table.cheapest_reaching(boundary).unwrap();
        assert!((row.quality - boundary).abs() < 1e-12);
        assert!((row.required_budget - 14.0).abs() < 1e-9);
        // Every row reaches 0 %, and the cheapest required budget wins.
        let free = table.cheapest_reaching(0.0).unwrap();
        let min_required = table
            .rows()
            .iter()
            .map(|r| r.required_budget)
            .fold(f64::INFINITY, f64::min);
        assert!((free.required_budget - min_required).abs() < 1e-12);
        // Just above the best quality → None.
        let best = table
            .rows()
            .iter()
            .map(|r| r.quality)
            .fold(0.0f64, f64::max);
        assert!(table.cheapest_reaching(best + 1e-6).is_none());
        assert!(table.cheapest_reaching(best).is_some());
    }

    #[test]
    fn marginal_gains_on_a_known_monotone_pool() {
        // Uniform costs and descending qualities: each budget step adds the
        // next-best worker, so the gain sequence starts at the first row's
        // quality and every later gain is non-negative.
        let qualities: Vec<f64> = (0..8).map(|i| 0.9 - 0.04 * i as f64).collect();
        let pool = WorkerPool::from_qualities_and_costs(&qualities, &[1.0; 8]).unwrap();
        let budgets: Vec<f64> = (1..=6).map(|b| b as f64).collect();
        let objective = BvObjective::new();
        let table = BudgetQualityTable::build_warm(&pool, &budgets, Prior::uniform(), &objective);
        let gains = table.marginal_gains();
        assert_eq!(gains.len(), budgets.len());
        assert!((gains[0] - table.rows()[0].quality).abs() < 1e-12);
        for (i, gain) in gains.iter().enumerate().skip(1) {
            assert!(*gain >= -1e-12, "gain {i} is negative: {gain}");
        }
        // The gains reconstruct the final quality.
        let total: f64 = gains.iter().sum();
        assert!((total - table.rows().last().unwrap().quality).abs() < 1e-9);
    }

    #[test]
    fn render_produces_one_line_per_row() {
        let table = figure_1_table();
        let text = table.render();
        assert_eq!(text.lines().count(), 2 + table.rows().len());
        assert!(text.contains('%'));
    }
}
