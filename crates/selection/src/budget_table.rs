//! The budget–quality table of the Optimal Jury Selection System (Figure 1).
//!
//! For a list of candidate budgets, the system solves JSP at each budget and
//! reports the optimal jury, its estimated jury quality, and the budget the
//! jury actually requires. The task provider reads the table to pick the
//! budget–quality trade-off she is comfortable with (e.g. in Figure 1 the
//! jump from 15 to 20 units buys only ≈2.5 % quality, so she settles for the
//! 14-unit jury `{B, C, G}`).

use serde::{Deserialize, Serialize};

use jury_model::{Prior, WorkerId, WorkerPool};

use crate::problem::JspInstance;
use crate::solver::JurySolver;

/// One row of the budget–quality table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BudgetQualityRow {
    /// The budget offered to the solver.
    pub budget: f64,
    /// The ids of the selected jury members.
    pub jury: Vec<WorkerId>,
    /// The estimated jury quality of the selected jury.
    pub quality: f64,
    /// The budget the selected jury actually requires (its jury cost).
    pub required_budget: f64,
}

/// The full budget–quality table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BudgetQualityTable {
    rows: Vec<BudgetQualityRow>,
}

impl BudgetQualityTable {
    /// Builds the table by solving JSP once per budget with the given solver.
    pub fn build<S: JurySolver>(
        pool: &WorkerPool,
        budgets: &[f64],
        prior: Prior,
        solver: &S,
    ) -> Self {
        let rows = budgets
            .iter()
            .map(|&budget| {
                let instance = JspInstance::new(pool.clone(), budget, prior)
                    .expect("budgets are validated by the caller");
                let result = solver.solve(&instance);
                let mut jury = result.jury.ids();
                jury.sort();
                BudgetQualityRow {
                    budget,
                    jury,
                    quality: result.objective_value,
                    required_budget: result.jury.cost(),
                }
            })
            .collect();
        BudgetQualityTable { rows }
    }

    /// Assembles a table from pre-computed rows (in budget order). Used by
    /// `jury-service`, which solves the per-budget instances through its own
    /// batched, cached execution path rather than via [`Self::build`].
    pub fn from_rows(rows: Vec<BudgetQualityRow>) -> Self {
        BudgetQualityTable { rows }
    }

    /// The table rows, in the order of the requested budgets.
    pub fn rows(&self) -> &[BudgetQualityRow] {
        &self.rows
    }

    /// The row with the smallest budget whose quality reaches `target`, if
    /// any — "how much do I have to pay for 85 %?".
    pub fn cheapest_reaching(&self, target: f64) -> Option<&BudgetQualityRow> {
        self.rows
            .iter()
            .filter(|r| r.quality >= target)
            .min_by(|a, b| a.required_budget.partial_cmp(&b.required_budget).unwrap())
    }

    /// The marginal quality gained per row relative to the previous row —
    /// the quantity the task provider eyeballs to decide when to stop paying.
    pub fn marginal_gains(&self) -> Vec<f64> {
        let mut gains = Vec::with_capacity(self.rows.len());
        for (i, row) in self.rows.iter().enumerate() {
            if i == 0 {
                gains.push(row.quality);
            } else {
                gains.push(row.quality - self.rows[i - 1].quality);
            }
        }
        gains
    }

    /// Renders the table as fixed-width text, mirroring Figure 1's layout.
    pub fn render(&self) -> String {
        let mut out = String::from("Budget | Optimal Jury Set        | Quality | Required\n");
        out.push_str("-------+-------------------------+---------+---------\n");
        for row in &self.rows {
            let jury: Vec<String> = row.jury.iter().map(|id| id.to_string()).collect();
            out.push_str(&format!(
                "{:>6.2} | {:<23} | {:>6.2}% | {:>7.2}\n",
                row.budget,
                format!("{{{}}}", jury.join(", ")),
                row.quality * 100.0,
                row.required_budget
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive::ExhaustiveSolver;
    use crate::objective::BvObjective;
    use jury_model::paper_example_pool;

    fn figure_1_table() -> BudgetQualityTable {
        let solver = ExhaustiveSolver::new(BvObjective::new());
        BudgetQualityTable::build(
            &paper_example_pool(),
            &[5.0, 10.0, 15.0, 20.0],
            Prior::uniform(),
            &solver,
        )
    }

    #[test]
    fn reproduces_the_figure_1_qualities() {
        let table = figure_1_table();
        let qualities: Vec<f64> = table.rows().iter().map(|r| r.quality).collect();
        let expected = [0.75, 0.80, 0.845, 0.8695];
        for (got, want) in qualities.iter().zip(expected.iter()) {
            assert!((got - want).abs() < 1e-9, "{got} vs {want}");
        }
        // Required budgets never exceed the offered budgets.
        for row in table.rows() {
            assert!(row.required_budget <= row.budget + 1e-9);
        }
        // The 15-unit row needs only 14 units, as Figure 1 highlights.
        assert!((table.rows()[2].required_budget - 14.0).abs() < 1e-9);
    }

    #[test]
    fn qualities_are_monotone_in_budget() {
        let table = figure_1_table();
        let mut prev = 0.0;
        for row in table.rows() {
            assert!(row.quality >= prev - 1e-12);
            prev = row.quality;
        }
    }

    #[test]
    fn cheapest_reaching_a_target() {
        let table = figure_1_table();
        let row = table.cheapest_reaching(0.84).unwrap();
        assert!((row.required_budget - 14.0).abs() < 1e-9);
        assert!(table.cheapest_reaching(0.99).is_none());
    }

    #[test]
    fn marginal_gains_match_figure_1s_argument() {
        let table = figure_1_table();
        let gains = table.marginal_gains();
        assert_eq!(gains.len(), 4);
        // Moving from budget 15 to budget 20 buys ≈2.45 % — the increase the
        // paper's task provider deems not worthwhile.
        assert!((gains[3] - 0.0245).abs() < 1e-9);
    }

    #[test]
    fn render_produces_one_line_per_row() {
        let table = figure_1_table();
        let text = table.render();
        assert_eq!(text.lines().count(), 2 + table.rows().len());
        assert!(text.contains('%'));
    }
}
