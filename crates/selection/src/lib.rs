//! # jury-selection
//!
//! Solvers for the Jury Selection Problem (JSP) of *"On Optimality of Jury
//! Selection in Crowdsourcing"* (EDBT 2015, Sections 2.2 and 5).
//!
//! Given a candidate worker pool, a budget, and a task prior, JSP asks for
//! the feasible jury maximizing the jury quality under the optimal voting
//! strategy (Bayesian voting, Theorem 1). JSP is NP-hard (Theorem 4), so the
//! crate offers a spectrum of solvers:
//!
//! * [`ExhaustiveSolver`] — exact enumeration (the reference for `N ≤ 22`);
//! * [`AnnealingSolver`] — the paper's simulated-annealing heuristic
//!   (Algorithms 3 and 4), generic over the objective and steered through
//!   the objective's [`IncrementalSession`] so a neighbour jury costs
//!   `O(buckets)` instead of a from-scratch JQ evaluation;
//! * [`GreedyQualitySolver`] / [`GreedyRatioSolver`] — cheap baselines;
//! * [`GreedyMarginalSolver`] — objective-driven forward selection scoring
//!   pool-many single-worker extensions per round via the same sessions;
//! * [`special::try_special_case`] — the closed-form cases of Lemmas 1 and 2;
//! * [`MvjsSolver`] — the Majority-Voting baseline system of Cao et al. \[7\];
//! * [`BudgetQualityTable`] — the Figure 1 budget–quality table;
//! * [`repair_jury`] — online repair of an already-deployed jury whose
//!   worker estimates drifted: greedy swap/push hill climbing under the
//!   original budget, riding the same incremental sessions.
//!
//! ```
//! use jury_model::{paper_example_pool, Prior};
//! use jury_selection::{AnnealingSolver, BvObjective, JspInstance, JurySolver};
//!
//! // The paper's running example: 7 workers, budget 15, uniform prior.
//! let instance =
//!     JspInstance::with_uniform_prior(paper_example_pool(), 15.0).unwrap();
//! let result = AnnealingSolver::new(BvObjective::new()).solve(&instance);
//! assert!(result.jury.cost() <= 15.0);
//! assert!((result.objective_value - 0.845).abs() < 1e-6); // {B, C, G}
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod annealing;
pub mod budget;
pub mod budget_table;
pub mod exhaustive;
pub mod greedy;
pub mod multiclass;
pub mod mvjs;
pub mod objective;
pub mod parallel;
pub mod portfolio;
pub mod problem;
pub mod repair;
pub mod restart;
pub mod solver;
pub mod special;
pub mod tabu;

pub use annealing::{AnnealingConfig, AnnealingSolver};
pub use budget::SearchBudget;
pub use budget_table::{BudgetQualityRow, BudgetQualityTable};
pub use exhaustive::{ExhaustiveSolver, MAX_EXHAUSTIVE_POOL};
pub use greedy::{GreedyMarginalSolver, GreedyQualitySolver, GreedyRatioSolver};
pub use multiclass::{
    MultiClassBvObjective, MultiClassJsp, DEFAULT_MULTICLASS_EXACT_VOTINGS,
    DEFAULT_MULTICLASS_SESSION_POOL_CUTOFF,
};
pub use mvjs::MvjsSolver;
pub use objective::{
    bv_incremental_session, bv_incremental_session_in, mv_incremental_session,
    mv_incremental_session_in, BvObjective, IncrementalSession, JuryObjective, MvObjective,
};
pub use parallel::{ArenaObjective, ParallelPolicy, SharedBestBound};
pub use portfolio::{PortfolioConfig, PortfolioMember, PortfolioSolver};
pub use problem::JspInstance;
pub use repair::{repair_jury, RepairConfig, RepairResult};
pub use restart::{RestartConfig, RestartSolver};
pub use solver::{JurySolver, SolveError, SolverResult};
pub use special::{try_special_case, SpecialCase};
pub use tabu::{TabuConfig, TabuSolver};

#[cfg(test)]
mod proptests {
    use super::*;
    use jury_model::{Prior, WorkerPool};
    use proptest::prelude::*;

    fn pool_strategy() -> impl Strategy<Value = WorkerPool> {
        proptest::collection::vec(((0.5f64..0.95), (0.05f64..1.0)), 1..9).prop_map(|pairs| {
            let (qualities, costs): (Vec<f64>, Vec<f64>) = pairs.into_iter().unzip();
            WorkerPool::from_qualities_and_costs(&qualities, &costs).unwrap()
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Every solver returns a feasible jury and a JQ value in [0.5, 1].
        #[test]
        fn solvers_return_feasible_juries(pool in pool_strategy(), budget in 0.0f64..3.0) {
            let instance = JspInstance::with_uniform_prior(pool, budget).unwrap();
            let solvers: Vec<Box<dyn JurySolver>> = vec![
                Box::new(ExhaustiveSolver::new(BvObjective::new())),
                Box::new(AnnealingSolver::new(BvObjective::new())),
                Box::new(GreedyQualitySolver::new(BvObjective::new())),
                Box::new(GreedyRatioSolver::new(BvObjective::new())),
                Box::new(MvjsSolver::new()),
            ];
            for solver in solvers {
                let result = solver.solve(&instance);
                prop_assert!(instance.is_feasible(&result.jury),
                    "{} returned an infeasible jury", result.solver);
                prop_assert!(result.objective_value >= 0.5 - 1e-9);
                prop_assert!(result.objective_value <= 1.0 + 1e-9);
            }
        }

        /// The heuristics never beat the exhaustive optimum, and annealing
        /// lands close to it.
        #[test]
        fn annealing_close_to_optimal(pool in pool_strategy(), budget in 0.2f64..2.0) {
            let instance = JspInstance::with_uniform_prior(pool, budget).unwrap();
            let optimal = ExhaustiveSolver::new(BvObjective::new()).solve(&instance);
            let annealed = AnnealingSolver::new(BvObjective::new()).solve(&instance);
            prop_assert!(annealed.objective_value <= optimal.objective_value + 1e-9);
            prop_assert!(optimal.objective_value - annealed.objective_value <= 0.1,
                "gap {} too large", optimal.objective_value - annealed.objective_value);
        }

        /// The OPTJS objective value is never below the MVJS objective value
        /// on the same instance (the system-level claim of Figure 6).
        #[test]
        fn optjs_dominates_mvjs(pool in pool_strategy(), budget in 0.2f64..2.0) {
            let instance = JspInstance::with_uniform_prior(pool, budget).unwrap();
            let optjs = ExhaustiveSolver::new(BvObjective::new()).solve(&instance);
            let mvjs = MvjsSolver::new().solve(&instance);
            prop_assert!(optjs.objective_value >= mvjs.objective_value - 1e-9,
                "OPTJS {} below MVJS {}", optjs.objective_value, mvjs.objective_value);
        }

        /// An unbudgeted portfolio race returns exactly the jury its best
        /// member would have returned standalone (value ties keep the
        /// earlier member in race order) — the lanes replay each member's
        /// restart sequence bit-identically, so this is an equality, not a
        /// bound.
        #[test]
        fn portfolio_returns_exactly_the_best_member(
            pool in pool_strategy(),
            budget in 0.0f64..3.0,
        ) {
            let instance = JspInstance::with_uniform_prior(pool, budget).unwrap();
            let raced = PortfolioSolver::new(BvObjective::new()).solve(&instance);
            let mut best: Option<SolverResult> = None;
            for member in PortfolioMember::default_lineup() {
                let result: SolverResult = match member {
                    PortfolioMember::Tabu =>
                        TabuSolver::new(BvObjective::new()).solve(&instance),
                    PortfolioMember::Restart =>
                        RestartSolver::new(BvObjective::new()).solve(&instance),
                    PortfolioMember::Annealing =>
                        AnnealingSolver::new(BvObjective::new()).solve(&instance),
                };
                let better = best
                    .as_ref()
                    .is_none_or(|b| result.objective_value > b.objective_value);
                if better {
                    best = Some(result);
                }
            }
            let best = best.expect("three members");
            prop_assert_eq!(raced.jury.ids(), best.jury.ids());
            prop_assert!((raced.objective_value - best.objective_value).abs() < 1e-15);
            prop_assert!(!raced.truncated);
        }

        /// A truncated portfolio race still returns a feasible jury no
        /// worse than the greedy floor, at any evaluation cap.
        #[test]
        fn truncated_portfolio_respects_the_greedy_floor(
            pool in pool_strategy(),
            budget in 0.2f64..3.0,
            cap in 1u64..40,
        ) {
            let instance = JspInstance::with_uniform_prior(pool, budget).unwrap();
            let raced = PortfolioSolver::new(BvObjective::new())
                .with_budget(SearchBudget::unlimited().with_max_evaluations(cap))
                .solve(&instance);
            prop_assert!(instance.is_feasible(&raced.jury));
            let floor = GreedyQualitySolver::new(BvObjective::new())
                .solve(&instance)
                .objective_value
                .max(
                    GreedyRatioSolver::new(BvObjective::new())
                        .solve(&instance)
                        .objective_value,
                );
            prop_assert!(raced.objective_value >= floor - 1e-9,
                "cap {}: {} below greedy floor {}", cap, raced.objective_value, floor);
        }

        /// Tabu and restart searches are deterministic under a fixed seed:
        /// solving the same instance twice returns the same jury.
        #[test]
        fn tabu_and_restart_are_seed_deterministic(
            pool in pool_strategy(),
            budget in 0.2f64..3.0,
            seed in 0u64..u64::MAX,
        ) {
            let instance = JspInstance::with_uniform_prior(pool, budget).unwrap();
            let tabu_config = TabuConfig::default().with_seed(seed);
            let a = TabuSolver::with_config(BvObjective::new(), tabu_config).solve(&instance);
            let b = TabuSolver::with_config(BvObjective::new(), tabu_config).solve(&instance);
            prop_assert_eq!(a.jury.ids(), b.jury.ids());
            prop_assert!((a.objective_value - b.objective_value).abs() < 1e-15);

            let restart_config = RestartConfig::default().with_seed(seed);
            let a = RestartSolver::with_config(BvObjective::new(), restart_config)
                .solve(&instance);
            let b = RestartSolver::with_config(BvObjective::new(), restart_config)
                .solve(&instance);
            prop_assert_eq!(a.jury.ids(), b.jury.ids());
            prop_assert!((a.objective_value - b.objective_value).abs() < 1e-15);
        }

        /// Threaded solves are invariant in the thread count: at 1, 2, and
        /// 8 lanes an unbudgeted parallel portfolio returns the exact jury
        /// of the sequential race (so its JQ equals some member's
        /// standalone sequential result to 1e-9 and never drops below the
        /// greedy floor), and the parallel restart fan-out and parallel
        /// greedy probe rounds return exactly their sequential juries.
        #[test]
        fn parallel_solves_are_thread_count_invariant(
            pool in pool_strategy(),
            budget in 0.2f64..3.0,
        ) {
            let instance = JspInstance::with_uniform_prior(pool, budget).unwrap();
            let sequential_race = PortfolioSolver::new(BvObjective::new()).solve(&instance);
            let sequential_restart = RestartSolver::new(BvObjective::new()).solve(&instance);
            let sequential_greedy =
                GreedyMarginalSolver::new(BvObjective::new()).solve(&instance);
            let member_values: Vec<f64> = PortfolioMember::default_lineup()
                .into_iter()
                .map(|member| match member {
                    PortfolioMember::Tabu =>
                        TabuSolver::new(BvObjective::new()).solve(&instance),
                    PortfolioMember::Restart =>
                        RestartSolver::new(BvObjective::new()).solve(&instance),
                    PortfolioMember::Annealing =>
                        AnnealingSolver::new(BvObjective::new()).solve(&instance),
                }.objective_value)
                .collect();
            let floor = GreedyQualitySolver::new(BvObjective::new())
                .solve(&instance)
                .objective_value
                .max(
                    GreedyRatioSolver::new(BvObjective::new())
                        .solve(&instance)
                        .objective_value,
                );

            for threads in [1usize, 2, 8] {
                let policy = ParallelPolicy::Threads(threads);
                let raced = PortfolioSolver::new(BvObjective::new())
                    .with_config(PortfolioConfig::default().with_parallel(policy))
                    .solve(&instance);
                prop_assert_eq!(raced.jury.ids(), sequential_race.jury.ids(),
                    "threads {} changed the raced jury", threads);
                prop_assert!(
                    member_values
                        .iter()
                        .any(|&v| (raced.objective_value - v).abs() < 1e-9),
                    "threads {}: raced JQ {} matches no member's sequential JQ",
                    threads, raced.objective_value);
                prop_assert!(raced.objective_value >= floor - 1e-9,
                    "threads {}: raced JQ {} below greedy floor {}",
                    threads, raced.objective_value, floor);

                let restarted = RestartSolver::with_config(
                    BvObjective::new(),
                    RestartConfig::default().with_parallel(policy),
                )
                .solve(&instance);
                prop_assert_eq!(restarted.jury.ids(), sequential_restart.jury.ids());
                prop_assert!(
                    (restarted.objective_value - sequential_restart.objective_value).abs()
                        < 1e-15);

                let greedy = GreedyMarginalSolver::new(BvObjective::new())
                    .with_parallelism(policy)
                    .solve(&instance);
                prop_assert_eq!(greedy.jury.ids(), sequential_greedy.jury.ids());
                prop_assert!(
                    (greedy.objective_value - sequential_greedy.objective_value).abs()
                        < 1e-15);
            }
        }

        /// When a special case applies, its closed-form jury matches the
        /// exhaustive optimum.
        #[test]
        fn special_cases_are_optimal(
            qualities in proptest::collection::vec(0.5f64..0.95, 1..8),
            cost in 0.05f64..0.5,
            budget in 0.0f64..3.0,
        ) {
            let costs = vec![cost; qualities.len()];
            let pool = WorkerPool::from_qualities_and_costs(&qualities, &costs).unwrap();
            let instance = JspInstance::with_uniform_prior(pool, budget).unwrap();
            let (jury, _case) = try_special_case(&instance)
                .expect("uniform costs always trigger a special case");
            let objective = BvObjective::new();
            let special_value = objective.evaluate(&jury, Prior::uniform());
            let optimal = ExhaustiveSolver::new(BvObjective::new()).solve(&instance);
            prop_assert!((special_value - optimal.objective_value).abs() < 1e-9);
        }
    }
}
