//! Cooperative compute budgets for solver search loops.
//!
//! A [`SearchBudget`] bounds how much work a solver may spend on one
//! request: a wall-clock deadline, an objective-evaluation cap, or both.
//! Solvers poll it at cheap cooperative checkpoints (once per annealing
//! sweep step, greedy probe, or repair round) and stop early when it is
//! exhausted, keeping the best jury found so far — the anytime contract
//! `jury-service` exposes as `ServiceError::DeadlineExceeded`.
//!
//! The default budget is unlimited and its checks never read the clock, so
//! solvers run bit-identically to the pre-budget code when no deadline is
//! set: same RNG stream, same evaluation order, same result.

use std::time::{Duration, Instant};

/// A cheap cooperative cancellation token checked inside solver loops.
///
/// Budgets are plain `Copy` values: cloning one into a solver does not
/// share any state, it just carries the same deadline and cap.
///
/// The *shared* part of a budgeted race lives in the objective, not here:
/// [`exhausted`](Self::exhausted) is checked against the caller-supplied
/// evaluation count, and every solver passes its objective's atomic
/// counter. That is what makes one budget govern a multi-threaded race —
/// the parallel portfolio copies the same `SearchBudget` into every lane,
/// and because all lanes drive one objective (one `AtomicU64` of
/// evaluations), the cap bounds their *combined* work with no further
/// synchronization.
///
/// ```
/// use jury_selection::SearchBudget;
///
/// let unlimited = SearchBudget::unlimited();
/// assert!(!unlimited.exhausted(u64::MAX));
///
/// let capped = SearchBudget::unlimited().with_max_evaluations(100);
/// assert!(!capped.exhausted(99));
/// assert!(capped.exhausted(100));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchBudget {
    deadline: Option<Instant>,
    max_evaluations: Option<u64>,
}

impl SearchBudget {
    /// A budget that never exhausts (the default). Checks against it are
    /// branch-only — no clock reads — so unlimited runs are bit-identical
    /// to solvers that predate budgets.
    pub fn unlimited() -> Self {
        SearchBudget::default()
    }

    /// Sets an absolute wall-clock deadline.
    pub fn with_deadline_at(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets a deadline `timeout` from now. A `timeout` too large to
    /// represent as an `Instant` is treated as no deadline at all.
    pub fn with_deadline_in(self, timeout: Duration) -> Self {
        match Instant::now().checked_add(timeout) {
            Some(deadline) => self.with_deadline_at(deadline),
            None => self,
        }
    }

    /// Caps the number of objective evaluations the search may request.
    pub fn with_max_evaluations(mut self, max_evaluations: u64) -> Self {
        self.max_evaluations = Some(max_evaluations);
        self
    }

    /// The absolute deadline, if one is set.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// The evaluation cap, if one is set.
    pub fn max_evaluations(&self) -> Option<u64> {
        self.max_evaluations
    }

    /// Whether this budget can never exhaust.
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.max_evaluations.is_none()
    }

    /// Merges two budgets tightest-wins: the earlier of the two deadlines
    /// and the smaller of the two evaluation caps, with a limit present on
    /// either side surviving into the result.
    ///
    /// This is how the service combines a per-request budget with a
    /// service-wide `ServiceConfig` ceiling — neither silently overrides
    /// the other.
    ///
    /// ```
    /// use jury_selection::SearchBudget;
    ///
    /// let request = SearchBudget::unlimited().with_max_evaluations(500);
    /// let config = SearchBudget::unlimited().with_max_evaluations(100);
    /// assert_eq!(request.intersect(config).max_evaluations(), Some(100));
    /// ```
    #[must_use]
    pub fn intersect(self, other: SearchBudget) -> SearchBudget {
        fn tighter<T: Ord>(a: Option<T>, b: Option<T>) -> Option<T> {
            match (a, b) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (Some(a), None) => Some(a),
                (None, b) => b,
            }
        }
        SearchBudget {
            deadline: tighter(self.deadline, other.deadline),
            max_evaluations: tighter(self.max_evaluations, other.max_evaluations),
        }
    }

    /// Whether the budget is spent, given the evaluations consumed so far.
    ///
    /// The evaluation cap is checked before the deadline so determinism-
    /// sensitive tests can use caps without touching the clock; an
    /// unlimited budget returns `false` without reading the clock at all.
    #[inline]
    pub fn exhausted(&self, evaluations: u64) -> bool {
        if let Some(max) = self.max_evaluations {
            if evaluations >= max {
                return true;
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_exhausts() {
        let budget = SearchBudget::unlimited();
        assert!(budget.is_unlimited());
        assert!(!budget.exhausted(0));
        assert!(!budget.exhausted(u64::MAX));
    }

    #[test]
    fn zero_timeout_exhausts_immediately() {
        let budget = SearchBudget::unlimited().with_deadline_in(Duration::ZERO);
        assert!(!budget.is_unlimited());
        assert!(budget.exhausted(0));
    }

    #[test]
    fn generous_timeout_does_not_exhaust() {
        let budget = SearchBudget::unlimited().with_deadline_in(Duration::from_secs(3600));
        assert!(!budget.exhausted(0));
    }

    #[test]
    fn evaluation_cap_checks_without_a_clock() {
        let budget = SearchBudget::unlimited().with_max_evaluations(10);
        assert!(budget.deadline().is_none());
        assert_eq!(budget.max_evaluations(), Some(10));
        assert!(!budget.exhausted(9));
        assert!(budget.exhausted(10));
        assert!(budget.exhausted(11));
    }

    #[test]
    fn oversized_timeout_degrades_to_unlimited() {
        let budget = SearchBudget::unlimited().with_deadline_in(Duration::MAX);
        // Either representable (exhausts far in the future) or dropped;
        // in both cases the budget must not exhaust now.
        assert!(!budget.exhausted(0));
    }

    #[test]
    fn intersect_of_two_unlimited_budgets_is_unlimited() {
        let merged = SearchBudget::unlimited().intersect(SearchBudget::unlimited());
        assert!(merged.is_unlimited());
        assert!(!merged.exhausted(u64::MAX));
    }

    #[test]
    fn intersect_keeps_a_limit_present_on_only_one_side() {
        let near = Instant::now() + Duration::from_secs(60);
        let limited = SearchBudget::unlimited()
            .with_deadline_at(near)
            .with_max_evaluations(10);

        // Request limited, config unlimited.
        let merged = limited.intersect(SearchBudget::unlimited());
        assert_eq!(merged.deadline(), Some(near));
        assert_eq!(merged.max_evaluations(), Some(10));

        // Request unlimited, config limited.
        let merged = SearchBudget::unlimited().intersect(limited);
        assert_eq!(merged.deadline(), Some(near));
        assert_eq!(merged.max_evaluations(), Some(10));
    }

    #[test]
    fn intersect_takes_the_tighter_of_two_limits() {
        let soon = Instant::now() + Duration::from_secs(10);
        let later = soon + Duration::from_secs(50);
        let a = SearchBudget::unlimited()
            .with_deadline_at(later)
            .with_max_evaluations(10);
        let b = SearchBudget::unlimited()
            .with_deadline_at(soon)
            .with_max_evaluations(500);
        for merged in [a.intersect(b), b.intersect(a)] {
            assert_eq!(merged.deadline(), Some(soon));
            assert_eq!(merged.max_evaluations(), Some(10));
        }
    }

    #[test]
    fn intersect_merges_disjoint_limit_kinds() {
        let at = Instant::now() + Duration::from_secs(30);
        let deadline_only = SearchBudget::unlimited().with_deadline_at(at);
        let cap_only = SearchBudget::unlimited().with_max_evaluations(7);
        let merged = deadline_only.intersect(cap_only);
        assert_eq!(merged.deadline(), Some(at));
        assert_eq!(merged.max_evaluations(), Some(7));
    }

    #[test]
    fn copies_are_independent_values() {
        let base = SearchBudget::unlimited().with_max_evaluations(5);
        let copy = base;
        assert_eq!(base, copy);
        assert!(copy.exhausted(5));
    }
}
