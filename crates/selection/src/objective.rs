//! Objectives: the quantity a JSP solver maximizes over feasible juries.
//!
//! OPTJS maximizes the jury quality under Bayesian voting (the optimal
//! strategy, Theorem 1); the MVJS baseline of Cao et al. maximizes the jury
//! quality under majority voting. Both are exposed behind one trait so the
//! search algorithms (exhaustive, greedy, simulated annealing) are agnostic
//! to the strategy being optimized — which is precisely the ablation the
//! paper's Figure 6 performs.
//!
//! Besides the batch [`JuryObjective::evaluate`] entry point, an objective
//! can open an [`IncrementalSession`]: a stateful evaluator that mutates one
//! worker at a time (`jury_jq::IncrementalJq` / `jury_jq::IncrementalMvJq`
//! underneath), which is what makes the neighbourhood searches pay
//! `O(buckets)` per candidate jury instead of rebuilding the whole JQ
//! dynamic program.

use std::sync::atomic::{AtomicU64, Ordering};

use jury_jq::{
    BucketJqConfig, IncrementalJq, IncrementalJqConfig, IncrementalMvJq, JqEngine, SharedJqScratch,
};
use jury_model::{Jury, Prior, Worker, WorkerPool};

use crate::problem::JspInstance;

/// A stateful, incremental evaluation session opened from a
/// [`JuryObjective`].
///
/// The session tracks one jury; `push`/`pop` mutate it by a single worker
/// and `value` reports the objective of the *current* state. Sessions exist
/// purely to accelerate neighbourhood searches: their values may be
/// quantized (the BV engine works on a fixed bucket grid), so solvers score
/// final candidates through [`JuryObjective::evaluate`] and use the session
/// only to steer the search.
pub trait IncrementalSession {
    /// Adds one worker to the tracked jury.
    fn push(&mut self, worker: &Worker);

    /// Removes a previously pushed worker. Returns `false` (leaving the
    /// state untouched) if the worker is unknown — callers should then
    /// abandon the session and fall back to batch evaluation.
    fn pop(&mut self, worker: &Worker) -> bool;

    /// The objective value of the current jury state.
    fn value(&self) -> f64;
}

/// An objective function over juries.
pub trait JuryObjective: Send + Sync {
    /// Short name used in reports (e.g. `"JQ(BV)"`).
    fn name(&self) -> &'static str;

    /// Evaluates the objective for a jury under the given prior. Larger is
    /// better; values are jury qualities in `[0, 1]`.
    fn evaluate(&self, jury: &Jury, prior: Prior) -> f64;

    /// Number of evaluations performed so far (used to report search
    /// effort); incremental-session evaluations count too.
    fn evaluations(&self) -> u64;

    /// Opens an incremental evaluation session for juries drawn from the
    /// instance's pool, or `None` when the objective has no incremental
    /// back-end (or judges it not worthwhile, e.g. a pool small enough for
    /// exact enumeration). The default implementation returns `None`.
    fn incremental_session<'a>(
        &'a self,
        _instance: &JspInstance,
    ) -> Option<Box<dyn IncrementalSession + 'a>> {
        None
    }

    /// Like [`incremental_session`](Self::incremental_session), but draws
    /// the engine's buffers from a caller-owned arena instead of the
    /// objective's shared one — the hook the parallel solvers use to give
    /// each lane its own warm `JqScratch` (no lock contention between
    /// lanes' hot loops). The default ignores the arena and opens a plain
    /// session, which is correct for objectives without arena-backed
    /// engines.
    fn incremental_session_in<'a>(
        &'a self,
        instance: &JspInstance,
        _arena: &'a SharedJqScratch,
    ) -> Option<Box<dyn IncrementalSession + 'a>> {
        self.incremental_session(instance)
    }
}

// Objectives work by shared reference too, so one (stateful, counting)
// objective can be handed to several solvers in sequence — e.g.
// `jury-service` running exhaustive and greedy candidates against a single
// cache-backed objective and reading the combined counters afterwards.
impl<O: JuryObjective + ?Sized> JuryObjective for &O {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn evaluate(&self, jury: &Jury, prior: Prior) -> f64 {
        (**self).evaluate(jury, prior)
    }

    fn evaluations(&self) -> u64 {
        (**self).evaluations()
    }

    fn incremental_session<'a>(
        &'a self,
        instance: &JspInstance,
    ) -> Option<Box<dyn IncrementalSession + 'a>> {
        (**self).incremental_session(instance)
    }

    fn incremental_session_in<'a>(
        &'a self,
        instance: &JspInstance,
        arena: &'a SharedJqScratch,
    ) -> Option<Box<dyn IncrementalSession + 'a>> {
        (**self).incremental_session_in(instance, arena)
    }
}

/// [`IncrementalSession`] over `JQ(J, BV, α)` via [`IncrementalJq`], with
/// evaluations ticking a caller-owned counter.
///
/// The engine lives in an `Option` only so `Drop` can move it back into the
/// shared scratch arena (when one was provided); it is `Some` for the whole
/// usable life of the session.
struct BvSession<'a> {
    engine: Option<IncrementalJq>,
    scratch: Option<&'a SharedJqScratch>,
    evaluations: &'a AtomicU64,
}

impl BvSession<'_> {
    fn engine_mut(&mut self) -> &mut IncrementalJq {
        self.engine.as_mut().expect("engine is present until drop")
    }
}

impl IncrementalSession for BvSession<'_> {
    fn push(&mut self, worker: &Worker) {
        self.engine_mut().push_worker(worker);
    }

    fn pop(&mut self, worker: &Worker) -> bool {
        self.engine_mut().pop_worker(worker).is_ok()
    }

    fn value(&self) -> f64 {
        self.evaluations.fetch_add(1, Ordering::Relaxed);
        self.engine
            .as_ref()
            .expect("engine is present until drop")
            .jq()
    }
}

impl Drop for BvSession<'_> {
    fn drop(&mut self) {
        if let (Some(engine), Some(shared)) = (self.engine.take(), self.scratch) {
            engine.recycle(&mut shared.lock());
        }
    }
}

/// [`IncrementalSession`] over `JQ(J, MV, α)` via [`IncrementalMvJq`].
struct MvSession<'a> {
    engine: Option<IncrementalMvJq>,
    scratch: Option<&'a SharedJqScratch>,
    prior: Prior,
    evaluations: &'a AtomicU64,
}

impl MvSession<'_> {
    fn engine_mut(&mut self) -> &mut IncrementalMvJq {
        self.engine.as_mut().expect("engine is present until drop")
    }
}

impl IncrementalSession for MvSession<'_> {
    fn push(&mut self, worker: &Worker) {
        self.engine_mut().push_worker(worker);
    }

    fn pop(&mut self, worker: &Worker) -> bool {
        self.engine_mut().pop_worker(worker).is_ok()
    }

    fn value(&self) -> f64 {
        self.evaluations.fetch_add(1, Ordering::Relaxed);
        self.engine
            .as_ref()
            .expect("engine is present until drop")
            .jq(self.prior)
    }
}

impl Drop for MvSession<'_> {
    fn drop(&mut self) {
        if let (Some(engine), Some(shared)) = (self.engine.take(), self.scratch) {
            engine.recycle(&mut shared.lock());
        }
    }
}

/// Builds a BV incremental session on the grid induced by `bucket` for
/// juries drawn from `pool`, ticking `evaluations` on every `value` call.
/// Exposed so other crates' objectives (e.g. `jury-service`'s cache-backed
/// one) can reuse the exact session wiring of [`BvObjective`].
pub fn bv_incremental_session<'a>(
    pool: &WorkerPool,
    prior: Prior,
    bucket: BucketJqConfig,
    evaluations: &'a AtomicU64,
) -> Box<dyn IncrementalSession + 'a> {
    let config = IncrementalJqConfig::default()
        .with_buckets(bucket.buckets)
        .with_kernel_mode(bucket.kernel);
    Box::new(BvSession {
        engine: Some(IncrementalJq::for_pool(pool, prior, config)),
        scratch: None,
        evaluations,
    })
}

/// [`bv_incremental_session`], drawing the engine's buffers from a shared
/// scratch arena and recycling them into it when the session drops. With a
/// warm arena, opening and closing sessions is allocation-free (up to the
/// session `Box` itself).
pub fn bv_incremental_session_in<'a>(
    pool: &WorkerPool,
    prior: Prior,
    bucket: BucketJqConfig,
    evaluations: &'a AtomicU64,
    scratch: &'a SharedJqScratch,
) -> Box<dyn IncrementalSession + 'a> {
    let config = IncrementalJqConfig::default()
        .with_buckets(bucket.buckets)
        .with_kernel_mode(bucket.kernel);
    let engine = IncrementalJq::for_pool_in(pool, prior, config, &mut scratch.lock());
    Box::new(BvSession {
        engine: Some(engine),
        scratch: Some(scratch),
        evaluations,
    })
}

/// Builds an MV incremental session (see [`bv_incremental_session`]).
pub fn mv_incremental_session(
    prior: Prior,
    evaluations: &AtomicU64,
) -> Box<dyn IncrementalSession + '_> {
    Box::new(MvSession {
        engine: Some(IncrementalMvJq::new()),
        scratch: None,
        prior,
        evaluations,
    })
}

/// [`mv_incremental_session`], arena-backed (see
/// [`bv_incremental_session_in`]).
pub fn mv_incremental_session_in<'a>(
    prior: Prior,
    evaluations: &'a AtomicU64,
    scratch: &'a SharedJqScratch,
) -> Box<dyn IncrementalSession + 'a> {
    let engine = IncrementalMvJq::new_in(&mut scratch.lock());
    Box::new(MvSession {
        engine: Some(engine),
        scratch: Some(scratch),
        prior,
        evaluations,
    })
}

/// The OPTJS objective: `JQ(J, BV, α)`, computed by the [`JqEngine`]
/// (exact enumeration for tiny juries, bucket approximation otherwise).
#[derive(Debug, Default)]
pub struct BvObjective {
    engine: JqEngine,
    evaluations: AtomicU64,
    scratch: SharedJqScratch,
}

impl BvObjective {
    /// Creates the objective with the default engine.
    pub fn new() -> Self {
        BvObjective::default()
    }

    /// Creates the objective with a specific bucket configuration — the
    /// experiments use the paper's `numBuckets = 50`.
    pub fn with_config(config: BucketJqConfig) -> Self {
        BvObjective {
            engine: JqEngine::new(config),
            evaluations: AtomicU64::new(0),
            scratch: SharedJqScratch::new(),
        }
    }

    /// Creates the objective around an existing engine.
    pub fn with_engine(engine: JqEngine) -> Self {
        BvObjective {
            engine,
            evaluations: AtomicU64::new(0),
            scratch: SharedJqScratch::new(),
        }
    }
}

impl JuryObjective for BvObjective {
    fn name(&self) -> &'static str {
        "JQ(BV)"
    }

    fn evaluate(&self, jury: &Jury, prior: Prior) -> f64 {
        self.evaluations.fetch_add(1, Ordering::Relaxed);
        self.engine.bv_jq(jury, prior).value
    }

    fn evaluations(&self) -> u64 {
        self.evaluations.load(Ordering::Relaxed)
    }

    fn incremental_session<'a>(
        &'a self,
        instance: &JspInstance,
    ) -> Option<Box<dyn IncrementalSession + 'a>> {
        // Pools within the exact cutoff evaluate every jury by exact
        // enumeration anyway — a quantized incremental grid would only trade
        // precision for nothing there.
        if instance.num_candidates() <= self.engine.exact_cutoff() {
            return None;
        }
        Some(bv_incremental_session_in(
            instance.pool(),
            instance.prior(),
            *self.engine.bucket_estimator().config(),
            &self.evaluations,
            &self.scratch,
        ))
    }

    fn incremental_session_in<'a>(
        &'a self,
        instance: &JspInstance,
        arena: &'a SharedJqScratch,
    ) -> Option<Box<dyn IncrementalSession + 'a>> {
        if instance.num_candidates() <= self.engine.exact_cutoff() {
            return None;
        }
        Some(bv_incremental_session_in(
            instance.pool(),
            instance.prior(),
            *self.engine.bucket_estimator().config(),
            &self.evaluations,
            arena,
        ))
    }
}

/// The MVJS objective: `JQ(J, MV, α)` via the exact Poisson-binomial dynamic
/// program.
#[derive(Debug, Default)]
pub struct MvObjective {
    engine: JqEngine,
    evaluations: AtomicU64,
    scratch: SharedJqScratch,
}

impl MvObjective {
    /// Creates the objective.
    pub fn new() -> Self {
        MvObjective::default()
    }
}

impl JuryObjective for MvObjective {
    fn name(&self) -> &'static str {
        "JQ(MV)"
    }

    fn evaluate(&self, jury: &Jury, prior: Prior) -> f64 {
        self.evaluations.fetch_add(1, Ordering::Relaxed);
        self.engine.mv_jq(jury, prior).value
    }

    fn evaluations(&self) -> u64 {
        self.evaluations.load(Ordering::Relaxed)
    }

    fn incremental_session<'a>(
        &'a self,
        instance: &JspInstance,
    ) -> Option<Box<dyn IncrementalSession + 'a>> {
        // The MV session is exact (no quantization) and strictly cheaper
        // than the scratch Poisson-binomial DP, so it is always worthwhile.
        Some(mv_incremental_session_in(
            instance.prior(),
            &self.evaluations,
            &self.scratch,
        ))
    }

    fn incremental_session_in<'a>(
        &'a self,
        instance: &JspInstance,
        arena: &'a SharedJqScratch,
    ) -> Option<Box<dyn IncrementalSession + 'a>> {
        Some(mv_incremental_session_in(
            instance.prior(),
            &self.evaluations,
            arena,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bv_objective_matches_paper_example() {
        let obj = BvObjective::new();
        let jury = Jury::from_qualities(&[0.9, 0.6, 0.6]).unwrap();
        let jq = obj.evaluate(&jury, Prior::uniform());
        assert!((jq - 0.9).abs() < 1e-9);
        assert_eq!(obj.evaluations(), 1);
        assert_eq!(obj.name(), "JQ(BV)");
    }

    #[test]
    fn mv_objective_matches_paper_example() {
        let obj = MvObjective::new();
        let jury = Jury::from_qualities(&[0.9, 0.6, 0.6]).unwrap();
        let jq = obj.evaluate(&jury, Prior::uniform());
        assert!((jq - 0.792).abs() < 1e-12);
        assert_eq!(obj.evaluations(), 1);
        assert_eq!(obj.name(), "JQ(MV)");
    }

    #[test]
    fn bv_dominates_mv_on_the_same_jury() {
        let bv = BvObjective::new();
        let mv = MvObjective::new();
        let jury = Jury::from_qualities(&[0.85, 0.6, 0.55, 0.7, 0.9]).unwrap();
        for alpha in [0.3, 0.5, 0.7] {
            let prior = Prior::new(alpha).unwrap();
            assert!(bv.evaluate(&jury, prior) >= mv.evaluate(&jury, prior) - 1e-9);
        }
    }

    #[test]
    fn evaluation_counter_accumulates() {
        let obj = BvObjective::with_config(BucketJqConfig::paper_experiments());
        let jury = Jury::from_qualities(&[0.7, 0.8]).unwrap();
        for _ in 0..5 {
            obj.evaluate(&jury, Prior::uniform());
        }
        assert_eq!(obj.evaluations(), 5);
    }

    #[test]
    fn bv_sessions_are_gated_by_the_exact_cutoff() {
        let obj = BvObjective::new();
        let small =
            JspInstance::with_uniform_prior(jury_model::paper_example_pool(), 15.0).unwrap();
        assert!(obj.incremental_session(&small).is_none());
        let big_pool =
            jury_model::WorkerPool::from_qualities_and_costs(&[0.7; 20], &[1.0; 20]).unwrap();
        let big = JspInstance::with_uniform_prior(big_pool, 5.0).unwrap();
        assert!(obj.incremental_session(&big).is_some());
    }

    #[test]
    fn bv_session_tracks_evaluate_and_ticks_the_counter() {
        let obj = BvObjective::new();
        let pool = jury_model::WorkerPool::from_qualities_and_costs(
            &[
                0.9, 0.63, 0.6, 0.7, 0.8, 0.65, 0.75, 0.55, 0.72, 0.68, 0.81, 0.59, 0.62,
            ],
            &[1.0; 13],
        )
        .unwrap();
        let instance = JspInstance::with_uniform_prior(pool.clone(), 3.0).unwrap();
        let mut session = obj.incremental_session(&instance).unwrap();
        let members = &pool.workers()[..3];
        for worker in members {
            session.push(worker);
        }
        let incremental = session.value();
        let exact = {
            let jury = Jury::new(members.to_vec());
            jury_jq::exact_bv_jq(&jury, Prior::uniform()).unwrap()
        };
        // Quantized guidance: within the (loose) analytic grid error.
        assert!(
            (incremental - exact).abs() < 1e-2,
            "session {incremental} vs exact {exact}"
        );
        assert!(session.pop(&members[2]));
        assert!(!session.pop(&members[2]), "double pop must fail");
        assert!(obj.evaluations() >= 1, "session values must be counted");
    }

    #[test]
    fn mv_session_is_exact_and_always_available() {
        let obj = MvObjective::new();
        let instance =
            JspInstance::with_uniform_prior(jury_model::paper_example_pool(), 15.0).unwrap();
        let mut session = obj.incremental_session(&instance).unwrap();
        let workers = instance.pool().workers().to_vec();
        for worker in &workers[..3] {
            session.push(worker);
        }
        let jury = Jury::new(workers[..3].to_vec());
        let direct = obj.evaluate(&jury, Prior::uniform());
        assert!((session.value() - direct).abs() < 1e-12);
    }
}
