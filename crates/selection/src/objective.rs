//! Objectives: the quantity a JSP solver maximizes over feasible juries.
//!
//! OPTJS maximizes the jury quality under Bayesian voting (the optimal
//! strategy, Theorem 1); the MVJS baseline of Cao et al. maximizes the jury
//! quality under majority voting. Both are exposed behind one trait so the
//! search algorithms (exhaustive, greedy, simulated annealing) are agnostic
//! to the strategy being optimized — which is precisely the ablation the
//! paper's Figure 6 performs.

use std::sync::atomic::{AtomicU64, Ordering};

use jury_jq::{BucketJqConfig, JqEngine};
use jury_model::{Jury, Prior};

/// An objective function over juries.
pub trait JuryObjective: Send + Sync {
    /// Short name used in reports (e.g. `"JQ(BV)"`).
    fn name(&self) -> &'static str;

    /// Evaluates the objective for a jury under the given prior. Larger is
    /// better; values are jury qualities in `[0, 1]`.
    fn evaluate(&self, jury: &Jury, prior: Prior) -> f64;

    /// Number of evaluations performed so far (used to report search effort).
    fn evaluations(&self) -> u64;
}

// Objectives work by shared reference too, so one (stateful, counting)
// objective can be handed to several solvers in sequence — e.g.
// `jury-service` running exhaustive and greedy candidates against a single
// cache-backed objective and reading the combined counters afterwards.
impl<O: JuryObjective + ?Sized> JuryObjective for &O {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn evaluate(&self, jury: &Jury, prior: Prior) -> f64 {
        (**self).evaluate(jury, prior)
    }

    fn evaluations(&self) -> u64 {
        (**self).evaluations()
    }
}

/// The OPTJS objective: `JQ(J, BV, α)`, computed by the [`JqEngine`]
/// (exact enumeration for tiny juries, bucket approximation otherwise).
#[derive(Debug, Default)]
pub struct BvObjective {
    engine: JqEngine,
    evaluations: AtomicU64,
}

impl BvObjective {
    /// Creates the objective with the default engine.
    pub fn new() -> Self {
        BvObjective::default()
    }

    /// Creates the objective with a specific bucket configuration — the
    /// experiments use the paper's `numBuckets = 50`.
    pub fn with_config(config: BucketJqConfig) -> Self {
        BvObjective {
            engine: JqEngine::new(config),
            evaluations: AtomicU64::new(0),
        }
    }

    /// Creates the objective around an existing engine.
    pub fn with_engine(engine: JqEngine) -> Self {
        BvObjective {
            engine,
            evaluations: AtomicU64::new(0),
        }
    }
}

impl JuryObjective for BvObjective {
    fn name(&self) -> &'static str {
        "JQ(BV)"
    }

    fn evaluate(&self, jury: &Jury, prior: Prior) -> f64 {
        self.evaluations.fetch_add(1, Ordering::Relaxed);
        self.engine.bv_jq(jury, prior).value
    }

    fn evaluations(&self) -> u64 {
        self.evaluations.load(Ordering::Relaxed)
    }
}

/// The MVJS objective: `JQ(J, MV, α)` via the exact Poisson-binomial dynamic
/// program.
#[derive(Debug, Default)]
pub struct MvObjective {
    engine: JqEngine,
    evaluations: AtomicU64,
}

impl MvObjective {
    /// Creates the objective.
    pub fn new() -> Self {
        MvObjective::default()
    }
}

impl JuryObjective for MvObjective {
    fn name(&self) -> &'static str {
        "JQ(MV)"
    }

    fn evaluate(&self, jury: &Jury, prior: Prior) -> f64 {
        self.evaluations.fetch_add(1, Ordering::Relaxed);
        self.engine.mv_jq(jury, prior).value
    }

    fn evaluations(&self) -> u64 {
        self.evaluations.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bv_objective_matches_paper_example() {
        let obj = BvObjective::new();
        let jury = Jury::from_qualities(&[0.9, 0.6, 0.6]).unwrap();
        let jq = obj.evaluate(&jury, Prior::uniform());
        assert!((jq - 0.9).abs() < 1e-9);
        assert_eq!(obj.evaluations(), 1);
        assert_eq!(obj.name(), "JQ(BV)");
    }

    #[test]
    fn mv_objective_matches_paper_example() {
        let obj = MvObjective::new();
        let jury = Jury::from_qualities(&[0.9, 0.6, 0.6]).unwrap();
        let jq = obj.evaluate(&jury, Prior::uniform());
        assert!((jq - 0.792).abs() < 1e-12);
        assert_eq!(obj.evaluations(), 1);
        assert_eq!(obj.name(), "JQ(MV)");
    }

    #[test]
    fn bv_dominates_mv_on_the_same_jury() {
        let bv = BvObjective::new();
        let mv = MvObjective::new();
        let jury = Jury::from_qualities(&[0.85, 0.6, 0.55, 0.7, 0.9]).unwrap();
        for alpha in [0.3, 0.5, 0.7] {
            let prior = Prior::new(alpha).unwrap();
            assert!(bv.evaluate(&jury, prior) >= mv.evaluate(&jury, prior) - 1e-9);
        }
    }

    #[test]
    fn evaluation_counter_accumulates() {
        let obj = BvObjective::with_config(BucketJqConfig::paper_experiments());
        let jury = Jury::from_qualities(&[0.7, 0.8]).unwrap();
        for _ in 0..5 {
            obj.evaluate(&jury, Prior::uniform());
        }
        assert_eq!(obj.evaluations(), 5);
    }
}
