//! Exhaustive JSP solver: enumerate every feasible jury and keep the best.
//!
//! Exponential in the pool size (JSP is NP-hard, Theorem 4), but exact; it is
//! the reference the simulated-annealing heuristic is measured against in
//! Figure 7(a) / Table 3, where the paper fixes `N = 11` precisely so that
//! this enumeration stays tractable.

use std::time::Instant;

use jury_model::Jury;

use crate::objective::JuryObjective;
use crate::problem::JspInstance;
use crate::solver::{JurySolver, SolveError, SolverResult};

/// Largest pool size accepted by the exhaustive solver (2^22 subsets).
pub const MAX_EXHAUSTIVE_POOL: usize = 22;

/// The exhaustive (exact) solver.
pub struct ExhaustiveSolver<O: JuryObjective> {
    objective: O,
}

impl<O: JuryObjective> ExhaustiveSolver<O> {
    /// Creates the solver around an objective.
    pub fn new(objective: O) -> Self {
        ExhaustiveSolver { objective }
    }

    /// The underlying objective.
    pub fn objective(&self) -> &O {
        &self.objective
    }
}

impl<O: JuryObjective> ExhaustiveSolver<O> {
    fn enumerate(&self, instance: &JspInstance) -> SolverResult {
        let n = instance.num_candidates();
        let start = Instant::now();
        let evaluations_before = self.objective.evaluations();
        let workers = instance.pool().workers();
        let budget = instance.budget();
        let prior = instance.prior();

        let mut best_jury = Jury::empty();
        let mut best_value = self.objective.evaluate(&best_jury, prior);

        // Enumerate subsets by bitmask with a cheap cost pre-filter; Lemma 1
        // (monotonicity in jury size) means dominated subsets could be
        // skipped, but at N ≤ 22 the straightforward sweep is already fast
        // and keeps the solver exact for any objective, monotone or not.
        for mask in 1u32..(1u32 << n) {
            let mut cost = 0.0;
            for (i, worker) in workers.iter().enumerate() {
                if (mask >> i) & 1 == 1 {
                    cost += worker.cost();
                }
            }
            if cost > budget + 1e-12 {
                continue;
            }
            let members: Vec<_> = workers
                .iter()
                .enumerate()
                .filter(|(i, _)| (mask >> i) & 1 == 1)
                .map(|(_, w)| w.clone())
                .collect();
            let jury = Jury::new(members);
            let value = self.objective.evaluate(&jury, prior);
            if value > best_value + 1e-15 {
                best_value = value;
                best_jury = jury;
            }
        }

        SolverResult {
            jury: best_jury,
            objective_value: best_value,
            evaluations: self.objective.evaluations() - evaluations_before,
            elapsed: start.elapsed(),
            solver: self.name(),
            truncated: false,
        }
    }
}

impl<O: JuryObjective> JurySolver for ExhaustiveSolver<O> {
    fn name(&self) -> &'static str {
        "exhaustive"
    }

    fn solve(&self, instance: &JspInstance) -> SolverResult {
        let n = instance.num_candidates();
        assert!(
            n <= MAX_EXHAUSTIVE_POOL,
            "exhaustive JSP is limited to {MAX_EXHAUSTIVE_POOL} candidates (got {n})"
        );
        self.enumerate(instance)
    }

    fn try_solve(&self, instance: &JspInstance) -> Result<SolverResult, SolveError> {
        let n = instance.num_candidates();
        if n > MAX_EXHAUSTIVE_POOL {
            return Err(SolveError::PoolTooLarge {
                size: n,
                max: MAX_EXHAUSTIVE_POOL,
            });
        }
        Ok(self.enumerate(instance))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::{BvObjective, MvObjective};
    use jury_model::{paper_example_pool, Prior, WorkerId, WorkerPool};

    fn paper_instance(budget: f64) -> JspInstance {
        JspInstance::with_uniform_prior(paper_example_pool(), budget).unwrap()
    }

    #[test]
    fn finds_the_figure_1_optimal_juries() {
        // Figure 1's budget-quality table (under BV): budget 5 → 75 % (e.g.
        // {F, G}), budget 10 → 80 % (e.g. {C, G}). Several juries tie at
        // those qualities (a single 0.75 or 0.80 worker achieves the same
        // JQ), so only the optimal value is asserted.
        let solver = ExhaustiveSolver::new(BvObjective::new());

        let result = solver.solve(&paper_instance(5.0));
        assert!((result.objective_value - 0.75).abs() < 1e-9);
        assert!(result.cost() <= 5.0 + 1e-9);

        let result = solver.solve(&paper_instance(10.0));
        assert!((result.objective_value - 0.80).abs() < 1e-9);
        assert!(result.cost() <= 10.0 + 1e-9);
    }

    #[test]
    fn figure_1_budget_15_and_20() {
        let solver = ExhaustiveSolver::new(BvObjective::new());
        // Budget 15 → {B, C, G} at 84.5 % costing 14.
        let result = solver.solve(&paper_instance(15.0));
        let mut ids = result.jury.ids();
        ids.sort();
        assert_eq!(ids, vec![WorkerId(1), WorkerId(2), WorkerId(6)]);
        assert!((result.objective_value - 0.845).abs() < 1e-9);
        assert!((result.cost() - 14.0).abs() < 1e-9);
        // Budget 20 → 86.95 % ({A, C, F, G} in the paper, costing 20).
        let result = solver.solve(&paper_instance(20.0));
        assert!((result.objective_value - 0.8695).abs() < 1e-9);
        assert!(result.cost() <= 20.0 + 1e-9);
    }

    #[test]
    fn zero_budget_returns_the_empty_jury() {
        let solver = ExhaustiveSolver::new(BvObjective::new());
        let result = solver.solve(&paper_instance(0.0));
        assert!(result.jury.is_empty());
        assert!((result.objective_value - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mv_objective_selects_a_possibly_different_jury() {
        // The introduction's point: under MV the best feasible jury at
        // B = 20 is {A, C, G}, whose MV quality is 86.95 %; the BV-optimal
        // jury ({A, C, F, G}) achieves at least as much under BV.
        let solver = ExhaustiveSolver::new(MvObjective::new());
        let result = solver.solve(&paper_instance(20.0));
        assert!(
            (result.objective_value - 0.8695).abs() < 1e-9,
            "{}",
            result.objective_value
        );
        assert!(result.cost() <= 20.0 + 1e-9);
        let bv = ExhaustiveSolver::new(BvObjective::new()).solve(&paper_instance(20.0));
        assert!(bv.objective_value >= result.objective_value - 1e-12);
    }

    #[test]
    fn respects_budget_feasibility() {
        let solver = ExhaustiveSolver::new(BvObjective::new());
        for budget in [3.0, 8.0, 14.0, 25.0, 37.0] {
            let instance = paper_instance(budget);
            let result = solver.solve(&instance);
            assert!(instance.is_feasible(&result.jury), "budget {budget}");
        }
    }

    #[test]
    fn unlimited_budget_selects_every_worker() {
        // Lemma 1: with the whole pool affordable, all workers are chosen.
        let solver = ExhaustiveSolver::new(BvObjective::new());
        let result = solver.solve(&paper_instance(37.0));
        assert_eq!(result.size(), 7);
    }

    #[test]
    fn counts_evaluations() {
        let pool = WorkerPool::from_qualities_and_costs(&[0.7, 0.8], &[1.0, 1.0]).unwrap();
        let instance = JspInstance::new(pool, 2.0, Prior::uniform()).unwrap();
        let solver = ExhaustiveSolver::new(BvObjective::new());
        let result = solver.solve(&instance);
        // Empty + 3 non-empty subsets.
        assert_eq!(result.evaluations, 4);
    }

    #[test]
    #[should_panic(expected = "limited")]
    fn oversized_pool_panics() {
        let qualities = vec![0.7; 23];
        let costs = vec![1.0; 23];
        let pool = WorkerPool::from_qualities_and_costs(&qualities, &costs).unwrap();
        let instance = JspInstance::with_uniform_prior(pool, 5.0).unwrap();
        let _ = ExhaustiveSolver::new(BvObjective::new()).solve(&instance);
    }

    #[test]
    fn try_solve_reports_oversized_pools_without_panicking() {
        use crate::solver::SolveError;
        let qualities = vec![0.7; 23];
        let costs = vec![1.0; 23];
        let pool = WorkerPool::from_qualities_and_costs(&qualities, &costs).unwrap();
        let instance = JspInstance::with_uniform_prior(pool, 5.0).unwrap();
        let err = ExhaustiveSolver::new(BvObjective::new())
            .try_solve(&instance)
            .unwrap_err();
        assert_eq!(
            err,
            SolveError::PoolTooLarge {
                size: 23,
                max: MAX_EXHAUSTIVE_POOL
            }
        );
        assert!(err.to_string().contains("23"));
        // In-limit instances succeed with the same result as `solve`.
        let ok = ExhaustiveSolver::new(BvObjective::new())
            .try_solve(&paper_instance(15.0))
            .unwrap();
        assert!((ok.objective_value - 0.845).abs() < 1e-9);
    }
}
