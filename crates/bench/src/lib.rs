//! # jury-bench
//!
//! The experiment harness of the reproduction: one binary per table/figure
//! of the paper's evaluation (Section 6) plus Criterion micro-benchmarks.
//!
//! | Binary | Paper artefact |
//! |---|---|
//! | `fig1_budget_quality_table` | Figure 1's budget–quality table |
//! | `fig6_system_comparison` | Figure 6(a)–(d): OPTJS vs MVJS on synthetic data |
//! | `fig7_optjs_quality_runtime` | Figure 7(a)/(b) and Table 3 |
//! | `fig8_strategy_comparison` | Figure 8(a)/(b): JQ of MV/BV/RBV/RMV |
//! | `fig9_jq_computation` | Figure 9(a)–(d): JQ(BV) computation quality/cost |
//! | `fig10_real_dataset` | Figure 10(a)–(d): the (simulated) AMT dataset |
//!
//! Every binary accepts `--trials <n>`, `--seed <n>`, `--out <path.json>`
//! and `--full` (run at the paper's full scale rather than the quicker
//! default), and prints the series it produces as aligned text tables.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::time::Instant;

/// Command-line arguments shared by every experiment binary.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentArgs {
    /// Number of repetitions per parameter point.
    pub trials: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Optional path to write the JSON dump of every series.
    pub out: Option<String>,
    /// Whether to run at the paper's full scale.
    pub full: bool,
}

impl Default for ExperimentArgs {
    fn default() -> Self {
        ExperimentArgs {
            trials: 10,
            seed: 42,
            out: None,
            full: false,
        }
    }
}

impl ExperimentArgs {
    /// Parses the arguments from an iterator of strings (typically
    /// `std::env::args().skip(1)`), starting from defaults. Unknown flags
    /// are rejected with a readable message.
    pub fn parse<I, S>(args: I) -> Result<Self, String>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut parsed = ExperimentArgs::default();
        let mut iter = args.into_iter();
        while let Some(flag) = iter.next() {
            match flag.as_ref() {
                "--trials" => {
                    let value = iter.next().ok_or("--trials needs a value")?;
                    parsed.trials = value
                        .as_ref()
                        .parse()
                        .map_err(|_| format!("invalid --trials value: {}", value.as_ref()))?;
                    if parsed.trials == 0 {
                        return Err("--trials must be at least 1".into());
                    }
                }
                "--seed" => {
                    let value = iter.next().ok_or("--seed needs a value")?;
                    parsed.seed = value
                        .as_ref()
                        .parse()
                        .map_err(|_| format!("invalid --seed value: {}", value.as_ref()))?;
                }
                "--out" => {
                    let value = iter.next().ok_or("--out needs a path")?;
                    parsed.out = Some(value.as_ref().to_string());
                }
                "--full" => parsed.full = true,
                "--help" | "-h" => {
                    return Err("usage: [--trials N] [--seed N] [--out FILE.json] [--full]".into())
                }
                other => return Err(format!("unknown flag: {other}")),
            }
        }
        Ok(parsed)
    }

    /// Parses from the process arguments, exiting with the error message on
    /// failure (convenience for binaries).
    pub fn from_env() -> Self {
        match ExperimentArgs::parse(std::env::args().skip(1)) {
            Ok(args) => args,
            Err(message) => {
                eprintln!("{message}");
                std::process::exit(2);
            }
        }
    }
}

/// Writes a JSON value to the given path if `out` is set, logging the
/// destination; errors abort the experiment with a message (results already
/// printed to stdout are not lost).
pub fn maybe_write_json(out: &Option<String>, value: &serde_json::Value) {
    if let Some(path) = out {
        match std::fs::write(
            path,
            serde_json::to_string_pretty(value).expect("serializable"),
        ) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(err) => {
                eprintln!("failed to write {path}: {err}");
                std::process::exit(1);
            }
        }
    }
}

/// Measures the wall-clock seconds spent in a closure and returns
/// `(result, seconds)`.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let result = f();
    (result, start.elapsed().as_secs_f64())
}

/// Produces an inclusive linear sweep `[lo, lo+step, ..., hi]` (robust to
/// floating-point accumulation).
pub fn sweep(lo: f64, hi: f64, step: f64) -> Vec<f64> {
    assert!(step > 0.0, "step must be positive");
    let mut values = Vec::new();
    let count = ((hi - lo) / step).round() as i64;
    for i in 0..=count.max(0) {
        values.push(lo + i as f64 * step);
    }
    values
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_defaults_and_flags() {
        let args = ExperimentArgs::parse(Vec::<String>::new()).unwrap();
        assert_eq!(args, ExperimentArgs::default());
        let args =
            ExperimentArgs::parse(["--trials", "5", "--seed", "7", "--out", "x.json", "--full"])
                .unwrap();
        assert_eq!(args.trials, 5);
        assert_eq!(args.seed, 7);
        assert_eq!(args.out.as_deref(), Some("x.json"));
        assert!(args.full);
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!(ExperimentArgs::parse(["--trials"]).is_err());
        assert!(ExperimentArgs::parse(["--trials", "zero"]).is_err());
        assert!(ExperimentArgs::parse(["--trials", "0"]).is_err());
        assert!(ExperimentArgs::parse(["--bogus"]).is_err());
        assert!(ExperimentArgs::parse(["--help"]).is_err());
    }

    #[test]
    fn sweep_is_inclusive() {
        assert_eq!(sweep(0.5, 1.0, 0.1).len(), 6);
        assert!((sweep(0.5, 1.0, 0.1)[5] - 1.0).abs() < 1e-12);
        assert_eq!(sweep(10.0, 100.0, 10.0).len(), 10);
        assert_eq!(sweep(5.0, 5.0, 1.0), vec![5.0]);
    }

    #[test]
    fn timed_returns_result_and_duration() {
        let (value, seconds) = timed(|| 21 * 2);
        assert_eq!(value, 42);
        assert!(seconds >= 0.0);
    }

    #[test]
    fn maybe_write_json_writes_when_asked() {
        let dir = std::env::temp_dir().join("jury_bench_test_out.json");
        let path = dir.to_string_lossy().to_string();
        maybe_write_json(&Some(path.clone()), &serde_json::json!({"ok": true}));
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("ok"));
        std::fs::remove_file(&path).ok();
        // None is a no-op.
        maybe_write_json(&None, &serde_json::json!({}));
    }
}
