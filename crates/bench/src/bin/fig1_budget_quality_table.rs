//! Reproduces the paper's Figure 1: the budget–quality table of the Optimal
//! Jury Selection System on the seven-worker running example, plus the MVJS
//! baseline's choice at the same budgets.
//!
//! ```text
//! cargo run -p jury-bench --release --bin fig1_budget_quality_table
//! ```

use jury_bench::{maybe_write_json, ExperimentArgs};
use jury_model::{paper_example_pool, Prior};
use jury_optjs::{Mvjs, Optjs, SystemConfig};

fn main() {
    let args = ExperimentArgs::from_env();
    let pool = paper_example_pool();
    let budgets = [5.0, 10.0, 15.0, 20.0];

    println!("Figure 1 — Optimal Jury Selection System on the running example");
    println!("Candidate workers (quality, cost):");
    for worker in pool.iter() {
        println!(
            "  {}: ({:.2}, ${:.0})",
            worker.id(),
            worker.quality(),
            worker.cost()
        );
    }
    println!();

    let optjs = Optjs::new(SystemConfig::paper_experiments());
    let table = optjs
        .budget_quality_table(&pool, &budgets, Prior::uniform())
        .expect("experiment budgets are valid");
    println!("Budget-quality table (OPTJS, Bayesian voting):");
    println!("{}", table.render());

    println!("Paper-reported rows for comparison:");
    println!("  budget 5  -> quality 75%,    required 5");
    println!("  budget 10 -> quality 80%,    required 9");
    println!("  budget 15 -> quality 84.5%,  required 14");
    println!("  budget 20 -> quality 86.95%, required 20");
    println!();

    let mvjs = Mvjs::new(SystemConfig::paper_experiments());
    println!("MVJS baseline (majority voting) at the same budgets:");
    println!("Budget | Jury                | JQ(MV)");
    println!("-------+---------------------+--------");
    let mut mvjs_rows = Vec::new();
    for &budget in &budgets {
        let outcome = mvjs
            .select(&pool, budget, Prior::uniform())
            .expect("experiment budgets are valid");
        let ids: Vec<String> = outcome
            .worker_ids()
            .iter()
            .map(|id| id.to_string())
            .collect();
        println!(
            "{:>6.0} | {:<19} | {:>5.2}%",
            budget,
            format!("{{{}}}", ids.join(", ")),
            outcome.estimated_quality * 100.0
        );
        mvjs_rows.push(serde_json::json!({
            "budget": budget,
            "jury": ids,
            "quality": outcome.estimated_quality,
        }));
    }

    let dump = serde_json::json!({
        "experiment": "figure_1_budget_quality_table",
        "optjs": table.rows().iter().map(|r| serde_json::json!({
            "budget": r.budget,
            "jury": r.jury.iter().map(|id| id.to_string()).collect::<Vec<_>>(),
            "quality": r.quality,
            "required_budget": r.required_budget,
        })).collect::<Vec<_>>(),
        "mvjs": mvjs_rows,
        "trials": args.trials,
    });
    maybe_write_json(&args.out, &dump);
}
