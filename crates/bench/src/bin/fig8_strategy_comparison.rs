//! Reproduces Figure 8: the jury quality of the four voting strategies the
//! paper compares — MV, BV, RBV (random ballot), and RMV (randomized
//! majority) — (a) as the worker quality mean µ varies with a fixed jury of
//! 11 workers, and (b) as the jury size n grows with µ = 0.7.
//!
//! JQ is computed by exact enumeration (n ≤ 11), exactly as the paper does
//! for this experiment, and averaged over `--trials` random juries.
//!
//! ```text
//! cargo run -p jury-bench --release --bin fig8_strategy_comparison -- --trials 50
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use jury_bench::{maybe_write_json, sweep, ExperimentArgs};
use jury_jq::exact_jq;
use jury_model::{GaussianWorkerGenerator, Jury, Prior};
use jury_optjs::Series;
use jury_voting::figure8_strategies;

/// Average JQ of each Figure 8 strategy over random juries of size `n` drawn
/// with quality mean `mu`.
fn average_strategy_jq(n: usize, mu: f64, trials: usize, seed: u64) -> Vec<(String, f64)> {
    let strategies = figure8_strategies();
    let generator = GaussianWorkerGenerator::paper_defaults().with_quality_mean(mu);
    let mut totals = vec![0.0f64; strategies.len()];
    for trial in 0..trials {
        let mut rng = StdRng::seed_from_u64(seed ^ (trial as u64).wrapping_mul(0x9E3779B97F4A7C15));
        let qualities: Vec<f64> = (0..n).map(|_| generator.sample_quality(&mut rng)).collect();
        let jury = Jury::from_qualities(&qualities).expect("clamped qualities are valid");
        for (i, strategy) in strategies.iter().enumerate() {
            totals[i] += exact_jq(&jury, strategy.as_ref(), Prior::uniform())
                .expect("votes generated internally");
        }
    }
    strategies
        .iter()
        .zip(totals.iter())
        .map(|(s, &total)| (s.name().to_string(), total / trials as f64))
        .collect()
}

fn print_panel(header: &str, x_name: &str, rows: &[(f64, Vec<(String, f64)>)]) {
    println!("{header}");
    print!("{x_name:>8}");
    for (name, _) in &rows[0].1 {
        print!(" | {name:>7}");
    }
    println!();
    for (x, values) in rows {
        print!("{x:>8.2}");
        for (_, jq) in values {
            print!(" | {:>6.2}%", jq * 100.0);
        }
        println!();
    }
    println!();
}

fn main() {
    let args = ExperimentArgs::from_env();
    println!(
        "Figure 8 — JQ of MV / BV / RBV / RMV ({} trials per point)\n",
        args.trials
    );

    // (a) Vary µ in [0.5, 1.0] with a fixed jury size of 11.
    let mut panel_a = Vec::new();
    for mu in sweep(0.5, 1.0, 0.1) {
        panel_a.push((mu, average_strategy_jq(11, mu, args.trials, args.seed)));
    }
    print_panel(
        "Figure 8(a): jury size n = 11, varying quality mean mu",
        "mu",
        &panel_a,
    );

    // (b) Vary the jury size n in [1, 11] with µ = 0.7.
    let mut panel_b = Vec::new();
    for n in 1..=11usize {
        panel_b.push((
            n as f64,
            average_strategy_jq(n, 0.7, args.trials, args.seed + 1),
        ));
    }
    print_panel("Figure 8(b): mu = 0.7, varying jury size n", "n", &panel_b);

    println!("Paper shape: BV is the highest curve everywhere (about 10% over MV at n = 7);");
    println!("RBV stays flat at 50%; RMV never beats MV; all strategies are worst at mu = 0.5,");
    println!("where BV still reaches ~93% for n = 11 thanks to quality-aware weighting.");

    // Sanity summary: does BV dominate in this run?
    let mut bv_dominates = true;
    for (_, values) in panel_a.iter().chain(panel_b.iter()) {
        let bv = values
            .iter()
            .find(|(n, _)| n == "BV")
            .map(|(_, v)| *v)
            .unwrap_or(0.0);
        for (name, value) in values {
            if name != "BV" && *value > bv + 1e-9 {
                bv_dominates = false;
            }
        }
    }
    println!("\nBV dominates every other strategy at every point: {bv_dominates}");

    // JSON dump as per-strategy series.
    let to_series = |panel: &[(f64, Vec<(String, f64)>)]| -> Vec<Series> {
        let mut series: Vec<Series> = Vec::new();
        for (x, values) in panel {
            for (name, value) in values {
                match series.iter_mut().find(|s| &s.name == name) {
                    Some(s) => s.push(*x, *value),
                    None => {
                        let mut s = Series::new(name.clone());
                        s.push(*x, *value);
                        series.push(s);
                    }
                }
            }
        }
        series
    };
    let dump = serde_json::json!({
        "experiment": "figure_8_strategy_comparison",
        "trials": args.trials,
        "fig8a_vary_mu": to_series(&panel_a),
        "fig8b_vary_n": to_series(&panel_b),
        "bv_dominates": bv_dominates,
    });
    maybe_write_json(&args.out, &dump);
}
