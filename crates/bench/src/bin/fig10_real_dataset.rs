//! Reproduces Figure 10: the evaluation on the (simulated) Amazon Mechanical
//! Turk sentiment-analysis dataset.
//!
//! The paper's real dataset (600 tweets, 128 workers, 20 votes per task) is
//! replaced by the statistically matched simulation in `jury-sim::amt` (see
//! DESIGN.md for the substitution argument). For every task the candidate
//! pool is the set of workers who answered it, exactly as in Section 6.2.2:
//!
//! * (a) OPTJS vs MVJS varying the budget B;
//! * (b) OPTJS vs MVJS varying the number of candidate workers N per task;
//! * (c) OPTJS vs MVJS varying the cost standard deviation σ̂;
//! * (d) realized BV accuracy vs. average predicted JQ as the number of
//!   replayed votes z grows ("is JQ a good prediction?").
//!
//! ```text
//! cargo run -p jury-bench --release --bin fig10_real_dataset -- --full
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use jury_bench::{maybe_write_json, sweep, ExperimentArgs};
use jury_jq::JqEngine;
use jury_model::{CrowdDataset, Prior, WorkerPool};
use jury_optjs::{ComparisonSeries, Mvjs, Optjs, Series, SystemConfig};
use jury_sim::{prefix_sweep, AmtCampaignConfig, AmtSimulator};

/// Average, over every task of the dataset, of the jury quality each system
/// achieves when selecting from that task's answering workers (optionally
/// truncated to the first `candidate_limit` voters) under `budget`.
fn per_task_comparison(
    dataset: &CrowdDataset,
    optjs: &Optjs,
    mvjs: &Mvjs,
    budget: f64,
    candidate_limit: usize,
    cost_scale: Option<f64>,
) -> (f64, f64) {
    let mut optjs_total = 0.0;
    let mut mvjs_total = 0.0;
    let mut counted = 0usize;
    for task in dataset.tasks() {
        let candidates: Vec<_> = task
            .votes()
            .iter()
            .take(candidate_limit)
            .filter_map(|v| dataset.workers().get(v.worker).ok().cloned())
            .collect();
        if candidates.is_empty() {
            continue;
        }
        let candidates = match cost_scale {
            None => candidates,
            Some(scale) => candidates
                .iter()
                .map(|w| {
                    w.with_cost((0.05 + (w.cost() - 0.05) * scale).max(0.001))
                        .expect("scaled costs stay non-negative")
                })
                .collect(),
        };
        let pool = WorkerPool::from_workers(candidates).expect("distinct voters");
        let o = optjs
            .select(&pool, budget, Prior::uniform())
            .expect("experiment budgets are valid");
        let m = mvjs
            .select(&pool, budget, Prior::uniform())
            .expect("experiment budgets are valid");
        optjs_total += o.estimated_quality;
        mvjs_total += m.estimated_quality;
        counted += 1;
    }
    let n = counted.max(1) as f64;
    (optjs_total / n, mvjs_total / n)
}

fn main() {
    let args = ExperimentArgs::from_env();
    let campaign = if args.full {
        AmtCampaignConfig::default()
    } else {
        AmtCampaignConfig {
            num_tasks: 150,
            num_workers: 64,
            ..AmtCampaignConfig::default()
        }
    };
    println!(
        "Figure 10 — simulated AMT sentiment dataset ({} tasks, {} workers, {} votes/task)\n",
        campaign.num_tasks, campaign.num_workers, campaign.votes_per_task
    );

    let simulator = AmtSimulator::new(campaign.clone());
    let mut rng = StdRng::seed_from_u64(args.seed);
    let dataset = simulator
        .run(&mut rng)
        .expect("campaign dimensions are valid");
    println!(
        "dataset: {} votes, {:.2} answers/worker, mean empirical quality {:.3}\n",
        dataset.num_votes(),
        dataset.mean_answers_per_worker(),
        dataset.mean_empirical_quality()
    );

    let config = if args.full {
        SystemConfig::paper_experiments()
    } else {
        SystemConfig::fast()
    };
    let optjs = Optjs::new(config);
    let mvjs = Mvjs::new(config);

    // ---- (a) varying the budget. ----
    let mut fig10a = ComparisonSeries::new("budget");
    for budget in sweep(0.2, 1.0, 0.1) {
        let (o, m) = per_task_comparison(
            &dataset,
            &optjs,
            &mvjs,
            budget,
            campaign.votes_per_task,
            None,
        );
        fig10a.push(budget, o, m);
    }
    println!(
        "Figure 10(a): varying budget B (all {} voters per task)",
        campaign.votes_per_task
    );
    println!("{}", fig10a.render());

    // ---- (b) varying the number of candidate workers per task. ----
    let mut fig10b = ComparisonSeries::new("N");
    let candidate_counts: Vec<usize> = vec![4, 6, 8, 10, 12, 14, 16, 18, 20]
        .into_iter()
        .filter(|&n| n <= campaign.votes_per_task)
        .collect();
    for &n in &candidate_counts {
        let (o, m) = per_task_comparison(&dataset, &optjs, &mvjs, 0.5, n, None);
        fig10b.push(n as f64, o, m);
    }
    println!("Figure 10(b): varying candidate workers per task N (B = 0.5)");
    println!("{}", fig10b.render());

    // ---- (c) varying the cost standard deviation. ----
    let mut fig10c = ComparisonSeries::new("cost_sd");
    for sd in sweep(0.1, 1.0, 0.1) {
        // Rescale each worker's cost spread around the mean 0.05 so that the
        // effective standard deviation matches the sweep value (the campaign
        // was generated at sd = 0.2).
        let scale = sd / campaign.cost_std_dev.max(1e-9);
        let (o, m) = per_task_comparison(
            &dataset,
            &optjs,
            &mvjs,
            0.5,
            campaign.votes_per_task,
            Some(scale),
        );
        fig10c.push(sd, o, m);
    }
    println!("Figure 10(c): varying cost standard deviation (B = 0.5)");
    println!("{}", fig10c.render());

    // ---- (d) is JQ a good prediction? ----
    let engine = JqEngine::new(config.bucket).with_exact_cutoff(config.exact_cutoff);
    let zs: Vec<usize> = (3..=campaign.votes_per_task).step_by(3).collect();
    let points = prefix_sweep(&dataset, &zs, Prior::uniform(), &engine);
    let mut accuracy_series = Series::new("realized BV accuracy");
    let mut jq_series = Series::new("average predicted JQ");
    println!("Figure 10(d): accuracy vs average JQ as the number of votes z grows");
    println!(
        "{:>4} | {:>9} | {:>11} | {:>7}",
        "z", "accuracy", "average JQ", "gap"
    );
    for point in &points {
        accuracy_series.push(point.votes_used as f64, point.accuracy);
        jq_series.push(point.votes_used as f64, point.average_jq);
        println!(
            "{:>4} | {:>8.2}% | {:>10.2}% | {:>+6.2}%",
            point.votes_used,
            point.accuracy * 100.0,
            point.average_jq * 100.0,
            (point.accuracy - point.average_jq) * 100.0
        );
    }
    println!("\nPaper shape: OPTJS >= MVJS on every panel; the accuracy and JQ curves are highly similar.");
    println!(
        "This run: 10(a) dominates = {}, 10(b) dominates = {}, 10(c) dominates = {}",
        fig10a.optjs_dominates(0.005),
        fig10b.optjs_dominates(0.005),
        fig10c.optjs_dominates(0.005)
    );

    let dump = serde_json::json!({
        "experiment": "figure_10_real_dataset",
        "full": args.full,
        "campaign": {
            "num_tasks": campaign.num_tasks,
            "num_workers": campaign.num_workers,
            "votes_per_task": campaign.votes_per_task,
        },
        "dataset_mean_quality": dataset.mean_empirical_quality(),
        "fig10a_vary_budget": fig10a,
        "fig10b_vary_n": fig10b,
        "fig10c_vary_cost_sd": fig10c,
        "fig10d_accuracy": accuracy_series,
        "fig10d_average_jq": jq_series,
    });
    maybe_write_json(&args.out, &dump);
}
