//! CI soak smoke of the online serving loop: a sustained answer stream
//! feeds a [`jury_stream::WorkerRegistry`] while periodic drift scans and
//! repairs run through [`jury_service::JuryService`], with the loop's
//! invariants asserted on every cycle.
//!
//! The soak runs deadline-bounded **rotations**. Each rotation warm-seeds a
//! fresh registry from the latent qualities (the Beta counts stay small, so
//! posteriors remain responsive to drift for the whole soak), selects and
//! tracks a jury plus a low-tier control selection, then cycles: stream a
//! golden answer batch drawn from the latent accuracies, degrade one jury
//! member mid-rotation, scan, and repair whatever the scan flags. After
//! every repair pass a follow-up scan must come back all-steady — repairs
//! rebaseline the ledger, and nothing streamed in between.
//!
//! Every select and repair runs under a generous per-request deadline, so
//! the soak also pins that the deadline plumbing is inert when there is
//! headroom: nothing may come back truncated, and the loop's invariants
//! hold exactly as they do without deadlines.
//!
//! Usage: `soak_smoke [--seconds <n>] [--seed <n>]` (defaults: 45, 7).
//! Exits non-zero on any violated invariant (assert) or serving error.

use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use jury_model::{Answer, Prior, TaskId, WorkerId};
use jury_service::{JuryService, RepairOutcome, SelectionRequest, ServiceConfig, SolverPolicy};
use jury_stream::{AnswerEvent, DriftDetector, DriftStatus, RegistryConfig, WorkerRegistry};

/// Workers in the streamed pool (past `fast()`'s exact cutoff, so the
/// annealing select path is exercised alongside the repair path).
const POOL: usize = 16;
/// Budget of the tracked jury (unit costs — a four-member jury).
const BUDGET: f64 = 4.0;
/// Warm-seed strength: pseudo-observations behind each rotation's priors.
/// Kept modest so a few degraded batches can actually move the posterior.
const SEED_STRENGTH: f64 = 60.0;
/// Tasks per streamed batch (each task is answered by every worker).
const BATCH_TASKS: u64 = 30;
/// Cycles per rotation; the degradation lands mid-rotation.
const CYCLES_PER_ROTATION: u32 = 8;
/// Per-request deadline on every select and repair: generous enough that
/// no search in this workload ever comes close, so any truncation the soak
/// observes is a real cancellation bug.
const REQUEST_DEADLINE: Duration = Duration::from_secs(30);

#[derive(Default)]
struct Counters {
    rotations: u64,
    cycles: u64,
    events: u64,
    scans: u64,
    flagged: u64,
    unchanged: u64,
    patched: u64,
    resolved: u64,
}

/// Streams `BATCH_TASKS` golden tasks: every worker answers every task,
/// correctly with its latent probability.
fn stream_batch(
    registry: &mut WorkerRegistry,
    latent: &[f64],
    rng: &mut StdRng,
    next_task: &mut u64,
    counters: &mut Counters,
) {
    for _ in 0..BATCH_TASKS {
        let task = TaskId(*next_task);
        *next_task += 1;
        for (w, &accuracy) in latent.iter().enumerate() {
            let vote = if rng.gen::<f64>() < accuracy {
                Answer::Yes
            } else {
                Answer::No
            };
            registry
                .observe(AnswerEvent::golden(
                    WorkerId(w as u32),
                    task,
                    vote,
                    Answer::Yes,
                ))
                .expect("registered worker accepts golden events");
            counters.events += 1;
        }
    }
}

fn main() {
    let mut seconds = 45u64;
    let mut seed = 7u64;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let parse = |value: Option<String>, what: &str| -> u64 {
            value
                .unwrap_or_else(|| panic!("{what} needs a number"))
                .parse()
                .unwrap_or_else(|_| panic!("{what} needs a number"))
        };
        match flag.as_str() {
            "--seconds" => seconds = parse(args.next(), "--seconds"),
            "--seed" => seed = parse(args.next(), "--seed"),
            other => {
                eprintln!("unknown flag {other}; usage: soak_smoke [--seconds <n>] [--seed <n>]");
                std::process::exit(2);
            }
        }
    }

    let started = Instant::now();
    let deadline = started + Duration::from_secs(seconds);
    let mut rng = StdRng::seed_from_u64(seed);
    let service = JuryService::new(ServiceConfig::fast());
    // Odd rotations select through a two-lane threaded solver under the
    // portfolio policy: POOL (16) is past `fast()`'s exact cutoff, so the
    // parallel race actually engages on the serving path, and the rest of
    // the rotation (scans, repairs) must behave identically either way.
    let threaded = JuryService::new(ServiceConfig::fast().with_solver_threads(2));
    // A modest quality band (0.58–0.76): high enough that juries beat the
    // coin, low enough that one member collapsing to ~0.5 moves the JQ past
    // the drift threshold (at 0.9+ tiers, a lost member barely dents JQ).
    let base: Vec<f64> = (0..POOL)
        .map(|i| 0.58 + 0.18 * i as f64 / (POOL - 1) as f64)
        .collect();
    let mut counters = Counters::default();
    let mut next_task = 0u64;

    while Instant::now() < deadline {
        counters.rotations += 1;
        let mut latent = base.clone();

        // Fresh registry per rotation, warm-seeded at the latent qualities:
        // bounded Beta counts keep the posteriors responsive to the
        // injected degradation no matter how long the soak runs.
        let mut registry = WorkerRegistry::new(RegistryConfig::default())
            .expect("default registry config is valid");
        for (w, &quality) in latent.iter().enumerate() {
            registry
                .register_with_quality(WorkerId(w as u32), quality, SEED_STRENGTH, 1.0)
                .expect("seed qualities are in (0, 1)");
        }

        // Track the service-selected jury plus a low-tier control.
        let mut detector = DriftDetector::new(0.03);
        let snapshot = registry.snapshot_pool().expect("non-empty registry");
        let request = SelectionRequest::new(snapshot.clone(), BUDGET)
            .with_prior(Prior::uniform())
            .with_deadline(REQUEST_DEADLINE);
        let selected = if counters.rotations % 2 == 1 {
            threaded
                .select(&request.with_policy(SolverPolicy::Portfolio(Vec::new())))
                .expect("threaded portfolio selection on the streamed snapshot")
        } else {
            service
                .select(&request)
                .expect("selection on the streamed snapshot")
        };
        let jury_id = detector.track(
            selected.jury.ids(),
            BUDGET,
            Prior::uniform(),
            selected.quality,
            registry.epoch(),
        );
        let control_members: Vec<WorkerId> = (0..3).map(|w| WorkerId(w as u32)).collect();
        let control_quality = service
            .rescore(&snapshot, &control_members, Prior::uniform())
            .expect("control members are in the snapshot");
        detector.track(
            control_members,
            3.0,
            Prior::uniform(),
            control_quality,
            registry.epoch(),
        );

        let victim = selected.jury.ids()[0];
        for cycle in 0..CYCLES_PER_ROTATION {
            if Instant::now() >= deadline {
                break;
            }
            counters.cycles += 1;
            // Mid-rotation, the first-seated jury member collapses to
            // coin-flipping. Exactly 0.5, not lower: under Bayesian voting
            // a sub-0.5 worker is still informative (its vote is flipped),
            // so 0.5 is the genuinely useless point the posterior must
            // approach for the jury's JQ to sag.
            if cycle == CYCLES_PER_ROTATION / 2 {
                latent[victim.0 as usize] = 0.5;
            }
            stream_batch(
                &mut registry,
                &latent,
                &mut rng,
                &mut next_task,
                &mut counters,
            );

            let reports = service
                .drift_scan(&registry, &detector)
                .expect("scan over a live registry");
            counters.scans += 1;
            for report in reports {
                assert_ne!(
                    report.status,
                    DriftStatus::Stale,
                    "selection {} went stale: registry members never vanish",
                    report.id
                );
                if report.status != DriftStatus::Drifted {
                    continue;
                }
                counters.flagged += 1;
                let repaired = service
                    .repair_with_deadline(&registry, &mut detector, report.id, REQUEST_DEADLINE)
                    .expect("repairing a tracked selection");
                assert!(
                    !repaired.truncated,
                    "a {REQUEST_DEADLINE:?} deadline truncated a soak repair"
                );
                assert!(
                    repaired.quality.is_finite()
                        && repaired.quality > 0.5
                        && repaired.quality <= 1.0,
                    "repaired quality {} out of range",
                    repaired.quality
                );
                let budget = detector
                    .get(report.id)
                    .expect("repair keeps the selection tracked")
                    .budget();
                assert!(
                    repaired.cost <= budget + 1e-9,
                    "repaired cost {} exceeds budget {budget}",
                    repaired.cost
                );
                assert!(!repaired.jury.is_empty());
                assert!(repaired
                    .jury
                    .ids()
                    .iter()
                    .all(|&id| registry.is_registered(id)));
                match repaired.outcome {
                    RepairOutcome::Unchanged => counters.unchanged += 1,
                    RepairOutcome::Patched { .. } => counters.patched += 1,
                    RepairOutcome::Resolved => counters.resolved += 1,
                }
            }

            // Nothing streamed since the repair pass, so the rebaselined
            // ledger must scan clean.
            let settled = service
                .drift_scan(&registry, &detector)
                .expect("follow-up scan");
            counters.scans += 1;
            for report in settled {
                assert_eq!(
                    report.status,
                    DriftStatus::Steady,
                    "selection {} still reports drift {} right after the repair pass",
                    report.id,
                    report.drift
                );
            }
        }
        // The selection stays tracked across the whole rotation.
        assert!(detector.get(jury_id).is_some());
    }

    let elapsed = started.elapsed().as_secs_f64();
    let summary = serde_json::json!({
        "schema": "jury-bench/soak-smoke/v1",
        "seconds": elapsed,
        "rotations": counters.rotations,
        "cycles": counters.cycles,
        "events": counters.events,
        "scans": counters.scans,
        "flagged": counters.flagged,
        "repairs": {
            "unchanged": counters.unchanged,
            "patched": counters.patched,
            "resolved": counters.resolved,
        },
    });
    println!(
        "{}",
        serde_json::to_string_pretty(&summary).expect("serializable")
    );
    // Any soak long enough for one full rotation must have seen the
    // injected degradation flagged and repaired at least once.
    if counters.cycles >= CYCLES_PER_ROTATION as u64 {
        assert!(
            counters.flagged > 0 && counters.patched + counters.resolved > 0,
            "the soak never repaired a drifted jury — degradation injection is broken"
        );
    }
    eprintln!(
        "soak ok: {} rotations, {} cycles, {} events, {} repairs in {elapsed:.1}s",
        counters.rotations, counters.cycles, counters.events, counters.flagged
    );
}
