//! The CI perf artifact: a minute-bounded smoke benchmark of the serving
//! hot paths, written as `BENCH_service.json` so the repo's performance
//! trajectory accumulates one data point per CI run.
//!
//! Seven workload families — six wall-clock timings plus one
//! quality-per-evaluation race:
//!
//! * **annealing step** — one solver-shaped neighbour evaluation (swap a
//!   jury member, read the JQ, revert) on the from-scratch bucket DP vs.
//!   the incremental engine (median of N);
//! * **greedy round** — one marginal-greedy round (score every unselected
//!   pool member as a single-worker extension), scratch vs. incremental
//!   (median of N);
//! * **kernel race** — the same swap workload on a deep (~100k-slot)
//!   bucket grid under the chunked, auto-vectorizable window kernels vs.
//!   the scalar reference loops (`jury_jq::KernelMode`); both paths are
//!   computed by the same engine on the same grid, so the ratio isolates
//!   pure kernel throughput;
//! * **budget sweeps** — a Figure-1 style budget–quality table through
//!   `JuryService` under each [`jury_service::SweepPolicy`]: cold
//!   per-budget solves, the warm marginal sweep, and the warm (seeded)
//!   annealing sweep (median of N);
//! * **store contention** — 8 threads of repeated, fully warmed small-pool
//!   mixed traffic, so every request is served almost entirely from the
//!   shared JQ store: per-response p50/p99 with the striped store
//!   (`cache_shards = 8`) vs. the single-lock store (`cache_shards = 1`);
//! * **portfolio quality** — `SolverPolicy::Portfolio` vs plain annealing
//!   on a large pool, both capped at the same evaluation budget; the
//!   ratio compares JQ margin over the coin-flip floor, not time, and is
//!   fully deterministic (evaluation caps never read the clock);
//! * **parallel portfolio race** — the identical unbudgeted portfolio race
//!   run sequentially and spread across `--threads` solver lanes
//!   (`jury_selection::ParallelPolicy`). Both runs return the same jury by
//!   the determinism contract; the ratio is pure wall-clock, so it pins
//!   at ≈ 1.0 on single-core CI runners and only climbs where real cores
//!   exist.
//!
//! # CLI flags
//!
//! ```text
//! perf_smoke [--out <path.json>] [--iters <n>] [--threads <n>]
//!            [--check <baseline.json>] [--tolerance <f>]
//! ```
//!
//! * `--out <path.json>` — where to write the JSON dump (default
//!   `BENCH_service.json`). The dump always contains raw `median_us`
//!   timings (host-dependent, for trend plots) and the `speedups` ratios
//!   (host-independent, the gated quantities).
//! * `--iters <n>` — iterations per timed routine (default 15); the
//!   reported timing is the median, so occasional scheduler hiccups do
//!   not move the gated ratios.
//! * `--threads <n>` — solver lanes of the parallel portfolio race
//!   (default 2; `0` = one lane per available core). Recorded in the dump
//!   as `threads`, so a baseline states the lane count it was pinned at.
//! * `--check <baseline.json>` — compare this run's `speedups` against a
//!   previously written dump (the repo checks in `BENCH_baseline.json`).
//!   Exit code 0 = pass, 1 = at least one ratio regressed, 2 = the
//!   baseline file is missing/malformed or a flag was invalid.
//! * `--tolerance <f>` — slack for `--check` (default 0.5). Each of the
//!   [`CHECKED_SPEEDUPS`] ratios must satisfy
//!   `now >= baseline / (1 + tolerance)`; CI passes `--tolerance 1.0`, so
//!   a ratio fails only after falling below **half** its recorded
//!   baseline — quiet under shared-runner noise, loud when an incremental
//!   path collapses toward its from-scratch cost.
//!
//! The ratios are machine-independent by construction — numerator and
//! denominator are measured on the same host in the same run — which is
//! what makes a checked-in baseline meaningful across machines.
//!
//! # Refreshing the baseline
//!
//! After a deliberate performance change (new kernel, new sweep policy),
//! regenerate the pinned floors from a quiet machine and commit the result:
//!
//! ```text
//! cargo run --release -p jury-bench --bin perf_smoke -- --out BENCH_baseline.json
//! cargo run --release -p jury-bench --bin perf_smoke -- --check BENCH_baseline.json
//! ```
//!
//! The second run must pass; review the printed `check …` lines in the PR
//! so ratio movements are explicit, and never refresh the baseline to
//! absorb an *unexplained* regression.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use jury_jq::{
    BucketCount, BucketJqConfig, BucketJqEstimator, IncrementalJq, IncrementalJqConfig, KernelMode,
};
use jury_model::{GaussianWorkerGenerator, Jury, MatrixPool, Prior, Worker, WorkerPool};
use jury_selection::{
    BvObjective, JspInstance, JurySolver, ParallelPolicy, PortfolioConfig, PortfolioSolver,
};
use jury_service::{
    JuryService, MixedRequest, MixedResponse, MultiClassSelectionRequest, SelectionRequest,
    ServiceConfig, ServiceError, SolverPolicy, SweepPolicy,
};

/// Bucket resolution shared by the scratch and incremental paths so the
/// comparison is work-for-work (the paper's experimental budget).
const NUM_BUCKETS: usize = 50;
/// Candidates of the step/round workloads.
const POOL_SIZE: usize = 50;
/// Candidates of the sweep workloads (past the exact cutoff, so the sweep
/// policies actually engage).
const SWEEP_POOL_SIZE: usize = 40;
/// Members and bucket resolution of the kernel-mode race: a deep grid
/// (~100k dense slots) so the chunked window passes have room to pay off.
const KERNEL_RACE_MEMBERS: usize = 24;
const KERNEL_RACE_BUCKETS: usize = 2000;

fn random_pool(n: usize, seed: u64) -> WorkerPool {
    let generator = GaussianWorkerGenerator::paper_defaults();
    let mut rng = StdRng::seed_from_u64(seed);
    generator.generate(n, &mut rng)
}

/// Times `routine` `iters` times and returns the median microseconds.
fn median_us<F: FnMut()>(iters: usize, mut routine: F) -> f64 {
    let mut samples: Vec<f64> = (0..iters.max(1))
        .map(|_| {
            let start = Instant::now();
            routine();
            start.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    samples[samples.len() / 2]
}

fn scratch_estimator() -> BucketJqEstimator {
    BucketJqEstimator::new(
        BucketJqConfig::default()
            .with_buckets(BucketCount::Fixed(NUM_BUCKETS))
            .with_high_quality_shortcut(false),
    )
}

fn incremental_for(pool: &WorkerPool, members: &[Worker]) -> IncrementalJq {
    let mut engine = IncrementalJq::for_pool(
        pool,
        Prior::uniform(),
        IncrementalJqConfig::default().with_buckets(BucketCount::Fixed(NUM_BUCKETS)),
    );
    for worker in members {
        engine.push_worker(worker);
    }
    engine
}

/// Threads of the contention workload — enough to oversubscribe one lock
/// word without outrunning small CI runners.
const CONTENTION_THREADS: usize = 8;

/// Per-response p50/p99 (µs) of `CONTENTION_THREADS` threads hammering a
/// service whose JQ store has `shards` shards with repeated small-pool
/// mixed traffic.
///
/// Every distinct request is served once before timing starts, so the
/// timed loop re-enumerates fully memoized juries: almost all of its work
/// is JQ-store reads, which makes the p99 a direct probe of lock
/// contention. Binary budgets all share one signature key space (the JQ
/// of a jury does not depend on the budget that selected it), so the
/// traffic spreads across shards by signature hash exactly like real
/// batch load.
fn contention_percentiles_us(shards: usize, rounds: usize) -> (f64, f64) {
    let service = JuryService::new(ServiceConfig::fast().with_cache_shards(shards));
    let qualities: Vec<f64> = (0..10).map(|w| 0.55 + 0.03 * w as f64).collect();
    let pool = WorkerPool::from_qualities_and_costs(&qualities, &[1.0; 10]).unwrap();
    let matrix =
        MatrixPool::from_qualities_and_costs(&[0.9, 0.8, 0.7, 0.65, 0.6, 0.55], &[1.0; 6], 3)
            .unwrap();
    let requests: Vec<MixedRequest> = (2..=9)
        .map(|budget| MixedRequest::from(SelectionRequest::new(pool.clone(), budget as f64)))
        .chain((2..=5).map(|budget| {
            MixedRequest::from(MultiClassSelectionRequest::new(
                matrix.clone(),
                budget as f64,
            ))
        }))
        .collect();
    let serve = |request: &MixedRequest| match request {
        MixedRequest::Binary(request) => {
            std::hint::black_box(service.select(request).expect("valid request"));
        }
        MixedRequest::MultiClass(request) => {
            std::hint::black_box(service.select_multiclass(request).expect("valid request"));
        }
    };
    // Warm pass: memoize every JQ value the traffic will ever need.
    for request in &requests {
        serve(request);
    }

    let mut samples: Vec<f64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CONTENTION_THREADS)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::with_capacity(rounds * requests.len());
                    for _ in 0..rounds {
                        for request in &requests {
                            let start = Instant::now();
                            serve(request);
                            local.push(start.elapsed().as_secs_f64() * 1e6);
                        }
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|handle| handle.join().expect("contention worker panicked"))
            .collect()
    });
    samples.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    let p50 = samples[samples.len() / 2];
    let p99 = samples[(samples.len() * 99 / 100).min(samples.len() - 1)];
    (p50, p99)
}

/// Candidates of the portfolio-quality race (past the exact cutoff, so the
/// heuristic members actually engage) and its shared evaluation cap.
const PORTFOLIO_POOL_SIZE: usize = 60;
const PORTFOLIO_EVAL_CAP: u64 = 1_500;
const PORTFOLIO_JURY_BUDGET: f64 = 6.0;

/// JQ reached by `policy` on the portfolio-race pool under the shared
/// evaluation cap. A cap-truncated serve surfaces as `DeadlineExceeded`
/// carrying the anytime best-so-far, which counts as the answer here.
fn capped_quality(pool: &WorkerPool, policy: SolverPolicy) -> f64 {
    let service = JuryService::new(ServiceConfig::fast());
    let request = SelectionRequest::new(pool.clone(), PORTFOLIO_JURY_BUDGET)
        .with_policy(policy)
        .with_evaluation_limit(PORTFOLIO_EVAL_CAP);
    match service.select(&request) {
        Ok(response) => response.quality,
        Err(ServiceError::DeadlineExceeded {
            best_so_far: Some(best),
        }) => match *best {
            MixedResponse::Binary(response) => response.quality,
            other => panic!("binary request returned {other:?}"),
        },
        Err(err) => panic!("capped select failed: {err}"),
    }
}

/// The machine-independent ratios compared by `--check`. Raw `median_us`
/// timings shift with the host; the timing ratios divide two timings from
/// the same run, so a drop can only come from a real relative slowdown.
/// `portfolio_vs_annealing_quality_per_eval` instead divides two JQ margins
/// over the 0.5 coin-flip floor at the same evaluation cap — deterministic
/// on every host, it gates the portfolio's quality-per-evaluation claim
/// against plain annealing.
///
/// * `annealing_step_incremental_vs_scratch` — one swap-and-score
///   neighbour: incremental engine vs from-scratch bucket DP.
/// * `greedy_round_incremental_vs_scratch` — one marginal-greedy round
///   (pool-many push/score/pop probes) vs pool-many scratch rebuilds.
/// * `kernel_vectorized_vs_scalar` — the deep-grid swap workload under
///   the chunked window kernels vs the scalar reference loops.
/// * `sweep_warm_marginal_vs_cold` / `sweep_warm_annealing_vs_cold` — a
///   budget–quality sweep through the service with warm-start policies vs
///   independent cold solves.
/// * `contention_sharded_vs_single_lock` — p99 response time of warmed
///   multi-threaded traffic on the single-lock JQ store vs the striped one.
/// * `portfolio_vs_annealing_quality_per_eval` — JQ margin over 0.5 at a
///   fixed evaluation cap, portfolio policy vs plain annealing.
/// * `parallel_portfolio_vs_sequential` — wall-clock of the identical
///   unbudgeted portfolio race, sequential vs spread across `--threads`
///   lanes. The baseline pins ≈ 1.0 (single-core CI sees no speedup and
///   must see no slowdown past the tolerance either); multi-core hosts
///   report > 1.
const CHECKED_SPEEDUPS: [&str; 8] = [
    "annealing_step_incremental_vs_scratch",
    "greedy_round_incremental_vs_scratch",
    "kernel_vectorized_vs_scalar",
    "sweep_warm_marginal_vs_cold",
    "sweep_warm_annealing_vs_cold",
    "contention_sharded_vs_single_lock",
    "portfolio_vs_annealing_quality_per_eval",
    "parallel_portfolio_vs_sequential",
];

/// Compares the current dump's `speedups` against a baseline file; returns
/// the list of human-readable regression descriptions (empty = pass).
fn check_against_baseline(
    current: &serde_json::Value,
    baseline_path: &str,
    tolerance: f64,
) -> Result<Vec<String>, String> {
    let text = std::fs::read_to_string(baseline_path)
        .map_err(|err| format!("failed to read {baseline_path}: {err}"))?;
    let baseline: serde_json::Value =
        serde_json::from_str(&text).map_err(|err| format!("invalid {baseline_path}: {err}"))?;
    let mut regressions = Vec::new();
    for key in CHECKED_SPEEDUPS {
        let was = baseline
            .field("speedups")
            .and_then(|s| s.field(key))
            .map_err(|err| format!("{baseline_path}: {err}"))?
            .as_f64()
            .ok_or_else(|| format!("{baseline_path}: speedups.{key} is not a number"))?;
        let now = current
            .field("speedups")
            .and_then(|s| s.field(key))
            .expect("dump carries every checked speedup")
            .as_f64()
            .expect("speedups are numeric");
        let floor = was / (1.0 + tolerance);
        let verdict = if now < floor { "REGRESSED" } else { "ok" };
        eprintln!("check {key}: {now:.2}x vs baseline {was:.2}x (floor {floor:.2}x) {verdict}");
        if now < floor {
            regressions.push(format!(
                "{key}: {now:.2}x fell below {floor:.2}x (baseline {was:.2}x / (1 + {tolerance}))"
            ));
        }
    }
    Ok(regressions)
}

fn main() {
    let mut out = String::from("BENCH_service.json");
    let mut iters = 15usize;
    let mut threads = 2usize;
    let mut check: Option<String> = None;
    let mut tolerance = 0.5f64;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--out" => out = args.next().expect("--out needs a path"),
            "--iters" => {
                iters = args
                    .next()
                    .expect("--iters needs a number")
                    .parse()
                    .expect("--iters needs a number")
            }
            "--threads" => {
                threads = args
                    .next()
                    .expect("--threads needs a number")
                    .parse()
                    .expect("--threads needs a number")
            }
            "--check" => check = Some(args.next().expect("--check needs a baseline path")),
            "--tolerance" => {
                tolerance = args
                    .next()
                    .expect("--tolerance needs a number")
                    .parse()
                    .expect("--tolerance needs a number");
                assert!(
                    tolerance >= 0.0 && tolerance.is_finite(),
                    "--tolerance must be a finite non-negative number"
                );
            }
            other => {
                eprintln!(
                    "unknown flag {other}; usage: perf_smoke [--out <path>] [--iters <n>] \
                     [--threads <n>] [--check <baseline.json>] [--tolerance <f>]"
                );
                std::process::exit(2);
            }
        }
    }

    let pool = random_pool(POOL_SIZE, 11);
    let members: Vec<Worker> = pool.workers()[..POOL_SIZE / 2].to_vec();
    let candidates: Vec<Worker> = pool.workers()[POOL_SIZE / 2..].to_vec();
    let outsider = pool.workers()[POOL_SIZE - 1].clone();
    let victim = members[0].clone();
    let jury = Jury::new(members.clone());
    let estimator = scratch_estimator();

    // One annealing neighbour: mutate one member, read the JQ, revert.
    let annealing_scratch = median_us(iters, || {
        let mut candidate = jury.without(victim.id());
        candidate.push(outsider.clone());
        std::hint::black_box(estimator.jq(&candidate, Prior::uniform()));
    });
    let mut engine = incremental_for(&pool, &members);
    let annealing_incremental = median_us(iters, || {
        engine.swap_worker(&victim, &outsider).expect("member");
        std::hint::black_box(engine.jq());
        engine.swap_worker(&outsider, &victim).expect("member");
    });

    // One marginal-greedy round: score every candidate extension.
    let greedy_scratch = median_us(iters, || {
        let mut best = f64::NEG_INFINITY;
        for worker in &candidates {
            let value = estimator.jq(&jury.with_worker(worker.clone()), Prior::uniform());
            best = best.max(value);
        }
        std::hint::black_box(best);
    });
    let mut engine = incremental_for(&pool, &members);
    let greedy_incremental = median_us(iters, || {
        let mut best = f64::NEG_INFINITY;
        for worker in &candidates {
            engine.push_worker(worker);
            best = best.max(engine.jq());
            engine.pop_worker(worker).expect("just pushed");
        }
        std::hint::black_box(best);
    });

    // Kernel race: the same swap workload on a deep grid, vectorized
    // window passes vs the scalar reference loops. Everything except the
    // kernel mode is identical, so the ratio isolates raw kernel
    // throughput.
    let kernel_pool = random_pool(POOL_SIZE, 19);
    let kernel_members: Vec<Worker> = kernel_pool.workers()[..KERNEL_RACE_MEMBERS].to_vec();
    let kernel_outsider = kernel_pool.workers()[POOL_SIZE - 1].clone();
    let kernel_victim = kernel_members[0].clone();
    let kernel_race = |kernel: KernelMode| {
        let mut engine = IncrementalJq::for_pool(
            &kernel_pool,
            Prior::uniform(),
            IncrementalJqConfig::default()
                .with_buckets(BucketCount::Fixed(KERNEL_RACE_BUCKETS))
                .with_kernel_mode(kernel),
        );
        for worker in &kernel_members {
            engine.push_worker(worker);
        }
        median_us(iters, || {
            engine
                .swap_worker(&kernel_victim, &kernel_outsider)
                .expect("member");
            std::hint::black_box(engine.jq());
            engine
                .swap_worker(&kernel_outsider, &kernel_victim)
                .expect("member");
        })
    };
    let kernel_vectorized = kernel_race(KernelMode::Vectorized);
    let kernel_scalar = kernel_race(KernelMode::ScalarReference);

    // Budget sweeps through the service, one per sweep policy. Uniform
    // costs keep all three policies on the same optimum, so the timings
    // compare equal work.
    let qualities: Vec<f64> = (0..SWEEP_POOL_SIZE)
        .map(|i| 0.52 + 0.012 * (i % 35) as f64)
        .collect();
    let sweep_pool =
        WorkerPool::from_qualities_and_costs(&qualities, &vec![1.0; SWEEP_POOL_SIZE]).unwrap();
    let budgets: Vec<f64> = (1..=4).map(|b| (b * SWEEP_POOL_SIZE / 8) as f64).collect();
    let sweep_iters = iters.div_ceil(3);
    let sweep = |policy: SweepPolicy| {
        median_us(sweep_iters, || {
            // A fresh service per run: sweeps must not serve each other
            // from the shared cache, or later policies would time as pure
            // cache reads.
            let service = JuryService::new(ServiceConfig::fast().with_sweep_policy(policy));
            let table = service
                .budget_quality_table(&sweep_pool, &budgets, Prior::uniform())
                .expect("valid sweep");
            std::hint::black_box(table);
        })
    };
    let sweep_cold = sweep(SweepPolicy::Cold);
    let sweep_warm_marginal = sweep(SweepPolicy::WarmMarginal);
    let sweep_warm_annealing = sweep(SweepPolicy::WarmAnnealing);

    // Store contention: identical warmed traffic against the single-lock
    // store and the striped store. The single-lock run goes first so both
    // see the same cold-cpu handicap ordering run-to-run.
    let contention_rounds = iters.max(1) * 4;
    let (contention_single_p50, contention_single_p99) =
        contention_percentiles_us(1, contention_rounds);
    let (contention_sharded_p50, contention_sharded_p99) =
        contention_percentiles_us(8, contention_rounds);

    // Portfolio quality race: same pool, same jury budget, same evaluation
    // cap — the only variable is the policy. Non-uniform costs keep the
    // knapsack structure non-trivial.
    let portfolio_qualities: Vec<f64> = (0..PORTFOLIO_POOL_SIZE)
        .map(|i| 0.52 + 0.012 * (i % 30) as f64)
        .collect();
    let portfolio_costs: Vec<f64> = (0..PORTFOLIO_POOL_SIZE)
        .map(|i| 0.5 + (i % 7) as f64 * 0.25)
        .collect();
    let portfolio_pool =
        WorkerPool::from_qualities_and_costs(&portfolio_qualities, &portfolio_costs).unwrap();
    let portfolio_quality = capped_quality(&portfolio_pool, SolverPolicy::Portfolio(Vec::new()));
    let annealing_quality = capped_quality(&portfolio_pool, SolverPolicy::Annealing);

    // Parallel portfolio race: the identical unbudgeted race on the same
    // pool, sequential vs spread across the solver lanes. Unbudgeted runs
    // are pure replays at any lane count (the determinism contract of
    // `jury_selection::parallel`), so numerator and denominator do the
    // same search work and the ratio isolates the multi-core win.
    let race_instance =
        JspInstance::with_uniform_prior(portfolio_pool.clone(), PORTFOLIO_JURY_BUDGET)
            .expect("valid race instance");
    let race_iters = iters.div_ceil(3);
    let timed_race = |parallel: ParallelPolicy| {
        median_us(race_iters, || {
            let solver = PortfolioSolver::new(BvObjective::new())
                .with_config(PortfolioConfig::default().with_parallel(parallel));
            std::hint::black_box(solver.solve(&race_instance));
        })
    };
    let race_sequential = timed_race(ParallelPolicy::Sequential);
    let race_parallel = timed_race(ParallelPolicy::Threads(threads));

    let dump = serde_json::json!({
        "schema": "jury-bench/perf-smoke/v1",
        "iters": iters,
        "sweep_iters": sweep_iters,
        "pool_size": POOL_SIZE,
        "sweep_pool_size": SWEEP_POOL_SIZE,
        "num_buckets": NUM_BUCKETS,
        "median_us": {
            "annealing_step_scratch": annealing_scratch,
            "annealing_step_incremental": annealing_incremental,
            "greedy_round_scratch": greedy_scratch,
            "greedy_round_incremental": greedy_incremental,
            "kernel_swap_vectorized": kernel_vectorized,
            "kernel_swap_scalar": kernel_scalar,
            "sweep_cold": sweep_cold,
            "sweep_warm_marginal": sweep_warm_marginal,
            "sweep_warm_annealing": sweep_warm_annealing,
            "contention_single_lock_p50": contention_single_p50,
            "contention_single_lock_p99": contention_single_p99,
            "contention_sharded_p50": contention_sharded_p50,
            "contention_sharded_p99": contention_sharded_p99,
            "portfolio_race_sequential": race_sequential,
            "portfolio_race_parallel": race_parallel,
        },
        "contention_threads": CONTENTION_THREADS,
        "threads": threads,
        "portfolio_race": {
            "pool_size": PORTFOLIO_POOL_SIZE,
            "jury_budget": PORTFOLIO_JURY_BUDGET,
            "evaluation_cap": PORTFOLIO_EVAL_CAP,
            "portfolio_quality": portfolio_quality,
            "annealing_quality": annealing_quality,
        },
        "kernel_race": {
            "members": KERNEL_RACE_MEMBERS,
            "num_buckets": KERNEL_RACE_BUCKETS,
        },
        "speedups": {
            "annealing_step_incremental_vs_scratch": annealing_scratch / annealing_incremental,
            "greedy_round_incremental_vs_scratch": greedy_scratch / greedy_incremental,
            "kernel_vectorized_vs_scalar": kernel_scalar / kernel_vectorized,
            "sweep_warm_marginal_vs_cold": sweep_cold / sweep_warm_marginal,
            "sweep_warm_annealing_vs_cold": sweep_cold / sweep_warm_annealing,
            "contention_sharded_vs_single_lock": contention_single_p99 / contention_sharded_p99,
            // JQ margin over the 0.5 coin-flip floor, portfolio : annealing,
            // at PORTFOLIO_EVAL_CAP evaluations each. ≥ 1.0 means the race
            // beats or ties annealing-only at equal evaluation spend.
            "portfolio_vs_annealing_quality_per_eval":
                (portfolio_quality - 0.5) / (annealing_quality - 0.5).max(1e-12),
            "parallel_portfolio_vs_sequential": race_sequential / race_parallel,
        },
    });
    let rendered = serde_json::to_string_pretty(&dump).expect("serializable");
    println!("{rendered}");
    if let Err(err) = std::fs::write(&out, rendered) {
        eprintln!("failed to write {out}: {err}");
        std::process::exit(1);
    }
    eprintln!("wrote {out}");

    if let Some(baseline_path) = check {
        match check_against_baseline(&dump, &baseline_path, tolerance) {
            Ok(regressions) if regressions.is_empty() => {
                eprintln!("perf check against {baseline_path} passed (tolerance {tolerance})");
            }
            Ok(regressions) => {
                for regression in &regressions {
                    eprintln!("perf regression: {regression}");
                }
                std::process::exit(1);
            }
            Err(err) => {
                eprintln!("{err}");
                std::process::exit(2);
            }
        }
    }
}
