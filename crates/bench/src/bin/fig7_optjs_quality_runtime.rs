//! Reproduces Figure 7 and Table 3: the quality of the simulated-annealing
//! JSP heuristic against the exhaustive optimum (N = 11, varying budget), the
//! distribution of its error, and its running time as the candidate pool
//! grows (N ∈ [100, 500], several budgets).
//!
//! ```text
//! cargo run -p jury-bench --release --bin fig7_optjs_quality_runtime -- --trials 50
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use jury_bench::{maybe_write_json, sweep, timed, ExperimentArgs};
use jury_jq::BucketJqConfig;
use jury_model::{stats, GaussianWorkerGenerator, Prior};
use jury_optjs::Series;
use jury_selection::{
    AnnealingConfig, AnnealingSolver, BvObjective, ExhaustiveSolver, JspInstance, JurySolver,
};

fn bv_objective() -> BvObjective {
    BvObjective::with_config(BucketJqConfig::paper_experiments())
}

fn main() {
    let args = ExperimentArgs::from_env();
    println!("Figure 7 / Table 3 — annealing JSP quality and running time\n");

    // ---- Figure 7(a): optimal vs returned JQ, N = 11, B in [0.05, 0.5] ----
    let generator = GaussianWorkerGenerator::paper_defaults();
    let mut optimal_series = Series::new("JQ of optimal jury J*");
    let mut returned_series = Series::new("JQ of returned jury J'");
    let mut all_errors_percent: Vec<f64> = Vec::new();

    println!(
        "Figure 7(a): N = 11, budget in [0.05, 0.5] ({} trials per point)",
        args.trials
    );
    println!(
        "{:>8} | {:>10} | {:>10} | {:>9}",
        "budget", "optimal", "annealed", "gap"
    );
    println!("---------+------------+------------+----------");
    for budget in sweep(0.05, 0.5, 0.05) {
        let mut optimal_total = 0.0;
        let mut returned_total = 0.0;
        for trial in 0..args.trials {
            let mut rng =
                StdRng::seed_from_u64(args.seed ^ (trial as u64).wrapping_mul(0x2545F4914F6CDD1D));
            let pool = generator.generate(11, &mut rng);
            let instance =
                JspInstance::new(pool, budget, Prior::uniform()).expect("non-negative budgets");
            let optimal = ExhaustiveSolver::new(bv_objective()).solve(&instance);
            let annealing_config = if args.full {
                AnnealingConfig::paper_single_run()
            } else {
                AnnealingConfig::default()
            };
            let annealed =
                AnnealingSolver::with_config(bv_objective(), annealing_config).solve(&instance);
            optimal_total += optimal.objective_value;
            returned_total += annealed.objective_value;
            all_errors_percent
                .push((optimal.objective_value - annealed.objective_value).max(0.0) * 100.0);
        }
        let optimal_mean = optimal_total / args.trials as f64;
        let returned_mean = returned_total / args.trials as f64;
        optimal_series.push(budget, optimal_mean);
        returned_series.push(budget, returned_mean);
        println!(
            "{:>8.2} | {:>9.2}% | {:>9.2}% | {:>8.3}%",
            budget,
            optimal_mean * 100.0,
            returned_mean * 100.0,
            (optimal_mean - returned_mean) * 100.0
        );
    }
    println!("Paper shape: the two curves almost coincide.\n");

    // ---- Table 3: counts of the error in the paper's ranges (percent) ----
    let edges = [0.0, 0.01, 0.1, 1.0, 3.0, f64::INFINITY];
    let counts = stats::range_counts(&all_errors_percent, &edges);
    println!(
        "Table 3: counts of JQ(J*) - JQ(J') over {} runs (error in %):",
        all_errors_percent.len()
    );
    println!("  [0, 0.01]  (0.01, 0.1]  (0.1, 1]  (1, 3]  (3, +inf)");
    println!(
        "  {:>9} {:>12} {:>9} {:>7} {:>10}",
        counts[0], counts[1], counts[2], counts[3], counts[4]
    );
    println!(
        "Paper: 9301 / 231 / 408 / 60 / 0 over 10,000 runs (>90% below 0.01%, none above 3%).\n"
    );

    // ---- Figure 7(b): running time vs N for several budgets ----
    let n_values: Vec<f64> = if args.full {
        sweep(100.0, 500.0, 100.0)
    } else {
        sweep(100.0, 300.0, 100.0)
    };
    let budgets = [0.05, 0.20, 0.35, 0.50];
    let mut timing_series: Vec<Series> = Vec::new();
    println!("Figure 7(b): annealing running time (seconds per JSP solve)");
    print!("{:>6}", "N");
    for &b in &budgets {
        print!(" | B={b:<6}");
    }
    println!();
    for &n in &n_values {
        print!("{:>6}", n as usize);
        for &budget in &budgets {
            let mut rng = StdRng::seed_from_u64(args.seed.wrapping_add(n as u64));
            let pool = generator.generate(n as usize, &mut rng);
            let instance = JspInstance::new(pool, budget, Prior::uniform()).expect("valid budget");
            let (_, seconds) = timed(|| {
                AnnealingSolver::with_config(bv_objective(), AnnealingConfig::paper_single_run())
                    .solve(&instance)
            });
            print!(" | {seconds:>8.3}");
            let series = timing_series
                .iter_mut()
                .find(|s| s.name == format!("B={budget}"));
            match series {
                Some(series) => series.push(n, seconds),
                None => {
                    let mut series = Series::new(format!("B={budget}"));
                    series.push(n, seconds);
                    timing_series.push(series);
                }
            }
        }
        println!();
    }
    println!("Paper shape: time grows roughly linearly with N (<= 2.5 s at N = 500 in Python).\n");

    let dump = serde_json::json!({
        "experiment": "figure_7_table_3",
        "trials": args.trials,
        "fig7a_optimal": optimal_series,
        "fig7a_returned": returned_series,
        "table3_error_percent_counts": counts,
        "table3_edges_percent": [0.0, 0.01, 0.1, 1.0, 3.0, "inf"],
        "fig7b_runtime_seconds": timing_series,
    });
    maybe_write_json(&args.out, &dump);
}
