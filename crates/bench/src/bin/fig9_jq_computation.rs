//! Reproduces Figure 9: the behaviour of the bucket-based JQ(BV)
//! approximation (Algorithm 1).
//!
//! * (a) JQ(BV) as the quality mean µ varies, for several quality variances;
//! * (b) approximation error vs. the number of buckets;
//! * (c) the histogram of approximation errors at `numBuckets = 50`;
//! * (d) computation time with and without the Algorithm 2 pruning as the
//!   jury size grows.
//!
//! ```text
//! cargo run -p jury-bench --release --bin fig9_jq_computation -- --trials 100
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use jury_bench::{maybe_write_json, sweep, timed, ExperimentArgs};
use jury_jq::{exact_bv_jq, BucketCount, BucketJqConfig, BucketJqEstimator};
use jury_model::{stats::Histogram, GaussianWorkerGenerator, Jury, Prior};
use jury_optjs::Series;

fn random_jury(n: usize, generator: &GaussianWorkerGenerator, rng: &mut StdRng) -> Jury {
    let qualities: Vec<f64> = (0..n).map(|_| generator.sample_quality(rng)).collect();
    Jury::from_qualities(&qualities).expect("clamped qualities are valid")
}

fn main() {
    let args = ExperimentArgs::from_env();
    let estimator_50 = BucketJqEstimator::paper_experiments();
    println!(
        "Figure 9 — JQ(J, BV, 0.5) computation ({} trials per point)\n",
        args.trials
    );

    // ---- (a) JQ vs µ for several quality variances (n = 11). ----
    let variances = [0.01, 0.03, 0.05, 0.10];
    let mut fig9a: Vec<Series> = Vec::new();
    println!("Figure 9(a): JQ(BV) for n = 11, varying mu and quality variance");
    print!("{:>6}", "mu");
    for v in variances {
        print!(" | var={v:<5}");
    }
    println!();
    for mu in sweep(0.5, 1.0, 0.1) {
        print!("{mu:>6.2}");
        for &variance in &variances {
            let generator = GaussianWorkerGenerator::paper_defaults()
                .with_quality_mean(mu)
                .with_quality_variance(variance);
            let mut total = 0.0;
            for trial in 0..args.trials {
                let mut rng = StdRng::seed_from_u64(
                    args.seed ^ (trial as u64 + 1).wrapping_mul(0xA24BAED4963EE407),
                );
                let jury = random_jury(11, &generator, &mut rng);
                total += estimator_50.jq(&jury, Prior::uniform());
            }
            let mean = total / args.trials as f64;
            print!(" | {:>7.2}%", mean * 100.0);
            match fig9a
                .iter_mut()
                .find(|s| s.name == format!("variance={variance}"))
            {
                Some(s) => s.push(mu, mean),
                None => {
                    let mut s = Series::new(format!("variance={variance}"));
                    s.push(mu, mean);
                    fig9a.push(s);
                }
            }
        }
        println!();
    }
    println!("Paper shape: higher variance helps at mu = 0.5 (more lucky high-quality workers).\n");

    // ---- (b) approximation error vs numBuckets (exact baseline, n = 10). ----
    let generator = GaussianWorkerGenerator::paper_defaults();
    let mut fig9b = Series::new("mean |JQ - JQ_approx|");
    println!("Figure 9(b): approximation error vs numBuckets (n = 10)");
    println!("{:>10} | {:>12}", "numBuckets", "mean error");
    for buckets in [10usize, 25, 50, 75, 100, 150, 200] {
        let estimator = BucketJqEstimator::new(
            BucketJqConfig::default()
                .with_buckets(BucketCount::Fixed(buckets))
                .with_high_quality_shortcut(false),
        );
        let mut total_error = 0.0;
        for trial in 0..args.trials {
            let mut rng = StdRng::seed_from_u64(
                args.seed ^ (trial as u64 + 1).wrapping_mul(0xD6E8FEB86659FD93),
            );
            let jury = random_jury(10, &generator, &mut rng);
            let exact = exact_bv_jq(&jury, Prior::uniform()).expect("small jury");
            let approx = estimator.jq(&jury, Prior::uniform());
            total_error += (exact - approx).abs();
        }
        let mean_error = total_error / args.trials as f64;
        println!("{buckets:>10} | {:>11.5}%", mean_error * 100.0);
        fig9b.push(buckets as f64, mean_error);
    }
    println!("Paper shape: the error drops quickly with numBuckets and is near zero by 200.\n");

    // ---- (c) histogram of errors at numBuckets = 50. ----
    let mut histogram = Histogram::new(0.0, 0.0001, 10);
    let mut max_error = 0.0f64;
    let hist_trials = args.trials.max(200);
    for trial in 0..hist_trials {
        let mut rng =
            StdRng::seed_from_u64(args.seed ^ (trial as u64 + 1).wrapping_mul(0x94D049BB133111EB));
        let jury = random_jury(10, &generator, &mut rng);
        let exact = exact_bv_jq(&jury, Prior::uniform()).expect("small jury");
        let approx = estimator_50.jq(&jury, Prior::uniform());
        let error = (exact - approx).abs();
        max_error = max_error.max(error);
        histogram.add(error);
    }
    println!("Figure 9(c): error histogram at numBuckets = 50 over {hist_trials} juries");
    for (i, &count) in histogram.counts().iter().enumerate() {
        let (lo, hi) = histogram.bin_edges(i);
        println!("  [{:>8.5}%, {:>8.5}%): {count}", lo * 100.0, hi * 100.0);
    }
    println!("  above range: {}", histogram.outliers());
    println!(
        "  max error: {:.5}% (paper reports a maximum within 0.01%)\n",
        max_error * 100.0
    );

    // ---- (d) runtime with vs without pruning, n in [100, 500]. ----
    let n_values: Vec<f64> = if args.full {
        sweep(100.0, 500.0, 100.0)
    } else {
        sweep(100.0, 300.0, 100.0)
    };
    let mut with_pruning = Series::new("with pruning");
    let mut without_pruning = Series::new("without pruning");
    println!("Figure 9(d): JQ estimation time (seconds), numBuckets = 50");
    println!(
        "{:>6} | {:>12} | {:>14} | {:>7}",
        "n", "with pruning", "without pruning", "ratio"
    );
    for &n in &n_values {
        let mut rng = StdRng::seed_from_u64(args.seed.wrapping_add(n as u64));
        let jury = random_jury(n as usize, &generator, &mut rng);
        let pruning_estimator = BucketJqEstimator::new(BucketJqConfig::paper_experiments());
        let plain_estimator =
            BucketJqEstimator::new(BucketJqConfig::paper_experiments().with_pruning(false));
        let repeats = 5;
        let (_, with_seconds) = timed(|| {
            for _ in 0..repeats {
                let _ = pruning_estimator.jq(&jury, Prior::uniform());
            }
        });
        let (_, without_seconds) = timed(|| {
            for _ in 0..repeats {
                let _ = plain_estimator.jq(&jury, Prior::uniform());
            }
        });
        let with_seconds = with_seconds / repeats as f64;
        let without_seconds = without_seconds / repeats as f64;
        println!(
            "{:>6} | {:>12.4} | {:>15.4} | {:>6.2}x",
            n as usize,
            with_seconds,
            without_seconds,
            without_seconds / with_seconds.max(1e-12)
        );
        with_pruning.push(n, with_seconds);
        without_pruning.push(n, without_seconds);
    }
    println!("Paper shape: pruning saves more than half of the computation and scales with n.\n");

    let dump = serde_json::json!({
        "experiment": "figure_9_jq_computation",
        "trials": args.trials,
        "fig9a_jq_vs_mu_by_variance": fig9a,
        "fig9b_error_vs_buckets": fig9b,
        "fig9c_histogram_counts": histogram.counts(),
        "fig9c_max_error": max_error,
        "fig9d_with_pruning": with_pruning,
        "fig9d_without_pruning": without_pruning,
    });
    maybe_write_json(&args.out, &dump);
}
