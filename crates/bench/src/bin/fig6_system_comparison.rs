//! Reproduces Figure 6(a)–(d): the end-to-end comparison of OPTJS against
//! the MVJS baseline on synthetic worker pools, sweeping the quality mean µ,
//! the budget B, the candidate pool size N, and the cost standard deviation
//! σ̂, with everything else at the Section 6.1.1 defaults (µ = 0.7,
//! σ² = 0.05, µ̂ = 0.05, σ̂ = 0.2, B = 0.5, N = 50, α = 0.5).
//!
//! The paper averages each point over 1,000 pools; the default here is a
//! lighter `--trials 10` (pass `--trials 1000 --full` to match the paper).
//!
//! ```text
//! cargo run -p jury-bench --release --bin fig6_system_comparison -- --trials 20
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use jury_bench::{maybe_write_json, sweep, ExperimentArgs};
use jury_model::{GaussianWorkerGenerator, Prior};
use jury_optjs::{compare_systems, ComparisonSeries, Mvjs, Optjs, SystemConfig};

/// The defaults of Section 6.1.1.
struct Defaults {
    budget: f64,
    pool_size: usize,
}

const DEFAULTS: Defaults = Defaults {
    budget: 0.5,
    pool_size: 50,
};

fn average_comparison(
    generator: &GaussianWorkerGenerator,
    pool_size: usize,
    budget: f64,
    trials: usize,
    seed: u64,
    optjs: &Optjs,
    mvjs: &Mvjs,
) -> (f64, f64) {
    let mut optjs_total = 0.0;
    let mut mvjs_total = 0.0;
    for trial in 0..trials {
        let mut rng = StdRng::seed_from_u64(seed ^ (trial as u64).wrapping_mul(0x9E3779B97F4A7C15));
        let pool = generator.generate(pool_size, &mut rng);
        let (o, m) = compare_systems(optjs, mvjs, &pool, budget, Prior::uniform())
            .expect("experiment budgets are valid");
        optjs_total += o.estimated_quality;
        mvjs_total += m.estimated_quality;
    }
    (optjs_total / trials as f64, mvjs_total / trials as f64)
}

fn main() {
    let args = ExperimentArgs::from_env();
    let config = if args.full {
        SystemConfig::paper_experiments()
    } else {
        SystemConfig::fast()
    };
    let optjs = Optjs::new(config);
    let mvjs = Mvjs::new(config);

    println!(
        "Figure 6 — OPTJS vs MVJS on synthetic pools ({} trials per point)\n",
        args.trials
    );

    // (a) Varying the worker quality mean µ ∈ [0.5, 1].
    let mut fig6a = ComparisonSeries::new("mu");
    for mu in sweep(0.5, 1.0, 0.1) {
        let generator = GaussianWorkerGenerator::paper_defaults().with_quality_mean(mu);
        let (o, m) = average_comparison(
            &generator,
            DEFAULTS.pool_size,
            DEFAULTS.budget,
            args.trials,
            args.seed,
            &optjs,
            &mvjs,
        );
        fig6a.push(mu, o, m);
    }
    println!("Figure 6(a): varying quality mean mu (B=0.5, N=50)");
    println!("{}", fig6a.render());

    // (b) Varying the budget B ∈ [0.1, 1].
    let mut fig6b = ComparisonSeries::new("budget");
    for budget in sweep(0.1, 1.0, 0.1) {
        let generator = GaussianWorkerGenerator::paper_defaults();
        let (o, m) = average_comparison(
            &generator,
            DEFAULTS.pool_size,
            budget,
            args.trials,
            args.seed.wrapping_add(1),
            &optjs,
            &mvjs,
        );
        fig6b.push(budget, o, m);
    }
    println!("Figure 6(b): varying budget B (mu=0.7, N=50)");
    println!("{}", fig6b.render());

    // (c) Varying the candidate pool size N ∈ [10, 100].
    let mut fig6c = ComparisonSeries::new("N");
    for n in sweep(10.0, 100.0, 10.0) {
        let generator = GaussianWorkerGenerator::paper_defaults();
        let (o, m) = average_comparison(
            &generator,
            n as usize,
            DEFAULTS.budget,
            args.trials,
            args.seed.wrapping_add(2),
            &optjs,
            &mvjs,
        );
        fig6c.push(n, o, m);
    }
    println!("Figure 6(c): varying candidate pool size N (mu=0.7, B=0.5)");
    println!("{}", fig6c.render());

    // (d) Varying the cost standard deviation σ̂ ∈ [0.1, 1].
    let mut fig6d = ComparisonSeries::new("cost_sd");
    for sd in sweep(0.1, 1.0, 0.1) {
        let generator = GaussianWorkerGenerator::paper_defaults().with_cost_std_dev(sd);
        let (o, m) = average_comparison(
            &generator,
            DEFAULTS.pool_size,
            DEFAULTS.budget,
            args.trials,
            args.seed.wrapping_add(3),
            &optjs,
            &mvjs,
        );
        fig6d.push(sd, o, m);
    }
    println!("Figure 6(d): varying cost standard deviation (mu=0.7, B=0.5, N=50)");
    println!("{}", fig6d.render());

    println!(
        "Expected shape (paper): OPTJS >= MVJS everywhere; lead ~5% at mu=0.6, ~3% average over B, >6% at N=10."
    );
    for (name, series) in [
        ("6(a)", &fig6a),
        ("6(b)", &fig6b),
        ("6(c)", &fig6c),
        ("6(d)", &fig6d),
    ] {
        println!(
            "  {name}: OPTJS dominates = {}, mean lead = {:+.2}%",
            series.optjs_dominates(0.005),
            series.mean_lead() * 100.0
        );
    }

    let dump = serde_json::json!({
        "experiment": "figure_6_system_comparison",
        "trials": args.trials,
        "full": args.full,
        "fig6a_vary_mu": fig6a,
        "fig6b_vary_budget": fig6b,
        "fig6c_vary_n": fig6c,
        "fig6d_vary_cost_sd": fig6d,
    });
    maybe_write_json(&args.out, &dump);
}
