//! Criterion micro-benchmarks for Jury Quality computation: exact
//! enumeration vs. the MV dynamic program vs. the bucket approximation, and
//! the effect of the Algorithm 2 pruning (the timing side of Figure 9).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use jury_jq::{exact_bv_jq, mv_jq, BucketCount, BucketJqConfig, BucketJqEstimator};
use jury_model::{GaussianWorkerGenerator, Jury, Prior};

fn random_jury(n: usize, seed: u64) -> Jury {
    let generator = GaussianWorkerGenerator::paper_defaults();
    let mut rng = StdRng::seed_from_u64(seed);
    let qualities: Vec<f64> = (0..n).map(|_| generator.sample_quality(&mut rng)).collect();
    Jury::from_qualities(&qualities).expect("clamped qualities")
}

fn bench_exact_vs_approx(c: &mut Criterion) {
    let mut group = c.benchmark_group("jq_small_jury");
    for &n in &[8usize, 12] {
        let jury = random_jury(n, 7);
        group.bench_with_input(
            BenchmarkId::new("exact_enumeration", n),
            &jury,
            |b, jury| b.iter(|| exact_bv_jq(jury, Prior::uniform()).unwrap()),
        );
        let estimator = BucketJqEstimator::paper_experiments();
        group.bench_with_input(BenchmarkId::new("bucket_50", n), &jury, |b, jury| {
            b.iter(|| estimator.jq(jury, Prior::uniform()))
        });
        group.bench_with_input(
            BenchmarkId::new("mv_dynamic_program", n),
            &jury,
            |b, jury| b.iter(|| mv_jq(jury, Prior::uniform()).unwrap()),
        );
    }
    group.finish();
}

fn bench_pruning(c: &mut Criterion) {
    let mut group = c.benchmark_group("jq_pruning_figure9d");
    group.sample_size(20);
    for &n in &[100usize, 200, 400] {
        let jury = random_jury(n, 11);
        let with_pruning = BucketJqEstimator::new(BucketJqConfig::paper_experiments());
        let without_pruning =
            BucketJqEstimator::new(BucketJqConfig::paper_experiments().with_pruning(false));
        group.bench_with_input(BenchmarkId::new("with_pruning", n), &jury, |b, jury| {
            b.iter(|| with_pruning.jq(jury, Prior::uniform()))
        });
        group.bench_with_input(BenchmarkId::new("without_pruning", n), &jury, |b, jury| {
            b.iter(|| without_pruning.jq(jury, Prior::uniform()))
        });
    }
    group.finish();
}

fn bench_bucket_resolution(c: &mut Criterion) {
    let mut group = c.benchmark_group("jq_bucket_resolution");
    let jury = random_jury(50, 13);
    for &buckets in &[10usize, 50, 200, 1000] {
        let estimator = BucketJqEstimator::new(
            BucketJqConfig::default().with_buckets(BucketCount::Fixed(buckets)),
        );
        group.bench_with_input(BenchmarkId::from_parameter(buckets), &jury, |b, jury| {
            b.iter(|| estimator.jq(jury, Prior::uniform()))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // Keep the whole suite quick enough for CI while still giving stable numbers.
    config = Criterion::default()
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2))
        .sample_size(20);
    targets = bench_exact_vs_approx, bench_pruning, bench_bucket_resolution
}
criterion_main!(benches);
