//! Criterion micro-benchmarks for the JSP solvers: exhaustive enumeration at
//! the paper's N = 11 reference size, and the simulated-annealing heuristic
//! at the synthetic default N = 50 and beyond (the timing side of
//! Figure 7(b)).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use jury_jq::BucketJqConfig;
use jury_model::{GaussianWorkerGenerator, Prior};
use jury_selection::{
    AnnealingConfig, AnnealingSolver, BvObjective, ExhaustiveSolver, JspInstance, JurySolver,
    MvjsSolver,
};

fn instance(n: usize, budget: f64, seed: u64) -> JspInstance {
    let generator = GaussianWorkerGenerator::paper_defaults();
    let mut rng = StdRng::seed_from_u64(seed);
    let pool = generator.generate(n, &mut rng);
    JspInstance::new(pool, budget, Prior::uniform()).expect("valid budget")
}

fn objective() -> BvObjective {
    BvObjective::with_config(BucketJqConfig::paper_experiments())
}

fn bench_exhaustive(c: &mut Criterion) {
    let mut group = c.benchmark_group("jsp_exhaustive_n11");
    group.sample_size(10);
    for &budget in &[0.2, 0.5] {
        let inst = instance(11, budget, 3);
        group.bench_with_input(BenchmarkId::from_parameter(budget), &inst, |b, inst| {
            b.iter(|| ExhaustiveSolver::new(objective()).solve(inst))
        });
    }
    group.finish();
}

fn bench_annealing(c: &mut Criterion) {
    let mut group = c.benchmark_group("jsp_annealing_figure7b");
    group.sample_size(10);
    for &n in &[50usize, 100, 200] {
        let inst = instance(n, 0.5, 5);
        group.bench_with_input(BenchmarkId::new("paper_single_run", n), &inst, |b, inst| {
            b.iter(|| {
                AnnealingSolver::with_config(objective(), AnnealingConfig::paper_single_run())
                    .solve(inst)
            })
        });
        group.bench_with_input(BenchmarkId::new("robust_default", n), &inst, |b, inst| {
            b.iter(|| AnnealingSolver::new(objective()).solve(inst))
        });
    }
    group.finish();
}

fn bench_mvjs_baseline(c: &mut Criterion) {
    let mut group = c.benchmark_group("jsp_mvjs_baseline");
    group.sample_size(10);
    for &n in &[50usize, 100] {
        let inst = instance(n, 0.5, 7);
        group.bench_with_input(BenchmarkId::from_parameter(n), &inst, |b, inst| {
            b.iter(|| MvjsSolver::new().solve(inst))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // Keep the whole suite quick enough for CI while still giving stable numbers.
    config = Criterion::default()
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2))
        .sample_size(20);
    targets = bench_exhaustive, bench_annealing, bench_mvjs_baseline
}
criterion_main!(benches);
