//! Criterion micro-benchmarks for the voting strategies themselves: how fast
//! each strategy aggregates a single voting, and the exact JQ enumeration
//! that powers the Figure 8 comparison.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use jury_jq::exact_jq;
use jury_model::{Answer, GaussianWorkerGenerator, Jury, Prior};
use jury_sim::draw_voting;
use jury_voting::{all_strategies, figure8_strategies};

fn setup(n: usize) -> (Jury, Vec<Answer>) {
    let generator = GaussianWorkerGenerator::paper_defaults();
    let mut rng = StdRng::seed_from_u64(1);
    let qualities: Vec<f64> = (0..n).map(|_| generator.sample_quality(&mut rng)).collect();
    let jury = Jury::from_qualities(&qualities).expect("clamped qualities");
    let votes = draw_voting(&jury, Answer::Yes, &mut rng);
    (jury, votes)
}

fn bench_single_aggregation(c: &mut Criterion) {
    let mut group = c.benchmark_group("strategy_prob_no_n21");
    let (jury, votes) = setup(21);
    for entry in all_strategies() {
        group.bench_with_input(
            BenchmarkId::from_parameter(entry.name()),
            &(&jury, &votes),
            |b, (jury, votes)| {
                b.iter(|| {
                    entry
                        .strategy
                        .prob_no(jury, votes, Prior::uniform())
                        .unwrap()
                })
            },
        );
    }
    group.finish();
}

fn bench_exact_jq_per_strategy(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_jq_figure8_n11");
    group.sample_size(20);
    let (jury, _) = setup(11);
    for strategy in figure8_strategies() {
        group.bench_with_input(
            BenchmarkId::from_parameter(strategy.name()),
            &jury,
            |b, jury| b.iter(|| exact_jq(jury, strategy.as_ref(), Prior::uniform()).unwrap()),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // Keep the whole suite quick enough for CI while still giving stable numbers.
    config = Criterion::default()
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2))
        .sample_size(20);
    targets = bench_single_aggregation, bench_exact_jq_per_strategy
}
criterion_main!(benches);
