//! Criterion benchmarks for the `jury-service` batch path: a batch of 64
//! selection requests served by `select_batch` (data-parallel, shared JQ
//! cache) versus a sequential loop of single `select` calls, plus the
//! cache's effect on repeated single selections.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

use jury_model::{GaussianWorkerGenerator, Prior};
use jury_service::{JuryService, SelectionRequest, ServiceConfig};

/// A batch of `n` requests over a handful of synthetic pools and budgets —
/// overlapping enough for the shared cache to matter, varied enough to be
/// honest work.
fn batch(n: usize) -> Vec<SelectionRequest> {
    let generator = GaussianWorkerGenerator::paper_defaults();
    let pools: Vec<_> = (0..4)
        .map(|seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            generator.generate(40, &mut rng)
        })
        .collect();
    (0..n)
        .map(|i| {
            let pool = pools[i % pools.len()].clone();
            let budget = 0.2 + 0.1 * ((i / pools.len()) % 4) as f64;
            SelectionRequest::new(pool, budget).with_prior(Prior::uniform())
        })
        .collect()
}

fn bench_batch_vs_sequential(c: &mut Criterion) {
    let mut group = c.benchmark_group("service_batch64");
    group.sample_size(10);
    let requests = batch(64);

    group.bench_with_input(
        BenchmarkId::from_parameter("sequential_select_loop"),
        &requests,
        |b, requests| {
            b.iter(|| {
                // Fresh service per run: both sides start with a cold cache.
                let service = JuryService::new(ServiceConfig::fast());
                requests
                    .iter()
                    .map(|r| service.select(r).expect("valid bench request"))
                    .collect::<Vec<_>>()
            })
        },
    );

    group.bench_with_input(
        BenchmarkId::from_parameter("select_batch"),
        &requests,
        |b, requests| {
            b.iter(|| {
                let service = JuryService::new(ServiceConfig::fast());
                let results = service.select_batch(requests);
                assert!(results.iter().all(|r| r.is_ok()));
                results
            })
        },
    );

    group.finish();
}

fn bench_cache_effect(c: &mut Criterion) {
    let mut group = c.benchmark_group("service_jq_cache");
    group.sample_size(10);
    let requests = batch(16);

    // One shared service: after the first pass the cache is warm.
    let warm = JuryService::new(ServiceConfig::fast());
    let _ = warm.select_batch(&requests);
    group.bench_with_input(
        BenchmarkId::from_parameter("warm_cache"),
        &requests,
        |b, requests| b.iter(|| warm.select_batch(requests)),
    );

    group.bench_with_input(
        BenchmarkId::from_parameter("cold_cache"),
        &requests,
        |b, requests| {
            b.iter(|| {
                let cold = JuryService::new(ServiceConfig::fast().with_cache_capacity(0));
                cold.select_batch(requests)
            })
        },
    );

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(4))
        .sample_size(10);
    targets = bench_batch_vs_sequential, bench_cache_effect
}
criterion_main!(benches);
