//! Criterion micro-benchmarks for the incremental multi-class JQ engine and
//! the warm-started budget sweep.
//!
//! * `multiclass_annealing_step` — one confusion-matrix annealing neighbour:
//!   swap a jury member, read the JQ, swap back. The scratch path rebuilds
//!   the whole Section 7 tuple-key DP (`O(n)` convolutions per target); the
//!   incremental engine pays one deconvolve/convolve pair per target. Both
//!   pool sizes are kept on purpose: at 10 candidates the scratch DP's
//!   sparse map is tiny and wins outright, at 30 the dense engine wins by
//!   an order of magnitude — the crossover that
//!   `jury_selection::DEFAULT_MULTICLASS_SESSION_POOL_CUTOFF` encodes.
//! * `budget_sweep` — a full Figure-1 style budget–quality table over a
//!   many-candidate pool: cold re-solves every budget from the empty jury,
//!   warm carries one marginal-gain search state (and one incremental JQ
//!   session) from each budget to the next.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use jury_jq::{
    approx_multiclass_bv_jq, IncrementalMultiClassJq, MultiClassBucketConfig,
    MultiClassIncrementalConfig,
};
use jury_model::{CategoricalPrior, MatrixJury, MatrixPool, Prior, WorkerPool};
use jury_selection::{BudgetQualityTable, BvObjective, GreedyMarginalSolver};

/// Bucket resolution used by both the scratch and incremental multi-class
/// paths so the comparison is work-for-work.
const NUM_BUCKETS: usize = 50;
/// Labels of the multi-class workloads.
const NUM_CHOICES: usize = 3;

fn matrix_pool(n: usize) -> MatrixPool {
    let qualities: Vec<f64> = (0..n).map(|i| 0.55 + 0.015 * (i % 25) as f64).collect();
    let costs: Vec<f64> = (0..n).map(|i| 1.0 + (i % 5) as f64 * 0.5).collect();
    MatrixPool::from_qualities_and_costs(&qualities, &costs, NUM_CHOICES).unwrap()
}

/// One annealing neighbour: swap a member for an outsider, read the JQ,
/// swap back.
fn bench_multiclass_annealing_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("multiclass_annealing_step");
    for &n in &[10usize, 30] {
        let pool = matrix_pool(n);
        let prior = CategoricalPrior::uniform(NUM_CHOICES).unwrap();
        let members = pool.workers()[..n / 2].to_vec();
        let outsider = pool.workers()[n - 1].clone();
        let victim = members[0].clone();

        let config = MultiClassBucketConfig {
            num_buckets: NUM_BUCKETS,
        };
        group.bench_function(BenchmarkId::new("scratch_dp", n), |b| {
            b.iter(|| {
                // The from-scratch path must rebuild the tuple DP for the
                // mutated jury.
                let mut candidate = members.clone();
                candidate[0] = outsider.clone();
                let jury = MatrixJury::new(candidate).unwrap();
                approx_multiclass_bv_jq(&jury, &prior, config).unwrap()
            })
        });

        let mut engine = IncrementalMultiClassJq::for_pool(
            pool.workers(),
            &prior,
            MultiClassIncrementalConfig::default().with_num_buckets(NUM_BUCKETS),
        )
        .unwrap();
        for worker in &members {
            engine.push_worker(worker).unwrap();
        }
        group.bench_function(BenchmarkId::new("incremental", n), |b| {
            b.iter(|| {
                engine.swap_worker(&victim, &outsider).unwrap();
                let value = engine.jq();
                engine.swap_worker(&outsider, &victim).unwrap();
                value
            })
        });
    }
    group.finish();
}

/// A full budget–quality table, cold (one marginal-greedy solve per budget)
/// vs. warm (one search state carried across the ascending budgets).
fn bench_budget_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("budget_sweep");
    group.sample_size(10);
    for &n in &[40usize, 120] {
        let qualities: Vec<f64> = (0..n).map(|i| 0.52 + 0.012 * (i % 35) as f64).collect();
        let costs = vec![1.0; n];
        let pool = WorkerPool::from_qualities_and_costs(&qualities, &costs).unwrap();
        // Four budgets spanning up to half the pool: enough rows for the
        // warm-vs-cold ratio to show while keeping a single cold table
        // cheap enough for the CI `--test` smoke run.
        let budgets: Vec<f64> = (1..=4).map(|b| (b * n / 8) as f64).collect();

        group.bench_function(BenchmarkId::new("cold", n), |b| {
            b.iter(|| {
                let solver = GreedyMarginalSolver::new(BvObjective::new());
                BudgetQualityTable::build(&pool, &budgets, Prior::uniform(), &solver)
            })
        });

        group.bench_function(BenchmarkId::new("warm", n), |b| {
            b.iter(|| {
                let objective = BvObjective::new();
                BudgetQualityTable::build_warm(&pool, &budgets, Prior::uniform(), &objective)
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // Keep the whole suite quick enough for CI while still giving stable numbers.
    config = Criterion::default()
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2))
        .sample_size(20);
    targets = bench_multiclass_annealing_step, bench_budget_sweep
}
criterion_main!(benches);
