//! Criterion micro-benchmarks for the incremental JQ engine: the cost of
//! one solver-shaped neighbour evaluation under the from-scratch bucket DP
//! vs. [`jury_jq::IncrementalJq`]'s push/pop/swap updates, on pools of
//! n ∈ {10, 50, 200} candidates.
//!
//! Two workloads mirror the two searches that dominate OPTJS runtime:
//!
//! * `annealing_step` — one simulated-annealing neighbour: mutate a single
//!   jury member, read the JQ, revert. Scratch pays `O(n · buckets)` to
//!   rebuild the DP for the candidate jury; incremental pays `O(buckets)`
//!   for the swap.
//! * `greedy_round` — one marginal-greedy round: score every affordable
//!   single-worker extension of the current jury. Scratch pays pool-many
//!   rebuilds; incremental pays pool-many `O(buckets)` probes.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use jury_jq::{
    BucketCount, BucketJqConfig, BucketJqEstimator, IncrementalJq, IncrementalJqConfig, KernelMode,
};
use jury_model::{GaussianWorkerGenerator, Jury, Prior, Worker, WorkerPool};

/// The paper's experimental bucket budget, used for both engines so the
/// comparison is work-for-work.
const NUM_BUCKETS: usize = 50;

fn random_pool(n: usize, seed: u64) -> WorkerPool {
    let generator = GaussianWorkerGenerator::paper_defaults();
    let mut rng = StdRng::seed_from_u64(seed);
    generator.generate(n, &mut rng)
}

fn scratch_estimator() -> BucketJqEstimator {
    BucketJqEstimator::new(
        BucketJqConfig::default()
            .with_buckets(BucketCount::Fixed(NUM_BUCKETS))
            .with_high_quality_shortcut(false),
    )
}

fn incremental_for(pool: &WorkerPool, members: &[Worker]) -> IncrementalJq {
    let mut engine = IncrementalJq::for_pool(
        pool,
        Prior::uniform(),
        IncrementalJqConfig::default().with_buckets(BucketCount::Fixed(NUM_BUCKETS)),
    );
    for worker in members {
        engine.push_worker(worker);
    }
    engine
}

/// One annealing neighbour: swap a jury member for an outsider, read the
/// JQ, swap back.
fn bench_annealing_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("incremental_annealing_step");
    for &n in &[10usize, 50, 200] {
        let pool = random_pool(n, 11);
        let members: Vec<Worker> = pool.workers()[..n / 2].to_vec();
        let outsider = pool.workers()[n - 1].clone();
        let victim = members[0].clone();

        let estimator = scratch_estimator();
        let jury = Jury::new(members.clone());
        group.bench_with_input(BenchmarkId::new("scratch_dp", n), &jury, |b, jury| {
            b.iter(|| {
                // The from-scratch path must rebuild the whole DP for the
                // mutated jury.
                let mut candidate = jury.without(victim.id());
                candidate.push(outsider.clone());
                estimator.jq(&candidate, Prior::uniform())
            })
        });

        let mut engine = incremental_for(&pool, &members);
        group.bench_function(BenchmarkId::new("incremental", n), |b| {
            b.iter(|| {
                engine.swap_worker(&victim, &outsider).unwrap();
                let value = engine.jq();
                engine.swap_worker(&outsider, &victim).unwrap();
                value
            })
        });
    }
    group.finish();
}

/// One marginal-greedy round: score every pool member not already selected
/// as a single-worker extension of the current jury.
fn bench_greedy_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("incremental_greedy_round");
    group.sample_size(10);
    for &n in &[10usize, 50, 200] {
        let pool = random_pool(n, 13);
        let members: Vec<Worker> = pool.workers()[..n / 2].to_vec();
        let candidates: Vec<Worker> = pool.workers()[n / 2..].to_vec();

        let estimator = scratch_estimator();
        let jury = Jury::new(members.clone());
        group.bench_with_input(BenchmarkId::new("scratch_dp", n), &jury, |b, jury| {
            b.iter(|| {
                let mut best = f64::NEG_INFINITY;
                for worker in &candidates {
                    let value = estimator.jq(&jury.with_worker(worker.clone()), Prior::uniform());
                    best = best.max(value);
                }
                best
            })
        });

        let mut engine = incremental_for(&pool, &members);
        group.bench_function(BenchmarkId::new("incremental", n), |b| {
            b.iter(|| {
                let mut best = f64::NEG_INFINITY;
                for worker in &candidates {
                    engine.push_worker(worker);
                    best = best.max(engine.jq());
                    engine.pop_worker(worker).unwrap();
                }
                best
            })
        });
    }
    group.finish();
}

/// The same annealing-neighbour workload under both kernel modes: the
/// before/after evidence for the chunked split-at-offset window passes
/// (`vectorized`) vs the original element-at-a-time loops
/// (`scalar_reference`). The `perf_smoke` binary gates the same ratio in CI.
fn bench_kernel_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("incremental_kernel_mode");
    for &n in &[50usize, 200] {
        let pool = random_pool(n, 17);
        let members: Vec<Worker> = pool.workers()[..n / 2].to_vec();
        let outsider = pool.workers()[n - 1].clone();
        let victim = members[0].clone();
        for (label, kernel) in [
            ("vectorized", KernelMode::Vectorized),
            ("scalar_reference", KernelMode::ScalarReference),
        ] {
            let mut engine = IncrementalJq::for_pool(
                &pool,
                Prior::uniform(),
                IncrementalJqConfig::default()
                    .with_buckets(BucketCount::Fixed(NUM_BUCKETS))
                    .with_kernel_mode(kernel),
            );
            for worker in &members {
                engine.push_worker(worker);
            }
            group.bench_function(BenchmarkId::new(label, n), |b| {
                b.iter(|| {
                    engine.swap_worker(&victim, &outsider).unwrap();
                    let value = engine.jq();
                    engine.swap_worker(&outsider, &victim).unwrap();
                    value
                })
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // Keep the whole suite quick enough for CI while still giving stable numbers.
    config = Criterion::default()
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2))
        .sample_size(20);
    targets = bench_annealing_step, bench_greedy_round, bench_kernel_modes
}
criterion_main!(benches);
