//! Bayesian Voting (BV) — the optimal voting strategy (Theorem 1,
//! Corollary 1).
//!
//! BV computes the posterior probability of each answer given the observed
//! votes and the prior, and returns the answer with the larger posterior:
//!
//! * return `1` if `α · Pr(V | t = 0) < (1 − α) · Pr(V | t = 1)`,
//! * return `0` otherwise (ties go to `0`, matching Theorem 1's
//!   `P_0(V) − P_1(V) ≥ 0 ⇒ S*(V) = 0`).

use jury_model::{Answer, Jury, ModelResult, Prior};

use crate::strategy::{StrategyKind, VotingStrategy};

/// Bayesian Voting: the deterministic strategy that is optimal with respect
/// to Jury Quality among all deterministic and randomized strategies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BayesianVoting;

impl BayesianVoting {
    /// Creates the strategy.
    pub fn new() -> Self {
        BayesianVoting
    }

    /// The unnormalized posterior weights `(P_0(V), P_1(V))` of Theorem 1:
    /// `P_0(V) = α · Pr(V | t = 0)` and `P_1(V) = (1 − α) · Pr(V | t = 1)`.
    pub fn posterior_weights(
        jury: &Jury,
        votes: &[Answer],
        prior: Prior,
    ) -> ModelResult<(f64, f64)> {
        let p0 = prior.prob(Answer::No) * jury.voting_likelihood(votes, Answer::No)?;
        let p1 = prior.prob(Answer::Yes) * jury.voting_likelihood(votes, Answer::Yes)?;
        Ok((p0, p1))
    }

    /// The normalized posterior probability `Pr(t = 0 | V = V)`.
    ///
    /// When both unnormalized weights are zero (possible only with extreme
    /// priors or zero/one qualities) the prior's `α` is returned.
    pub fn posterior_no(jury: &Jury, votes: &[Answer], prior: Prior) -> ModelResult<f64> {
        let (p0, p1) = BayesianVoting::posterior_weights(jury, votes, prior)?;
        let z = p0 + p1;
        if z <= 0.0 {
            Ok(prior.alpha())
        } else {
            Ok(p0 / z)
        }
    }

    /// The deterministic BV result.
    pub fn result(jury: &Jury, votes: &[Answer], prior: Prior) -> ModelResult<Answer> {
        let (p0, p1) = BayesianVoting::posterior_weights(jury, votes, prior)?;
        Ok(if p0 < p1 { Answer::Yes } else { Answer::No })
    }
}

impl VotingStrategy for BayesianVoting {
    fn name(&self) -> &'static str {
        "BV"
    }

    fn kind(&self) -> StrategyKind {
        StrategyKind::Deterministic
    }

    fn prob_no(&self, jury: &Jury, votes: &[Answer], prior: Prior) -> ModelResult<f64> {
        Ok(
            if BayesianVoting::result(jury, votes, prior)? == Answer::No {
                1.0
            } else {
                0.0
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::majority::MajorityVoting;

    const N: Answer = Answer::No;
    const Y: Answer = Answer::Yes;

    #[test]
    fn bv_follows_the_posterior() {
        // Example from Section 3.3: α = 0.5, qualities 0.9, 0.6, 0.6 and
        // V = {0, 1, 1}. 0.5·0.9·0.4·0.4 > 0.5·0.1·0.6·0.6, so BV returns 0
        // while MV returns 1.
        let jury = Jury::from_qualities(&[0.9, 0.6, 0.6]).unwrap();
        let votes = [N, Y, Y];
        assert_eq!(
            BayesianVoting::result(&jury, &votes, Prior::uniform()).unwrap(),
            N
        );
        assert_eq!(MajorityVoting::result(&votes), Y);
    }

    #[test]
    fn bv_example_3_vote_100() {
        // Example 3: V = {1, 0, 0} with the same jury. The posterior weights
        // are 0.018 (t=0) and 0.072 (t=1), so BV answers 1.
        let jury = Jury::from_qualities(&[0.9, 0.6, 0.6]).unwrap();
        let votes = [Y, N, N];
        let (p0, p1) = BayesianVoting::posterior_weights(&jury, &votes, Prior::uniform()).unwrap();
        assert!((p0 - 0.018).abs() < 1e-12);
        assert!((p1 - 0.072).abs() < 1e-12);
        assert_eq!(
            BayesianVoting::result(&jury, &votes, Prior::uniform()).unwrap(),
            Y
        );
    }

    #[test]
    fn bv_ties_go_to_no() {
        // A single worker with quality 0.5 and a uniform prior gives equal
        // posteriors; Theorem 1 assigns the result 0 in that case.
        let jury = Jury::from_qualities(&[0.5]).unwrap();
        assert_eq!(
            BayesianVoting::result(&jury, &[Y], Prior::uniform()).unwrap(),
            N
        );
        assert_eq!(
            BayesianVoting::result(&jury, &[N], Prior::uniform()).unwrap(),
            N
        );
    }

    #[test]
    fn bv_uses_the_prior() {
        // A lone mediocre worker votes Yes, but a strong prior for No wins.
        let jury = Jury::from_qualities(&[0.6]).unwrap();
        let strong_no = Prior::new(0.9).unwrap();
        assert_eq!(BayesianVoting::result(&jury, &[Y], strong_no).unwrap(), N);
        // With a weak prior the vote wins.
        assert_eq!(
            BayesianVoting::result(&jury, &[Y], Prior::uniform()).unwrap(),
            Y
        );
    }

    #[test]
    fn bv_handles_adversarial_workers_natively() {
        // A worker with quality 0.1 voting Yes is strong evidence for No.
        let jury = Jury::from_qualities(&[0.1]).unwrap();
        assert_eq!(
            BayesianVoting::result(&jury, &[Y], Prior::uniform()).unwrap(),
            N
        );
        assert_eq!(
            BayesianVoting::result(&jury, &[N], Prior::uniform()).unwrap(),
            Y
        );
    }

    #[test]
    fn posterior_no_is_normalized() {
        let jury = Jury::from_qualities(&[0.8, 0.7]).unwrap();
        for votes in jury_model::enumerate_binary_votings(2) {
            let p = BayesianVoting::posterior_no(&jury, &votes, Prior::new(0.3).unwrap()).unwrap();
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn posterior_no_degenerate_case_falls_back_to_prior() {
        // Quality 1.0 workers disagreeing makes both likelihoods zero.
        let jury = Jury::from_qualities(&[1.0, 1.0]).unwrap();
        let p = BayesianVoting::posterior_no(&jury, &[N, Y], Prior::new(0.3).unwrap()).unwrap();
        assert!((p - 0.3).abs() < 1e-12);
    }

    #[test]
    fn prob_no_is_indicator() {
        let jury = Jury::from_qualities(&[0.9, 0.6, 0.6]).unwrap();
        let p = BayesianVoting
            .prob_no(&jury, &[N, Y, Y], Prior::uniform())
            .unwrap();
        assert_eq!(p, 1.0);
        let p = BayesianVoting
            .prob_no(&jury, &[Y, N, N], Prior::uniform())
            .unwrap();
        assert_eq!(p, 0.0);
    }

    #[test]
    fn metadata() {
        assert_eq!(BayesianVoting.name(), "BV");
        assert_eq!(BayesianVoting.kind(), StrategyKind::Deterministic);
    }
}
