//! The voting-strategy abstraction (Section 3.1).
//!
//! A voting strategy `S(V, J, α)` estimates the true answer of a task from
//! the prior, the jury, and the observed votes. The paper classifies
//! strategies as **deterministic** (the result is a function of the votes)
//! or **randomized** (the result is 0 with some probability `p` and 1 with
//! probability `1 − p`).
//!
//! The key quantity for jury-quality computation is
//! `h(V) = E[1_{S(V) = 0}]` — the probability that the strategy outputs `0`
//! on the observed voting `V`. For deterministic strategies `h(V) ∈ {0, 1}`;
//! for randomized strategies `h(V) ∈ [0, 1]`. Every strategy in this crate
//! exposes `h` through [`VotingStrategy::prob_no`], which is what
//! `jury-jq`'s exact JQ computation (Definition 3) consumes.

use rand::RngCore;

use jury_model::{Answer, Jury, ModelResult, Prior};

/// Whether a strategy involves randomness in producing its result
/// (Definitions 1 and 2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StrategyKind {
    /// The result is a deterministic function of `(V, J, α)`.
    Deterministic,
    /// The result is `0` with probability `p(V, J, α)` and `1` otherwise.
    Randomized,
}

impl std::fmt::Display for StrategyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StrategyKind::Deterministic => write!(f, "deterministic"),
            StrategyKind::Randomized => write!(f, "randomized"),
        }
    }
}

/// A voting strategy for binary decision-making tasks.
///
/// Implementations must be consistent: [`VotingStrategy::decide`] must return
/// `Answer::No` with exactly the probability reported by
/// [`VotingStrategy::prob_no`].
pub trait VotingStrategy: Send + Sync {
    /// A short human-readable name (e.g. `"MV"`, `"BV"`).
    fn name(&self) -> &'static str;

    /// Whether the strategy is deterministic or randomized.
    fn kind(&self) -> StrategyKind;

    /// `h(V) = E[1_{S(V)=0}]`: the probability that the strategy returns the
    /// answer `0` (`No`) given the observed voting.
    ///
    /// The votes must be aligned with the jury's workers (one vote per
    /// juror, in order).
    fn prob_no(&self, jury: &Jury, votes: &[Answer], prior: Prior) -> ModelResult<f64>;

    /// Draws a concrete result. Deterministic strategies ignore the RNG.
    fn decide(
        &self,
        jury: &Jury,
        votes: &[Answer],
        prior: Prior,
        rng: &mut dyn RngCore,
    ) -> ModelResult<Answer> {
        let p = self.prob_no(jury, votes, prior)?;
        if p >= 1.0 {
            return Ok(Answer::No);
        }
        if p <= 0.0 {
            return Ok(Answer::Yes);
        }
        // Draw a uniform sample in [0, 1) from the raw RNG so the trait stays
        // object-safe (no generic Rng parameter).
        let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        Ok(if u < p { Answer::No } else { Answer::Yes })
    }

    /// Convenience wrapper asserting the strategy is deterministic and
    /// returning its (unique) decision.
    fn decide_deterministic(
        &self,
        jury: &Jury,
        votes: &[Answer],
        prior: Prior,
    ) -> ModelResult<Answer> {
        debug_assert_eq!(
            self.kind(),
            StrategyKind::Deterministic,
            "decide_deterministic called on a randomized strategy"
        );
        let p = self.prob_no(jury, votes, prior)?;
        Ok(if p >= 0.5 { Answer::No } else { Answer::Yes })
    }
}

/// Counts the `No` votes in a voting — the quantity `Σ (1 − v_i)` used by
/// majority-style strategies.
pub fn count_no(votes: &[Answer]) -> usize {
    votes.iter().filter(|v| **v == Answer::No).count()
}

/// Counts the `Yes` votes in a voting.
pub fn count_yes(votes: &[Answer]) -> usize {
    votes.len() - count_no(votes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A trivial strategy that always answers `No`, used to exercise the
    /// default `decide` implementations.
    struct AlwaysNo;

    impl VotingStrategy for AlwaysNo {
        fn name(&self) -> &'static str {
            "AlwaysNo"
        }
        fn kind(&self) -> StrategyKind {
            StrategyKind::Deterministic
        }
        fn prob_no(&self, _jury: &Jury, _votes: &[Answer], _prior: Prior) -> ModelResult<f64> {
            Ok(1.0)
        }
    }

    /// A fair-coin strategy, used to exercise the randomized path.
    struct Coin;

    impl VotingStrategy for Coin {
        fn name(&self) -> &'static str {
            "Coin"
        }
        fn kind(&self) -> StrategyKind {
            StrategyKind::Randomized
        }
        fn prob_no(&self, _jury: &Jury, _votes: &[Answer], _prior: Prior) -> ModelResult<f64> {
            Ok(0.5)
        }
    }

    #[test]
    fn counting_helpers() {
        let votes = [Answer::No, Answer::Yes, Answer::No];
        assert_eq!(count_no(&votes), 2);
        assert_eq!(count_yes(&votes), 1);
        assert_eq!(count_no(&[]), 0);
    }

    #[test]
    fn default_decide_respects_certainty() {
        let jury = Jury::from_qualities(&[0.9]).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let d = AlwaysNo
            .decide(&jury, &[Answer::Yes], Prior::uniform(), &mut rng)
            .unwrap();
        assert_eq!(d, Answer::No);
        assert_eq!(
            AlwaysNo
                .decide_deterministic(&jury, &[Answer::Yes], Prior::uniform())
                .unwrap(),
            Answer::No
        );
    }

    #[test]
    fn default_decide_samples_randomized_strategies() {
        let jury = Jury::from_qualities(&[0.9]).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let mut nos = 0;
        let trials = 4000;
        for _ in 0..trials {
            if Coin
                .decide(&jury, &[Answer::Yes], Prior::uniform(), &mut rng)
                .unwrap()
                == Answer::No
            {
                nos += 1;
            }
        }
        let freq = nos as f64 / trials as f64;
        assert!(
            (freq - 0.5).abs() < 0.05,
            "coin frequency {freq} far from 0.5"
        );
    }

    #[test]
    fn kind_display() {
        assert_eq!(StrategyKind::Deterministic.to_string(), "deterministic");
        assert_eq!(StrategyKind::Randomized.to_string(), "randomized");
    }
}
