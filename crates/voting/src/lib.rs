//! # jury-voting
//!
//! Voting strategies for crowdsourced decision-making and multiple-choice
//! tasks, reproducing the strategy catalogue of *"On Optimality of Jury
//! Selection in Crowdsourcing"* (EDBT 2015, Table 2 and Section 3).
//!
//! A [`VotingStrategy`] aggregates a jury's votes (plus the task prior) into
//! an estimate of the task's true answer. Strategies are classified as
//! deterministic or randomized ([`StrategyKind`]); the quantity consumed by
//! jury-quality computation is `h(V) = Pr(S(V) = 0)`, exposed as
//! [`VotingStrategy::prob_no`].
//!
//! Implemented strategies:
//!
//! | Deterministic | Randomized |
//! |---|---|
//! | [`MajorityVoting`] (MV) | [`RandomizedMajorityVoting`] (RMV) |
//! | [`HalfVoting`] | [`RandomBallotVoting`] (RBV) |
//! | [`BayesianVoting`] (BV, the optimal strategy) | [`TriadicConsensus`] |
//! | [`WeightedMajorityVoting`] | [`RandomizedWeightedMajorityVoting`] |
//!
//! Section 7's multi-class extension is covered by
//! [`MultiClassVotingStrategy`], [`PluralityVoting`], and
//! [`BayesianMultiClassVoting`].
//!
//! ```
//! use jury_model::{Answer, Jury, Prior};
//! use jury_voting::{BayesianVoting, MajorityVoting};
//!
//! // Section 3.3's example: α = 0.5, qualities 0.9, 0.6, 0.6, votes {0,1,1}.
//! let jury = Jury::from_qualities(&[0.9, 0.6, 0.6]).unwrap();
//! let votes = [Answer::No, Answer::Yes, Answer::Yes];
//!
//! // MV follows the two low-quality workers; BV follows the strong one.
//! assert_eq!(MajorityVoting::result(&votes), Answer::Yes);
//! assert_eq!(
//!     BayesianVoting::result(&jury, &votes, Prior::uniform()).unwrap(),
//!     Answer::No
//! );
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bayesian;
pub mod catalogue;
pub mod majority;
pub mod multiclass;
pub mod randomized;
pub mod strategy;
pub mod triadic;
pub mod weighted;

pub use bayesian::BayesianVoting;
pub use catalogue::{all_strategies, by_name, figure8_strategies, CatalogueEntry};
pub use majority::{HalfVoting, MajorityVoting};
pub use multiclass::{BayesianMultiClassVoting, MultiClassVotingStrategy, PluralityVoting};
pub use randomized::{RandomBallotVoting, RandomizedMajorityVoting};
pub use strategy::{count_no, count_yes, StrategyKind, VotingStrategy};
pub use triadic::TriadicConsensus;
pub use weighted::{RandomizedWeightedMajorityVoting, WeightedMajorityVoting};

#[cfg(test)]
mod proptests {
    use super::*;
    use jury_model::{enumerate_binary_votings, Answer, Jury, Prior};
    use proptest::prelude::*;

    fn jury_strategy() -> impl Strategy<Value = Vec<f64>> {
        proptest::collection::vec(
            (0.0f64..=1.0).prop_map(|q| (q * 100.0).round() / 100.0),
            1..6,
        )
    }

    proptest! {
        /// h(V) is a probability for every strategy, every jury, and every
        /// voting — the basic requirement Definition 3 relies on.
        #[test]
        fn prob_no_is_always_a_probability(
            qualities in jury_strategy(),
            alpha in 0.0f64..=1.0,
        ) {
            let jury = Jury::from_qualities(&qualities).unwrap();
            let prior = Prior::new(alpha).unwrap();
            for entry in all_strategies() {
                for votes in enumerate_binary_votings(jury.size()) {
                    let p = entry.strategy.prob_no(&jury, &votes, prior).unwrap();
                    prop_assert!((0.0..=1.0).contains(&p),
                        "{} returned {p} on {votes:?}", entry.name());
                }
            }
        }

        /// Deterministic strategies report h(V) ∈ {0, 1}.
        #[test]
        fn deterministic_strategies_are_indicators(qualities in jury_strategy()) {
            let jury = Jury::from_qualities(&qualities).unwrap();
            for entry in all_strategies() {
                if entry.kind != StrategyKind::Deterministic {
                    continue;
                }
                for votes in enumerate_binary_votings(jury.size()) {
                    let p = entry.strategy.prob_no(&jury, &votes, Prior::uniform()).unwrap();
                    prop_assert!(p == 0.0 || p == 1.0,
                        "{} returned non-indicator {p}", entry.name());
                }
            }
        }

        /// Flipping every vote and the prior flips BV's answer (label
        /// symmetry of the Bayes rule) except in exact ties.
        #[test]
        fn bv_is_label_symmetric(qualities in jury_strategy(), alpha in 0.01f64..0.99) {
            let jury = Jury::from_qualities(&qualities).unwrap();
            let prior = Prior::new(alpha).unwrap();
            let flipped_prior = Prior::new(1.0 - alpha).unwrap();
            for votes in enumerate_binary_votings(jury.size()) {
                let flipped: Vec<Answer> = votes.iter().map(|v| v.flip()).collect();
                let (p0, p1) = BayesianVoting::posterior_weights(&jury, &votes, prior).unwrap();
                if (p0 - p1).abs() < 1e-12 {
                    continue; // ties break asymmetrically by design
                }
                let a = BayesianVoting::result(&jury, &votes, prior).unwrap();
                let b = BayesianVoting::result(&jury, &flipped, flipped_prior).unwrap();
                prop_assert_eq!(a.flip(), b);
            }
        }
    }
}
