//! Voting strategies for multiple-choice tasks under the confusion-matrix
//! worker model (Section 7 of the paper).
//!
//! The optimal strategy generalizes directly: Bayesian Voting picks the label
//! `t*` maximizing the posterior `α_{t'} · Pr(V | t = t')` (Equation 10).
//! Plurality Voting — the multi-class analogue of Majority Voting — picks the
//! label with the most votes and is the natural baseline.

use jury_model::{CategoricalPrior, Label, MatrixJury, ModelError, ModelResult};

use crate::strategy::StrategyKind;

/// A voting strategy for multiple-choice tasks.
///
/// `prob_label` is the multi-class analogue of
/// [`crate::strategy::VotingStrategy::prob_no`]: the probability that the
/// strategy outputs `target` given the observed voting. The vector
/// `(prob_label(V, 0), ..., prob_label(V, ℓ-1))` is a distribution for every
/// voting `V` (Section 7, "defines a discrete probability distribution").
pub trait MultiClassVotingStrategy: Send + Sync {
    /// A short human-readable name.
    fn name(&self) -> &'static str;

    /// Whether the strategy is deterministic or randomized.
    fn kind(&self) -> StrategyKind;

    /// `E[1_{S(V)=target}]`: probability the strategy outputs `target`.
    fn prob_label(
        &self,
        jury: &MatrixJury,
        votes: &[Label],
        prior: &CategoricalPrior,
        target: Label,
    ) -> ModelResult<f64>;

    /// The most likely output label (ties broken towards the smaller label).
    fn decide(
        &self,
        jury: &MatrixJury,
        votes: &[Label],
        prior: &CategoricalPrior,
    ) -> ModelResult<Label> {
        let mut best = Label(0);
        let mut best_p = -1.0;
        for t in 0..jury.num_choices() {
            let p = self.prob_label(jury, votes, prior, Label(t))?;
            if p > best_p + 1e-15 {
                best_p = p;
                best = Label(t);
            }
        }
        Ok(best)
    }
}

fn check_inputs(jury: &MatrixJury, votes: &[Label], prior: &CategoricalPrior) -> ModelResult<()> {
    if votes.len() != jury.size() {
        return Err(ModelError::VoteCountMismatch {
            votes: votes.len(),
            jurors: jury.size(),
        });
    }
    if prior.num_choices() != jury.num_choices() {
        return Err(ModelError::InvalidPriorVector {
            reason: format!(
                "prior has {} classes but the jury votes over {}",
                prior.num_choices(),
                jury.num_choices()
            ),
        });
    }
    for &v in votes {
        v.validate(jury.num_choices())?;
    }
    Ok(())
}

/// Plurality Voting: the label with the most votes wins; ties are broken
/// towards the smaller label index. The multi-class counterpart of MV.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PluralityVoting;

impl PluralityVoting {
    /// Creates the strategy.
    pub fn new() -> Self {
        PluralityVoting
    }

    /// The winning label of a voting over `num_choices` labels.
    pub fn result(votes: &[Label], num_choices: usize) -> Label {
        let mut counts = vec![0usize; num_choices];
        for &v in votes {
            if v.index() < num_choices {
                counts[v.index()] += 1;
            }
        }
        let mut best = 0usize;
        for (i, &c) in counts.iter().enumerate() {
            if c > counts[best] {
                best = i;
            }
        }
        Label(best)
    }
}

impl MultiClassVotingStrategy for PluralityVoting {
    fn name(&self) -> &'static str {
        "Plurality"
    }

    fn kind(&self) -> StrategyKind {
        StrategyKind::Deterministic
    }

    fn prob_label(
        &self,
        jury: &MatrixJury,
        votes: &[Label],
        prior: &CategoricalPrior,
        target: Label,
    ) -> ModelResult<f64> {
        check_inputs(jury, votes, prior)?;
        Ok(
            if PluralityVoting::result(votes, jury.num_choices()) == target {
                1.0
            } else {
                0.0
            },
        )
    }
}

/// Multi-class Bayesian Voting (Equation 10): picks
/// `argmax_{t'} α_{t'} · Pr(V | t = t')`, ties broken towards the smaller
/// label.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BayesianMultiClassVoting;

impl BayesianMultiClassVoting {
    /// Creates the strategy.
    pub fn new() -> Self {
        BayesianMultiClassVoting
    }

    /// The unnormalized posterior weights `α_{t'} · Pr(V | t = t')` for every
    /// label.
    pub fn posterior_weights(
        jury: &MatrixJury,
        votes: &[Label],
        prior: &CategoricalPrior,
    ) -> ModelResult<Vec<f64>> {
        check_inputs(jury, votes, prior)?;
        (0..jury.num_choices())
            .map(|t| Ok(prior.prob(Label(t)) * jury.voting_likelihood(votes, Label(t))?))
            .collect()
    }

    /// The deterministic result of the strategy.
    pub fn result(
        jury: &MatrixJury,
        votes: &[Label],
        prior: &CategoricalPrior,
    ) -> ModelResult<Label> {
        let weights = BayesianMultiClassVoting::posterior_weights(jury, votes, prior)?;
        let mut best = 0usize;
        for (i, &w) in weights.iter().enumerate() {
            if w > weights[best] {
                best = i;
            }
        }
        Ok(Label(best))
    }
}

impl MultiClassVotingStrategy for BayesianMultiClassVoting {
    fn name(&self) -> &'static str {
        "BV-multi"
    }

    fn kind(&self) -> StrategyKind {
        StrategyKind::Deterministic
    }

    fn prob_label(
        &self,
        jury: &MatrixJury,
        votes: &[Label],
        prior: &CategoricalPrior,
        target: Label,
    ) -> ModelResult<f64> {
        Ok(
            if BayesianMultiClassVoting::result(jury, votes, prior)? == target {
                1.0
            } else {
                0.0
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jury_model::{Jury, Prior};

    use crate::bayesian::BayesianVoting;

    #[test]
    fn plurality_counts_votes() {
        let votes = [Label(2), Label(0), Label(2), Label(1)];
        assert_eq!(PluralityVoting::result(&votes, 3), Label(2));
        // Ties go to the smaller label.
        assert_eq!(PluralityVoting::result(&[Label(1), Label(0)], 3), Label(0));
        assert_eq!(PluralityVoting::result(&[], 3), Label(0));
    }

    #[test]
    fn plurality_prob_label_is_indicator() {
        let jury = MatrixJury::from_qualities(&[0.8, 0.6, 0.6], 3).unwrap();
        let prior = CategoricalPrior::uniform(3).unwrap();
        let votes = [Label(1), Label(1), Label(2)];
        let p1 = PluralityVoting
            .prob_label(&jury, &votes, &prior, Label(1))
            .unwrap();
        let p2 = PluralityVoting
            .prob_label(&jury, &votes, &prior, Label(2))
            .unwrap();
        assert_eq!((p1, p2), (1.0, 0.0));
        assert_eq!(
            PluralityVoting.decide(&jury, &votes, &prior).unwrap(),
            Label(1)
        );
    }

    #[test]
    fn bayesian_multiclass_prefers_strong_worker() {
        // One 0.9 worker voting label 0 against two 0.6 workers voting
        // label 1 — the Bayesian strategy follows the strong worker, exactly
        // like the binary Example in Section 3.3.
        let jury = MatrixJury::from_qualities(&[0.9, 0.6, 0.6], 2).unwrap();
        let prior = CategoricalPrior::uniform(2).unwrap();
        let votes = [Label(0), Label(1), Label(1)];
        assert_eq!(
            BayesianMultiClassVoting::result(&jury, &votes, &prior).unwrap(),
            Label(0)
        );
        assert_eq!(PluralityVoting::result(&votes, 2), Label(1));
    }

    #[test]
    fn bayesian_multiclass_agrees_with_binary_bv_on_two_classes() {
        let qualities = [0.85, 0.7, 0.6, 0.55];
        let matrix_jury = MatrixJury::from_qualities(&qualities, 2).unwrap();
        let binary_jury = Jury::from_qualities(&qualities).unwrap();
        let prior2 = CategoricalPrior::new(vec![0.3, 0.7]).unwrap();
        let prior_bin = Prior::new(0.3).unwrap();
        for votes in jury_model::enumerate_binary_votings(qualities.len()) {
            let labels: Vec<Label> = votes.iter().map(|a| a.to_label()).collect();
            let multi = BayesianMultiClassVoting::result(&matrix_jury, &labels, &prior2).unwrap();
            let binary = BayesianVoting::result(&binary_jury, &votes, prior_bin).unwrap();
            assert_eq!(multi.index(), binary.as_index(), "disagree on {votes:?}");
        }
    }

    #[test]
    fn bayesian_multiclass_uses_prior() {
        let jury = MatrixJury::from_qualities(&[0.4], 3).unwrap();
        // A weak worker votes label 2, but the prior overwhelmingly favours 0.
        let prior = CategoricalPrior::new(vec![0.9, 0.05, 0.05]).unwrap();
        let result = BayesianMultiClassVoting::result(&jury, &[Label(2)], &prior).unwrap();
        assert_eq!(result, Label(0));
    }

    #[test]
    fn posterior_weights_shape() {
        let jury = MatrixJury::from_qualities(&[0.8, 0.7], 3).unwrap();
        let prior = CategoricalPrior::uniform(3).unwrap();
        let w = BayesianMultiClassVoting::posterior_weights(&jury, &[Label(0), Label(0)], &prior)
            .unwrap();
        assert_eq!(w.len(), 3);
        assert!(w[0] > w[1] && w[0] > w[2]);
        // Labels 1 and 2 are symmetric for the symmetric confusion matrix.
        assert!((w[1] - w[2]).abs() < 1e-12);
    }

    #[test]
    fn input_validation() {
        let jury = MatrixJury::from_qualities(&[0.8, 0.7], 3).unwrap();
        let prior3 = CategoricalPrior::uniform(3).unwrap();
        let prior2 = CategoricalPrior::uniform(2).unwrap();
        assert!(PluralityVoting
            .prob_label(&jury, &[Label(0)], &prior3, Label(0))
            .is_err());
        assert!(PluralityVoting
            .prob_label(&jury, &[Label(0), Label(0)], &prior2, Label(0))
            .is_err());
        assert!(BayesianMultiClassVoting
            .prob_label(&jury, &[Label(0), Label(5)], &prior3, Label(0))
            .is_err());
    }

    #[test]
    fn metadata() {
        assert_eq!(PluralityVoting.name(), "Plurality");
        assert_eq!(PluralityVoting.kind(), StrategyKind::Deterministic);
        assert_eq!(BayesianMultiClassVoting.name(), "BV-multi");
        assert_eq!(BayesianMultiClassVoting.kind(), StrategyKind::Deterministic);
    }
}
