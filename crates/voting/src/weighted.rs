//! Weighted majority strategies (cited as \[23\] in the paper's Table 2):
//! Weighted Majority Voting and its randomized counterpart.
//!
//! Each vote is weighted by the worker's log-odds `φ(q) = ln(q / (1 − q))`
//! (votes of workers with `q < 0.5` are reinterpreted as the opposite vote
//! with weight `φ(1 − q)`, per Section 3.3). Weighted MV with these weights
//! and a uniform prior coincides with Bayesian Voting; with a non-uniform
//! prior it differs because it ignores the prior — a distinction exercised
//! in the tests.

use jury_model::{Answer, Jury, ModelResult, Prior};

use crate::strategy::{StrategyKind, VotingStrategy};

/// Splits the total log-odds weight of a voting into the weight supporting
/// `No` and the weight supporting `Yes`, applying the low-quality
/// reinterpretation.
fn weight_split(jury: &Jury, votes: &[Answer]) -> ModelResult<(f64, f64)> {
    jury.check_voting(votes)?;
    let mut weight_no = 0.0;
    let mut weight_yes = 0.0;
    for (worker, &vote) in jury.workers().iter().zip(votes.iter()) {
        let weight = worker.log_odds();
        // An adversarial worker's vote counts for the opposite answer.
        let effective_vote = if worker.is_adversarial() {
            vote.flip()
        } else {
            vote
        };
        match effective_vote {
            Answer::No => weight_no += weight,
            Answer::Yes => weight_yes += weight,
        }
    }
    Ok((weight_no, weight_yes))
}

/// Weighted Majority Voting: the result is the answer with the larger total
/// log-odds weight; ties go to `0` (as in Theorem 1).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WeightedMajorityVoting;

impl WeightedMajorityVoting {
    /// Creates the strategy.
    pub fn new() -> Self {
        WeightedMajorityVoting
    }

    /// The deterministic result on a voting.
    pub fn result(jury: &Jury, votes: &[Answer]) -> ModelResult<Answer> {
        let (weight_no, weight_yes) = weight_split(jury, votes)?;
        Ok(if weight_no >= weight_yes {
            Answer::No
        } else {
            Answer::Yes
        })
    }
}

impl VotingStrategy for WeightedMajorityVoting {
    fn name(&self) -> &'static str {
        "WMV"
    }

    fn kind(&self) -> StrategyKind {
        StrategyKind::Deterministic
    }

    fn prob_no(&self, jury: &Jury, votes: &[Answer], _prior: Prior) -> ModelResult<f64> {
        Ok(
            if WeightedMajorityVoting::result(jury, votes)? == Answer::No {
                1.0
            } else {
                0.0
            },
        )
    }
}

/// Randomized Weighted Majority Voting: returns `0` with probability equal
/// to the share of the total weight supporting `0`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RandomizedWeightedMajorityVoting;

impl RandomizedWeightedMajorityVoting {
    /// Creates the strategy.
    pub fn new() -> Self {
        RandomizedWeightedMajorityVoting
    }
}

impl VotingStrategy for RandomizedWeightedMajorityVoting {
    fn name(&self) -> &'static str {
        "RWMV"
    }

    fn kind(&self) -> StrategyKind {
        StrategyKind::Randomized
    }

    fn prob_no(&self, jury: &Jury, votes: &[Answer], _prior: Prior) -> ModelResult<f64> {
        let (weight_no, weight_yes) = weight_split(jury, votes)?;
        let total = weight_no + weight_yes;
        if total <= 0.0 {
            // All workers have quality exactly 0.5: no information.
            return Ok(0.5);
        }
        Ok(weight_no / total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bayesian::BayesianVoting;

    const N: Answer = Answer::No;
    const Y: Answer = Answer::Yes;

    #[test]
    fn wmv_prefers_high_quality_workers() {
        // One 0.9 worker voting No outweighs two 0.6 workers voting Yes,
        // because φ(0.9) ≈ 2.197 > 2·φ(0.6) ≈ 0.811.
        let jury = Jury::from_qualities(&[0.9, 0.6, 0.6]).unwrap();
        assert_eq!(
            WeightedMajorityVoting::result(&jury, &[N, Y, Y]).unwrap(),
            N
        );
        // Three 0.6 workers outweigh nobody: all-Yes wins.
        assert_eq!(
            WeightedMajorityVoting::result(&jury, &[Y, Y, Y]).unwrap(),
            Y
        );
    }

    #[test]
    fn wmv_matches_bv_under_uniform_prior() {
        let jury = Jury::from_qualities(&[0.85, 0.7, 0.6, 0.55]).unwrap();
        for votes in jury_model::enumerate_binary_votings(jury.size()) {
            let wmv = WeightedMajorityVoting::result(&jury, &votes).unwrap();
            let bv = BayesianVoting::result(&jury, &votes, Prior::uniform()).unwrap();
            assert_eq!(wmv, bv, "WMV and BV disagree on {votes:?}");
        }
    }

    #[test]
    fn wmv_ignores_the_prior_unlike_bv() {
        let jury = Jury::from_qualities(&[0.6]).unwrap();
        let strong_no = Prior::new(0.95).unwrap();
        // BV follows the prior; WMV follows the single vote.
        assert_eq!(BayesianVoting::result(&jury, &[Y], strong_no).unwrap(), N);
        assert_eq!(
            WeightedMajorityVoting
                .decide_deterministic(&jury, &[Y], strong_no)
                .unwrap(),
            Y
        );
    }

    #[test]
    fn wmv_reinterprets_adversarial_workers() {
        // A 0.1-quality worker voting Yes is treated as a 0.9-quality worker
        // voting No.
        let jury = Jury::from_qualities(&[0.1, 0.6]).unwrap();
        assert_eq!(WeightedMajorityVoting::result(&jury, &[Y, Y]).unwrap(), N);
    }

    #[test]
    fn rwmv_probability_is_weight_share() {
        let jury = Jury::from_qualities(&[0.9, 0.6]).unwrap();
        let w_strong = jury.workers()[0].log_odds();
        let w_weak = jury.workers()[1].log_odds();
        let p = RandomizedWeightedMajorityVoting
            .prob_no(&jury, &[N, Y], Prior::uniform())
            .unwrap();
        assert!((p - w_strong / (w_strong + w_weak)).abs() < 1e-12);
    }

    #[test]
    fn rwmv_uninformative_jury_is_a_coin() {
        let jury = Jury::from_qualities(&[0.5, 0.5]).unwrap();
        let p = RandomizedWeightedMajorityVoting
            .prob_no(&jury, &[N, Y], Prior::uniform())
            .unwrap();
        assert!((p - 0.5).abs() < 1e-12);
    }

    #[test]
    fn metadata() {
        assert_eq!(WeightedMajorityVoting.name(), "WMV");
        assert_eq!(WeightedMajorityVoting.kind(), StrategyKind::Deterministic);
        assert_eq!(RandomizedWeightedMajorityVoting.name(), "RWMV");
        assert_eq!(
            RandomizedWeightedMajorityVoting.kind(),
            StrategyKind::Randomized
        );
    }
}
