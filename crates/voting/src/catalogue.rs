//! The catalogue of voting strategies (the paper's Table 2).
//!
//! Provides boxed instances of every binary strategy implemented in this
//! crate, together with the deterministic/randomized classification, so that
//! the experiments comparing strategies (Figure 8) can iterate over the
//! whole table.

use crate::bayesian::BayesianVoting;
use crate::majority::{HalfVoting, MajorityVoting};
use crate::randomized::{RandomBallotVoting, RandomizedMajorityVoting};
use crate::strategy::{StrategyKind, VotingStrategy};
use crate::triadic::TriadicConsensus;
use crate::weighted::{RandomizedWeightedMajorityVoting, WeightedMajorityVoting};

/// A named entry of the strategy catalogue.
pub struct CatalogueEntry {
    /// The strategy instance.
    pub strategy: Box<dyn VotingStrategy>,
    /// The column of Table 2 the strategy belongs to.
    pub kind: StrategyKind,
}

impl CatalogueEntry {
    fn new(strategy: Box<dyn VotingStrategy>) -> Self {
        let kind = strategy.kind();
        CatalogueEntry { strategy, kind }
    }

    /// The strategy's short name.
    pub fn name(&self) -> &'static str {
        self.strategy.name()
    }
}

/// Every binary voting strategy implemented in this crate, mirroring the
/// paper's Table 2: MV, Half Voting, BV, Weighted MV (deterministic) and
/// RMV, Random Ballot, Triadic Consensus, Randomized Weighted MV
/// (randomized).
pub fn all_strategies() -> Vec<CatalogueEntry> {
    vec![
        CatalogueEntry::new(Box::new(MajorityVoting::new())),
        CatalogueEntry::new(Box::new(HalfVoting::new())),
        CatalogueEntry::new(Box::new(BayesianVoting::new())),
        CatalogueEntry::new(Box::new(WeightedMajorityVoting::new())),
        CatalogueEntry::new(Box::new(RandomizedMajorityVoting::new())),
        CatalogueEntry::new(Box::new(RandomBallotVoting::new())),
        CatalogueEntry::new(Box::new(TriadicConsensus::new())),
        CatalogueEntry::new(Box::new(RandomizedWeightedMajorityVoting::new())),
    ]
}

/// The four strategies compared in the paper's Figure 8: MV, BV, RBV, RMV.
pub fn figure8_strategies() -> Vec<Box<dyn VotingStrategy>> {
    vec![
        Box::new(MajorityVoting::new()),
        Box::new(BayesianVoting::new()),
        Box::new(RandomBallotVoting::new()),
        Box::new(RandomizedMajorityVoting::new()),
    ]
}

/// Looks up a strategy by its short name (case-insensitive).
pub fn by_name(name: &str) -> Option<Box<dyn VotingStrategy>> {
    match name.to_ascii_lowercase().as_str() {
        "mv" => Some(Box::new(MajorityVoting::new())),
        "halfvoting" | "half" => Some(Box::new(HalfVoting::new())),
        "bv" => Some(Box::new(BayesianVoting::new())),
        "wmv" => Some(Box::new(WeightedMajorityVoting::new())),
        "rmv" => Some(Box::new(RandomizedMajorityVoting::new())),
        "rbv" => Some(Box::new(RandomBallotVoting::new())),
        "triadic" => Some(Box::new(TriadicConsensus::new())),
        "rwmv" => Some(Box::new(RandomizedWeightedMajorityVoting::new())),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn catalogue_mirrors_table_2() {
        let entries = all_strategies();
        assert_eq!(entries.len(), 8);
        let deterministic: Vec<&str> = entries
            .iter()
            .filter(|e| e.kind == StrategyKind::Deterministic)
            .map(|e| e.name())
            .collect();
        let randomized: Vec<&str> = entries
            .iter()
            .filter(|e| e.kind == StrategyKind::Randomized)
            .map(|e| e.name())
            .collect();
        assert_eq!(deterministic.len(), 4);
        assert_eq!(randomized.len(), 4);
        assert!(deterministic.contains(&"MV"));
        assert!(deterministic.contains(&"BV"));
        assert!(randomized.contains(&"RMV"));
        assert!(randomized.contains(&"RBV"));
    }

    #[test]
    fn names_are_unique() {
        let names: HashSet<&str> = all_strategies().iter().map(|e| e.name()).collect();
        assert_eq!(names.len(), 8);
    }

    #[test]
    fn figure8_has_the_four_paper_strategies() {
        let names: Vec<&str> = figure8_strategies().iter().map(|s| s.name()).collect();
        assert_eq!(names, vec!["MV", "BV", "RBV", "RMV"]);
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(by_name("bv").unwrap().name(), "BV");
        assert_eq!(by_name("BV").unwrap().name(), "BV");
        assert_eq!(by_name("triadic").unwrap().name(), "Triadic");
        assert_eq!(by_name("half").unwrap().name(), "HalfVoting");
        assert!(by_name("unknown").is_none());
    }

    #[test]
    fn entry_kind_matches_strategy_kind() {
        for entry in all_strategies() {
            assert_eq!(entry.kind, entry.strategy.kind());
        }
    }
}
