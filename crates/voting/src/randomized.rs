//! Randomized voting strategies: Randomized Majority Voting (RMV) and Random
//! Ballot Voting (RBV).
//!
//! Randomized strategies return each answer with some probability
//! (Definition 2). They are introduced in the literature to improve
//! worst-case error bounds; the paper's Figure 8 compares their JQ against
//! the deterministic strategies and shows they are dominated by BV.

use jury_model::{Answer, Jury, ModelResult, Prior};

use crate::strategy::{count_no, StrategyKind, VotingStrategy};

/// Randomized Majority Voting (Example 1): returns `0` with probability
/// proportional to the number of `0` votes, `p = (1/n) Σ (1 − v_i)`, and `1`
/// with probability `1 − p`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RandomizedMajorityVoting;

impl RandomizedMajorityVoting {
    /// Creates the strategy.
    pub fn new() -> Self {
        RandomizedMajorityVoting
    }
}

impl VotingStrategy for RandomizedMajorityVoting {
    fn name(&self) -> &'static str {
        "RMV"
    }

    fn kind(&self) -> StrategyKind {
        StrategyKind::Randomized
    }

    fn prob_no(&self, jury: &Jury, votes: &[Answer], _prior: Prior) -> ModelResult<f64> {
        jury.check_voting(votes)?;
        if votes.is_empty() {
            // No information: fair coin, consistent with RBV.
            return Ok(0.5);
        }
        Ok(count_no(votes) as f64 / votes.len() as f64)
    }
}

/// Random Ballot Voting (cited as \[33\]): the result is picked uniformly at
/// random, ignoring the votes entirely — the paper's Section 6.1.4 footnote
/// describes it as "randomly returns 0 or 1 with 50%". Its JQ is always 50 %
/// under a uniform prior, which is exactly the flat line of Figure 8.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RandomBallotVoting;

impl RandomBallotVoting {
    /// Creates the strategy.
    pub fn new() -> Self {
        RandomBallotVoting
    }
}

impl VotingStrategy for RandomBallotVoting {
    fn name(&self) -> &'static str {
        "RBV"
    }

    fn kind(&self) -> StrategyKind {
        StrategyKind::Randomized
    }

    fn prob_no(&self, jury: &Jury, votes: &[Answer], _prior: Prior) -> ModelResult<f64> {
        jury.check_voting(votes)?;
        Ok(0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const N: Answer = Answer::No;
    const Y: Answer = Answer::Yes;

    #[test]
    fn rmv_probability_is_vote_share() {
        let jury = Jury::from_qualities(&[0.9, 0.6, 0.6, 0.7]).unwrap();
        let p = RandomizedMajorityVoting
            .prob_no(&jury, &[N, N, Y, Y], Prior::uniform())
            .unwrap();
        assert!((p - 0.5).abs() < 1e-12);
        let p = RandomizedMajorityVoting
            .prob_no(&jury, &[N, N, N, Y], Prior::uniform())
            .unwrap();
        assert!((p - 0.75).abs() < 1e-12);
        let p = RandomizedMajorityVoting
            .prob_no(&jury, &[Y, Y, Y, Y], Prior::uniform())
            .unwrap();
        assert_eq!(p, 0.0);
    }

    #[test]
    fn rmv_empty_jury_is_a_coin() {
        let jury = Jury::empty();
        let p = RandomizedMajorityVoting
            .prob_no(&jury, &[], Prior::uniform())
            .unwrap();
        assert!((p - 0.5).abs() < 1e-12);
    }

    #[test]
    fn rbv_ignores_votes() {
        let jury = Jury::from_qualities(&[0.99, 0.99]).unwrap();
        for votes in jury_model::enumerate_binary_votings(2) {
            let p = RandomBallotVoting
                .prob_no(&jury, &votes, Prior::uniform())
                .unwrap();
            assert!((p - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn vote_count_mismatch_is_rejected() {
        let jury = Jury::from_qualities(&[0.9, 0.6]).unwrap();
        assert!(RandomizedMajorityVoting
            .prob_no(&jury, &[N], Prior::uniform())
            .is_err());
        assert!(RandomBallotVoting
            .prob_no(&jury, &[N, Y, Y], Prior::uniform())
            .is_err());
    }

    #[test]
    fn rmv_decision_frequency_tracks_probability() {
        let jury = Jury::from_qualities(&[0.9, 0.6, 0.6, 0.7]).unwrap();
        let votes = [N, N, N, Y];
        let mut rng = StdRng::seed_from_u64(1);
        let trials = 4000;
        let mut nos = 0;
        for _ in 0..trials {
            if RandomizedMajorityVoting
                .decide(&jury, &votes, Prior::uniform(), &mut rng)
                .unwrap()
                == N
            {
                nos += 1;
            }
        }
        let freq = nos as f64 / trials as f64;
        assert!((freq - 0.75).abs() < 0.05, "frequency {freq} far from 0.75");
    }

    #[test]
    fn metadata() {
        assert_eq!(RandomizedMajorityVoting.name(), "RMV");
        assert_eq!(RandomizedMajorityVoting.kind(), StrategyKind::Randomized);
        assert_eq!(RandomBallotVoting.name(), "RBV");
        assert_eq!(RandomBallotVoting.kind(), StrategyKind::Randomized);
    }
}
