//! Majority-style deterministic strategies: Majority Voting (MV) and Half
//! Voting.
//!
//! MV is the strategy used by the prior jury-selection work of Cao et al.
//! (\[7\] in the paper) and is the baseline the paper's system comparison
//! (Figure 6 / Figure 10) is measured against.

use jury_model::{Answer, Jury, ModelResult, Prior};

use crate::strategy::{count_no, StrategyKind, VotingStrategy};

/// Majority Voting (Example 1 of the paper): the result is `0` if
/// `Σ (1 − v_i) ≥ (n + 1) / 2`, i.e. if at least `⌈(n+1)/2⌉` workers vote
/// `0`; otherwise the result is `1`.
///
/// Note the asymmetric tie-break inherited from the paper's definition: for
/// an even jury size an exact tie yields `1`. MV ignores both the prior and
/// the workers' qualities.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MajorityVoting;

impl MajorityVoting {
    /// Creates the strategy.
    pub fn new() -> Self {
        MajorityVoting
    }

    /// The deterministic result on a set of votes (exposed for callers that
    /// do not need the [`VotingStrategy`] machinery).
    pub fn result(votes: &[Answer]) -> Answer {
        let n = votes.len();
        // Σ (1 - v_i) ≥ (n + 1) / 2  ⇔  2 · count_no ≥ n + 1.
        if 2 * count_no(votes) > n {
            Answer::No
        } else {
            Answer::Yes
        }
    }
}

impl VotingStrategy for MajorityVoting {
    fn name(&self) -> &'static str {
        "MV"
    }

    fn kind(&self) -> StrategyKind {
        StrategyKind::Deterministic
    }

    fn prob_no(&self, jury: &Jury, votes: &[Answer], _prior: Prior) -> ModelResult<f64> {
        jury.check_voting(votes)?;
        Ok(if MajorityVoting::result(votes) == Answer::No {
            1.0
        } else {
            0.0
        })
    }
}

/// Half Voting (cited as \[28\] in the paper): the result is the answer that
/// receives at least half of the votes, with exact ties resolved to `0`.
///
/// Half Voting differs from [`MajorityVoting`] only on even-sized juries with
/// an exact tie, where MV answers `1` and Half Voting answers `0`; it is
/// included to populate the deterministic column of Table 2.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HalfVoting;

impl HalfVoting {
    /// Creates the strategy.
    pub fn new() -> Self {
        HalfVoting
    }

    /// The deterministic result on a set of votes.
    pub fn result(votes: &[Answer]) -> Answer {
        let n = votes.len();
        if 2 * count_no(votes) >= n {
            Answer::No
        } else {
            Answer::Yes
        }
    }
}

impl VotingStrategy for HalfVoting {
    fn name(&self) -> &'static str {
        "HalfVoting"
    }

    fn kind(&self) -> StrategyKind {
        StrategyKind::Deterministic
    }

    fn prob_no(&self, jury: &Jury, votes: &[Answer], _prior: Prior) -> ModelResult<f64> {
        jury.check_voting(votes)?;
        Ok(if HalfVoting::result(votes) == Answer::No {
            1.0
        } else {
            0.0
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const N: Answer = Answer::No;
    const Y: Answer = Answer::Yes;

    #[test]
    fn mv_follows_the_paper_formula() {
        // n = 3: two or more No votes → No.
        assert_eq!(MajorityVoting::result(&[N, N, Y]), N);
        assert_eq!(MajorityVoting::result(&[N, Y, Y]), Y);
        assert_eq!(MajorityVoting::result(&[N, N, N]), N);
        assert_eq!(MajorityVoting::result(&[Y, Y, Y]), Y);
        // n = 1.
        assert_eq!(MajorityVoting::result(&[N]), N);
        assert_eq!(MajorityVoting::result(&[Y]), Y);
    }

    #[test]
    fn mv_breaks_even_ties_towards_yes() {
        // n = 4, 2-2 tie: Σ(1-v) = 2 < (4+1)/2 = 2.5 → result 1.
        assert_eq!(MajorityVoting::result(&[N, N, Y, Y]), Y);
        // 3-1 split → No.
        assert_eq!(MajorityVoting::result(&[N, N, N, Y]), N);
    }

    #[test]
    fn half_voting_breaks_even_ties_towards_no() {
        assert_eq!(HalfVoting::result(&[N, N, Y, Y]), N);
        assert_eq!(HalfVoting::result(&[N, Y, Y, Y]), Y);
        // On odd sizes Half Voting agrees with MV.
        for votes in jury_model::enumerate_binary_votings(5) {
            assert_eq!(HalfVoting::result(&votes), MajorityVoting::result(&votes));
        }
    }

    #[test]
    fn mv_prob_no_is_indicator() {
        let jury = Jury::from_qualities(&[0.9, 0.6, 0.6]).unwrap();
        let p = MajorityVoting
            .prob_no(&jury, &[Y, N, N], Prior::uniform())
            .unwrap();
        assert_eq!(p, 1.0);
        let p = MajorityVoting
            .prob_no(&jury, &[Y, Y, N], Prior::uniform())
            .unwrap();
        assert_eq!(p, 0.0);
        // Vote-count mismatch is an error.
        assert!(MajorityVoting
            .prob_no(&jury, &[Y], Prior::uniform())
            .is_err());
    }

    #[test]
    fn mv_ignores_prior_and_qualities() {
        let strong = Jury::from_qualities(&[0.99, 0.51, 0.51]).unwrap();
        let votes = [N, Y, Y];
        // The high-quality worker votes No but MV follows the two Yes votes,
        // regardless of the prior.
        for alpha in [0.0, 0.5, 1.0] {
            let p = MajorityVoting
                .prob_no(&strong, &votes, Prior::new(alpha).unwrap())
                .unwrap();
            assert_eq!(p, 0.0);
        }
    }

    #[test]
    fn strategy_metadata() {
        assert_eq!(MajorityVoting.name(), "MV");
        assert_eq!(MajorityVoting.kind(), StrategyKind::Deterministic);
        assert_eq!(HalfVoting.name(), "HalfVoting");
        assert_eq!(HalfVoting.kind(), StrategyKind::Deterministic);
    }
}
