//! Triadic Consensus (cited as \[2\], Goel & Lee, in the paper's Table 2): a
//! randomized strategy that repeatedly resolves random triads of ballots by
//! majority until a single ballot remains.
//!
//! We operate on the multiset of collected votes: while at least three
//! ballots remain, three are drawn uniformly at random without replacement
//! and replaced by one ballot carrying their majority answer; with two
//! ballots left one of them is picked uniformly; the last ballot is the
//! result. The probability of returning `0` depends only on the counts of
//! `0` and `1` ballots, so `prob_no` can be computed exactly by a memoized
//! recursion over those counts rather than by simulation.

use std::collections::HashMap;

use parking_lot::Mutex;

use jury_model::{Answer, Jury, ModelResult, Prior};

use crate::strategy::{count_no, StrategyKind, VotingStrategy};

/// Triadic Consensus over the multiset of votes.
#[derive(Debug, Default)]
pub struct TriadicConsensus {
    /// Memoized `Pr(result = No | counts)` keyed by `(no_ballots, yes_ballots)`.
    cache: Mutex<HashMap<(u32, u32), f64>>,
}

impl TriadicConsensus {
    /// Creates the strategy with an empty memo table.
    pub fn new() -> Self {
        TriadicConsensus {
            cache: Mutex::new(HashMap::new()),
        }
    }

    /// Exact probability that the consensus process ends with a `No` ballot,
    /// starting from `no` ballots for `No` and `yes` ballots for `Yes`.
    pub fn prob_no_from_counts(&self, no: u32, yes: u32) -> f64 {
        if no + yes == 0 {
            return 0.5;
        }
        if let Some(&p) = self.cache.lock().get(&(no, yes)) {
            return p;
        }
        let p = self.compute(no, yes);
        self.cache.lock().insert((no, yes), p);
        p
    }

    fn compute(&self, no: u32, yes: u32) -> f64 {
        let total = no + yes;
        match total {
            0 => 0.5,
            1 => {
                if no == 1 {
                    1.0
                } else {
                    0.0
                }
            }
            2 => no as f64 / 2.0,
            _ => {
                // Draw 3 ballots without replacement; k of them are No with
                // hypergeometric probability C(no, k) C(yes, 3-k) / C(total, 3).
                let denom = choose(total, 3);
                let mut p = 0.0;
                for k in 0..=3u32 {
                    if k > no || 3 - k > yes {
                        continue;
                    }
                    let weight = choose(no, k) * choose(yes, 3 - k) / denom;
                    if weight == 0.0 {
                        continue;
                    }
                    // The triad resolves to the majority of its 3 ballots.
                    let (next_no, next_yes) = if k >= 2 {
                        (no - k + 1, yes - (3 - k))
                    } else {
                        (no - k, yes - (3 - k) + 1)
                    };
                    p += weight * self.prob_no_from_counts(next_no, next_yes);
                }
                p
            }
        }
    }
}

/// Binomial coefficient as `f64` (small arguments only).
fn choose(n: u32, k: u32) -> f64 {
    if k > n {
        return 0.0;
    }
    let k = k.min(n - k);
    let mut result = 1.0;
    for i in 0..k {
        result *= (n - i) as f64 / (i + 1) as f64;
    }
    result
}

impl VotingStrategy for TriadicConsensus {
    fn name(&self) -> &'static str {
        "Triadic"
    }

    fn kind(&self) -> StrategyKind {
        StrategyKind::Randomized
    }

    fn prob_no(&self, jury: &Jury, votes: &[Answer], _prior: Prior) -> ModelResult<f64> {
        jury.check_voting(votes)?;
        let no = count_no(votes) as u32;
        let yes = (votes.len() - no as usize) as u32;
        Ok(self.prob_no_from_counts(no, yes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn choose_small_values() {
        assert_eq!(choose(5, 2), 10.0);
        assert_eq!(choose(3, 3), 1.0);
        assert_eq!(choose(3, 0), 1.0);
        assert_eq!(choose(2, 3), 0.0);
    }

    #[test]
    fn unanimous_ballots_are_certain() {
        let t = TriadicConsensus::new();
        assert_eq!(t.prob_no_from_counts(5, 0), 1.0);
        assert_eq!(t.prob_no_from_counts(0, 7), 0.0);
        assert_eq!(t.prob_no_from_counts(1, 0), 1.0);
    }

    #[test]
    fn symmetric_ballots_are_a_coin() {
        let t = TriadicConsensus::new();
        for n in [1u32, 2, 3, 5, 8] {
            let p = t.prob_no_from_counts(n, n);
            assert!((p - 0.5).abs() < 1e-9, "counts ({n},{n}) give {p}");
        }
        assert!((t.prob_no_from_counts(0, 0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn majority_side_is_favoured_and_monotone() {
        let t = TriadicConsensus::new();
        let p_weak = t.prob_no_from_counts(4, 3);
        let p_strong = t.prob_no_from_counts(6, 2);
        assert!(p_weak > 0.5);
        assert!(p_strong > p_weak);
        assert!(p_strong < 1.0);
        // With a single dissenting ballot the dissenter can never win: it is
        // always outvoted inside whichever triad it lands in.
        assert_eq!(t.prob_no_from_counts(6, 1), 1.0);
    }

    #[test]
    fn probability_is_amplified_relative_to_vote_share() {
        // Triadic consensus amplifies majorities relative to the raw share
        // used by RMV (5/7 ≈ 0.714).
        let t = TriadicConsensus::new();
        let p = t.prob_no_from_counts(5, 2);
        assert!(
            p > 5.0 / 7.0,
            "triadic prob {p} should exceed the raw share"
        );
    }

    #[test]
    fn strategy_interface() {
        let t = TriadicConsensus::new();
        let jury = Jury::from_qualities(&[0.7, 0.7, 0.7]).unwrap();
        let votes = [Answer::No, Answer::No, Answer::Yes];
        let p = t.prob_no(&jury, &votes, Prior::uniform()).unwrap();
        // A single triad with 2 No votes resolves to No deterministically.
        assert_eq!(p, 1.0);
        assert!(t.prob_no(&jury, &[Answer::No], Prior::uniform()).is_err());
        assert_eq!(t.name(), "Triadic");
        assert_eq!(t.kind(), StrategyKind::Randomized);
    }

    #[test]
    fn two_ballot_tiebreak_is_uniform() {
        let t = TriadicConsensus::new();
        assert!((t.prob_no_from_counts(1, 1) - 0.5).abs() < 1e-12);
        assert!((t.prob_no_from_counts(2, 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn probabilities_are_complementary() {
        // Pr(No | a,b) + Pr(No | b,a) = 1 by symmetry of the process.
        let t = TriadicConsensus::new();
        for (a, b) in [(3u32, 2u32), (6, 1), (4, 4), (7, 2)] {
            let p = t.prob_no_from_counts(a, b);
            let q = t.prob_no_from_counts(b, a);
            assert!((p + q - 1.0).abs() < 1e-9, "({a},{b}): {p} + {q} != 1");
        }
    }
}
