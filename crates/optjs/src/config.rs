//! Configuration of the end-to-end systems.

use jury_jq::{BucketCount, BucketJqConfig};
use jury_selection::AnnealingConfig;

/// Configuration shared by the OPTJS and MVJS systems.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemConfig {
    /// Bucket configuration for the approximate JQ(BV) computation.
    pub bucket: BucketJqConfig,
    /// Simulated-annealing configuration for the JSP search.
    pub annealing: AnnealingConfig,
    /// Pools of at most this size are solved exactly by enumeration instead
    /// of by annealing.
    pub exact_cutoff: usize,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            bucket: BucketJqConfig::default(),
            annealing: AnnealingConfig::default(),
            exact_cutoff: 14,
        }
    }
}

impl SystemConfig {
    /// The configuration used to reproduce the paper's experiments:
    /// `numBuckets = 50` for JQ estimation and `ε = 10⁻⁸` for the annealing.
    pub fn paper_experiments() -> Self {
        SystemConfig {
            bucket: BucketJqConfig::paper_experiments(),
            annealing: AnnealingConfig::default(),
            exact_cutoff: 14,
        }
    }

    /// Sets the bucket configuration.
    pub fn with_bucket(mut self, bucket: BucketJqConfig) -> Self {
        self.bucket = bucket;
        self
    }

    /// Sets the annealing configuration.
    pub fn with_annealing(mut self, annealing: AnnealingConfig) -> Self {
        self.annealing = annealing;
        self
    }

    /// Sets the exact-enumeration cutoff.
    pub fn with_exact_cutoff(mut self, cutoff: usize) -> Self {
        self.exact_cutoff = cutoff;
        self
    }

    /// A fast configuration for unit tests and examples: coarser buckets and
    /// a shorter annealing schedule.
    pub fn fast() -> Self {
        SystemConfig {
            bucket: BucketJqConfig::default().with_buckets(BucketCount::Fixed(50)),
            annealing: AnnealingConfig::default().with_epsilon(1e-4).with_restarts(2),
            exact_cutoff: 12,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let config = SystemConfig::default();
        assert!(config.exact_cutoff >= 10);
        assert!(config.annealing.restarts >= 1);
    }

    #[test]
    fn builders_update_fields() {
        let config = SystemConfig::default()
            .with_exact_cutoff(5)
            .with_bucket(BucketJqConfig::paper_experiments())
            .with_annealing(AnnealingConfig::default().with_seed(9));
        assert_eq!(config.exact_cutoff, 5);
        assert_eq!(config.annealing.seed, 9);
        assert_eq!(config.bucket, BucketJqConfig::paper_experiments());
    }

    #[test]
    fn paper_and_fast_presets_differ() {
        assert_ne!(SystemConfig::paper_experiments().annealing.epsilon, SystemConfig::fast().annealing.epsilon);
    }
}
