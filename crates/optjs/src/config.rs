//! Configuration of the end-to-end systems.
//!
//! The configuration type now lives in `jury-service` (the systems are thin
//! facades over [`jury_service::JuryService`]); `SystemConfig` remains as an
//! alias so existing callers and the experiment binaries keep compiling
//! unchanged.

/// The shared OPTJS/MVJS configuration — an alias of
/// [`jury_service::ServiceConfig`], where this type now lives.
pub use jury_service::ServiceConfig as SystemConfig;

#[cfg(test)]
mod tests {
    use super::*;
    use jury_jq::BucketJqConfig;
    use jury_selection::AnnealingConfig;

    #[test]
    fn defaults_are_sane() {
        let config = SystemConfig::default();
        assert!(config.exact_cutoff >= 10);
        assert!(config.annealing.restarts >= 1);
    }

    #[test]
    fn builders_update_fields() {
        let config = SystemConfig::default()
            .with_exact_cutoff(5)
            .with_bucket(BucketJqConfig::paper_experiments())
            .with_annealing(AnnealingConfig::default().with_seed(9));
        assert_eq!(config.exact_cutoff, 5);
        assert_eq!(config.annealing.seed, 9);
        assert_eq!(config.bucket, BucketJqConfig::paper_experiments());
    }

    #[test]
    fn paper_and_fast_presets_differ() {
        assert_ne!(
            SystemConfig::paper_experiments().annealing.epsilon,
            SystemConfig::fast().annealing.epsilon
        );
    }

    #[test]
    fn alias_is_the_service_config_type() {
        fn takes_service_config(_: jury_service::ServiceConfig) {}
        takes_service_config(SystemConfig::default());
    }
}
