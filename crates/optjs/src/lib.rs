//! # jury-optjs
//!
//! The end-to-end **Optimal Jury Selection System** (OPTJS) of *"On
//! Optimality of Jury Selection in Crowdsourcing"* (EDBT 2015), together
//! with the Majority-Voting baseline system (MVJS) it is compared against.
//!
//! **Prefer [`jury_service`] for new code.** Since the service API landed,
//! [`Optjs`] and [`Mvjs`] are thin, deprecated-style facades over
//! [`jury_service::JuryService`]: they keep the paper's Figure 1 vocabulary
//! for the experiment binaries and examples, while the service adds the
//! production surface — fallible request/response calls (no panics on the
//! request path), solver policies, per-request configuration overrides,
//! parallel `select_batch` execution, and a shared JQ-evaluation cache.
//! `SystemConfig` is now an alias of [`jury_service::ServiceConfig`].
//!
//! The [`pipeline`] module still closes the loop by collecting (simulated or
//! replayed) votes from the selected jury and aggregating them with Bayesian
//! voting.
//!
//! ```
//! use jury_model::{paper_example_pool, Prior};
//! use jury_optjs::{Optjs, SystemConfig};
//!
//! // Reproduce the Figure 1 budget–quality table.
//! let system = Optjs::new(SystemConfig::paper_experiments());
//! let table = system.budget_quality_table(
//!     &paper_example_pool(),
//!     &[5.0, 10.0, 15.0, 20.0],
//!     Prior::uniform(),
//! ).unwrap();
//! assert!((table.rows()[2].quality - 0.845).abs() < 1e-9);
//! assert!((table.rows()[2].required_budget - 14.0).abs() < 1e-9);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod config;
pub mod pipeline;
pub mod report;
pub mod system;

pub use config::SystemConfig;
pub use pipeline::{run_on_dataset, run_simulated_task, DatasetReport, TaskOutcome};
pub use report::{ComparisonRow, ComparisonSeries, Series};
pub use system::{compare_systems, Mvjs, Optjs, SelectionOutcome, SystemKind};
