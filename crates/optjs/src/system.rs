//! The end-to-end jury selection systems: OPTJS (the paper's contribution)
//! and MVJS (the Cao et al. baseline), as depicted in Figure 1.
//!
//! **Deprecated-style facades.** Since the introduction of `jury-service`,
//! [`Optjs`] and [`Mvjs`] are thin wrappers that translate the historical
//! per-call API into [`jury_service::SelectionRequest`]s and delegate to one
//! shared [`jury_service::JuryService`]. New code should use `jury-service`
//! directly — it adds solver policies, per-request configuration overrides,
//! parallel batching, and a shared JQ-evaluation cache. The facades remain
//! so the Figure 1/6/10 experiment binaries and examples read like the
//! paper's system diagram.
//!
//! Unlike the original panicking `select`, the facades are fallible: invalid
//! budgets (or an empty pool) come back as [`jury_service::ServiceError`]
//! values.

use std::time::Duration;

use serde::{Deserialize, Serialize};

use jury_jq::JqEngine;
use jury_model::{Jury, Prior, WorkerId, WorkerPool};
use jury_selection::BudgetQualityTable;
use jury_service::{JuryService, SelectionRequest, SelectionResponse, ServiceError, Strategy};

use crate::config::SystemConfig;

/// Which aggregation strategy a system uses for its selection objective.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SystemKind {
    /// The Optimal Jury Selection System: selects under `JQ(BV)`.
    Optjs,
    /// The Majority-Voting baseline of Cao et al.: selects under `JQ(MV)`.
    Mvjs,
}

impl SystemKind {
    /// The service strategy this system selects under.
    pub fn strategy(self) -> Strategy {
        match self {
            SystemKind::Optjs => Strategy::Bv,
            SystemKind::Mvjs => Strategy::Mv,
        }
    }
}

impl std::fmt::Display for SystemKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SystemKind::Optjs => write!(f, "OPTJS"),
            SystemKind::Mvjs => write!(f, "MVJS"),
        }
    }
}

/// The outcome of asking a system to select a jury.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectionOutcome {
    /// Which system produced the selection.
    pub system: SystemKind,
    /// The selected jury.
    pub jury: Jury,
    /// The system's own estimate of the jury's quality (under its strategy).
    pub estimated_quality: f64,
    /// The jury's cost.
    pub cost: f64,
    /// Number of objective evaluations spent by the search.
    pub evaluations: u64,
    /// Wall-clock time of the search.
    pub elapsed: Duration,
}

impl SelectionOutcome {
    /// The selected workers' ids, sorted.
    pub fn worker_ids(&self) -> Vec<WorkerId> {
        let mut ids = self.jury.ids();
        ids.sort();
        ids
    }

    fn from_response(system: SystemKind, response: SelectionResponse) -> Self {
        SelectionOutcome {
            system,
            estimated_quality: response.quality,
            cost: response.cost,
            evaluations: response.evaluations,
            elapsed: response.elapsed,
            jury: response.jury,
        }
    }
}

/// Shared facade machinery: both systems are the same service call with a
/// different strategy.
fn facade_request(
    kind: SystemKind,
    pool: &WorkerPool,
    budget: f64,
    prior: Prior,
) -> SelectionRequest {
    SelectionRequest::new(pool.clone(), budget)
        .with_prior(prior)
        .with_strategy(kind.strategy())
        // The paper's systems return the empty jury (quality max(α, 1 − α))
        // when nothing is affordable; keep that behaviour for the
        // experiment binaries instead of surfacing an error.
        .allow_empty_selection(true)
}

/// The Optimal Jury Selection System (OPTJS) — a facade over
/// [`jury_service::JuryService`] selecting under `JQ(BV)`.
#[derive(Debug, Default)]
pub struct Optjs {
    service: JuryService,
}

impl Optjs {
    /// Creates the system with a custom configuration.
    pub fn new(config: SystemConfig) -> Self {
        Optjs {
            service: JuryService::new(config),
        }
    }

    /// Creates the system with the paper's experimental configuration.
    pub fn paper_experiments() -> Self {
        Optjs::new(SystemConfig::paper_experiments())
    }

    /// The configuration.
    pub fn config(&self) -> &SystemConfig {
        self.service.config()
    }

    /// The underlying service (shared cache, batch API, solver policies).
    pub fn service(&self) -> &JuryService {
        &self.service
    }

    /// The JQ engine this system uses (exposed so callers can re-evaluate
    /// juries consistently with the system's own estimates).
    pub fn jq_engine(&self) -> JqEngine {
        self.service.config().jq_engine()
    }

    /// Selects the best jury within the budget for a task with the given
    /// prior (Theorem 1: the optimal strategy is BV, so the selection
    /// maximizes `JQ(J, BV, α)`).
    ///
    /// Errors (instead of the historical panic) when the budget is not a
    /// finite non-negative number or the pool is empty.
    pub fn select(
        &self,
        pool: &WorkerPool,
        budget: f64,
        prior: Prior,
    ) -> Result<SelectionOutcome, ServiceError> {
        let response =
            self.service
                .select(&facade_request(SystemKind::Optjs, pool, budget, prior))?;
        Ok(SelectionOutcome::from_response(SystemKind::Optjs, response))
    }

    /// Builds the Figure 1 budget–quality table: one JSP solve per budget,
    /// executed through the service's parallel batch path.
    pub fn budget_quality_table(
        &self,
        pool: &WorkerPool,
        budgets: &[f64],
        prior: Prior,
    ) -> Result<BudgetQualityTable, ServiceError> {
        self.service.budget_quality_table(pool, budgets, prior)
    }
}

/// The Majority-Voting Jury Selection System (MVJS) — the baseline facade,
/// selecting under `JQ(MV)` through the same service engine.
#[derive(Debug, Default)]
pub struct Mvjs {
    service: JuryService,
}

impl Mvjs {
    /// Creates the baseline system.
    pub fn new(config: SystemConfig) -> Self {
        Mvjs {
            service: JuryService::new(config),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &SystemConfig {
        self.service.config()
    }

    /// The underlying service.
    pub fn service(&self) -> &JuryService {
        &self.service
    }

    /// Selects the best jury within the budget under the MV objective.
    ///
    /// Errors (instead of the historical panic) when the budget is not a
    /// finite non-negative number or the pool is empty.
    pub fn select(
        &self,
        pool: &WorkerPool,
        budget: f64,
        prior: Prior,
    ) -> Result<SelectionOutcome, ServiceError> {
        let response =
            self.service
                .select(&facade_request(SystemKind::Mvjs, pool, budget, prior))?;
        Ok(SelectionOutcome::from_response(SystemKind::Mvjs, response))
    }
}

/// Runs both systems on the same instance and returns `(OPTJS, MVJS)` — one
/// data point of the Figure 6 / Figure 10 system comparison, where each
/// system is scored by the quality of its own jury under its own strategy.
pub fn compare_systems(
    optjs: &Optjs,
    mvjs: &Mvjs,
    pool: &WorkerPool,
    budget: f64,
    prior: Prior,
) -> Result<(SelectionOutcome, SelectionOutcome), ServiceError> {
    Ok((
        optjs.select(pool, budget, prior)?,
        mvjs.select(pool, budget, prior)?,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use jury_model::{paper_example_pool, GaussianWorkerGenerator};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn optjs_reproduces_the_figure_1_table() {
        let system = Optjs::paper_experiments();
        let table = system
            .budget_quality_table(
                &paper_example_pool(),
                &[5.0, 10.0, 15.0, 20.0],
                Prior::uniform(),
            )
            .unwrap();
        let qualities: Vec<f64> = table.rows().iter().map(|r| r.quality).collect();
        let expected = [0.75, 0.80, 0.845, 0.8695];
        for (got, want) in qualities.iter().zip(expected.iter()) {
            assert!((got - want).abs() < 1e-9, "{got} vs {want}");
        }
    }

    #[test]
    fn optjs_selection_outcome_is_consistent() {
        let system = Optjs::paper_experiments();
        let outcome = system
            .select(&paper_example_pool(), 15.0, Prior::uniform())
            .unwrap();
        assert_eq!(outcome.system, SystemKind::Optjs);
        assert!((outcome.estimated_quality - 0.845).abs() < 1e-9);
        assert!((outcome.cost - 14.0).abs() < 1e-9);
        assert_eq!(
            outcome.worker_ids(),
            vec![WorkerId(1), WorkerId(2), WorkerId(6)]
        );
        // The reported estimate matches re-evaluating the jury with the
        // system's engine.
        let engine = system.jq_engine();
        let recheck = engine.bv_jq(&outcome.jury, Prior::uniform()).value;
        assert!((recheck - outcome.estimated_quality).abs() < 1e-9);
    }

    #[test]
    fn invalid_budgets_are_errors_not_panics() {
        let optjs = Optjs::paper_experiments();
        let mvjs = Mvjs::new(SystemConfig::paper_experiments());
        for bad in [-1.0, f64::NAN, f64::INFINITY] {
            assert!(
                optjs
                    .select(&paper_example_pool(), bad, Prior::uniform())
                    .is_err(),
                "OPTJS accepted budget {bad}"
            );
            assert!(
                mvjs.select(&paper_example_pool(), bad, Prior::uniform())
                    .is_err(),
                "MVJS accepted budget {bad}"
            );
        }
    }

    #[test]
    fn mvjs_selects_under_mv_and_is_dominated() {
        let optjs = Optjs::paper_experiments();
        let mvjs = Mvjs::new(SystemConfig::paper_experiments());
        for budget in [10.0, 15.0, 20.0] {
            let (o, m) = compare_systems(
                &optjs,
                &mvjs,
                &paper_example_pool(),
                budget,
                Prior::uniform(),
            )
            .unwrap();
            assert_eq!(m.system, SystemKind::Mvjs);
            assert!(
                o.estimated_quality >= m.estimated_quality - 1e-9,
                "budget {budget}: OPTJS {} < MVJS {}",
                o.estimated_quality,
                m.estimated_quality
            );
            assert!(o.cost <= budget + 1e-9);
            assert!(m.cost <= budget + 1e-9);
        }
    }

    #[test]
    fn systems_scale_to_the_synthetic_default_pool() {
        // The synthetic default: N = 50 workers, B = 0.5 (Section 6.1.1),
        // solved with the fast test configuration.
        let generator = GaussianWorkerGenerator::paper_defaults();
        let mut rng = StdRng::seed_from_u64(123);
        let pool = generator.generate(50, &mut rng);
        let optjs = Optjs::new(SystemConfig::fast());
        let mvjs = Mvjs::new(SystemConfig::fast());
        let (o, m) = compare_systems(&optjs, &mvjs, &pool, 0.5, Prior::uniform()).unwrap();
        assert!(
            o.estimated_quality >= m.estimated_quality - 0.01,
            "OPTJS {} vs MVJS {}",
            o.estimated_quality,
            m.estimated_quality
        );
        assert!(o.estimated_quality > 0.8);
        assert!(o.cost <= 0.5 + 1e-9);
        assert!(m.cost <= 0.5 + 1e-9);
    }

    #[test]
    fn prior_changes_the_selection_quality() {
        let system = Optjs::paper_experiments();
        let uniform = system
            .select(&paper_example_pool(), 10.0, Prior::uniform())
            .unwrap();
        let confident = system
            .select(&paper_example_pool(), 10.0, Prior::new(0.9).unwrap())
            .unwrap();
        // A confident prior acts as an extra high-quality worker (Theorem 3),
        // so the achievable quality can only go up.
        assert!(confident.estimated_quality >= uniform.estimated_quality - 1e-9);
    }

    #[test]
    fn repeated_selections_share_the_service_cache() {
        let system = Optjs::paper_experiments();
        let first = system
            .select(&paper_example_pool(), 15.0, Prior::uniform())
            .unwrap();
        let second = system
            .select(&paper_example_pool(), 15.0, Prior::uniform())
            .unwrap();
        assert_eq!(first.worker_ids(), second.worker_ids());
        let stats = system.service().cache_stats();
        assert!(stats.hits > 0, "second run should hit the cache: {stats:?}");
    }

    #[test]
    fn system_kind_display() {
        assert_eq!(SystemKind::Optjs.to_string(), "OPTJS");
        assert_eq!(SystemKind::Mvjs.to_string(), "MVJS");
        assert_eq!(SystemKind::Optjs.strategy(), Strategy::Bv);
        assert_eq!(SystemKind::Mvjs.strategy(), Strategy::Mv);
    }
}
