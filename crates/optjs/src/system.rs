//! The end-to-end jury selection systems: OPTJS (the paper's contribution)
//! and MVJS (the Cao et al. baseline), as depicted in Figure 1.
//!
//! A system takes the candidate worker pool, a budget, and the task
//! provider's prior; it selects a jury, reports the jury's estimated quality
//! under the system's voting strategy, and can also produce the
//! budget–quality table the task provider uses to pick her budget.

use std::time::Duration;

use serde::{Deserialize, Serialize};

use jury_model::{Jury, Prior, WorkerId, WorkerPool};
use jury_selection::{
    AnnealingSolver, BudgetQualityTable, BvObjective, ExhaustiveSolver, JspInstance, JurySolver,
    MvjsSolver, MvObjective, SolverResult, MAX_EXHAUSTIVE_POOL,
};
use jury_jq::JqEngine;

use crate::config::SystemConfig;

/// Which aggregation strategy a system uses for its selection objective.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SystemKind {
    /// The Optimal Jury Selection System: selects under `JQ(BV)`.
    Optjs,
    /// The Majority-Voting baseline of Cao et al.: selects under `JQ(MV)`.
    Mvjs,
}

impl std::fmt::Display for SystemKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SystemKind::Optjs => write!(f, "OPTJS"),
            SystemKind::Mvjs => write!(f, "MVJS"),
        }
    }
}

/// The outcome of asking a system to select a jury.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectionOutcome {
    /// Which system produced the selection.
    pub system: SystemKind,
    /// The selected jury.
    pub jury: Jury,
    /// The system's own estimate of the jury's quality (under its strategy).
    pub estimated_quality: f64,
    /// The jury's cost.
    pub cost: f64,
    /// Number of objective evaluations spent by the search.
    pub evaluations: u64,
    /// Wall-clock time of the search.
    pub elapsed: Duration,
}

impl SelectionOutcome {
    /// The selected workers' ids, sorted.
    pub fn worker_ids(&self) -> Vec<WorkerId> {
        let mut ids = self.jury.ids();
        ids.sort();
        ids
    }

    fn from_result(system: SystemKind, result: SolverResult) -> Self {
        SelectionOutcome {
            system,
            cost: result.jury.cost(),
            estimated_quality: result.objective_value,
            evaluations: result.evaluations,
            elapsed: result.elapsed,
            jury: result.jury,
        }
    }
}

/// The Optimal Jury Selection System (OPTJS).
#[derive(Debug, Clone, Default)]
pub struct Optjs {
    config: SystemConfig,
}

impl Optjs {
    /// Creates the system with a custom configuration.
    pub fn new(config: SystemConfig) -> Self {
        Optjs { config }
    }

    /// Creates the system with the paper's experimental configuration.
    pub fn paper_experiments() -> Self {
        Optjs::new(SystemConfig::paper_experiments())
    }

    /// The configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// The JQ engine this system uses (exposed so callers can re-evaluate
    /// juries consistently with the system's own estimates).
    pub fn jq_engine(&self) -> JqEngine {
        JqEngine::new(self.config.bucket).with_exact_cutoff(self.config.exact_cutoff)
    }

    fn objective(&self) -> BvObjective {
        BvObjective::with_engine(self.jq_engine())
    }

    /// Selects the best jury within the budget for a task with the given
    /// prior (Theorem 1: the optimal strategy is BV, so the selection
    /// maximizes `JQ(J, BV, α)`).
    pub fn select(&self, pool: &WorkerPool, budget: f64, prior: Prior) -> SelectionOutcome {
        let instance = JspInstance::new(pool.clone(), budget, prior)
            .expect("budgets come from validated experiment configurations");
        let result = if pool.len() <= self.config.exact_cutoff.min(MAX_EXHAUSTIVE_POOL) {
            ExhaustiveSolver::new(self.objective()).solve(&instance)
        } else {
            AnnealingSolver::with_config(self.objective(), self.config.annealing).solve(&instance)
        };
        SelectionOutcome::from_result(SystemKind::Optjs, result)
    }

    /// Builds the Figure 1 budget–quality table: one JSP solve per budget.
    pub fn budget_quality_table(
        &self,
        pool: &WorkerPool,
        budgets: &[f64],
        prior: Prior,
    ) -> BudgetQualityTable {
        if pool.len() <= self.config.exact_cutoff.min(MAX_EXHAUSTIVE_POOL) {
            let solver = ExhaustiveSolver::new(self.objective());
            BudgetQualityTable::build(pool, budgets, prior, &solver)
        } else {
            let solver = AnnealingSolver::with_config(self.objective(), self.config.annealing);
            BudgetQualityTable::build(pool, budgets, prior, &solver)
        }
    }
}

/// The Majority-Voting Jury Selection System (MVJS) — the baseline.
#[derive(Debug, Clone, Default)]
pub struct Mvjs {
    config: SystemConfig,
}

impl Mvjs {
    /// Creates the baseline system.
    pub fn new(config: SystemConfig) -> Self {
        Mvjs { config }
    }

    /// The configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// Selects the best jury within the budget under the MV objective.
    pub fn select(&self, pool: &WorkerPool, budget: f64, prior: Prior) -> SelectionOutcome {
        let instance = JspInstance::new(pool.clone(), budget, prior)
            .expect("budgets come from validated experiment configurations");
        let result = if pool.len() <= self.config.exact_cutoff.min(MAX_EXHAUSTIVE_POOL) {
            ExhaustiveSolver::new(MvObjective::new()).solve(&instance)
        } else {
            MvjsSolver::with_annealing_config(self.config.annealing).solve(&instance)
        };
        SelectionOutcome::from_result(SystemKind::Mvjs, result)
    }
}

/// Runs both systems on the same instance and returns `(OPTJS, MVJS)` — one
/// data point of the Figure 6 / Figure 10 system comparison, where each
/// system is scored by the quality of its own jury under its own strategy.
pub fn compare_systems(
    optjs: &Optjs,
    mvjs: &Mvjs,
    pool: &WorkerPool,
    budget: f64,
    prior: Prior,
) -> (SelectionOutcome, SelectionOutcome) {
    (optjs.select(pool, budget, prior), mvjs.select(pool, budget, prior))
}

#[cfg(test)]
mod tests {
    use super::*;
    use jury_model::{paper_example_pool, GaussianWorkerGenerator};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn optjs_reproduces_the_figure_1_table() {
        let system = Optjs::paper_experiments();
        let table = system.budget_quality_table(
            &paper_example_pool(),
            &[5.0, 10.0, 15.0, 20.0],
            Prior::uniform(),
        );
        let qualities: Vec<f64> = table.rows().iter().map(|r| r.quality).collect();
        let expected = [0.75, 0.80, 0.845, 0.8695];
        for (got, want) in qualities.iter().zip(expected.iter()) {
            assert!((got - want).abs() < 1e-9, "{got} vs {want}");
        }
    }

    #[test]
    fn optjs_selection_outcome_is_consistent() {
        let system = Optjs::paper_experiments();
        let outcome = system.select(&paper_example_pool(), 15.0, Prior::uniform());
        assert_eq!(outcome.system, SystemKind::Optjs);
        assert!((outcome.estimated_quality - 0.845).abs() < 1e-9);
        assert!((outcome.cost - 14.0).abs() < 1e-9);
        assert_eq!(outcome.worker_ids(), vec![WorkerId(1), WorkerId(2), WorkerId(6)]);
        // The reported estimate matches re-evaluating the jury with the
        // system's engine.
        let engine = system.jq_engine();
        let recheck = engine.bv_jq(&outcome.jury, Prior::uniform()).value;
        assert!((recheck - outcome.estimated_quality).abs() < 1e-9);
    }

    #[test]
    fn mvjs_selects_under_mv_and_is_dominated() {
        let optjs = Optjs::paper_experiments();
        let mvjs = Mvjs::new(SystemConfig::paper_experiments());
        for budget in [10.0, 15.0, 20.0] {
            let (o, m) = compare_systems(&optjs, &mvjs, &paper_example_pool(), budget, Prior::uniform());
            assert_eq!(m.system, SystemKind::Mvjs);
            assert!(
                o.estimated_quality >= m.estimated_quality - 1e-9,
                "budget {budget}: OPTJS {} < MVJS {}",
                o.estimated_quality,
                m.estimated_quality
            );
            assert!(o.cost <= budget + 1e-9);
            assert!(m.cost <= budget + 1e-9);
        }
    }

    #[test]
    fn systems_scale_to_the_synthetic_default_pool() {
        // The synthetic default: N = 50 workers, B = 0.5 (Section 6.1.1),
        // solved with the fast test configuration.
        let generator = GaussianWorkerGenerator::paper_defaults();
        let mut rng = StdRng::seed_from_u64(123);
        let pool = generator.generate(50, &mut rng);
        let optjs = Optjs::new(SystemConfig::fast());
        let mvjs = Mvjs::new(SystemConfig::fast());
        let (o, m) = compare_systems(&optjs, &mvjs, &pool, 0.5, Prior::uniform());
        assert!(o.estimated_quality >= m.estimated_quality - 0.01,
            "OPTJS {} vs MVJS {}", o.estimated_quality, m.estimated_quality);
        assert!(o.estimated_quality > 0.8);
        assert!(o.cost <= 0.5 + 1e-9);
        assert!(m.cost <= 0.5 + 1e-9);
    }

    #[test]
    fn prior_changes_the_selection_quality() {
        let system = Optjs::paper_experiments();
        let uniform = system.select(&paper_example_pool(), 10.0, Prior::uniform());
        let confident = system.select(&paper_example_pool(), 10.0, Prior::new(0.9).unwrap());
        // A confident prior acts as an extra high-quality worker (Theorem 3),
        // so the achievable quality can only go up.
        assert!(confident.estimated_quality >= uniform.estimated_quality - 1e-9);
    }

    #[test]
    fn system_kind_display() {
        assert_eq!(SystemKind::Optjs.to_string(), "OPTJS");
        assert_eq!(SystemKind::Mvjs.to_string(), "MVJS");
    }
}
