//! End-to-end pipelines: select a jury, collect (or replay) its votes, and
//! aggregate them with Bayesian voting.
//!
//! Two flavours are provided:
//!
//! * [`run_on_dataset`] replays a collected [`CrowdDataset`] — for every
//!   task, the candidate set is the workers who actually answered it (as in
//!   the paper's real-data JSP experiment, Section 6.2.2), the system picks a
//!   jury within the budget, and only the selected workers' recorded votes
//!   are aggregated;
//! * [`run_simulated_task`] runs a single fresh task through the full loop —
//!   selection, simulated answering, aggregation — which is what the
//!   quickstart example demonstrates.

use rand::Rng;
use serde::{Deserialize, Serialize};

use jury_model::{Answer, CrowdDataset, Prior, TaskId, WorkerId, WorkerPool};
use jury_service::ServiceError;
use jury_sim::draw_voting;
use jury_voting::BayesianVoting;

use crate::system::Optjs;

/// The outcome of one task run through the pipeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskOutcome {
    /// The task.
    pub task: TaskId,
    /// The selected jury members.
    pub selected: Vec<WorkerId>,
    /// The answer produced by Bayesian voting over the jury's votes.
    pub decided: Answer,
    /// The task's ground truth.
    pub truth: Answer,
    /// The system's predicted jury quality at selection time.
    pub predicted_jq: f64,
    /// The jury's cost.
    pub cost: f64,
}

impl TaskOutcome {
    /// Whether the aggregated answer matched the ground truth.
    pub fn is_correct(&self) -> bool {
        self.decided == self.truth
    }
}

/// Aggregate report over a dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetReport {
    /// Per-task outcomes.
    pub outcomes: Vec<TaskOutcome>,
    /// Fraction of tasks answered correctly.
    pub accuracy: f64,
    /// Mean predicted jury quality across tasks.
    pub mean_predicted_jq: f64,
    /// Mean jury cost across tasks.
    pub mean_cost: f64,
}

impl DatasetReport {
    fn from_outcomes(outcomes: Vec<TaskOutcome>) -> Self {
        let n = outcomes.len().max(1) as f64;
        let accuracy = outcomes.iter().filter(|o| o.is_correct()).count() as f64 / n;
        let mean_predicted_jq = outcomes.iter().map(|o| o.predicted_jq).sum::<f64>() / n;
        let mean_cost = outcomes.iter().map(|o| o.cost).sum::<f64>() / n;
        DatasetReport {
            outcomes,
            accuracy,
            mean_predicted_jq,
            mean_cost,
        }
    }
}

/// Replays a collected dataset through the OPTJS pipeline with a per-task
/// budget: for every task the candidate pool is restricted to the workers
/// who answered it, a jury is selected, and the selected workers' recorded
/// votes are aggregated with BV.
///
/// Errors if the budget is invalid (the selection service validates every
/// per-task request).
pub fn run_on_dataset(
    system: &Optjs,
    dataset: &CrowdDataset,
    budget: f64,
) -> Result<DatasetReport, ServiceError> {
    let mut outcomes = Vec::with_capacity(dataset.num_tasks());
    for task in dataset.tasks() {
        // Candidate pool: the workers who answered this task.
        let candidates: Vec<_> = task
            .votes()
            .iter()
            .filter_map(|v| dataset.workers().get(v.worker).ok().cloned())
            .collect();
        if candidates.is_empty() {
            continue;
        }
        let pool = WorkerPool::from_workers(candidates)
            .expect("a task's voters are distinct by construction");
        let outcome = system.select(&pool, budget, task.prior())?;

        // Aggregate only the selected workers' recorded votes, in the order
        // of the selected jury.
        let votes: Vec<Answer> = outcome
            .jury
            .workers()
            .iter()
            .map(|member| {
                task.votes()
                    .iter()
                    .find(|v| v.worker == member.id())
                    .map(|v| v.answer)
                    .expect("selected workers come from the task's voters")
            })
            .collect();
        let decided = if outcome.jury.is_empty() {
            // No affordable juror: fall back to the prior's mode.
            if task.prior().alpha() >= 0.5 {
                Answer::No
            } else {
                Answer::Yes
            }
        } else {
            BayesianVoting::result(&outcome.jury, &votes, task.prior())
                .expect("votes are aligned with the jury by construction")
        };

        outcomes.push(TaskOutcome {
            task: task.id(),
            selected: outcome.worker_ids(),
            decided,
            truth: task.ground_truth(),
            predicted_jq: outcome.estimated_quality,
            cost: outcome.cost,
        });
    }
    Ok(DatasetReport::from_outcomes(outcomes))
}

/// Runs one synthetic task through the full loop: select a jury from the
/// pool, draw the jury's votes from their latent qualities, and aggregate
/// with BV.
pub fn run_simulated_task<R: Rng>(
    system: &Optjs,
    pool: &WorkerPool,
    budget: f64,
    prior: Prior,
    truth: Answer,
    rng: &mut R,
) -> Result<TaskOutcome, ServiceError> {
    let outcome = system.select(pool, budget, prior)?;
    let votes = draw_voting(&outcome.jury, truth, rng);
    let decided = if outcome.jury.is_empty() {
        if prior.alpha() >= 0.5 {
            Answer::No
        } else {
            Answer::Yes
        }
    } else {
        BayesianVoting::result(&outcome.jury, &votes, prior)
            .expect("simulated votes align with the jury")
    };
    Ok(TaskOutcome {
        task: TaskId(0),
        selected: outcome.worker_ids(),
        decided,
        truth,
        predicted_jq: outcome.estimated_quality,
        cost: outcome.cost,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use jury_model::paper_example_pool;
    use jury_sim::{AmtCampaignConfig, AmtSimulator};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn simulated_task_pipeline_runs_end_to_end() {
        let system = Optjs::new(SystemConfig::fast());
        let mut rng = StdRng::seed_from_u64(1);
        let outcome = run_simulated_task(
            &system,
            &paper_example_pool(),
            15.0,
            Prior::uniform(),
            Answer::Yes,
            &mut rng,
        )
        .unwrap();
        assert_eq!(outcome.selected.len(), 3);
        assert!(outcome.cost <= 15.0);
        assert!(outcome.predicted_jq > 0.8);
        assert!(outcome.decided == Answer::Yes || outcome.decided == Answer::No);
    }

    #[test]
    fn simulated_accuracy_tracks_predicted_jq_over_many_tasks() {
        let system = Optjs::new(SystemConfig::fast());
        let mut rng = StdRng::seed_from_u64(2);
        let pool = paper_example_pool();
        let trials = 300;
        let mut correct = 0usize;
        let mut predicted = 0.0;
        for i in 0..trials {
            let truth = if i % 2 == 0 { Answer::Yes } else { Answer::No };
            let outcome =
                run_simulated_task(&system, &pool, 15.0, Prior::uniform(), truth, &mut rng)
                    .unwrap();
            if outcome.is_correct() {
                correct += 1;
            }
            predicted += outcome.predicted_jq;
        }
        let accuracy = correct as f64 / trials as f64;
        let predicted = predicted / trials as f64;
        assert!(
            (accuracy - predicted).abs() < 0.07,
            "accuracy {accuracy} vs predicted {predicted}"
        );
    }

    #[test]
    fn dataset_replay_produces_a_consistent_report() {
        let sim = AmtSimulator::new(AmtCampaignConfig::small());
        let mut rng = StdRng::seed_from_u64(3);
        let dataset = sim.run(&mut rng).unwrap();
        let system = Optjs::new(SystemConfig::fast());
        let report = run_on_dataset(&system, &dataset, 0.5).unwrap();
        assert_eq!(report.outcomes.len(), dataset.num_tasks());
        assert!(report.accuracy > 0.6, "accuracy {}", report.accuracy);
        assert!(report.mean_predicted_jq > 0.6);
        assert!(report.mean_cost <= 0.5 + 1e-9);
        // Every selected jury only contains workers who answered the task.
        for outcome in &report.outcomes {
            let task = dataset.task(outcome.task).unwrap();
            let voters: Vec<WorkerId> = task.answering_workers();
            for id in &outcome.selected {
                assert!(voters.contains(id));
            }
        }
    }

    #[test]
    fn empty_budget_falls_back_to_the_prior() {
        let sim = AmtSimulator::new(AmtCampaignConfig::small());
        let mut rng = StdRng::seed_from_u64(4);
        let dataset = sim.run(&mut rng).unwrap();
        let system = Optjs::new(SystemConfig::fast());
        let report = run_on_dataset(&system, &dataset, 0.0).unwrap();
        // With no budget every jury is empty, the answer is the prior's mode
        // (No under a uniform prior), and roughly half the tasks are right.
        assert!(report.outcomes.iter().all(|o| o.selected.is_empty()));
        assert!((report.accuracy - 0.5).abs() < 0.2);
        assert!((report.mean_predicted_jq - 0.5).abs() < 1e-9);
        assert_eq!(report.mean_cost, 0.0);
    }
}
