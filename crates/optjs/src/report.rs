//! Plain-text reporting helpers for the experiment harness and the examples:
//! aligned tables of (parameter, OPTJS, MVJS) rows and simple series dumps.

use serde::{Deserialize, Serialize};

/// One row of a system-comparison series: a swept parameter value and the
/// jury quality each system achieved at that value.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ComparisonRow {
    /// The value of the swept parameter (µ, B, N, σ̂, ...).
    pub parameter: f64,
    /// The OPTJS jury quality.
    pub optjs: f64,
    /// The MVJS jury quality.
    pub mvjs: f64,
}

impl ComparisonRow {
    /// OPTJS's lead over MVJS (positive when OPTJS wins).
    pub fn lead(&self) -> f64 {
        self.optjs - self.mvjs
    }
}

/// A named series of comparison rows — one figure panel (e.g. Figure 6(a)).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComparisonSeries {
    /// The name of the swept parameter (used as the column header).
    pub parameter_name: String,
    /// The rows, in sweep order.
    pub rows: Vec<ComparisonRow>,
}

impl ComparisonSeries {
    /// Creates an empty series.
    pub fn new(parameter_name: impl Into<String>) -> Self {
        ComparisonSeries {
            parameter_name: parameter_name.into(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push(&mut self, parameter: f64, optjs: f64, mvjs: f64) {
        self.rows.push(ComparisonRow {
            parameter,
            optjs,
            mvjs,
        });
    }

    /// The average OPTJS lead across the series.
    pub fn mean_lead(&self) -> f64 {
        if self.rows.is_empty() {
            return 0.0;
        }
        self.rows.iter().map(|r| r.lead()).sum::<f64>() / self.rows.len() as f64
    }

    /// Whether OPTJS is at least as good as MVJS at every point (within a
    /// tolerance for the heuristic search noise).
    pub fn optjs_dominates(&self, tolerance: f64) -> bool {
        self.rows.iter().all(|r| r.optjs >= r.mvjs - tolerance)
    }

    /// Renders the series as an aligned text table, percentages with two
    /// decimals — the format the experiment binaries print.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{:>10} | {:>9} | {:>9} | {:>8}\n",
            self.parameter_name, "OPTJS", "MVJS", "lead"
        );
        out.push_str("-----------+-----------+-----------+---------\n");
        for row in &self.rows {
            out.push_str(&format!(
                "{:>10.3} | {:>8.2}% | {:>8.2}% | {:>+7.2}%\n",
                row.parameter,
                row.optjs * 100.0,
                row.mvjs * 100.0,
                row.lead() * 100.0
            ));
        }
        out
    }
}

/// A named `(x, y)` series for single-curve figures (e.g. approximation
/// error vs. numBuckets in Figure 9(b)).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Name of the series (the figure legend entry).
    pub name: String,
    /// The `(x, y)` points in sweep order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates an empty series.
    pub fn new(name: impl Into<String>) -> Self {
        Series {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Appends a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// Renders the series as `x<TAB>y` lines preceded by a header.
    pub fn render(&self) -> String {
        let mut out = format!("# {}\n", self.name);
        for (x, y) in &self.points {
            out.push_str(&format!("{x}\t{y}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_series_statistics() {
        let mut series = ComparisonSeries::new("budget");
        series.push(0.1, 0.90, 0.87);
        series.push(0.2, 0.93, 0.91);
        assert_eq!(series.rows.len(), 2);
        assert!((series.mean_lead() - 0.025).abs() < 1e-12);
        assert!(series.optjs_dominates(0.0));
        series.push(0.3, 0.90, 0.95);
        assert!(!series.optjs_dominates(0.01));
        assert!(series.optjs_dominates(0.1));
    }

    #[test]
    fn empty_series_mean_lead_is_zero() {
        assert_eq!(ComparisonSeries::new("x").mean_lead(), 0.0);
    }

    #[test]
    fn comparison_render_layout() {
        let mut series = ComparisonSeries::new("mu");
        series.push(0.5, 0.931, 0.88);
        let text = series.render();
        assert_eq!(text.lines().count(), 3);
        assert!(text.contains("OPTJS"));
        assert!(text.contains("93.10%"));
        assert!(text.contains("+5.10%"));
    }

    #[test]
    fn xy_series_render() {
        let mut series = Series::new("approximation error");
        series.push(10.0, 0.0003);
        series.push(50.0, 0.00001);
        let text = series.render();
        assert!(text.starts_with("# approximation error\n"));
        assert_eq!(text.lines().count(), 3);
    }

    #[test]
    fn serde_roundtrip() {
        let mut series = ComparisonSeries::new("N");
        series.push(10.0, 0.9, 0.85);
        let json = serde_json::to_string(&series).unwrap();
        let back: ComparisonSeries = serde_json::from_str(&json).unwrap();
        assert_eq!(series, back);
    }
}
