//! # jury-model
//!
//! Crowd data model for the *Optimal Jury Selection* reproduction
//! ("On Optimality of Jury Selection in Crowdsourcing", EDBT 2015).
//!
//! This crate defines the vocabulary every other crate in the workspace
//! builds on:
//!
//! * [`Worker`]/[`WorkerPool`] — workers with a quality `q_i ∈ [0, 1]` and a
//!   cost `c_i` (Section 2.1 of the paper);
//! * [`Jury`] — a subset of the pool, with jury cost and budget feasibility
//!   (Section 2.2);
//! * [`Answer`]/[`Label`] — votes and ground truths for binary
//!   decision-making tasks and multiple-choice tasks;
//! * [`Prior`]/[`CategoricalPrior`] — the task provider's belief about the
//!   answer;
//! * [`ConfusionMatrix`]/[`MatrixWorker`]/[`MatrixJury`] — the Section 7
//!   worker model for multiple-choice tasks;
//! * [`DecisionTask`]/[`MultiClassTask`], [`CrowdDataset`] — tasks and
//!   collected vote datasets;
//! * [`GaussianWorkerGenerator`] — the synthetic workload of Section 6.1.
//!
//! ```
//! use jury_model::{Jury, Prior, Answer};
//!
//! // The jury of Example 2: three workers with qualities 0.9, 0.6, 0.6.
//! let jury = Jury::from_qualities(&[0.9, 0.6, 0.6]).unwrap();
//! assert_eq!(jury.size(), 3);
//!
//! // Pr(V = {1,0,0} | t = 0) = 0.1 * 0.6 * 0.6 = 0.036.
//! let votes = [Answer::Yes, Answer::No, Answer::No];
//! let p = jury.voting_likelihood(&votes, Answer::No).unwrap();
//! assert!((p - 0.036).abs() < 1e-12);
//!
//! let _prior = Prior::uniform();
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod answer;
pub mod confusion;
pub mod dataset;
pub mod error;
pub mod generator;
pub mod jury;
pub mod prior;
pub mod stats;
pub mod task;
pub mod worker;

pub use answer::{enumerate_binary_votings, enumerate_label_votings, Answer, Label};
pub use confusion::{ConfusionMatrix, MatrixJury, MatrixPool, MatrixWorker};
pub use dataset::{CollectedVote, CrowdDataset, TaskRecord, WorkerStats};
pub use error::{ModelError, ModelResult};
pub use generator::{GaussianWorkerGenerator, UniformWorkerGenerator};
pub use jury::{feasible_juries, Jury};
pub use prior::{CategoricalPrior, Prior};
pub use task::{DecisionTask, MultiClassTask, TaskId};
pub use worker::{
    log_odds, paper_example_pool, quality_from_log_odds, Worker, WorkerId, WorkerPool,
};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn quality_strategy() -> impl Strategy<Value = f64> {
        (0.0f64..=1.0f64).prop_map(|q| (q * 1000.0).round() / 1000.0)
    }

    proptest! {
        #[test]
        fn worker_construction_never_panics(q in quality_strategy(), c in 0.0f64..10.0) {
            let w = Worker::new(WorkerId(0), q, c).unwrap();
            prop_assert!(w.effective_quality() >= 0.5 - 1e-12);
            prop_assert!(w.effective_quality() <= 1.0);
            prop_assert!(w.log_odds() >= -1e-12);
            prop_assert!(w.log_odds().is_finite());
        }

        #[test]
        fn voting_likelihoods_are_probabilities(
            qualities in proptest::collection::vec(quality_strategy(), 1..8),
            bits in proptest::collection::vec(proptest::bool::ANY, 8),
        ) {
            let jury = Jury::from_qualities(&qualities).unwrap();
            let votes: Vec<Answer> = bits
                .iter()
                .take(jury.size())
                .map(|&b| Answer::from_bool(b))
                .collect();
            for truth in Answer::ALL {
                let p = jury.voting_likelihood(&votes, truth).unwrap();
                prop_assert!((0.0..=1.0).contains(&p));
            }
        }

        #[test]
        fn likelihoods_sum_to_one(
            qualities in proptest::collection::vec(quality_strategy(), 1..6),
        ) {
            let jury = Jury::from_qualities(&qualities).unwrap();
            for truth in Answer::ALL {
                let total: f64 = enumerate_binary_votings(jury.size())
                    .map(|v| jury.voting_likelihood(&v, truth).unwrap())
                    .sum();
                prop_assert!((total - 1.0).abs() < 1e-9);
            }
        }

        #[test]
        fn log_odds_roundtrips(q in 0.01f64..0.99) {
            let back = quality_from_log_odds(log_odds(q));
            prop_assert!((back - q).abs() < 1e-9);
        }

        #[test]
        fn confusion_from_quality_is_row_stochastic(
            q in quality_strategy(),
            l in 2usize..6,
        ) {
            let m = ConfusionMatrix::from_quality(q, l).unwrap();
            for j in 0..l {
                let sum: f64 = (0..l).map(|k| m.prob(Label(j), Label(k))).sum();
                prop_assert!((sum - 1.0).abs() < 1e-9);
            }
        }

        #[test]
        fn feasible_juries_are_feasible(
            n in 1usize..8,
            budget in 0.0f64..10.0,
        ) {
            let costs: Vec<f64> = (0..n).map(|i| 0.5 + i as f64 * 0.3).collect();
            let qualities = vec![0.7; n];
            let pool = WorkerPool::from_qualities_and_costs(&qualities, &costs).unwrap();
            let juries = feasible_juries(&pool, budget);
            prop_assert!(!juries.is_empty(), "the empty jury is always feasible");
            for j in &juries {
                prop_assert!(j.is_feasible(budget));
            }
        }
    }
}
