//! Synthetic worker and task generators used by the paper's experiments.
//!
//! Section 6.1.1: each worker's quality and cost are drawn from Gaussian
//! distributions, `q_i ~ N(µ, σ²)` with `µ = 0.7`, `σ² = 0.05`, and
//! `c_i ~ N(µ̂, σ̂²)` with `µ̂ = 0.05`, `σ̂ = 0.2`. Qualities are clamped into
//! `[0, 1]` and costs into `[0, ∞)`; budgets are expressed in the same
//! normalized units (default `B = 0.5`, `N = 50` candidate workers).

use rand::Rng;
use rand_distr::{Distribution, Normal};
use serde::{Deserialize, Serialize};

use crate::error::ModelResult;
use crate::worker::{Worker, WorkerId, WorkerPool};

/// Default quality mean `µ` from Section 6.1.1.
pub const DEFAULT_QUALITY_MEAN: f64 = 0.7;
/// Default quality variance `σ²` from Section 6.1.1.
pub const DEFAULT_QUALITY_VARIANCE: f64 = 0.05;
/// Default cost mean `µ̂` from Section 6.1.1.
pub const DEFAULT_COST_MEAN: f64 = 0.05;
/// Default cost standard deviation `σ̂` from Section 6.1.1.
pub const DEFAULT_COST_STD_DEV: f64 = 0.2;
/// Default budget `B` from Section 6.1.1.
pub const DEFAULT_BUDGET: f64 = 0.5;
/// Default candidate pool size `N` from Section 6.1.1.
pub const DEFAULT_POOL_SIZE: usize = 50;

/// Generator of synthetic worker pools with Gaussian qualities and costs,
/// mirroring the setup of Section 6.1.1 (which itself follows Cao et al.).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaussianWorkerGenerator {
    quality_mean: f64,
    quality_variance: f64,
    cost_mean: f64,
    cost_std_dev: f64,
    /// Minimum cost after clamping; a tiny positive floor keeps juries from
    /// being free "by accident" while matching the paper's normalized costs.
    min_cost: f64,
}

impl GaussianWorkerGenerator {
    /// The paper's default parameters (`µ = 0.7`, `σ² = 0.05`, `µ̂ = 0.05`,
    /// `σ̂ = 0.2`).
    pub fn paper_defaults() -> Self {
        GaussianWorkerGenerator {
            quality_mean: DEFAULT_QUALITY_MEAN,
            quality_variance: DEFAULT_QUALITY_VARIANCE,
            cost_mean: DEFAULT_COST_MEAN,
            cost_std_dev: DEFAULT_COST_STD_DEV,
            min_cost: 0.001,
        }
    }

    /// Sets the quality mean `µ` (Figure 6(a)/8(a)/9(a) sweep this).
    pub fn with_quality_mean(mut self, mean: f64) -> Self {
        self.quality_mean = mean;
        self
    }

    /// Sets the quality variance `σ²` (Figure 9(a) sweeps this).
    pub fn with_quality_variance(mut self, variance: f64) -> Self {
        self.quality_variance = variance.max(0.0);
        self
    }

    /// Sets the cost mean `µ̂`.
    pub fn with_cost_mean(mut self, mean: f64) -> Self {
        self.cost_mean = mean;
        self
    }

    /// Sets the cost standard deviation `σ̂` (Figure 6(d)/10(c) sweep this).
    pub fn with_cost_std_dev(mut self, std_dev: f64) -> Self {
        self.cost_std_dev = std_dev.max(0.0);
        self
    }

    /// Sets the post-clamping minimum cost.
    pub fn with_min_cost(mut self, min_cost: f64) -> Self {
        self.min_cost = min_cost.max(0.0);
        self
    }

    /// The configured quality mean.
    pub fn quality_mean(&self) -> f64 {
        self.quality_mean
    }

    /// The configured quality variance.
    pub fn quality_variance(&self) -> f64 {
        self.quality_variance
    }

    /// The configured cost mean.
    pub fn cost_mean(&self) -> f64 {
        self.cost_mean
    }

    /// The configured cost standard deviation.
    pub fn cost_std_dev(&self) -> f64 {
        self.cost_std_dev
    }

    /// Draws one quality sample, clamped into `[0, 1]`.
    pub fn sample_quality<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let sigma = self.quality_variance.sqrt();
        let value = if sigma == 0.0 {
            self.quality_mean
        } else {
            Normal::new(self.quality_mean, sigma)
                .expect("finite mean and positive std dev")
                .sample(rng)
        };
        value.clamp(0.0, 1.0)
    }

    /// Draws one cost sample.
    ///
    /// The paper draws `c_i ~ N(µ̂, σ̂²)` with `µ̂ = 0.05`, `σ̂ = 0.2`, which puts
    /// substantial mass below zero; costs are folded back (absolute value)
    /// rather than clamped to ~0, so that the spread parameter σ̂ keeps
    /// controlling how expensive the crowd is — clamping would make half the
    /// workers free and saturate every budget, flattening the Figure 6
    /// comparisons. The result is floored at `min_cost`.
    pub fn sample_cost<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let value = if self.cost_std_dev == 0.0 {
            self.cost_mean
        } else {
            Normal::new(self.cost_mean, self.cost_std_dev)
                .expect("finite mean and positive std dev")
                .sample(rng)
        };
        value.abs().max(self.min_cost)
    }

    /// Generates a pool of `n` candidate workers.
    pub fn generate<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> WorkerPool {
        let workers = (0..n)
            .map(|i| {
                let q = self.sample_quality(rng);
                let c = self.sample_cost(rng);
                Worker::new(WorkerId(i as u32), q, c).expect("clamped samples are valid")
            })
            .collect::<Vec<_>>();
        WorkerPool::from_workers(workers).expect("ids are unique by construction")
    }
}

impl Default for GaussianWorkerGenerator {
    fn default() -> Self {
        GaussianWorkerGenerator::paper_defaults()
    }
}

/// Generator of worker pools with qualities drawn uniformly from a range and
/// costs drawn uniformly from another range; a simple alternative workload
/// used in ablations and tests.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UniformWorkerGenerator {
    quality_range: (f64, f64),
    cost_range: (f64, f64),
}

impl UniformWorkerGenerator {
    /// Creates a generator with qualities in `quality_range` and costs in
    /// `cost_range` (both inclusive).
    pub fn new(quality_range: (f64, f64), cost_range: (f64, f64)) -> ModelResult<Self> {
        let (qlo, qhi) = quality_range;
        if !(0.0..=1.0).contains(&qlo) || !(0.0..=1.0).contains(&qhi) || qlo > qhi {
            return Err(crate::error::ModelError::InvalidQuality {
                value: qlo.min(qhi),
            });
        }
        let (clo, chi) = cost_range;
        if clo < 0.0 || clo > chi || !clo.is_finite() || !chi.is_finite() {
            return Err(crate::error::ModelError::InvalidCost { value: clo });
        }
        Ok(UniformWorkerGenerator {
            quality_range,
            cost_range,
        })
    }

    /// Generates a pool of `n` candidate workers.
    pub fn generate<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> WorkerPool {
        let workers = (0..n)
            .map(|i| {
                let q = if self.quality_range.0 == self.quality_range.1 {
                    self.quality_range.0
                } else {
                    rng.gen_range(self.quality_range.0..=self.quality_range.1)
                };
                let c = if self.cost_range.0 == self.cost_range.1 {
                    self.cost_range.0
                } else {
                    rng.gen_range(self.cost_range.0..=self.cost_range.1)
                };
                Worker::new(WorkerId(i as u32), q, c).expect("ranges are validated")
            })
            .collect::<Vec<_>>();
        WorkerPool::from_workers(workers).expect("ids are unique by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{mean, std_dev};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn paper_defaults_match_section_6_1_1() {
        let g = GaussianWorkerGenerator::paper_defaults();
        assert!((g.quality_mean() - 0.7).abs() < 1e-12);
        assert!((g.quality_variance() - 0.05).abs() < 1e-12);
        assert!((g.cost_mean() - 0.05).abs() < 1e-12);
        assert!((g.cost_std_dev() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn generated_workers_are_valid_and_reproducible() {
        let g = GaussianWorkerGenerator::paper_defaults();
        let mut rng1 = StdRng::seed_from_u64(42);
        let mut rng2 = StdRng::seed_from_u64(42);
        let pool1 = g.generate(100, &mut rng1);
        let pool2 = g.generate(100, &mut rng2);
        assert_eq!(pool1, pool2, "same seed must reproduce the same pool");
        assert_eq!(pool1.len(), 100);
        for w in pool1.iter() {
            assert!((0.0..=1.0).contains(&w.quality()));
            assert!(w.cost() >= 0.0);
        }
    }

    #[test]
    fn generated_quality_distribution_tracks_parameters() {
        let g = GaussianWorkerGenerator::paper_defaults();
        let mut rng = StdRng::seed_from_u64(7);
        let pool = g.generate(5_000, &mut rng);
        let qualities: Vec<f64> = pool.iter().map(|w| w.quality()).collect();
        let m = mean(&qualities);
        // Clamping into [0, 1] pulls the mean slightly; allow a loose band.
        assert!((m - 0.7).abs() < 0.03, "mean quality {m} far from 0.7");
        let sd = std_dev(&qualities);
        assert!(
            (sd - 0.05f64.sqrt()).abs() < 0.05,
            "std dev {sd} far from sqrt(0.05)"
        );
    }

    #[test]
    fn zero_variance_generators_are_deterministic() {
        let g = GaussianWorkerGenerator::paper_defaults()
            .with_quality_variance(0.0)
            .with_cost_std_dev(0.0)
            .with_cost_mean(0.1);
        let mut rng = StdRng::seed_from_u64(1);
        let pool = g.generate(10, &mut rng);
        for w in pool.iter() {
            assert!((w.quality() - 0.7).abs() < 1e-12);
            assert!((w.cost() - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn builder_setters_update_parameters() {
        let g = GaussianWorkerGenerator::paper_defaults()
            .with_quality_mean(0.9)
            .with_quality_variance(0.01)
            .with_cost_mean(0.2)
            .with_cost_std_dev(0.5)
            .with_min_cost(0.01);
        assert!((g.quality_mean() - 0.9).abs() < 1e-12);
        assert!((g.quality_variance() - 0.01).abs() < 1e-12);
        assert!((g.cost_mean() - 0.2).abs() < 1e-12);
        assert!((g.cost_std_dev() - 0.5).abs() < 1e-12);
        let mut rng = StdRng::seed_from_u64(3);
        let pool = g.generate(50, &mut rng);
        assert!(pool.iter().all(|w| w.cost() >= 0.01));
    }

    #[test]
    fn uniform_generator_respects_ranges() {
        let g = UniformWorkerGenerator::new((0.6, 0.9), (1.0, 2.0)).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let pool = g.generate(200, &mut rng);
        for w in pool.iter() {
            assert!((0.6..=0.9).contains(&w.quality()));
            assert!((1.0..=2.0).contains(&w.cost()));
        }
    }

    #[test]
    fn uniform_generator_validation() {
        assert!(UniformWorkerGenerator::new((0.9, 0.6), (0.0, 1.0)).is_err());
        assert!(UniformWorkerGenerator::new((0.0, 1.2), (0.0, 1.0)).is_err());
        assert!(UniformWorkerGenerator::new((0.5, 0.9), (2.0, 1.0)).is_err());
        assert!(UniformWorkerGenerator::new((0.5, 0.9), (-1.0, 1.0)).is_err());
        // Degenerate but valid point ranges.
        let g = UniformWorkerGenerator::new((0.7, 0.7), (1.0, 1.0)).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let pool = g.generate(5, &mut rng);
        assert!(pool.iter().all(|w| (w.quality() - 0.7).abs() < 1e-12));
    }
}
