//! Workers and worker pools.
//!
//! Following the worker model of Section 2.1, each worker `j_i` is described
//! by a quality `q_i ∈ [0, 1]` — the probability that she votes correctly —
//! and a cost `c_i` — the monetary incentive she requires per vote. Both are
//! assumed to be known in advance (the paper cites prior work on estimating
//! them; `jury-sim` provides such estimators for the simulated platform).

use serde::{Deserialize, Serialize};

use crate::error::{ModelError, ModelResult};

/// Identifier of a worker inside a [`WorkerPool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct WorkerId(pub u32);

impl WorkerId {
    /// Returns the raw numeric id.
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl std::fmt::Display for WorkerId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "w{}", self.0)
    }
}

/// A crowd worker with a quality and a cost (the paper's `(q_i, c_i)` pair).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Worker {
    id: WorkerId,
    quality: f64,
    cost: f64,
}

impl Worker {
    /// Creates a worker, validating that `quality ∈ [0, 1]` and `cost ≥ 0`.
    pub fn new(id: WorkerId, quality: f64, cost: f64) -> ModelResult<Self> {
        if !(0.0..=1.0).contains(&quality) || !quality.is_finite() {
            return Err(ModelError::InvalidQuality { value: quality });
        }
        if !cost.is_finite() || cost < 0.0 {
            return Err(ModelError::InvalidCost { value: cost });
        }
        Ok(Worker { id, quality, cost })
    }

    /// Creates a free (zero-cost) worker; useful for pseudo-workers such as
    /// the prior worker of Theorem 3 and in tests.
    pub fn free(id: WorkerId, quality: f64) -> ModelResult<Self> {
        Worker::new(id, quality, 0.0)
    }

    /// The worker's identifier.
    #[inline]
    pub fn id(&self) -> WorkerId {
        self.id
    }

    /// The worker's quality `q_i = Pr(v_i = t)`.
    #[inline]
    pub fn quality(&self) -> f64 {
        self.quality
    }

    /// The worker's cost `c_i`.
    #[inline]
    pub fn cost(&self) -> f64 {
        self.cost
    }

    /// The quality after the paper's reinterpretation of low-quality workers
    /// (Section 3.3): a vote from a worker with `q < 0.5` is equivalent to the
    /// opposite vote from a worker with quality `1 − q > 0.5`, so the
    /// *effective* quality is `max(q, 1 − q) ≥ 0.5`.
    #[inline]
    pub fn effective_quality(&self) -> f64 {
        self.quality.max(1.0 - self.quality)
    }

    /// Whether this worker's votes must be flipped to use the effective
    /// quality, i.e. whether `q_i < 0.5`.
    #[inline]
    pub fn is_adversarial(&self) -> bool {
        self.quality < 0.5
    }

    /// The log-odds `φ(q) = ln(q / (1 − q))` of the *effective* quality,
    /// the weight used throughout the paper's Section 4 (Equation 6).
    ///
    /// The effective quality is clamped slightly away from `1` so that the
    /// value stays finite even for perfect workers.
    #[inline]
    pub fn log_odds(&self) -> f64 {
        log_odds(self.effective_quality())
    }

    /// Returns a copy of this worker with a different quality.
    pub fn with_quality(&self, quality: f64) -> ModelResult<Self> {
        Worker::new(self.id, quality, self.cost)
    }

    /// Returns a copy of this worker with a different cost.
    pub fn with_cost(&self, cost: f64) -> ModelResult<Self> {
        Worker::new(self.id, self.quality, cost)
    }
}

/// Quality values are clamped to `[MIN_QUALITY_CLAMP, 1 - MIN_QUALITY_CLAMP]`
/// before taking log-odds so that `φ(q)` stays finite.
pub const QUALITY_EPSILON: f64 = 1e-9;

/// The log-odds function `φ(q) = ln(q / (1 − q))` used as the vote weight in
/// the paper's Section 4 (Equation 6), clamped away from `0` and `1`.
#[inline]
pub fn log_odds(quality: f64) -> f64 {
    let q = quality.clamp(QUALITY_EPSILON, 1.0 - QUALITY_EPSILON);
    (q / (1.0 - q)).ln()
}

/// The inverse of [`log_odds`]: `q = e^φ / (1 + e^φ)`.
#[inline]
pub fn quality_from_log_odds(phi: f64) -> f64 {
    let e = phi.exp();
    e / (1.0 + e)
}

/// A pool of candidate workers `W = {j_1, ..., j_N}` from which juries are
/// drawn.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct WorkerPool {
    workers: Vec<Worker>,
}

impl WorkerPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        WorkerPool {
            workers: Vec::new(),
        }
    }

    /// Creates a pool from a list of workers, rejecting duplicate ids.
    pub fn from_workers(workers: Vec<Worker>) -> ModelResult<Self> {
        let mut pool = WorkerPool::new();
        for w in workers {
            pool.push(w)?;
        }
        Ok(pool)
    }

    /// Creates a pool from parallel slices of qualities and costs, assigning
    /// sequential ids starting at zero.
    pub fn from_qualities_and_costs(qualities: &[f64], costs: &[f64]) -> ModelResult<Self> {
        assert_eq!(
            qualities.len(),
            costs.len(),
            "qualities and costs must have the same length"
        );
        let workers = qualities
            .iter()
            .zip(costs.iter())
            .enumerate()
            .map(|(i, (&q, &c))| Worker::new(WorkerId(i as u32), q, c))
            .collect::<ModelResult<Vec<_>>>()?;
        WorkerPool::from_workers(workers)
    }

    /// Creates a pool of free workers with the given qualities.
    pub fn from_qualities(qualities: &[f64]) -> ModelResult<Self> {
        let costs = vec![0.0; qualities.len()];
        WorkerPool::from_qualities_and_costs(qualities, &costs)
    }

    /// Creates a pool from `(id, quality, cost)` estimate triples — the
    /// snapshot constructor used by streaming quality registries, which know
    /// their workers by explicit id rather than by position.
    ///
    /// Unlike [`Self::from_qualities_and_costs`] the ids are caller-supplied
    /// (and deduplicated), so a snapshot keeps the same ids the answers were
    /// observed under.
    pub fn from_estimates(estimates: &[(WorkerId, f64, f64)]) -> ModelResult<Self> {
        let workers = estimates
            .iter()
            .map(|&(id, quality, cost)| Worker::new(id, quality, cost))
            .collect::<ModelResult<Vec<_>>>()?;
        WorkerPool::from_workers(workers)
    }

    /// Adds a worker, rejecting duplicate ids.
    pub fn push(&mut self, worker: Worker) -> ModelResult<()> {
        if self.contains(worker.id()) {
            return Err(ModelError::DuplicateWorker {
                id: worker.id().raw(),
            });
        }
        self.workers.push(worker);
        Ok(())
    }

    /// Number of candidate workers `N`.
    #[inline]
    pub fn len(&self) -> usize {
        self.workers.len()
    }

    /// Whether the pool is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.workers.is_empty()
    }

    /// Whether a worker with the given id is in the pool.
    pub fn contains(&self, id: WorkerId) -> bool {
        self.workers.iter().any(|w| w.id() == id)
    }

    /// Looks up a worker by id.
    pub fn get(&self, id: WorkerId) -> ModelResult<&Worker> {
        self.workers
            .iter()
            .find(|w| w.id() == id)
            .ok_or(ModelError::UnknownWorker { id: id.raw() })
    }

    /// The workers in insertion order.
    #[inline]
    pub fn workers(&self) -> &[Worker] {
        &self.workers
    }

    /// Iterates over the workers in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Worker> {
        self.workers.iter()
    }

    /// All worker ids in insertion order.
    pub fn ids(&self) -> Vec<WorkerId> {
        self.workers.iter().map(|w| w.id()).collect()
    }

    /// Sum of all worker costs; selecting the entire pool is feasible iff the
    /// budget is at least this value (the discussion following Lemma 1).
    pub fn total_cost(&self) -> f64 {
        self.workers.iter().map(|w| w.cost()).sum()
    }

    /// Mean worker quality.
    pub fn mean_quality(&self) -> f64 {
        if self.workers.is_empty() {
            return 0.0;
        }
        self.workers.iter().map(|w| w.quality()).sum::<f64>() / self.workers.len() as f64
    }

    /// Selects a subset of workers by id, preserving the requested order.
    pub fn select(&self, ids: &[WorkerId]) -> ModelResult<Vec<Worker>> {
        ids.iter().map(|&id| self.get(id).cloned()).collect()
    }

    /// Returns the workers sorted by descending quality (ties broken by id so
    /// the order is deterministic).
    pub fn sorted_by_quality_desc(&self) -> Vec<Worker> {
        let mut sorted = self.workers.clone();
        sorted.sort_by(|a, b| {
            b.quality()
                .partial_cmp(&a.quality())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.id().cmp(&b.id()))
        });
        sorted
    }
}

impl<'a> IntoIterator for &'a WorkerPool {
    type Item = &'a Worker;
    type IntoIter = std::slice::Iter<'a, Worker>;

    fn into_iter(self) -> Self::IntoIter {
        self.workers.iter()
    }
}

/// The seven-worker candidate pool of the paper's running example (Figure 1):
/// workers A–G with qualities `0.77, 0.7, 0.8, 0.65, 0.6, 0.6, 0.75` and costs
/// `9, 5, 6, 7, 5, 2, 3`.
pub fn paper_example_pool() -> WorkerPool {
    let qualities = [0.77, 0.70, 0.80, 0.65, 0.60, 0.60, 0.75];
    let costs = [9.0, 5.0, 6.0, 7.0, 5.0, 2.0, 3.0];
    WorkerPool::from_qualities_and_costs(&qualities, &costs)
        .expect("the paper's example pool is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_validation() {
        assert!(Worker::new(WorkerId(0), 0.7, 1.0).is_ok());
        assert!(Worker::new(WorkerId(0), -0.1, 1.0).is_err());
        assert!(Worker::new(WorkerId(0), 1.1, 1.0).is_err());
        assert!(Worker::new(WorkerId(0), f64::NAN, 1.0).is_err());
        assert!(Worker::new(WorkerId(0), 0.7, -1.0).is_err());
        assert!(Worker::new(WorkerId(0), 0.7, f64::INFINITY).is_err());
        assert!(Worker::new(WorkerId(0), 0.0, 0.0).is_ok());
        assert!(Worker::new(WorkerId(0), 1.0, 0.0).is_ok());
    }

    #[test]
    fn effective_quality_reinterprets_low_quality_workers() {
        let good = Worker::free(WorkerId(0), 0.8).unwrap();
        let bad = Worker::free(WorkerId(1), 0.2).unwrap();
        assert!(!good.is_adversarial());
        assert!(bad.is_adversarial());
        assert!((good.effective_quality() - 0.8).abs() < 1e-12);
        assert!((bad.effective_quality() - 0.8).abs() < 1e-12);
        // Their log-odds weights coincide after reinterpretation.
        assert!((good.log_odds() - bad.log_odds()).abs() < 1e-12);
    }

    #[test]
    fn log_odds_is_increasing_and_zero_at_half() {
        assert!(log_odds(0.5).abs() < 1e-12);
        assert!(log_odds(0.6) > 0.0);
        assert!(log_odds(0.9) > log_odds(0.6));
        // φ(0.99) < 5 — the bound used in the paper's Section 4.4.
        assert!(log_odds(0.99) < 5.0);
        // Perfect workers stay finite thanks to clamping.
        assert!(log_odds(1.0).is_finite());
        assert!(log_odds(0.0).is_finite());
    }

    #[test]
    fn log_odds_roundtrip() {
        for &q in &[0.5, 0.6, 0.7, 0.85, 0.99] {
            let back = quality_from_log_odds(log_odds(q));
            assert!((back - q).abs() < 1e-9, "roundtrip failed for {q}: {back}");
        }
    }

    #[test]
    fn with_quality_and_cost_preserve_other_fields() {
        let w = Worker::new(WorkerId(3), 0.7, 2.0).unwrap();
        let w2 = w.with_quality(0.9).unwrap();
        assert_eq!(w2.id(), WorkerId(3));
        assert!((w2.cost() - 2.0).abs() < 1e-12);
        let w3 = w.with_cost(5.0).unwrap();
        assert!((w3.quality() - 0.7).abs() < 1e-12);
        assert!(w.with_quality(1.5).is_err());
    }

    #[test]
    fn pool_construction_and_lookup() {
        let pool =
            WorkerPool::from_qualities_and_costs(&[0.9, 0.6, 0.6], &[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(pool.len(), 3);
        assert!(!pool.is_empty());
        assert!(pool.contains(WorkerId(1)));
        assert!(!pool.contains(WorkerId(9)));
        assert!((pool.get(WorkerId(2)).unwrap().cost() - 3.0).abs() < 1e-12);
        assert!(pool.get(WorkerId(9)).is_err());
        assert!((pool.total_cost() - 6.0).abs() < 1e-12);
        assert!((pool.mean_quality() - 0.7).abs() < 1e-12);
        assert_eq!(pool.ids(), vec![WorkerId(0), WorkerId(1), WorkerId(2)]);
    }

    #[test]
    fn pool_rejects_duplicates() {
        let mut pool = WorkerPool::new();
        pool.push(Worker::free(WorkerId(1), 0.7).unwrap()).unwrap();
        let err = pool
            .push(Worker::free(WorkerId(1), 0.8).unwrap())
            .unwrap_err();
        assert_eq!(err, ModelError::DuplicateWorker { id: 1 });
    }

    #[test]
    fn pool_select_preserves_order() {
        let pool = paper_example_pool();
        let picked = pool.select(&[WorkerId(2), WorkerId(0)]).unwrap();
        assert_eq!(picked.len(), 2);
        assert!((picked[0].quality() - 0.80).abs() < 1e-12);
        assert!((picked[1].quality() - 0.77).abs() < 1e-12);
        assert!(pool.select(&[WorkerId(100)]).is_err());
    }

    #[test]
    fn sorted_by_quality_desc_is_deterministic() {
        let pool = WorkerPool::from_qualities(&[0.6, 0.9, 0.6, 0.8]).unwrap();
        let sorted = pool.sorted_by_quality_desc();
        let qualities: Vec<f64> = sorted.iter().map(|w| w.quality()).collect();
        assert_eq!(qualities, vec![0.9, 0.8, 0.6, 0.6]);
        // Equal qualities are ordered by id.
        assert_eq!(sorted[2].id(), WorkerId(0));
        assert_eq!(sorted[3].id(), WorkerId(2));
    }

    #[test]
    fn paper_example_pool_matches_figure_1() {
        let pool = paper_example_pool();
        assert_eq!(pool.len(), 7);
        // Worker A: (0.77, $9); worker G: (0.75, $3).
        assert!((pool.get(WorkerId(0)).unwrap().quality() - 0.77).abs() < 1e-12);
        assert!((pool.get(WorkerId(0)).unwrap().cost() - 9.0).abs() < 1e-12);
        assert!((pool.get(WorkerId(6)).unwrap().quality() - 0.75).abs() < 1e-12);
        assert!((pool.get(WorkerId(6)).unwrap().cost() - 3.0).abs() < 1e-12);
        assert!((pool.total_cost() - 37.0).abs() < 1e-12);
    }

    #[test]
    fn mean_quality_of_empty_pool_is_zero() {
        assert_eq!(WorkerPool::new().mean_quality(), 0.0);
    }
}
