//! Confusion-matrix worker model (Section 7).
//!
//! Beyond the single-quality worker model, several works model each worker as
//! an `ℓ × ℓ` confusion matrix `C` where `C[j][k]` is the probability that the
//! worker votes for label `k` when the true label is `j`. The paper's
//! extensions (Section 7) show that Bayesian voting remains the optimal
//! strategy under this model and sketch how jury-quality computation carries
//! over; this module provides the matrix itself plus the helpers those
//! extensions need.

use serde::{Deserialize, Serialize};

use crate::answer::Label;
use crate::error::{ModelError, ModelResult};
use crate::worker::WorkerId;

/// Tolerance for row-stochasticity checks.
const ROW_SUM_TOLERANCE: f64 = 1e-6;

/// A row-stochastic confusion matrix over `ℓ` labels.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    num_choices: usize,
    /// Row-major storage: `entries[truth * num_choices + vote]`.
    entries: Vec<f64>,
}

impl ConfusionMatrix {
    /// Creates a confusion matrix from row-major entries, validating that
    /// every row is a probability distribution.
    pub fn new(num_choices: usize, entries: Vec<f64>) -> ModelResult<Self> {
        if num_choices < 2 {
            return Err(ModelError::InvalidConfusionMatrix {
                reason: format!("{num_choices} choices; need at least 2"),
            });
        }
        if entries.len() != num_choices * num_choices {
            return Err(ModelError::InvalidConfusionMatrix {
                reason: format!(
                    "expected {} entries for an {num_choices}x{num_choices} matrix, got {}",
                    num_choices * num_choices,
                    entries.len()
                ),
            });
        }
        for (i, &p) in entries.iter().enumerate() {
            if !(0.0..=1.0).contains(&p) || !p.is_finite() {
                return Err(ModelError::InvalidConfusionMatrix {
                    reason: format!("entry {i} is {p}, not a probability"),
                });
            }
        }
        for row in 0..num_choices {
            let sum: f64 = entries[row * num_choices..(row + 1) * num_choices]
                .iter()
                .sum();
            if (sum - 1.0).abs() > ROW_SUM_TOLERANCE {
                return Err(ModelError::InvalidConfusionMatrix {
                    reason: format!("row {row} sums to {sum}, expected 1"),
                });
            }
        }
        Ok(ConfusionMatrix {
            num_choices,
            entries,
        })
    }

    /// Creates the symmetric confusion matrix induced by a single quality
    /// score `q`: the worker votes for the true label with probability `q`
    /// and spreads the remaining `1 − q` uniformly over the other labels.
    ///
    /// For `ℓ = 2` this recovers the paper's single-parameter worker model.
    pub fn from_quality(quality: f64, num_choices: usize) -> ModelResult<Self> {
        if !(0.0..=1.0).contains(&quality) || !quality.is_finite() {
            return Err(ModelError::InvalidQuality { value: quality });
        }
        if num_choices < 2 {
            return Err(ModelError::InvalidConfusionMatrix {
                reason: format!("{num_choices} choices; need at least 2"),
            });
        }
        let off = (1.0 - quality) / (num_choices as f64 - 1.0);
        let mut entries = vec![off; num_choices * num_choices];
        for j in 0..num_choices {
            entries[j * num_choices + j] = quality;
        }
        Ok(ConfusionMatrix {
            num_choices,
            entries,
        })
    }

    /// The identity confusion matrix (a perfect worker).
    pub fn identity(num_choices: usize) -> ModelResult<Self> {
        ConfusionMatrix::from_quality(1.0, num_choices)
    }

    /// A uniform-random spammer: every row is the uniform distribution.
    pub fn spammer(num_choices: usize) -> ModelResult<Self> {
        if num_choices < 2 {
            return Err(ModelError::InvalidConfusionMatrix {
                reason: format!("{num_choices} choices; need at least 2"),
            });
        }
        let p = 1.0 / num_choices as f64;
        Ok(ConfusionMatrix {
            num_choices,
            entries: vec![p; num_choices * num_choices],
        })
    }

    /// Creates a confusion matrix from row-major **observation counts** by
    /// normalizing each row into a distribution — the snapshot constructor
    /// for Dirichlet-counted streaming estimates (`counts[j·ℓ + k]` = times
    /// the worker voted `k` on a task whose truth was `j`, plus any
    /// pseudo-count prior). A row with zero mass (a truth label never
    /// observed) becomes the uniform distribution, matching an
    /// uninformative Dirichlet posterior.
    pub fn from_counts(num_choices: usize, counts: &[f64]) -> ModelResult<Self> {
        if num_choices < 2 {
            return Err(ModelError::InvalidConfusionMatrix {
                reason: format!("{num_choices} choices; need at least 2"),
            });
        }
        if counts.len() != num_choices * num_choices {
            return Err(ModelError::InvalidConfusionMatrix {
                reason: format!(
                    "expected {} counts for an {num_choices}x{num_choices} matrix, got {}",
                    num_choices * num_choices,
                    counts.len()
                ),
            });
        }
        for (i, &c) in counts.iter().enumerate() {
            if !c.is_finite() || c < 0.0 {
                return Err(ModelError::InvalidConfusionMatrix {
                    reason: format!("count {i} is {c}, not a finite non-negative number"),
                });
            }
        }
        let mut entries = vec![0.0; num_choices * num_choices];
        for row in 0..num_choices {
            let slice = &counts[row * num_choices..(row + 1) * num_choices];
            let total: f64 = slice.iter().sum();
            let out = &mut entries[row * num_choices..(row + 1) * num_choices];
            if total > 0.0 {
                for (o, &c) in out.iter_mut().zip(slice) {
                    *o = c / total;
                }
            } else {
                out.fill(1.0 / num_choices as f64);
            }
        }
        Ok(ConfusionMatrix {
            num_choices,
            entries,
        })
    }

    /// Number of labels `ℓ`.
    #[inline]
    pub fn num_choices(&self) -> usize {
        self.num_choices
    }

    /// `Pr(vote = k | truth = j)`.
    #[inline]
    pub fn prob(&self, truth: Label, vote: Label) -> f64 {
        let (j, k) = (truth.index(), vote.index());
        if j >= self.num_choices || k >= self.num_choices {
            return 0.0;
        }
        self.entries[j * self.num_choices + k]
    }

    /// The row of vote probabilities for a given true label.
    pub fn row(&self, truth: Label) -> &[f64] {
        let j = truth.index().min(self.num_choices - 1);
        &self.entries[j * self.num_choices..(j + 1) * self.num_choices]
    }

    /// The average diagonal entry — the worker's expected accuracy under a
    /// uniform distribution over true labels. For `ℓ = 2` this coincides with
    /// the single-quality model when the matrix is symmetric.
    pub fn mean_accuracy(&self) -> f64 {
        (0..self.num_choices)
            .map(|j| self.entries[j * self.num_choices + j])
            .sum::<f64>()
            / self.num_choices as f64
    }

    /// A spammer score in `[0, 1]` following the intuition of Raykar & Yu
    /// (cited as \[34\] in the paper): spammers vote independently of the true
    /// label, so all rows of their confusion matrix are (nearly) identical.
    /// The score is the mean total-variation distance between rows and the
    /// column-average row; `0` means pure spammer, larger means informative.
    pub fn informativeness(&self) -> f64 {
        let l = self.num_choices;
        let mut mean_row = vec![0.0; l];
        for j in 0..l {
            for (k, mean) in mean_row.iter_mut().enumerate() {
                *mean += self.entries[j * l + k] / l as f64;
            }
        }
        let mut score = 0.0;
        for j in 0..l {
            let tv: f64 = (0..l)
                .map(|k| (self.entries[j * l + k] - mean_row[k]).abs())
                .sum::<f64>()
                / 2.0;
            score += tv / l as f64;
        }
        score
    }

    /// For a two-label matrix, the per-class accuracies `(sensitivity,
    /// specificity)` — `Pr(vote=0|t=0)` and `Pr(vote=1|t=1)` — used by the
    /// sensitivity/specificity worker model the paper cites (\[45\]).
    pub fn binary_accuracies(&self) -> ModelResult<(f64, f64)> {
        if self.num_choices != 2 {
            return Err(ModelError::InvalidConfusionMatrix {
                reason: format!("{}-class matrix has no binary accuracies", self.num_choices),
            });
        }
        Ok((self.entries[0], self.entries[3]))
    }
}

/// A worker under the confusion-matrix model: an id, a matrix, and a cost.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatrixWorker {
    id: WorkerId,
    confusion: ConfusionMatrix,
    cost: f64,
}

impl MatrixWorker {
    /// Creates a matrix worker, validating the cost.
    pub fn new(id: WorkerId, confusion: ConfusionMatrix, cost: f64) -> ModelResult<Self> {
        if !cost.is_finite() || cost < 0.0 {
            return Err(ModelError::InvalidCost { value: cost });
        }
        Ok(MatrixWorker {
            id,
            confusion,
            cost,
        })
    }

    /// The worker id.
    #[inline]
    pub fn id(&self) -> WorkerId {
        self.id
    }

    /// The confusion matrix.
    #[inline]
    pub fn confusion(&self) -> &ConfusionMatrix {
        &self.confusion
    }

    /// The cost per vote.
    #[inline]
    pub fn cost(&self) -> f64 {
        self.cost
    }

    /// `Pr(vote = k | truth = j)` for this worker.
    #[inline]
    pub fn prob(&self, truth: Label, vote: Label) -> f64 {
        self.confusion.prob(truth, vote)
    }
}

/// A jury of confusion-matrix workers (the multi-class analogue of
/// [`crate::jury::Jury`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatrixJury {
    workers: Vec<MatrixWorker>,
    num_choices: usize,
}

impl MatrixJury {
    /// Creates a multi-class jury; all members must share the same label
    /// space.
    pub fn new(workers: Vec<MatrixWorker>) -> ModelResult<Self> {
        let num_choices =
            workers
                .first()
                .map(|w| w.confusion().num_choices())
                .ok_or(ModelError::Empty {
                    what: "matrix jury",
                })?;
        for w in &workers {
            if w.confusion().num_choices() != num_choices {
                return Err(ModelError::InvalidConfusionMatrix {
                    reason: format!(
                        "worker {} has {} choices but the jury uses {}",
                        w.id(),
                        w.confusion().num_choices(),
                        num_choices
                    ),
                });
            }
        }
        Ok(MatrixJury {
            workers,
            num_choices,
        })
    }

    /// Creates a jury of symmetric-confusion workers from plain qualities.
    pub fn from_qualities(qualities: &[f64], num_choices: usize) -> ModelResult<Self> {
        let workers = qualities
            .iter()
            .enumerate()
            .map(|(i, &q)| {
                MatrixWorker::new(
                    WorkerId(i as u32),
                    ConfusionMatrix::from_quality(q, num_choices)?,
                    0.0,
                )
            })
            .collect::<ModelResult<Vec<_>>>()?;
        MatrixJury::new(workers)
    }

    /// Number of jurors.
    #[inline]
    pub fn size(&self) -> usize {
        self.workers.len()
    }

    /// Number of labels `ℓ`.
    #[inline]
    pub fn num_choices(&self) -> usize {
        self.num_choices
    }

    /// The jurors in order.
    #[inline]
    pub fn workers(&self) -> &[MatrixWorker] {
        &self.workers
    }

    /// The jury cost.
    pub fn cost(&self) -> f64 {
        self.workers.iter().map(|w| w.cost()).sum()
    }

    /// `Pr(V | t = truth)` for a multi-class voting, assuming independence.
    pub fn voting_likelihood(&self, votes: &[Label], truth: Label) -> ModelResult<f64> {
        if votes.len() != self.workers.len() {
            return Err(ModelError::VoteCountMismatch {
                votes: votes.len(),
                jurors: self.workers.len(),
            });
        }
        let mut p = 1.0;
        for (worker, &vote) in self.workers.iter().zip(votes.iter()) {
            vote.validate(self.num_choices)?;
            p *= worker.prob(truth, vote);
        }
        Ok(p)
    }
}

/// A candidate pool of confusion-matrix workers — the multi-class analogue
/// of [`crate::worker::WorkerPool`]: unique ids, one shared label space.
///
/// The pool is what multi-class jury selection draws from; its
/// [`Self::shadow_pool`] projection (same ids and costs, mean-accuracy
/// qualities) lets the binary JSP machinery carry the candidate set while
/// the multi-class objective looks the full matrices back up by id.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatrixPool {
    workers: Vec<MatrixWorker>,
    num_choices: usize,
}

impl MatrixPool {
    /// Creates a pool, validating that it is non-empty, that every worker
    /// shares the same label space, and that ids are unique.
    pub fn new(workers: Vec<MatrixWorker>) -> ModelResult<Self> {
        let num_choices =
            workers
                .first()
                .map(|w| w.confusion().num_choices())
                .ok_or(ModelError::Empty {
                    what: "matrix pool",
                })?;
        for (i, worker) in workers.iter().enumerate() {
            if worker.confusion().num_choices() != num_choices {
                return Err(ModelError::InvalidConfusionMatrix {
                    reason: format!(
                        "worker {} has {} choices but the pool uses {}",
                        worker.id(),
                        worker.confusion().num_choices(),
                        num_choices
                    ),
                });
            }
            if workers[..i].iter().any(|w| w.id() == worker.id()) {
                return Err(ModelError::DuplicateWorker {
                    id: worker.id().raw(),
                });
            }
        }
        Ok(MatrixPool {
            workers,
            num_choices,
        })
    }

    /// Creates a pool of symmetric-confusion workers from plain qualities
    /// and costs (ids `0..n`).
    pub fn from_qualities_and_costs(
        qualities: &[f64],
        costs: &[f64],
        num_choices: usize,
    ) -> ModelResult<Self> {
        if qualities.len() != costs.len() {
            return Err(ModelError::InvalidConfusionMatrix {
                reason: format!("{} qualities but {} costs", qualities.len(), costs.len()),
            });
        }
        let workers = qualities
            .iter()
            .zip(costs)
            .enumerate()
            .map(|(i, (&q, &c))| {
                MatrixWorker::new(
                    WorkerId(i as u32),
                    ConfusionMatrix::from_quality(q, num_choices)?,
                    c,
                )
            })
            .collect::<ModelResult<Vec<_>>>()?;
        MatrixPool::new(workers)
    }

    /// Creates a pool from `(id, confusion, cost)` estimate triples — the
    /// snapshot constructor used by streaming quality registries (see
    /// [`crate::WorkerPool::from_estimates`] for the binary sibling).
    pub fn from_confusions(estimates: Vec<(WorkerId, ConfusionMatrix, f64)>) -> ModelResult<Self> {
        let workers = estimates
            .into_iter()
            .map(|(id, confusion, cost)| MatrixWorker::new(id, confusion, cost))
            .collect::<ModelResult<Vec<_>>>()?;
        MatrixPool::new(workers)
    }

    /// Number of candidate workers.
    #[inline]
    pub fn len(&self) -> usize {
        self.workers.len()
    }

    /// Always `false` — pools are validated non-empty — but kept for
    /// idiomatic symmetry with the binary pool.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.workers.is_empty()
    }

    /// Number of labels `ℓ`.
    #[inline]
    pub fn num_choices(&self) -> usize {
        self.num_choices
    }

    /// The workers in insertion order.
    #[inline]
    pub fn workers(&self) -> &[MatrixWorker] {
        &self.workers
    }

    /// Iterates over the workers in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &MatrixWorker> {
        self.workers.iter()
    }

    /// Looks up a worker by id.
    pub fn get(&self, id: WorkerId) -> ModelResult<&MatrixWorker> {
        self.workers
            .iter()
            .find(|w| w.id() == id)
            .ok_or(ModelError::UnknownWorker { id: id.raw() })
    }

    /// Sum of all worker costs.
    pub fn total_cost(&self) -> f64 {
        self.workers.iter().map(|w| w.cost()).sum()
    }

    /// Builds the [`MatrixJury`] of the given worker ids.
    pub fn jury(&self, ids: &[WorkerId]) -> ModelResult<MatrixJury> {
        let workers = ids
            .iter()
            .map(|&id| self.get(id).cloned())
            .collect::<ModelResult<Vec<_>>>()?;
        MatrixJury::new(workers)
    }

    /// Projects the pool onto the binary worker model: same ids and costs,
    /// with each worker's quality set to her mean diagonal accuracy. The
    /// projection carries the candidate set (and cost structure) through
    /// the binary JSP machinery; objective values always come from the full
    /// confusion matrices, never from these proxy qualities.
    pub fn shadow_pool(&self) -> crate::worker::WorkerPool {
        let workers = self
            .workers
            .iter()
            .map(|w| {
                crate::worker::Worker::new(
                    w.id(),
                    w.confusion().mean_accuracy().clamp(0.0, 1.0),
                    w.cost(),
                )
                .expect("mean accuracies and validated costs are always in range")
            })
            .collect();
        crate::worker::WorkerPool::from_workers(workers)
            .expect("pool ids are unique by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_quality_builds_symmetric_matrix() {
        let m = ConfusionMatrix::from_quality(0.7, 3).unwrap();
        assert_eq!(m.num_choices(), 3);
        assert!((m.prob(Label(0), Label(0)) - 0.7).abs() < 1e-12);
        assert!((m.prob(Label(0), Label(1)) - 0.15).abs() < 1e-12);
        assert!((m.prob(Label(2), Label(2)) - 0.7).abs() < 1e-12);
        assert!((m.mean_accuracy() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn validation_rejects_bad_rows() {
        assert!(ConfusionMatrix::new(2, vec![0.9, 0.2, 0.1, 0.9]).is_err());
        assert!(ConfusionMatrix::new(2, vec![0.9, 0.1, 0.1]).is_err());
        assert!(ConfusionMatrix::new(1, vec![1.0]).is_err());
        assert!(ConfusionMatrix::new(2, vec![1.1, -0.1, 0.5, 0.5]).is_err());
        assert!(ConfusionMatrix::new(2, vec![0.9, 0.1, 0.2, 0.8]).is_ok());
    }

    #[test]
    fn from_counts_normalizes_rows_and_fills_empty_rows_uniformly() {
        let m = ConfusionMatrix::from_counts(2, &[9.0, 1.0, 0.0, 0.0]).unwrap();
        assert!((m.prob(Label(0), Label(0)) - 0.9).abs() < 1e-12);
        assert!((m.prob(Label(0), Label(1)) - 0.1).abs() < 1e-12);
        // The second truth label was never observed: uniform row.
        assert!((m.prob(Label(1), Label(0)) - 0.5).abs() < 1e-12);
        assert!((m.prob(Label(1), Label(1)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn from_counts_validates_shape_and_values() {
        assert!(ConfusionMatrix::from_counts(1, &[1.0]).is_err());
        assert!(ConfusionMatrix::from_counts(2, &[1.0, 2.0, 3.0]).is_err());
        assert!(ConfusionMatrix::from_counts(2, &[1.0, -0.5, 1.0, 1.0]).is_err());
        assert!(ConfusionMatrix::from_counts(2, &[1.0, f64::NAN, 1.0, 1.0]).is_err());
    }

    #[test]
    fn identity_and_spammer_extremes() {
        let id = ConfusionMatrix::identity(3).unwrap();
        assert!((id.mean_accuracy() - 1.0).abs() < 1e-12);
        assert!(id.informativeness() > 0.5);
        let sp = ConfusionMatrix::spammer(3).unwrap();
        assert!((sp.mean_accuracy() - 1.0 / 3.0).abs() < 1e-12);
        assert!(sp.informativeness() < 1e-12);
    }

    #[test]
    fn informativeness_orders_workers_sensibly() {
        let good = ConfusionMatrix::from_quality(0.9, 3).unwrap();
        let ok = ConfusionMatrix::from_quality(0.6, 3).unwrap();
        let spam = ConfusionMatrix::from_quality(1.0 / 3.0, 3).unwrap();
        assert!(good.informativeness() > ok.informativeness());
        assert!(ok.informativeness() > spam.informativeness());
        assert!(spam.informativeness() < 1e-9);
    }

    #[test]
    fn binary_accuracies() {
        let m = ConfusionMatrix::new(2, vec![0.9, 0.1, 0.3, 0.7]).unwrap();
        let (sens, spec) = m.binary_accuracies().unwrap();
        assert!((sens - 0.9).abs() < 1e-12);
        assert!((spec - 0.7).abs() < 1e-12);
        assert!(ConfusionMatrix::from_quality(0.8, 3)
            .unwrap()
            .binary_accuracies()
            .is_err());
    }

    #[test]
    fn row_access_and_out_of_range_prob() {
        let m = ConfusionMatrix::from_quality(0.8, 2).unwrap();
        let row = m.row(Label(0));
        assert!((row[0] - 0.8).abs() < 1e-12 && (row[1] - 0.2).abs() < 1e-12);
        assert_eq!(m.prob(Label(5), Label(0)), 0.0);
        assert_eq!(m.prob(Label(0), Label(5)), 0.0);
    }

    #[test]
    fn matrix_worker_and_jury() {
        let jury = MatrixJury::from_qualities(&[0.9, 0.6, 0.6], 3).unwrap();
        assert_eq!(jury.size(), 3);
        assert_eq!(jury.num_choices(), 3);
        assert_eq!(jury.cost(), 0.0);
        // Likelihood of everyone voting the truth.
        let votes = vec![Label(1), Label(1), Label(1)];
        let p = jury.voting_likelihood(&votes, Label(1)).unwrap();
        assert!((p - 0.9 * 0.6 * 0.6).abs() < 1e-12);
        // Wrong-length votings and invalid labels are rejected.
        assert!(jury.voting_likelihood(&[Label(0)], Label(0)).is_err());
        assert!(jury
            .voting_likelihood(&[Label(0), Label(3), Label(0)], Label(0))
            .is_err());
    }

    #[test]
    fn matrix_jury_rejects_mixed_label_spaces() {
        let a = MatrixWorker::new(
            WorkerId(0),
            ConfusionMatrix::from_quality(0.8, 2).unwrap(),
            0.0,
        )
        .unwrap();
        let b = MatrixWorker::new(
            WorkerId(1),
            ConfusionMatrix::from_quality(0.8, 3).unwrap(),
            0.0,
        )
        .unwrap();
        assert!(MatrixJury::new(vec![a, b]).is_err());
        assert!(MatrixJury::new(vec![]).is_err());
    }

    #[test]
    fn matrix_jury_likelihoods_sum_to_one() {
        let jury = MatrixJury::from_qualities(&[0.7, 0.55], 3).unwrap();
        for t in 0..3 {
            let total: f64 = crate::answer::enumerate_label_votings(2, 3)
                .map(|v| jury.voting_likelihood(&v, Label(t)).unwrap())
                .sum();
            assert!((total - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn matrix_pool_validates_and_projects() {
        let pool =
            MatrixPool::from_qualities_and_costs(&[0.9, 0.6, 0.7], &[2.0, 1.0, 3.0], 3).unwrap();
        assert_eq!(pool.len(), 3);
        assert_eq!(pool.num_choices(), 3);
        assert!((pool.total_cost() - 6.0).abs() < 1e-12);
        assert!((pool.get(WorkerId(0)).unwrap().cost() - 2.0).abs() < 1e-12);
        assert!(pool.get(WorkerId(9)).is_err());

        let shadow = pool.shadow_pool();
        assert_eq!(shadow.ids(), vec![WorkerId(0), WorkerId(1), WorkerId(2)]);
        assert!((shadow.get(WorkerId(0)).unwrap().quality() - 0.9).abs() < 1e-12);
        assert!((shadow.get(WorkerId(2)).unwrap().cost() - 3.0).abs() < 1e-12);

        let jury = pool.jury(&[WorkerId(0), WorkerId(2)]).unwrap();
        assert_eq!(jury.size(), 2);
        assert!(pool.jury(&[WorkerId(7)]).is_err());
    }

    #[test]
    fn matrix_pool_rejects_bad_inputs() {
        assert!(matches!(
            MatrixPool::new(vec![]),
            Err(ModelError::Empty { .. })
        ));
        let a = MatrixWorker::new(
            WorkerId(0),
            ConfusionMatrix::from_quality(0.8, 2).unwrap(),
            1.0,
        )
        .unwrap();
        let b_wrong_l = MatrixWorker::new(
            WorkerId(1),
            ConfusionMatrix::from_quality(0.8, 3).unwrap(),
            1.0,
        )
        .unwrap();
        assert!(MatrixPool::new(vec![a.clone(), b_wrong_l]).is_err());
        assert!(matches!(
            MatrixPool::new(vec![a.clone(), a]),
            Err(ModelError::DuplicateWorker { .. })
        ));
        assert!(MatrixPool::from_qualities_and_costs(&[0.8], &[1.0, 2.0], 2).is_err());
    }

    #[test]
    fn from_confusions_keeps_caller_supplied_ids() {
        let pool = MatrixPool::from_confusions(vec![
            (
                WorkerId(7),
                ConfusionMatrix::from_quality(0.9, 3).unwrap(),
                2.0,
            ),
            (
                WorkerId(3),
                ConfusionMatrix::from_quality(0.6, 3).unwrap(),
                1.0,
            ),
        ])
        .unwrap();
        assert_eq!(pool.len(), 2);
        assert!((pool.get(WorkerId(7)).unwrap().cost() - 2.0).abs() < 1e-12);
        assert!(pool.get(WorkerId(0)).is_err());
        // Duplicate ids are rejected like any other pool construction.
        let dup = MatrixPool::from_confusions(vec![
            (
                WorkerId(1),
                ConfusionMatrix::from_quality(0.8, 2).unwrap(),
                1.0,
            ),
            (
                WorkerId(1),
                ConfusionMatrix::from_quality(0.7, 2).unwrap(),
                1.0,
            ),
        ]);
        assert!(matches!(dup, Err(ModelError::DuplicateWorker { .. })));
    }

    #[test]
    fn matrix_worker_cost_validation() {
        let m = ConfusionMatrix::from_quality(0.8, 2).unwrap();
        assert!(MatrixWorker::new(WorkerId(0), m.clone(), -1.0).is_err());
        assert!(MatrixWorker::new(WorkerId(0), m, 2.0).is_ok());
    }
}
