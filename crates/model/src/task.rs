//! Tasks: binary decision-making tasks and multiple-choice tasks.
//!
//! A decision-making task is a question with a `yes`/`no` answer and a latent
//! ground truth (Section 2.1). A multiple-choice task (Section 7) has `ℓ`
//! possible labels; sentiment analysis with labels positive/neutral/negative
//! is the paper's running example of this kind.

use serde::{Deserialize, Serialize};

use crate::answer::{Answer, Label};
use crate::error::{ModelError, ModelResult};
use crate::prior::{CategoricalPrior, Prior};

/// Identifier of a task within a dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TaskId(pub u64);

impl TaskId {
    /// Returns the raw numeric id.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for TaskId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A binary decision-making task.
///
/// The ground truth is optional: it is unknown to the system at selection and
/// aggregation time, but synthetic and replayed datasets carry it so that the
/// realized accuracy of a voting strategy can be evaluated (Section 6.2.3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionTask {
    id: TaskId,
    question: String,
    prior: Prior,
    ground_truth: Option<Answer>,
}

impl DecisionTask {
    /// Creates a decision-making task with the uninformative prior.
    pub fn new(id: TaskId, question: impl Into<String>) -> Self {
        DecisionTask {
            id,
            question: question.into(),
            prior: Prior::uniform(),
            ground_truth: None,
        }
    }

    /// Sets the task provider's prior `α = Pr(t = 0)`.
    pub fn with_prior(mut self, prior: Prior) -> Self {
        self.prior = prior;
        self
    }

    /// Attaches the (latent) ground truth, used only for evaluation.
    pub fn with_ground_truth(mut self, truth: Answer) -> Self {
        self.ground_truth = Some(truth);
        self
    }

    /// The task id.
    #[inline]
    pub fn id(&self) -> TaskId {
        self.id
    }

    /// The natural-language question.
    #[inline]
    pub fn question(&self) -> &str {
        &self.question
    }

    /// The task provider's prior.
    #[inline]
    pub fn prior(&self) -> Prior {
        self.prior
    }

    /// The ground truth, if known.
    #[inline]
    pub fn ground_truth(&self) -> Option<Answer> {
        self.ground_truth
    }

    /// The paper's running example task (Figure 1): *"Is Bill Gates now the
    /// CEO of Microsoft?"* with prior 70% yes / 30% no.
    pub fn paper_example() -> Self {
        DecisionTask::new(TaskId(0), "Is Bill Gates now the CEO of Microsoft?")
            // Figure 1 assigns YES (t=1) probability 0.7, so α = Pr(t=0) = 0.3.
            .with_prior(Prior::new(0.3).expect("valid prior"))
            .with_ground_truth(Answer::No)
    }
}

/// A multiple-choice task with `ℓ ≥ 2` possible labels (Section 7).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiClassTask {
    id: TaskId,
    question: String,
    choices: Vec<String>,
    prior: CategoricalPrior,
    ground_truth: Option<Label>,
}

impl MultiClassTask {
    /// Creates a multiple-choice task with a uniform prior over its choices.
    pub fn new(id: TaskId, question: impl Into<String>, choices: Vec<String>) -> ModelResult<Self> {
        if choices.len() < 2 {
            return Err(ModelError::Empty {
                what: "multi-class task choices (need at least 2)",
            });
        }
        let prior = CategoricalPrior::uniform(choices.len())?;
        Ok(MultiClassTask {
            id,
            question: question.into(),
            choices,
            prior,
            ground_truth: None,
        })
    }

    /// Sets the categorical prior; its dimension must match the choice count.
    pub fn with_prior(mut self, prior: CategoricalPrior) -> ModelResult<Self> {
        if prior.num_choices() != self.choices.len() {
            return Err(ModelError::InvalidPriorVector {
                reason: format!(
                    "prior has {} entries but the task has {} choices",
                    prior.num_choices(),
                    self.choices.len()
                ),
            });
        }
        self.prior = prior;
        Ok(self)
    }

    /// Attaches the ground-truth label, used only for evaluation.
    pub fn with_ground_truth(mut self, truth: Label) -> ModelResult<Self> {
        truth.validate(self.choices.len())?;
        self.ground_truth = Some(truth);
        Ok(self)
    }

    /// The task id.
    #[inline]
    pub fn id(&self) -> TaskId {
        self.id
    }

    /// The natural-language question.
    #[inline]
    pub fn question(&self) -> &str {
        &self.question
    }

    /// Number of possible labels `ℓ`.
    #[inline]
    pub fn num_choices(&self) -> usize {
        self.choices.len()
    }

    /// The human-readable choice texts.
    #[inline]
    pub fn choices(&self) -> &[String] {
        &self.choices
    }

    /// The categorical prior.
    #[inline]
    pub fn prior(&self) -> &CategoricalPrior {
        &self.prior
    }

    /// The ground-truth label, if known.
    #[inline]
    pub fn ground_truth(&self) -> Option<Label> {
        self.ground_truth
    }

    /// A three-label sentiment-analysis task (positive / neutral / negative),
    /// the paper's motivating example for the multi-class extension.
    pub fn sentiment(id: TaskId, text: impl Into<String>) -> Self {
        MultiClassTask::new(
            id,
            format!("What is the sentiment of: {}", text.into()),
            vec!["positive".into(), "neutral".into(), "negative".into()],
        )
        .expect("three choices are valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decision_task_builder() {
        let task = DecisionTask::new(TaskId(7), "Is the sky blue?")
            .with_prior(Prior::new(0.2).unwrap())
            .with_ground_truth(Answer::Yes);
        assert_eq!(task.id(), TaskId(7));
        assert_eq!(task.question(), "Is the sky blue?");
        assert!((task.prior().alpha() - 0.2).abs() < 1e-12);
        assert_eq!(task.ground_truth(), Some(Answer::Yes));
    }

    #[test]
    fn decision_task_defaults_to_uniform_prior_and_unknown_truth() {
        let task = DecisionTask::new(TaskId(1), "q");
        assert!(task.prior().is_uniform());
        assert_eq!(task.ground_truth(), None);
    }

    #[test]
    fn paper_example_task_matches_figure_1() {
        let task = DecisionTask::paper_example();
        assert!(task.question().contains("Bill Gates"));
        // 70% yes means Pr(t = 0) = 0.3.
        assert!((task.prior().alpha() - 0.3).abs() < 1e-12);
        assert_eq!(task.ground_truth(), Some(Answer::No));
    }

    #[test]
    fn multiclass_task_requires_two_choices() {
        assert!(MultiClassTask::new(TaskId(0), "q", vec!["only".into()]).is_err());
        assert!(MultiClassTask::new(TaskId(0), "q", vec!["a".into(), "b".into()]).is_ok());
    }

    #[test]
    fn multiclass_prior_dimension_checked() {
        let task = MultiClassTask::sentiment(TaskId(0), "great product");
        assert_eq!(task.num_choices(), 3);
        let bad = task
            .clone()
            .with_prior(CategoricalPrior::uniform(2).unwrap());
        assert!(bad.is_err());
        let good = task
            .with_prior(CategoricalPrior::new(vec![0.5, 0.25, 0.25]).unwrap())
            .unwrap();
        assert!((good.prior().prob(Label(0)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn multiclass_ground_truth_validated() {
        let task = MultiClassTask::sentiment(TaskId(0), "meh");
        assert!(task.clone().with_ground_truth(Label(3)).is_err());
        let task = task.with_ground_truth(Label(2)).unwrap();
        assert_eq!(task.ground_truth(), Some(Label(2)));
    }

    #[test]
    fn task_ids_display() {
        assert_eq!(TaskId(3).to_string(), "t3");
        assert_eq!(TaskId(3).raw(), 3);
    }

    #[test]
    fn sentiment_task_choices() {
        let task = MultiClassTask::sentiment(TaskId(9), "the service was slow");
        assert_eq!(task.choices(), &["positive", "neutral", "negative"]);
        assert!(task.question().contains("slow"));
        assert_eq!(task.id(), TaskId(9));
        assert!(task.ground_truth().is_none());
    }
}
