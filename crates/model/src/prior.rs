//! Task-provider priors over the latent true answer.
//!
//! The task provider may attach a prior `α = Pr(t = 0)` to a decision-making
//! task before crowdsourcing starts (Section 2.1). When she has no prior
//! knowledge, `α = 0.5`. Section 7 generalizes the prior to a probability
//! vector `~α = (α_0, ..., α_{ℓ-1})` over the `ℓ` labels of a multiple-choice
//! task.

use serde::{Deserialize, Serialize};

use crate::answer::{Answer, Label};
use crate::error::{ModelError, ModelResult};

/// Tolerance used when checking that categorical priors sum to one.
const SUM_TOLERANCE: f64 = 1e-9;

/// A prior over the answer of a binary decision-making task.
///
/// Stores `α = Pr(t = 0) = Pr(t = No)`, following the paper's convention.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Prior {
    alpha: f64,
}

impl Prior {
    /// Creates a prior with the given `α = Pr(t = 0)`.
    pub fn new(alpha: f64) -> ModelResult<Self> {
        if !(0.0..=1.0).contains(&alpha) || !alpha.is_finite() {
            return Err(ModelError::InvalidPrior { value: alpha });
        }
        Ok(Prior { alpha })
    }

    /// The uninformative prior `α = 0.5`, used when the task provider has no
    /// prior knowledge.
    pub fn uniform() -> Self {
        Prior { alpha: 0.5 }
    }

    /// `α = Pr(t = 0)`.
    #[inline]
    pub fn alpha(self) -> f64 {
        self.alpha
    }

    /// The prior probability of a specific answer.
    #[inline]
    pub fn prob(self, answer: Answer) -> f64 {
        match answer {
            Answer::No => self.alpha,
            Answer::Yes => 1.0 - self.alpha,
        }
    }

    /// Whether this prior carries no information (`α = 0.5`).
    #[inline]
    pub fn is_uniform(self) -> bool {
        (self.alpha - 0.5).abs() < SUM_TOLERANCE
    }

    /// Converts the binary prior into the equivalent two-class categorical
    /// prior `(α, 1 − α)`.
    pub fn to_categorical(self) -> CategoricalPrior {
        CategoricalPrior::new(vec![self.alpha, 1.0 - self.alpha])
            .expect("a valid binary prior always converts")
    }
}

impl Default for Prior {
    fn default() -> Self {
        Prior::uniform()
    }
}

impl std::fmt::Display for Prior {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Pr(t=0)={:.3}", self.alpha)
    }
}

/// A prior over the answer of a multiple-choice task with `ℓ` labels
/// (Section 7): a probability vector `~α` with `Σ α_j = 1`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CategoricalPrior {
    probs: Vec<f64>,
}

impl CategoricalPrior {
    /// Creates a categorical prior, validating that every entry is a
    /// probability and that the entries sum to one.
    pub fn new(probs: Vec<f64>) -> ModelResult<Self> {
        if probs.is_empty() {
            return Err(ModelError::InvalidPriorVector {
                reason: "no entries".into(),
            });
        }
        for (i, &p) in probs.iter().enumerate() {
            if !(0.0..=1.0).contains(&p) || !p.is_finite() {
                return Err(ModelError::InvalidPriorVector {
                    reason: format!("entry {i} is {p}, not a probability"),
                });
            }
        }
        let sum: f64 = probs.iter().sum();
        if (sum - 1.0).abs() > 1e-6 {
            return Err(ModelError::InvalidPriorVector {
                reason: format!("entries sum to {sum}, expected 1"),
            });
        }
        Ok(CategoricalPrior { probs })
    }

    /// The uniform prior over `num_choices` labels.
    pub fn uniform(num_choices: usize) -> ModelResult<Self> {
        if num_choices == 0 {
            return Err(ModelError::InvalidPriorVector {
                reason: "no entries".into(),
            });
        }
        Ok(CategoricalPrior {
            probs: vec![1.0 / num_choices as f64; num_choices],
        })
    }

    /// Number of labels `ℓ`.
    #[inline]
    pub fn num_choices(&self) -> usize {
        self.probs.len()
    }

    /// The prior probability of a specific label.
    pub fn prob(&self, label: Label) -> f64 {
        self.probs.get(label.index()).copied().unwrap_or(0.0)
    }

    /// The full probability vector.
    #[inline]
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }

    /// For a two-class prior, the equivalent binary [`Prior`].
    pub fn to_binary(&self) -> ModelResult<Prior> {
        if self.probs.len() != 2 {
            return Err(ModelError::InvalidPriorVector {
                reason: format!(
                    "{} classes cannot convert to a binary prior",
                    self.probs.len()
                ),
            });
        }
        Prior::new(self.probs[0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prior_validation() {
        assert!(Prior::new(0.0).is_ok());
        assert!(Prior::new(1.0).is_ok());
        assert!(Prior::new(0.3).is_ok());
        assert!(Prior::new(-0.1).is_err());
        assert!(Prior::new(1.1).is_err());
        assert!(Prior::new(f64::NAN).is_err());
    }

    #[test]
    fn prior_probabilities_sum_to_one() {
        let p = Prior::new(0.7).unwrap();
        assert!((p.prob(Answer::No) - 0.7).abs() < 1e-12);
        assert!((p.prob(Answer::Yes) - 0.3).abs() < 1e-12);
        assert!((p.prob(Answer::No) + p.prob(Answer::Yes) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_prior_is_default() {
        assert_eq!(Prior::default(), Prior::uniform());
        assert!(Prior::uniform().is_uniform());
        assert!(!Prior::new(0.7).unwrap().is_uniform());
        assert!((Prior::uniform().alpha() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn prior_display() {
        assert_eq!(Prior::new(0.25).unwrap().to_string(), "Pr(t=0)=0.250");
    }

    #[test]
    fn binary_to_categorical_roundtrip() {
        let p = Prior::new(0.3).unwrap();
        let cat = p.to_categorical();
        assert_eq!(cat.num_choices(), 2);
        assert!((cat.prob(Label(0)) - 0.3).abs() < 1e-12);
        assert!((cat.prob(Label(1)) - 0.7).abs() < 1e-12);
        assert_eq!(cat.to_binary().unwrap(), p);
    }

    #[test]
    fn categorical_prior_validation() {
        assert!(CategoricalPrior::new(vec![0.2, 0.3, 0.5]).is_ok());
        assert!(CategoricalPrior::new(vec![0.2, 0.3, 0.6]).is_err());
        assert!(CategoricalPrior::new(vec![1.2, -0.2]).is_err());
        assert!(CategoricalPrior::new(vec![]).is_err());
        assert!(CategoricalPrior::uniform(0).is_err());
    }

    #[test]
    fn categorical_uniform() {
        let u = CategoricalPrior::uniform(4).unwrap();
        assert_eq!(u.num_choices(), 4);
        for i in 0..4 {
            assert!((u.prob(Label(i)) - 0.25).abs() < 1e-12);
        }
        // Out-of-range labels have probability zero.
        assert_eq!(u.prob(Label(10)), 0.0);
    }

    #[test]
    fn categorical_to_binary_requires_two_classes() {
        assert!(CategoricalPrior::uniform(3).unwrap().to_binary().is_err());
        let p = CategoricalPrior::new(vec![0.6, 0.4])
            .unwrap()
            .to_binary()
            .unwrap();
        assert!((p.alpha() - 0.6).abs() < 1e-12);
    }
}
