//! Error types for the crowd data model.

use std::fmt;

/// Errors produced when constructing or validating model objects.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// A worker quality was outside `[0, 1]` or not finite.
    InvalidQuality {
        /// The offending value.
        value: f64,
    },
    /// A worker cost was negative or not finite.
    InvalidCost {
        /// The offending value.
        value: f64,
    },
    /// A prior probability was outside `[0, 1]` or not finite.
    InvalidPrior {
        /// The offending value.
        value: f64,
    },
    /// A categorical prior did not sum to one (within tolerance) or had an
    /// invalid entry.
    InvalidPriorVector {
        /// Human-readable description of the violation.
        reason: String,
    },
    /// A confusion matrix row did not sum to one or contained an invalid
    /// probability.
    InvalidConfusionMatrix {
        /// Human-readable description of the violation.
        reason: String,
    },
    /// A worker id was not present in the pool it was looked up in.
    UnknownWorker {
        /// The missing id.
        id: u32,
    },
    /// A duplicate worker id was inserted into a pool.
    DuplicateWorker {
        /// The duplicated id.
        id: u32,
    },
    /// A label index was out of range for the task's number of choices.
    InvalidLabel {
        /// The offending label index.
        label: usize,
        /// The number of possible choices.
        num_choices: usize,
    },
    /// The number of votes did not match the jury size.
    VoteCountMismatch {
        /// Number of votes supplied.
        votes: usize,
        /// Number of jurors expected.
        jurors: usize,
    },
    /// An empty collection was supplied where at least one element is
    /// required.
    Empty {
        /// What was empty.
        what: &'static str,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::InvalidQuality { value } => {
                write!(f, "worker quality {value} is not a probability in [0, 1]")
            }
            ModelError::InvalidCost { value } => {
                write!(f, "worker cost {value} must be finite and non-negative")
            }
            ModelError::InvalidPrior { value } => {
                write!(f, "prior {value} is not a probability in [0, 1]")
            }
            ModelError::InvalidPriorVector { reason } => {
                write!(f, "invalid categorical prior: {reason}")
            }
            ModelError::InvalidConfusionMatrix { reason } => {
                write!(f, "invalid confusion matrix: {reason}")
            }
            ModelError::UnknownWorker { id } => write!(f, "unknown worker id {id}"),
            ModelError::DuplicateWorker { id } => write!(f, "duplicate worker id {id}"),
            ModelError::InvalidLabel { label, num_choices } => {
                write!(
                    f,
                    "label {label} out of range for a task with {num_choices} choices"
                )
            }
            ModelError::VoteCountMismatch { votes, jurors } => {
                write!(f, "{votes} votes supplied for a jury of {jurors} workers")
            }
            ModelError::Empty { what } => write!(f, "{what} must not be empty"),
        }
    }
}

impl std::error::Error for ModelError {}

/// Convenience result alias for model operations.
pub type ModelResult<T> = Result<T, ModelError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let cases: Vec<(ModelError, &str)> = vec![
            (ModelError::InvalidQuality { value: 1.5 }, "quality"),
            (ModelError::InvalidCost { value: -1.0 }, "cost"),
            (ModelError::InvalidPrior { value: 2.0 }, "prior"),
            (
                ModelError::InvalidPriorVector {
                    reason: "sums to 0.9".into(),
                },
                "categorical prior",
            ),
            (
                ModelError::InvalidConfusionMatrix {
                    reason: "row 1".into(),
                },
                "confusion matrix",
            ),
            (ModelError::UnknownWorker { id: 7 }, "unknown worker"),
            (ModelError::DuplicateWorker { id: 7 }, "duplicate worker"),
            (
                ModelError::InvalidLabel {
                    label: 4,
                    num_choices: 3,
                },
                "label",
            ),
            (
                ModelError::VoteCountMismatch {
                    votes: 2,
                    jurors: 3,
                },
                "votes",
            ),
            (ModelError::Empty { what: "jury" }, "jury"),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(msg.contains(needle), "{msg} should mention {needle}");
        }
    }

    #[test]
    fn errors_are_std_errors() {
        fn assert_error<E: std::error::Error>(_: &E) {}
        assert_error(&ModelError::Empty { what: "pool" });
    }
}
