//! Small statistics helpers shared by generators, estimators, and the
//! experiment harness (means, variances, histograms, percentiles).

use serde::{Deserialize, Serialize};

/// Arithmetic mean; `0.0` for an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Population variance; `0.0` for slices with fewer than two elements.
pub fn variance(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    values.iter().map(|v| (v - m).powi(2)).sum::<f64>() / values.len() as f64
}

/// Population standard deviation.
pub fn std_dev(values: &[f64]) -> f64 {
    variance(values).sqrt()
}

/// Linear-interpolation percentile (`p ∈ [0, 100]`); `0.0` for empty input.
pub fn percentile(values: &[f64], p: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let p = p.clamp(0.0, 100.0) / 100.0;
    let rank = p * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Median (50th percentile).
pub fn median(values: &[f64]) -> f64 {
    percentile(values, 50.0)
}

/// A fixed-width histogram over a closed range, used for error-distribution
/// figures such as Figure 9(c).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    /// Values below `lo` or above `hi`.
    outliers: u64,
    total: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi]` with `bins` equal-width buckets.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(hi > lo, "histogram range must be non-empty");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            outliers: 0,
            total: 0,
        }
    }

    /// Adds one observation.
    pub fn add(&mut self, value: f64) {
        self.total += 1;
        if !value.is_finite() || value < self.lo || value > self.hi {
            self.outliers += 1;
            return;
        }
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        let mut idx = ((value - self.lo) / width) as usize;
        if idx >= self.counts.len() {
            idx = self.counts.len() - 1;
        }
        self.counts[idx] += 1;
    }

    /// Adds every observation in the slice.
    pub fn add_all(&mut self, values: &[f64]) {
        for &v in values {
            self.add(v);
        }
    }

    /// The per-bin counts.
    #[inline]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Observations outside the range.
    #[inline]
    pub fn outliers(&self) -> u64 {
        self.outliers
    }

    /// Total number of observations added (including outliers).
    #[inline]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The `(lower, upper)` edges of bin `i`.
    pub fn bin_edges(&self, i: usize) -> (f64, f64) {
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        (self.lo + i as f64 * width, self.lo + (i + 1) as f64 * width)
    }

    /// The fraction of (in-range) observations in each bin.
    pub fn frequencies(&self) -> Vec<f64> {
        let in_range = self.total - self.outliers;
        if in_range == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / in_range as f64)
            .collect()
    }
}

/// Counts observations falling into a list of half-open ranges
/// `(lo, hi]` with an initial closed range `[first_lo, first_hi]`, matching
/// the presentation of the paper's Table 3 ("counts in different error
/// ranges").
pub fn range_counts(values: &[f64], edges: &[f64]) -> Vec<u64> {
    assert!(edges.len() >= 2, "need at least two edges");
    let mut counts = vec![0u64; edges.len() - 1];
    for &v in values {
        for i in 0..edges.len() - 1 {
            let lo = edges[i];
            let hi = edges[i + 1];
            let in_range = if i == 0 {
                v >= lo && v <= hi
            } else {
                v > lo && v <= hi
            };
            if in_range {
                counts[i] += 1;
                break;
            }
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_std() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert!((mean(&v) - 2.5).abs() < 1e-12);
        assert!((variance(&v) - 1.25).abs() < 1e-12);
        assert!((std_dev(&v) - 1.25f64.sqrt()).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[1.0]), 0.0);
    }

    #[test]
    fn percentile_and_median() {
        let v = [4.0, 1.0, 3.0, 2.0];
        assert!((median(&v) - 2.5).abs() < 1e-12);
        assert!((percentile(&v, 0.0) - 1.0).abs() < 1e-12);
        assert!((percentile(&v, 100.0) - 4.0).abs() < 1e-12);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn histogram_binning() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.add_all(&[0.05, 0.3, 0.3, 0.8, 1.0, 2.0, -0.5, f64::NAN]);
        assert_eq!(h.counts(), &[1, 2, 0, 2]);
        assert_eq!(h.outliers(), 3);
        assert_eq!(h.total(), 8);
        let (lo, hi) = h.bin_edges(1);
        assert!((lo - 0.25).abs() < 1e-12);
        assert!((hi - 0.5).abs() < 1e-12);
        let freqs = h.frequencies();
        assert!((freqs.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn histogram_rejects_empty_range() {
        let _ = Histogram::new(1.0, 1.0, 4);
    }

    #[test]
    fn range_counts_matches_table_3_layout() {
        // Table 3 ranges (in percent): [0, 0.01], (0.01, 0.1], (0.1, 1], (1, 3], (3, inf).
        let edges = [0.0, 0.01, 0.1, 1.0, 3.0, f64::INFINITY];
        let values = [0.0, 0.005, 0.01, 0.05, 0.5, 2.0, 10.0];
        let counts = range_counts(&values, &edges);
        assert_eq!(counts, vec![3, 1, 1, 1, 1]);
        assert_eq!(counts.iter().sum::<u64>() as usize, values.len());
    }

    #[test]
    fn empty_histogram_frequencies() {
        let h = Histogram::new(0.0, 1.0, 3);
        assert_eq!(h.frequencies(), vec![0.0, 0.0, 0.0]);
    }
}
