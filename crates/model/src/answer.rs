//! Answers and labels for decision-making and multiple-choice tasks.
//!
//! The paper studies *decision-making tasks*: questions with exactly two
//! possible answers, `yes` and `no`, encoded as `1` and `0` respectively
//! (Section 2.1). Section 7 extends the model to multiple-choice tasks with
//! `ℓ` possible labels `{0, 1, ..., ℓ-1}`.

use serde::{Deserialize, Serialize};

use crate::error::{ModelError, ModelResult};

/// The answer to a binary decision-making task.
///
/// Following the paper's convention, [`Answer::No`] encodes `0` and
/// [`Answer::Yes`] encodes `1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Answer {
    /// The `no` answer, encoded as `0`.
    No,
    /// The `yes` answer, encoded as `1`.
    Yes,
}

impl Answer {
    /// Both possible answers, in the paper's `{0, 1}` order.
    pub const ALL: [Answer; 2] = [Answer::No, Answer::Yes];

    /// Returns the paper's numeric encoding: `0` for `No`, `1` for `Yes`.
    #[inline]
    pub fn as_index(self) -> usize {
        match self {
            Answer::No => 0,
            Answer::Yes => 1,
        }
    }

    /// Builds an answer from the paper's numeric encoding.
    #[inline]
    pub fn from_index(index: usize) -> ModelResult<Self> {
        match index {
            0 => Ok(Answer::No),
            1 => Ok(Answer::Yes),
            other => Err(ModelError::InvalidLabel {
                label: other,
                num_choices: 2,
            }),
        }
    }

    /// Builds an answer from a boolean, where `true` means `Yes`.
    #[inline]
    pub fn from_bool(yes: bool) -> Self {
        if yes {
            Answer::Yes
        } else {
            Answer::No
        }
    }

    /// Returns the opposite answer.
    #[inline]
    pub fn flip(self) -> Self {
        match self {
            Answer::No => Answer::Yes,
            Answer::Yes => Answer::No,
        }
    }

    /// Returns `true` for [`Answer::Yes`].
    #[inline]
    pub fn is_yes(self) -> bool {
        matches!(self, Answer::Yes)
    }

    /// Converts the binary answer into a multi-class [`Label`].
    #[inline]
    pub fn to_label(self) -> Label {
        Label(self.as_index())
    }
}

impl From<bool> for Answer {
    fn from(yes: bool) -> Self {
        Answer::from_bool(yes)
    }
}

impl std::fmt::Display for Answer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Answer::No => write!(f, "no"),
            Answer::Yes => write!(f, "yes"),
        }
    }
}

/// A label for a multiple-choice task with `ℓ` possible choices.
///
/// Labels are plain indices in `{0, ..., ℓ-1}`; the task that a label refers
/// to determines `ℓ` (see [`crate::task::MultiClassTask`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Label(pub usize);

impl Label {
    /// Returns the raw label index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }

    /// Validates the label against the number of choices of a task.
    pub fn validate(self, num_choices: usize) -> ModelResult<Self> {
        if self.0 < num_choices {
            Ok(self)
        } else {
            Err(ModelError::InvalidLabel {
                label: self.0,
                num_choices,
            })
        }
    }

    /// Converts a binary label (`0` or `1`) back to an [`Answer`].
    pub fn to_answer(self) -> ModelResult<Answer> {
        Answer::from_index(self.0)
    }
}

impl From<usize> for Label {
    fn from(index: usize) -> Self {
        Label(index)
    }
}

impl std::fmt::Display for Label {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Enumerates every possible voting `V ∈ {0,1}^n` for a binary jury of size
/// `n`, in lexicographic order with worker `0` as the most significant bit.
///
/// The number of votings is `2^n`, so this is only intended for the exact
/// (exponential) JQ computations and for tests; `n` is limited to 25 to keep
/// callers honest about the blow-up.
pub fn enumerate_binary_votings(n: usize) -> impl Iterator<Item = Vec<Answer>> {
    assert!(
        n <= 25,
        "exhaustive voting enumeration is limited to 25 workers (got {n})"
    );
    (0u32..(1u32 << n)).map(move |bits| {
        (0..n)
            .map(|i| {
                // Worker i corresponds to bit (n - 1 - i) so that the
                // enumeration order matches reading the vector left to right.
                let bit = (bits >> (n - 1 - i)) & 1;
                Answer::from_bool(bit == 1)
            })
            .collect()
    })
}

/// Enumerates every possible voting `V ∈ {0,...,ℓ-1}^n` for a multi-class
/// jury of size `n` over `num_choices` labels.
pub fn enumerate_label_votings(n: usize, num_choices: usize) -> impl Iterator<Item = Vec<Label>> {
    let total: u64 = (num_choices as u64)
        .checked_pow(n as u32)
        .expect("voting space overflows u64");
    assert!(
        total <= 1 << 22,
        "exhaustive label enumeration too large ({total} votings)"
    );
    (0..total).map(move |mut code| {
        let mut votes = vec![Label(0); n];
        for slot in votes.iter_mut().rev() {
            *slot = Label((code % num_choices as u64) as usize);
            code /= num_choices as u64;
        }
        votes
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn answer_index_roundtrip() {
        assert_eq!(Answer::from_index(0).unwrap(), Answer::No);
        assert_eq!(Answer::from_index(1).unwrap(), Answer::Yes);
        assert!(Answer::from_index(2).is_err());
        for a in Answer::ALL {
            assert_eq!(Answer::from_index(a.as_index()).unwrap(), a);
        }
    }

    #[test]
    fn answer_flip_is_involution() {
        assert_eq!(Answer::No.flip(), Answer::Yes);
        assert_eq!(Answer::Yes.flip(), Answer::No);
        for a in Answer::ALL {
            assert_eq!(a.flip().flip(), a);
        }
    }

    #[test]
    fn answer_from_bool_matches_encoding() {
        assert_eq!(Answer::from(true), Answer::Yes);
        assert_eq!(Answer::from(false), Answer::No);
        assert!(Answer::Yes.is_yes());
        assert!(!Answer::No.is_yes());
    }

    #[test]
    fn answer_display() {
        assert_eq!(Answer::Yes.to_string(), "yes");
        assert_eq!(Answer::No.to_string(), "no");
    }

    #[test]
    fn label_validation() {
        assert!(Label(2).validate(3).is_ok());
        assert!(Label(3).validate(3).is_err());
        assert_eq!(Label::from(5).index(), 5);
        assert_eq!(Label(1).to_answer().unwrap(), Answer::Yes);
        assert!(Label(2).to_answer().is_err());
        assert_eq!(Answer::Yes.to_label(), Label(1));
    }

    #[test]
    fn binary_enumeration_covers_all_votings() {
        let votings: Vec<_> = enumerate_binary_votings(3).collect();
        assert_eq!(votings.len(), 8);
        // First is all-No, last is all-Yes.
        assert_eq!(votings[0], vec![Answer::No; 3]);
        assert_eq!(votings[7], vec![Answer::Yes; 3]);
        // All distinct.
        let unique: std::collections::HashSet<_> = votings.iter().cloned().collect();
        assert_eq!(unique.len(), 8);
    }

    #[test]
    fn binary_enumeration_of_empty_jury() {
        let votings: Vec<_> = enumerate_binary_votings(0).collect();
        assert_eq!(votings, vec![Vec::<Answer>::new()]);
    }

    #[test]
    fn label_enumeration_covers_all_votings() {
        let votings: Vec<_> = enumerate_label_votings(2, 3).collect();
        assert_eq!(votings.len(), 9);
        assert_eq!(votings[0], vec![Label(0), Label(0)]);
        assert_eq!(votings[8], vec![Label(2), Label(2)]);
        let unique: std::collections::HashSet<_> = votings.iter().cloned().collect();
        assert_eq!(unique.len(), 9);
    }

    #[test]
    fn label_enumeration_matches_binary_enumeration() {
        let binary: Vec<Vec<usize>> = enumerate_binary_votings(3)
            .map(|v| v.iter().map(|a| a.as_index()).collect())
            .collect();
        let labels: Vec<Vec<usize>> = enumerate_label_votings(3, 2)
            .map(|v| v.iter().map(|l| l.index()).collect())
            .collect();
        assert_eq!(binary, labels);
    }
}
