//! Juries: subsets of the candidate worker pool.
//!
//! A jury `J ⊆ W` of size `n` is the unit the Jury Selection Problem reasons
//! about: its **jury cost** is the sum of its members' costs, and a jury is
//! *feasible* under budget `B` iff its cost does not exceed `B` (Section 2.2).

use serde::{Deserialize, Serialize};

use crate::answer::Answer;
use crate::error::{ModelError, ModelResult};
use crate::worker::{Worker, WorkerId, WorkerPool};

/// A jury (jury set): an ordered collection of workers drawn from a pool.
///
/// The order of workers matters only for aligning votes with jurors; the JQ
/// of a jury is invariant under permutation of its members.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Jury {
    workers: Vec<Worker>,
}

impl Jury {
    /// Creates a jury from a list of workers.
    pub fn new(workers: Vec<Worker>) -> Self {
        Jury { workers }
    }

    /// The empty jury.
    pub fn empty() -> Self {
        Jury {
            workers: Vec::new(),
        }
    }

    /// Creates a jury of free workers with the given qualities and sequential
    /// ids; convenient for tests and for the JQ-only experiments where costs
    /// play no role (e.g. Figure 8).
    pub fn from_qualities(qualities: &[f64]) -> ModelResult<Self> {
        let workers = qualities
            .iter()
            .enumerate()
            .map(|(i, &q)| Worker::free(WorkerId(i as u32), q))
            .collect::<ModelResult<Vec<_>>>()?;
        Ok(Jury::new(workers))
    }

    /// Creates a jury by selecting the given ids from a pool.
    pub fn from_pool(pool: &WorkerPool, ids: &[WorkerId]) -> ModelResult<Self> {
        Ok(Jury::new(pool.select(ids)?))
    }

    /// Number of jurors `n`.
    #[inline]
    pub fn size(&self) -> usize {
        self.workers.len()
    }

    /// Whether the jury has no members.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.workers.is_empty()
    }

    /// The jury cost: the sum of the members' costs.
    pub fn cost(&self) -> f64 {
        self.workers.iter().map(|w| w.cost()).sum()
    }

    /// Whether the jury cost is within the budget `B`.
    pub fn is_feasible(&self, budget: f64) -> bool {
        self.cost() <= budget + 1e-12
    }

    /// The members in order.
    #[inline]
    pub fn workers(&self) -> &[Worker] {
        &self.workers
    }

    /// Iterates over the members.
    pub fn iter(&self) -> impl Iterator<Item = &Worker> {
        self.workers.iter()
    }

    /// The members' qualities, in order.
    pub fn qualities(&self) -> Vec<f64> {
        self.workers.iter().map(|w| w.quality()).collect()
    }

    /// The members' *effective* qualities (`max(q, 1 − q)`), in order.
    pub fn effective_qualities(&self) -> Vec<f64> {
        self.workers.iter().map(|w| w.effective_quality()).collect()
    }

    /// The members' ids, in order.
    pub fn ids(&self) -> Vec<WorkerId> {
        self.workers.iter().map(|w| w.id()).collect()
    }

    /// Whether a worker id belongs to this jury.
    pub fn contains(&self, id: WorkerId) -> bool {
        self.workers.iter().any(|w| w.id() == id)
    }

    /// Adds a worker to the jury (Lemma 1: adding a worker can only improve
    /// the jury quality under Bayesian voting).
    pub fn push(&mut self, worker: Worker) {
        self.workers.push(worker);
    }

    /// Returns a new jury extended with one more worker.
    pub fn with_worker(&self, worker: Worker) -> Self {
        let mut workers = self.workers.clone();
        workers.push(worker);
        Jury::new(workers)
    }

    /// Returns a new jury with the worker identified by `id` removed.
    pub fn without(&self, id: WorkerId) -> Self {
        Jury::new(
            self.workers
                .iter()
                .filter(|w| w.id() != id)
                .cloned()
                .collect(),
        )
    }

    /// Validates that a voting has exactly one vote per juror.
    pub fn check_voting(&self, votes: &[Answer]) -> ModelResult<()> {
        if votes.len() == self.size() {
            Ok(())
        } else {
            Err(ModelError::VoteCountMismatch {
                votes: votes.len(),
                jurors: self.size(),
            })
        }
    }

    /// The probability of observing the voting `V` conditioned on the true
    /// answer `t`, assuming independent workers (Section 3.2):
    ///
    /// * `Pr(V | t = 0) = Π q_i^(1-v_i) (1-q_i)^(v_i)`
    /// * `Pr(V | t = 1) = Π q_i^(v_i) (1-q_i)^(1-v_i)`
    pub fn voting_likelihood(&self, votes: &[Answer], truth: Answer) -> ModelResult<f64> {
        self.check_voting(votes)?;
        let mut p = 1.0;
        for (worker, &vote) in self.workers.iter().zip(votes.iter()) {
            let q = worker.quality();
            p *= if vote == truth { q } else { 1.0 - q };
        }
        Ok(p)
    }
}

impl From<Vec<Worker>> for Jury {
    fn from(workers: Vec<Worker>) -> Self {
        Jury::new(workers)
    }
}

impl<'a> IntoIterator for &'a Jury {
    type Item = &'a Worker;
    type IntoIter = std::slice::Iter<'a, Worker>;

    fn into_iter(self) -> Self::IntoIter {
        self.workers.iter()
    }
}

/// Iterates over every subset of a worker pool whose jury cost does not
/// exceed `budget` — the feasible jury set `C` of Section 2.2.
///
/// Subsets are generated in bitmask order, skipping (entire) subtrees is not
/// attempted; this is the brute-force companion used by the exhaustive JSP
/// solver and by tests, and is limited to pools of at most 25 workers.
pub fn feasible_juries(pool: &WorkerPool, budget: f64) -> Vec<Jury> {
    let n = pool.len();
    assert!(
        n <= 25,
        "feasible jury enumeration is limited to 25 candidate workers (got {n})"
    );
    let workers = pool.workers();
    let mut juries = Vec::new();
    for mask in 0u32..(1u32 << n) {
        let mut members = Vec::new();
        let mut cost = 0.0;
        for (i, worker) in workers.iter().enumerate() {
            if (mask >> i) & 1 == 1 {
                cost += worker.cost();
                members.push(worker.clone());
            }
        }
        if cost <= budget + 1e-12 {
            juries.push(Jury::new(members));
        }
    }
    juries
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::worker::paper_example_pool;

    #[test]
    fn jury_cost_and_feasibility() {
        // The paper's example: {B, E, F} costs 5 + 5 + 2 = 12 ≤ 20.
        let pool = paper_example_pool();
        let jury = Jury::from_pool(&pool, &[WorkerId(1), WorkerId(4), WorkerId(5)]).unwrap();
        assert_eq!(jury.size(), 3);
        assert!((jury.cost() - 12.0).abs() < 1e-12);
        assert!(jury.is_feasible(20.0));
        assert!(jury.is_feasible(12.0));
        assert!(!jury.is_feasible(11.0));
    }

    #[test]
    fn jury_from_qualities_assigns_sequential_ids() {
        let jury = Jury::from_qualities(&[0.9, 0.6, 0.6]).unwrap();
        assert_eq!(jury.ids(), vec![WorkerId(0), WorkerId(1), WorkerId(2)]);
        assert_eq!(jury.qualities(), vec![0.9, 0.6, 0.6]);
        assert!((jury.cost() - 0.0).abs() < 1e-12);
    }

    #[test]
    fn jury_membership_operations() {
        let mut jury = Jury::from_qualities(&[0.9, 0.6]).unwrap();
        assert!(jury.contains(WorkerId(0)));
        assert!(!jury.contains(WorkerId(5)));
        jury.push(Worker::free(WorkerId(5), 0.8).unwrap());
        assert_eq!(jury.size(), 3);
        let without = jury.without(WorkerId(0));
        assert_eq!(without.size(), 2);
        assert!(!without.contains(WorkerId(0)));
        let with = without.with_worker(Worker::free(WorkerId(9), 0.7).unwrap());
        assert_eq!(with.size(), 3);
        assert!(with.contains(WorkerId(9)));
        // The original jury is unchanged by the non-consuming builders.
        assert_eq!(jury.size(), 3);
    }

    #[test]
    fn empty_jury() {
        let jury = Jury::empty();
        assert!(jury.is_empty());
        assert_eq!(jury.size(), 0);
        assert_eq!(jury.cost(), 0.0);
        assert!(jury.is_feasible(0.0));
    }

    #[test]
    fn check_voting_validates_length() {
        let jury = Jury::from_qualities(&[0.9, 0.6, 0.6]).unwrap();
        assert!(jury
            .check_voting(&[Answer::No, Answer::Yes, Answer::No])
            .is_ok());
        assert!(jury.check_voting(&[Answer::No]).is_err());
    }

    #[test]
    fn voting_likelihood_matches_paper_example() {
        // Example 2: workers with qualities 0.9, 0.6, 0.6 and V = {1, 0, 0}.
        // Pr(V | t = 0) = (1-0.9)·0.6·0.6 = 0.036, and with α = 0.5 the joint
        // probability 0.018 appears in Figure 2.
        let jury = Jury::from_qualities(&[0.9, 0.6, 0.6]).unwrap();
        let votes = [Answer::Yes, Answer::No, Answer::No];
        let p0 = jury.voting_likelihood(&votes, Answer::No).unwrap();
        let p1 = jury.voting_likelihood(&votes, Answer::Yes).unwrap();
        assert!((p0 - 0.036).abs() < 1e-12);
        assert!((p1 - 0.9 * 0.4 * 0.4).abs() < 1e-12);
    }

    #[test]
    fn voting_likelihoods_sum_to_one_over_all_votings() {
        let jury = Jury::from_qualities(&[0.7, 0.8, 0.65, 0.55]).unwrap();
        for truth in Answer::ALL {
            let total: f64 = crate::answer::enumerate_binary_votings(jury.size())
                .map(|v| jury.voting_likelihood(&v, truth).unwrap())
                .sum();
            assert!(
                (total - 1.0).abs() < 1e-9,
                "likelihoods for t={truth} sum to {total}"
            );
        }
    }

    #[test]
    fn feasible_juries_enumeration() {
        let pool =
            WorkerPool::from_qualities_and_costs(&[0.9, 0.8, 0.7], &[1.0, 2.0, 4.0]).unwrap();
        let all = feasible_juries(&pool, 3.0);
        // Subsets within budget 3: {}, {0}, {1}, {0,1}.
        assert_eq!(all.len(), 4);
        assert!(all.iter().all(|j| j.is_feasible(3.0)));
        let big = feasible_juries(&pool, 100.0);
        assert_eq!(big.len(), 8);
    }

    #[test]
    fn feasible_juries_respects_exact_budget_boundary() {
        let pool = WorkerPool::from_qualities_and_costs(&[0.9, 0.8], &[1.0, 2.0]).unwrap();
        let all = feasible_juries(&pool, 3.0);
        // The full set costing exactly 3.0 must be included.
        assert!(all.iter().any(|j| j.size() == 2));
    }
}
