//! Crowdsourced datasets: tasks, workers, collected votes, and ground truth.
//!
//! The paper's real-data evaluation (Section 6.2) works on a dataset of 600
//! decision-making tasks, each answered by 20 of 128 workers, with worker
//! qualities estimated as the fraction of correctly answered questions. This
//! module provides the container for such a dataset; `jury-sim` provides the
//! simulated Amazon-Mechanical-Turk platform that produces them.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::answer::Answer;
use crate::error::{ModelError, ModelResult};
use crate::prior::Prior;
use crate::task::TaskId;
use crate::worker::{Worker, WorkerId, WorkerPool};

/// One collected vote: which worker answered, what they answered, and in
/// which position of the task's answering sequence (Figure 10(d) replays the
/// first `z` votes of each task in arrival order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CollectedVote {
    /// The worker who produced the vote.
    pub worker: WorkerId,
    /// The answer the worker gave.
    pub answer: Answer,
    /// Zero-based position in the task's answering sequence.
    pub sequence: u32,
}

/// The votes and ground truth collected for one task.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskRecord {
    id: TaskId,
    prior: Prior,
    ground_truth: Answer,
    votes: Vec<CollectedVote>,
}

impl TaskRecord {
    /// Creates a record for a task with known ground truth.
    pub fn new(id: TaskId, prior: Prior, ground_truth: Answer) -> Self {
        TaskRecord {
            id,
            prior,
            ground_truth,
            votes: Vec::new(),
        }
    }

    /// Appends a vote at the end of the answering sequence.
    pub fn push_vote(&mut self, worker: WorkerId, answer: Answer) {
        let sequence = self.votes.len() as u32;
        self.votes.push(CollectedVote {
            worker,
            answer,
            sequence,
        });
    }

    /// The task id.
    #[inline]
    pub fn id(&self) -> TaskId {
        self.id
    }

    /// The task prior.
    #[inline]
    pub fn prior(&self) -> Prior {
        self.prior
    }

    /// The ground truth.
    #[inline]
    pub fn ground_truth(&self) -> Answer {
        self.ground_truth
    }

    /// All collected votes in answering order.
    #[inline]
    pub fn votes(&self) -> &[CollectedVote] {
        &self.votes
    }

    /// The first `z` votes of the answering sequence (all if fewer exist).
    pub fn first_votes(&self, z: usize) -> &[CollectedVote] {
        &self.votes[..z.min(self.votes.len())]
    }

    /// The ids of the workers who answered, in answering order.
    pub fn answering_workers(&self) -> Vec<WorkerId> {
        self.votes.iter().map(|v| v.worker).collect()
    }

    /// Number of collected votes.
    #[inline]
    pub fn num_votes(&self) -> usize {
        self.votes.len()
    }
}

/// Per-worker answering statistics derived from a dataset.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkerStats {
    /// The worker.
    pub worker: WorkerId,
    /// Number of tasks the worker answered.
    pub answered: usize,
    /// Number of tasks the worker answered correctly.
    pub correct: usize,
}

impl WorkerStats {
    /// The empirical accuracy (`correct / answered`), the paper's definition
    /// of a real worker's quality (Section 6.2.1); `0.5` if the worker
    /// answered nothing.
    pub fn empirical_quality(&self) -> f64 {
        if self.answered == 0 {
            0.5
        } else {
            self.correct as f64 / self.answered as f64
        }
    }
}

/// A complete crowdsourced dataset: a worker pool (with known or estimated
/// qualities and costs) plus per-task vote records.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrowdDataset {
    workers: WorkerPool,
    tasks: Vec<TaskRecord>,
}

impl CrowdDataset {
    /// Creates a dataset from a pool and task records, checking that every
    /// vote references a known worker.
    pub fn new(workers: WorkerPool, tasks: Vec<TaskRecord>) -> ModelResult<Self> {
        for task in &tasks {
            for vote in task.votes() {
                if !workers.contains(vote.worker) {
                    return Err(ModelError::UnknownWorker {
                        id: vote.worker.raw(),
                    });
                }
            }
        }
        Ok(CrowdDataset { workers, tasks })
    }

    /// The worker pool.
    #[inline]
    pub fn workers(&self) -> &WorkerPool {
        &self.workers
    }

    /// The task records.
    #[inline]
    pub fn tasks(&self) -> &[TaskRecord] {
        &self.tasks
    }

    /// Number of tasks.
    #[inline]
    pub fn num_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// Number of workers.
    #[inline]
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// Total number of collected votes across all tasks.
    pub fn num_votes(&self) -> usize {
        self.tasks.iter().map(|t| t.num_votes()).sum()
    }

    /// Average number of answers per worker (the paper reports 93.75 for the
    /// AMT dataset).
    pub fn mean_answers_per_worker(&self) -> f64 {
        if self.workers.is_empty() {
            return 0.0;
        }
        self.num_votes() as f64 / self.workers.len() as f64
    }

    /// Per-worker answering statistics (answered / correct counts).
    pub fn worker_stats(&self) -> Vec<WorkerStats> {
        let mut map: BTreeMap<WorkerId, (usize, usize)> = BTreeMap::new();
        for id in self.workers.ids() {
            map.insert(id, (0, 0));
        }
        for task in &self.tasks {
            for vote in task.votes() {
                let entry = map.entry(vote.worker).or_insert((0, 0));
                entry.0 += 1;
                if vote.answer == task.ground_truth() {
                    entry.1 += 1;
                }
            }
        }
        map.into_iter()
            .map(|(worker, (answered, correct))| WorkerStats {
                worker,
                answered,
                correct,
            })
            .collect()
    }

    /// Rebuilds the worker pool with qualities replaced by the empirical
    /// accuracy computed from this dataset (keeping each worker's cost), as
    /// done for the real dataset in Section 6.2.1.
    pub fn with_empirical_qualities(&self) -> ModelResult<CrowdDataset> {
        let stats: BTreeMap<WorkerId, WorkerStats> = self
            .worker_stats()
            .into_iter()
            .map(|s| (s.worker, s))
            .collect();
        let workers = self
            .workers
            .iter()
            .map(|w| {
                let quality = stats
                    .get(&w.id())
                    .map(|s| s.empirical_quality())
                    .unwrap_or_else(|| w.quality());
                Worker::new(w.id(), quality, w.cost())
            })
            .collect::<ModelResult<Vec<_>>>()?;
        CrowdDataset::new(WorkerPool::from_workers(workers)?, self.tasks.clone())
    }

    /// Looks up a task record by id.
    pub fn task(&self, id: TaskId) -> Option<&TaskRecord> {
        self.tasks.iter().find(|t| t.id() == id)
    }

    /// The mean empirical worker quality over workers that answered at least
    /// one task.
    pub fn mean_empirical_quality(&self) -> f64 {
        let stats = self.worker_stats();
        let active: Vec<f64> = stats
            .iter()
            .filter(|s| s.answered > 0)
            .map(|s| s.empirical_quality())
            .collect();
        crate::stats::mean(&active)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_dataset() -> CrowdDataset {
        let pool =
            WorkerPool::from_qualities_and_costs(&[0.9, 0.6, 0.7], &[1.0, 1.0, 1.0]).unwrap();
        let mut t0 = TaskRecord::new(TaskId(0), Prior::uniform(), Answer::Yes);
        t0.push_vote(WorkerId(0), Answer::Yes);
        t0.push_vote(WorkerId(1), Answer::No);
        t0.push_vote(WorkerId(2), Answer::Yes);
        let mut t1 = TaskRecord::new(TaskId(1), Prior::uniform(), Answer::No);
        t1.push_vote(WorkerId(0), Answer::No);
        t1.push_vote(WorkerId(1), Answer::No);
        CrowdDataset::new(pool, vec![t0, t1]).unwrap()
    }

    #[test]
    fn task_record_sequencing() {
        let mut rec = TaskRecord::new(TaskId(5), Prior::uniform(), Answer::Yes);
        rec.push_vote(WorkerId(3), Answer::No);
        rec.push_vote(WorkerId(1), Answer::Yes);
        assert_eq!(rec.num_votes(), 2);
        assert_eq!(rec.votes()[0].sequence, 0);
        assert_eq!(rec.votes()[1].sequence, 1);
        assert_eq!(rec.first_votes(1).len(), 1);
        assert_eq!(rec.first_votes(10).len(), 2);
        assert_eq!(rec.answering_workers(), vec![WorkerId(3), WorkerId(1)]);
        assert_eq!(rec.ground_truth(), Answer::Yes);
        assert_eq!(rec.id(), TaskId(5));
    }

    #[test]
    fn dataset_counts() {
        let ds = tiny_dataset();
        assert_eq!(ds.num_tasks(), 2);
        assert_eq!(ds.num_workers(), 3);
        assert_eq!(ds.num_votes(), 5);
        assert!((ds.mean_answers_per_worker() - 5.0 / 3.0).abs() < 1e-12);
        assert!(ds.task(TaskId(1)).is_some());
        assert!(ds.task(TaskId(9)).is_none());
    }

    #[test]
    fn dataset_rejects_unknown_workers() {
        let pool = WorkerPool::from_qualities(&[0.7]).unwrap();
        let mut rec = TaskRecord::new(TaskId(0), Prior::uniform(), Answer::Yes);
        rec.push_vote(WorkerId(5), Answer::Yes);
        assert!(CrowdDataset::new(pool, vec![rec]).is_err());
    }

    #[test]
    fn worker_stats_and_empirical_quality() {
        let ds = tiny_dataset();
        let stats = ds.worker_stats();
        assert_eq!(stats.len(), 3);
        // Worker 0 answered both tasks correctly.
        let s0 = stats.iter().find(|s| s.worker == WorkerId(0)).unwrap();
        assert_eq!((s0.answered, s0.correct), (2, 2));
        assert!((s0.empirical_quality() - 1.0).abs() < 1e-12);
        // Worker 1 answered both, got only task 1 right.
        let s1 = stats.iter().find(|s| s.worker == WorkerId(1)).unwrap();
        assert_eq!((s1.answered, s1.correct), (2, 1));
        assert!((s1.empirical_quality() - 0.5).abs() < 1e-12);
        // Worker 2 answered only task 0, correctly.
        let s2 = stats.iter().find(|s| s.worker == WorkerId(2)).unwrap();
        assert_eq!((s2.answered, s2.correct), (1, 1));
    }

    #[test]
    fn empirical_quality_defaults_to_half_for_silent_workers() {
        let s = WorkerStats {
            worker: WorkerId(0),
            answered: 0,
            correct: 0,
        };
        assert!((s.empirical_quality() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn with_empirical_qualities_rewrites_pool() {
        let ds = tiny_dataset().with_empirical_qualities().unwrap();
        let w0 = ds.workers().get(WorkerId(0)).unwrap();
        assert!((w0.quality() - 1.0).abs() < 1e-12);
        // Costs are preserved.
        assert!((w0.cost() - 1.0).abs() < 1e-12);
        let w1 = ds.workers().get(WorkerId(1)).unwrap();
        assert!((w1.quality() - 0.5).abs() < 1e-12);
        let mean_q = ds.mean_empirical_quality();
        assert!((mean_q - (1.0 + 0.5 + 1.0) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn dataset_serializes_roundtrip() {
        let ds = tiny_dataset();
        let json = serde_json::to_string(&ds).unwrap();
        let back: CrowdDataset = serde_json::from_str(&json).unwrap();
        assert_eq!(ds, back);
    }
}
