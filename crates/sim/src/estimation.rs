//! Worker-quality estimation from answer history.
//!
//! The paper assumes worker qualities are known in advance and cites prior
//! work on estimating them from background information and answer history
//! (Section 2.1). For the real dataset it simply uses each worker's observed
//! accuracy (Section 6.2.1). This module provides that estimator plus two of
//! the commonly used alternatives the related-work section mentions:
//! accuracy on *golden questions* (tasks with known ground truth planted in
//! the stream, as in CDAS \[25\]) and agreement with the majority answer when
//! no ground truth is available at all.

use std::collections::BTreeMap;

use jury_model::{
    Answer, CrowdDataset, ModelResult, Prior, TaskId, TaskRecord, Worker, WorkerId, WorkerPool,
};

/// Laplace-smoothed accuracy: `(correct + s) / (answered + 2s)`. Smoothing
/// keeps estimates away from the degenerate 0 and 1 for workers with very
/// few answers.
pub fn smoothed_accuracy(correct: usize, answered: usize, smoothing: f64) -> f64 {
    (correct as f64 + smoothing) / (answered as f64 + 2.0 * smoothing)
}

/// The paper's estimator for the real dataset: each worker's quality is the
/// proportion of her answers that match the ground truth, with optional
/// Laplace smoothing (`smoothing = 0` reproduces the raw proportion).
pub fn empirical_qualities(dataset: &CrowdDataset, smoothing: f64) -> BTreeMap<WorkerId, f64> {
    dataset
        .worker_stats()
        .into_iter()
        .map(|s| {
            let quality = if s.answered == 0 {
                0.5
            } else {
                smoothed_accuracy(s.correct, s.answered, smoothing)
            };
            (s.worker, quality)
        })
        .collect()
}

/// Quality estimation from golden questions only: accuracy is measured on
/// the subset of tasks whose ids appear in `golden`, and workers who
/// answered no golden question get 0.5.
pub fn golden_question_qualities(
    dataset: &CrowdDataset,
    golden: &[TaskId],
    smoothing: f64,
) -> BTreeMap<WorkerId, f64> {
    let golden_set: std::collections::BTreeSet<TaskId> = golden.iter().copied().collect();
    let mut counts: BTreeMap<WorkerId, (usize, usize)> = dataset
        .workers()
        .ids()
        .into_iter()
        .map(|id| (id, (0, 0)))
        .collect();
    for task in dataset.tasks() {
        if !golden_set.contains(&task.id()) {
            continue;
        }
        for vote in task.votes() {
            let entry = counts.entry(vote.worker).or_insert((0, 0));
            entry.0 += 1;
            if vote.answer == task.ground_truth() {
                entry.1 += 1;
            }
        }
    }
    counts
        .into_iter()
        .map(|(worker, (answered, correct))| {
            let quality = if answered == 0 {
                0.5
            } else {
                smoothed_accuracy(correct, answered, smoothing)
            };
            (worker, quality)
        })
        .collect()
}

/// Quality estimation without any ground truth: each worker's quality is her
/// agreement rate with the per-task majority answer (ties count as half).
/// This is the crudest self-consistent estimator and serves as the
/// initialization of the Dawid–Skene EM in [`crate::dawid_skene`].
pub fn majority_agreement_qualities(dataset: &CrowdDataset) -> BTreeMap<WorkerId, f64> {
    let mut agreement: BTreeMap<WorkerId, (f64, usize)> = dataset
        .workers()
        .ids()
        .into_iter()
        .map(|id| (id, (0.0, 0)))
        .collect();
    for task in dataset.tasks() {
        let votes = task.votes();
        if votes.is_empty() {
            continue;
        }
        let no_count = votes.iter().filter(|v| v.answer == Answer::No).count();
        let yes_count = votes.len() - no_count;
        for vote in votes {
            let entry = agreement.entry(vote.worker).or_insert((0.0, 0));
            entry.1 += 1;
            if no_count == yes_count {
                entry.0 += 0.5;
            } else {
                let majority = if no_count > yes_count {
                    Answer::No
                } else {
                    Answer::Yes
                };
                if vote.answer == majority {
                    entry.0 += 1.0;
                }
            }
        }
    }
    agreement
        .into_iter()
        .map(|(worker, (agree, total))| {
            let quality = if total == 0 {
                0.5
            } else {
                agree / total as f64
            };
            (worker, quality)
        })
        .collect()
}

/// Builds a [`CrowdDataset`] from a flat stream of `(task, worker, answer)`
/// vote triples — the bridge from a streamed answer log to the batch
/// estimators in this module and the EM in [`crate::dawid_skene`].
///
/// The dataset carries **placeholder** ground truths (`Answer::Yes`) and
/// worker qualities (`0.5`, unit cost), because the intended consumers —
/// [`majority_agreement_qualities`] and the Dawid–Skene fit — ignore both.
/// Do not feed the result to truth-aware estimators such as
/// [`empirical_qualities`].
pub fn dataset_from_votes(
    votes: &[(TaskId, WorkerId, Answer)],
    prior: Prior,
) -> ModelResult<CrowdDataset> {
    let mut worker_ids: Vec<WorkerId> = votes.iter().map(|&(_, w, _)| w).collect();
    worker_ids.sort_unstable();
    worker_ids.dedup();
    let workers = worker_ids
        .into_iter()
        .map(|id| Worker::new(id, 0.5, 1.0))
        .collect::<ModelResult<Vec<_>>>()?;
    let pool = WorkerPool::from_workers(workers)?;

    let mut order: Vec<TaskId> = Vec::new();
    let mut records: BTreeMap<TaskId, TaskRecord> = BTreeMap::new();
    for &(task, worker, answer) in votes {
        let record = records.entry(task).or_insert_with(|| {
            order.push(task);
            TaskRecord::new(task, prior, Answer::Yes)
        });
        record.push_vote(worker, answer);
    }
    let tasks = order
        .into_iter()
        .map(|id| records.remove(&id).expect("recorded above"))
        .collect();
    CrowdDataset::new(pool, tasks)
}

/// Rebuilds a worker pool with qualities replaced by the supplied estimates
/// (costs are preserved); workers without an estimate keep their current
/// quality.
pub fn pool_with_estimated_qualities(
    pool: &WorkerPool,
    estimates: &BTreeMap<WorkerId, f64>,
) -> WorkerPool {
    let workers: Vec<Worker> = pool
        .iter()
        .map(|w| {
            let quality = estimates
                .get(&w.id())
                .copied()
                .unwrap_or_else(|| w.quality());
            Worker::new(w.id(), quality.clamp(0.0, 1.0), w.cost())
                .expect("clamped quality and existing cost are valid")
        })
        .collect();
    WorkerPool::from_workers(workers).expect("ids copied from an existing pool")
}

/// Mean absolute error between estimated and reference qualities, over the
/// workers present in both maps — used to compare estimators in tests and in
/// the documentation examples.
pub fn mean_absolute_error(
    estimates: &BTreeMap<WorkerId, f64>,
    reference: &BTreeMap<WorkerId, f64>,
) -> f64 {
    let mut total = 0.0;
    let mut count = 0usize;
    for (worker, est) in estimates {
        if let Some(truth) = reference.get(worker) {
            total += (est - truth).abs();
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        total / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::amt::{AmtCampaignConfig, AmtSimulator};
    use crate::platform::{PlatformConfig, SimulatedPlatform};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn simulated_dataset(seed: u64) -> (WorkerPool, CrowdDataset) {
        // A controlled campaign where the latent qualities are known, so the
        // estimators can be scored against the truth.
        let workers =
            WorkerPool::from_qualities(&[0.9, 0.85, 0.75, 0.7, 0.65, 0.6, 0.55, 0.8]).unwrap();
        let platform = SimulatedPlatform::new(PlatformConfig {
            questions_per_hit: 50,
            assignments_per_hit: 6,
            reward_per_hit: 0.02,
        });
        let truths: Vec<Answer> = (0..400)
            .map(|i| if i % 2 == 0 { Answer::Yes } else { Answer::No })
            .collect();
        let activity = vec![1.0; workers.len()];
        let mut rng = StdRng::seed_from_u64(seed);
        let dataset = platform
            .run_campaign(&workers, &truths, &activity, &mut rng)
            .unwrap();
        (workers, dataset)
    }

    fn latent_qualities(pool: &WorkerPool) -> BTreeMap<WorkerId, f64> {
        pool.iter().map(|w| (w.id(), w.quality())).collect()
    }

    #[test]
    fn smoothing_behaves_at_the_extremes() {
        assert!((smoothed_accuracy(0, 0, 1.0) - 0.5).abs() < 1e-12);
        assert!((smoothed_accuracy(10, 10, 0.0) - 1.0).abs() < 1e-12);
        assert!(smoothed_accuracy(10, 10, 1.0) < 1.0);
        assert!(smoothed_accuracy(0, 10, 1.0) > 0.0);
    }

    #[test]
    fn empirical_estimates_recover_latent_qualities() {
        let (workers, dataset) = simulated_dataset(11);
        let estimates = empirical_qualities(&dataset, 0.0);
        let mae = mean_absolute_error(&estimates, &latent_qualities(&workers));
        assert!(
            mae < 0.05,
            "MAE {mae} too large with ~300 answers per worker"
        );
    }

    #[test]
    fn golden_questions_estimate_is_noisier_but_unbiased() {
        let (workers, dataset) = simulated_dataset(13);
        let golden: Vec<TaskId> = (0..50).map(|i| TaskId(i as u64)).collect();
        let estimates = golden_question_qualities(&dataset, &golden, 1.0);
        let mae = mean_absolute_error(&estimates, &latent_qualities(&workers));
        assert!(mae < 0.12, "MAE {mae} too large for 50 golden questions");
        // Using every task as golden reduces to the empirical estimator.
        let all: Vec<TaskId> = dataset.tasks().iter().map(|t| t.id()).collect();
        let all_golden = golden_question_qualities(&dataset, &all, 0.0);
        let empirical = empirical_qualities(&dataset, 0.0);
        for (worker, quality) in &all_golden {
            assert!((quality - empirical[worker]).abs() < 1e-12);
        }
    }

    #[test]
    fn majority_agreement_tracks_quality_without_ground_truth() {
        let (workers, dataset) = simulated_dataset(17);
        let estimates = majority_agreement_qualities(&dataset);
        // Agreement with the majority is a biased but monotone proxy: the
        // best and worst workers should still be ordered correctly.
        let best = estimates[&WorkerId(0)];
        let worst = estimates[&WorkerId(6)];
        assert!(best > worst, "best {best} should exceed worst {worst}");
        let mae = mean_absolute_error(&estimates, &latent_qualities(&workers));
        assert!(mae < 0.2, "MAE {mae} unreasonably large");
    }

    #[test]
    fn pool_rewrite_preserves_costs_and_ids() {
        let pool = WorkerPool::from_qualities_and_costs(&[0.6, 0.7], &[1.0, 2.0]).unwrap();
        let mut estimates = BTreeMap::new();
        estimates.insert(WorkerId(0), 0.95);
        let rebuilt = pool_with_estimated_qualities(&pool, &estimates);
        assert!((rebuilt.get(WorkerId(0)).unwrap().quality() - 0.95).abs() < 1e-12);
        assert!((rebuilt.get(WorkerId(0)).unwrap().cost() - 1.0).abs() < 1e-12);
        // Worker 1 had no estimate: unchanged.
        assert!((rebuilt.get(WorkerId(1)).unwrap().quality() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn estimators_work_on_the_amt_campaign() {
        let sim = AmtSimulator::new(AmtCampaignConfig::small());
        let mut rng = StdRng::seed_from_u64(29);
        let dataset = sim.run(&mut rng).unwrap();
        let empirical = empirical_qualities(&dataset, 0.0);
        assert_eq!(empirical.len(), dataset.num_workers());
        for quality in empirical.values() {
            assert!((0.0..=1.0).contains(quality));
        }
    }

    #[test]
    fn dataset_from_votes_groups_by_task_in_arrival_order() {
        use jury_model::Prior;
        let votes = vec![
            (TaskId(9), WorkerId(2), Answer::Yes),
            (TaskId(1), WorkerId(0), Answer::No),
            (TaskId(9), WorkerId(0), Answer::Yes),
        ];
        let ds = dataset_from_votes(&votes, Prior::uniform()).unwrap();
        assert_eq!(ds.num_workers(), 2);
        assert_eq!(ds.num_votes(), 3);
        // Task order follows first appearance in the stream.
        assert_eq!(ds.tasks()[0].id(), TaskId(9));
        assert_eq!(ds.tasks()[1].id(), TaskId(1));
        assert_eq!(
            ds.tasks()[0].answering_workers(),
            vec![WorkerId(2), WorkerId(0)]
        );
        // Majority agreement works on the placeholder-truth dataset.
        let estimates = majority_agreement_qualities(&ds);
        assert_eq!(estimates.len(), 2);
    }

    #[test]
    fn mean_absolute_error_edge_cases() {
        let empty = BTreeMap::new();
        assert_eq!(mean_absolute_error(&empty, &empty), 0.0);
        let mut a = BTreeMap::new();
        a.insert(WorkerId(0), 0.8);
        let mut b = BTreeMap::new();
        b.insert(WorkerId(1), 0.9);
        // Disjoint keys: nothing to compare.
        assert_eq!(mean_absolute_error(&a, &b), 0.0);
    }
}
