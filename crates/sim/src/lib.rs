//! # jury-sim
//!
//! A simulated crowdsourcing platform for the *Optimal Jury Selection*
//! reproduction — the substitute for the Amazon Mechanical Turk deployment
//! used in the paper's real-data evaluation (Section 6.2).
//!
//! The crate provides:
//!
//! * [`answering`] — drawing votes from the paper's worker model (Bernoulli
//!   in the worker's quality; confusion-matrix rows for multi-class tasks)
//!   and Monte-Carlo accuracy estimation;
//! * [`platform`] — HIT batching, assignment to workers with heterogeneous
//!   activity, and campaign execution producing a
//!   [`jury_model::CrowdDataset`];
//! * [`amt`] — an AMT-like sentiment-analysis campaign whose summary
//!   statistics match the paper's real dataset (600 tasks, 128 workers, 20
//!   votes per task, mean quality ≈ 0.71);
//! * [`estimation`] — worker-quality estimators (empirical accuracy, golden
//!   questions, majority agreement);
//! * [`dawid_skene`] — EM-based quality estimation without ground truth;
//! * [`accuracy`] — the Figure 10(d) machinery comparing analytic JQ against
//!   realized Bayesian-voting accuracy on replayed answer sequences.
//!
//! ```
//! use jury_sim::amt::{AmtCampaignConfig, AmtSimulator};
//! use rand::SeedableRng;
//!
//! let sim = AmtSimulator::new(AmtCampaignConfig::small());
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let dataset = sim.run(&mut rng).unwrap();
//! assert_eq!(dataset.num_tasks(), 60);
//! assert!(dataset.workers().mean_quality() > 0.5);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod accuracy;
pub mod amt;
pub mod answering;
pub mod dawid_skene;
pub mod estimation;
pub mod platform;

pub use accuracy::{evaluate_prefix, prefix_jury, prefix_sweep, prefix_votes, AccuracyPoint};
pub use amt::{AmtCampaignConfig, AmtSimulator};
pub use answering::{draw_label_vote, draw_vote, draw_voting, simulate_strategy_accuracy};
pub use dawid_skene::{fit as dawid_skene_fit, DawidSkeneConfig, DawidSkeneFit};
pub use estimation::{
    empirical_qualities, golden_question_qualities, majority_agreement_qualities,
    mean_absolute_error, pool_with_estimated_qualities, smoothed_accuracy,
};
pub use platform::{Hit, PlatformConfig, SimulatedPlatform};

#[cfg(test)]
mod proptests {
    use super::*;
    use jury_model::{Answer, Jury, Prior};
    use jury_voting::BayesianVoting;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Monte-Carlo accuracy of BV converges to the analytic JQ — the
        /// simulation and the analysis agree with each other.
        #[test]
        fn simulation_matches_analytic_jq(
            qualities in proptest::collection::vec(0.5f64..0.95, 1..5),
            seed in 0u64..1000,
        ) {
            let jury = Jury::from_qualities(&qualities).unwrap();
            let analytic = jury_jq::exact_bv_jq(&jury, Prior::uniform()).unwrap();
            let mut rng = StdRng::seed_from_u64(seed);
            let simulated = simulate_strategy_accuracy(
                &jury, &BayesianVoting::new(), Prior::uniform(), 4000, &mut rng);
            prop_assert!((analytic - simulated).abs() < 0.05,
                "analytic {analytic} vs simulated {simulated}");
        }

        /// Campaigns always produce structurally valid datasets: the right
        /// number of votes, all voters distinct per task, all ids known.
        #[test]
        fn campaigns_are_structurally_sound(
            num_workers in 5usize..15,
            votes_per_task in 2usize..5,
            seed in 0u64..100,
        ) {
            let qualities: Vec<f64> = (0..num_workers).map(|i| 0.55 + 0.02 * i as f64).collect();
            let workers = jury_model::WorkerPool::from_qualities(&qualities).unwrap();
            let platform = SimulatedPlatform::new(PlatformConfig {
                questions_per_hit: 7,
                assignments_per_hit: votes_per_task,
                reward_per_hit: 0.02,
            });
            let truths: Vec<Answer> = (0..40)
                .map(|i| if i % 2 == 0 { Answer::Yes } else { Answer::No })
                .collect();
            let activity = vec![1.0; num_workers];
            let mut rng = StdRng::seed_from_u64(seed);
            let dataset = platform.run_campaign(&workers, &truths, &activity, &mut rng).unwrap();
            prop_assert_eq!(dataset.num_tasks(), 40);
            for task in dataset.tasks() {
                prop_assert_eq!(task.num_votes(), votes_per_task);
                let mut voters = task.answering_workers();
                voters.sort();
                voters.dedup();
                prop_assert_eq!(voters.len(), votes_per_task);
            }
        }
    }
}
