//! An Amazon-Mechanical-Turk-like sentiment-analysis campaign generator — the
//! substitute for the paper's real dataset (Section 6.2.1).
//!
//! The paper crowdsourced 600 decision-making tasks ("is the sentiment of
//! this tweet positive?") to 128 AMT workers, 20 assignments per task, and
//! reports these statistics about the collected data:
//!
//! * each worker answered 93.75 questions on average; two workers answered
//!   everything, 67 answered a single HIT (20 questions);
//! * the average (empirical) worker quality is 0.71;
//! * 40 workers have quality above 0.8 and roughly 10 % are below 0.6.
//!
//! The generator below reproduces that shape: latent qualities are drawn from
//! a two-component mixture (a smaller high-quality mode around 0.85 and a
//! broad main mode around 0.66), worker activity is heavy-tailed so that a
//! handful of workers dominate participation, and every vote is drawn from
//! the worker's latent quality through the simulated platform. Because all
//! downstream computation only consumes the (worker, task, vote, truth)
//! relation, this preserves the behaviour the Figure 10 experiments measure.

use rand::Rng;
use rand_distr::{Distribution, Normal};

use jury_model::{Answer, CrowdDataset, ModelResult, Worker, WorkerId, WorkerPool};

use crate::platform::{PlatformConfig, SimulatedPlatform};

/// Configuration of the AMT-like campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct AmtCampaignConfig {
    /// Number of decision-making tasks (the paper uses 600 tweets).
    pub num_tasks: usize,
    /// Number of workers in the population (the paper observed 128).
    pub num_workers: usize,
    /// Votes collected per task (the paper sets 20 assignments per HIT).
    pub votes_per_task: usize,
    /// Questions batched per HIT (the paper uses 20).
    pub questions_per_hit: usize,
    /// Mean of the per-question worker cost used by the selection
    /// experiments (mirrors the synthetic setting's `µ̂ = 0.05`).
    pub cost_mean: f64,
    /// Standard deviation of the per-question worker cost (`σ̂`), swept by
    /// Figure 10(c).
    pub cost_std_dev: f64,
}

impl Default for AmtCampaignConfig {
    fn default() -> Self {
        AmtCampaignConfig {
            num_tasks: 600,
            num_workers: 128,
            votes_per_task: 20,
            questions_per_hit: 20,
            cost_mean: 0.05,
            cost_std_dev: 0.2,
        }
    }
}

impl AmtCampaignConfig {
    /// A scaled-down campaign (60 tasks, 40 workers, 10 votes per task) for
    /// quick tests and examples.
    pub fn small() -> Self {
        AmtCampaignConfig {
            num_tasks: 60,
            num_workers: 40,
            votes_per_task: 10,
            questions_per_hit: 10,
            cost_mean: 0.05,
            cost_std_dev: 0.2,
        }
    }

    /// Sets the cost standard deviation (Figure 10(c) sweeps it).
    pub fn with_cost_std_dev(mut self, std_dev: f64) -> Self {
        self.cost_std_dev = std_dev.max(0.0);
        self
    }
}

/// The AMT-like campaign simulator.
#[derive(Debug, Clone)]
pub struct AmtSimulator {
    config: AmtCampaignConfig,
}

impl AmtSimulator {
    /// Creates a simulator.
    pub fn new(config: AmtCampaignConfig) -> Self {
        AmtSimulator { config }
    }

    /// Creates a simulator with the paper's campaign dimensions.
    pub fn paper_campaign() -> Self {
        AmtSimulator::new(AmtCampaignConfig::default())
    }

    /// The configuration.
    pub fn config(&self) -> &AmtCampaignConfig {
        &self.config
    }

    /// Draws one latent worker quality from the two-component mixture
    /// calibrated against the paper's reported statistics.
    pub fn sample_quality<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let (mean, std): (f64, f64) = if rng.gen::<f64>() < 0.3 {
            (0.86, 0.05)
        } else {
            (0.66, 0.06)
        };
        let q = Normal::new(mean, std).expect("valid normal").sample(rng);
        q.clamp(0.35, 0.98)
    }

    /// Generates the latent worker population: qualities from the mixture,
    /// per-question costs from `N(cost_mean, cost_std_dev²)` clamped to a
    /// small positive floor.
    pub fn generate_workers<R: Rng + ?Sized>(&self, rng: &mut R) -> WorkerPool {
        let workers: Vec<Worker> = (0..self.config.num_workers)
            .map(|i| {
                let quality = self.sample_quality(rng);
                // As in the synthetic generator, negative Gaussian draws are
                // folded back so the spread parameter keeps its meaning.
                let cost = if self.config.cost_std_dev == 0.0 {
                    self.config.cost_mean
                } else {
                    Normal::new(self.config.cost_mean, self.config.cost_std_dev)
                        .expect("valid normal")
                        .sample(rng)
                }
                .abs()
                .max(0.001);
                Worker::new(WorkerId(i as u32), quality, cost).expect("clamped values are valid")
            })
            .collect();
        WorkerPool::from_workers(workers).expect("sequential ids")
    }

    /// Generates heavy-tailed activity weights: a few workers pick up HITs
    /// constantly while the long tail contributes a single HIT each,
    /// mirroring the participation skew the paper reports.
    pub fn generate_activity<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<f64> {
        (0..self.config.num_workers)
            .map(|i| {
                if i < 2 {
                    // The two "always on" workers.
                    50.0
                } else {
                    // Pareto-like tail: most mass near the minimum.
                    let u: f64 = rng.gen::<f64>().max(1e-6);
                    u.powf(-0.7).min(30.0)
                }
            })
            .collect()
    }

    /// Runs the full campaign: generates the worker population, the latent
    /// ground truths (balanced yes/no, as in the paper), and the collected
    /// votes, and returns the dataset with worker qualities replaced by
    /// their *empirical* accuracies — exactly how the paper derives worker
    /// quality from the real data.
    pub fn run<R: Rng + ?Sized>(&self, rng: &mut R) -> ModelResult<CrowdDataset> {
        let workers = self.generate_workers(rng);
        let activity = self.generate_activity(rng);
        let truths: Vec<Answer> = (0..self.config.num_tasks)
            .map(|_| {
                if rng.gen::<f64>() < 0.5 {
                    Answer::No
                } else {
                    Answer::Yes
                }
            })
            .collect();
        let platform = SimulatedPlatform::new(PlatformConfig {
            questions_per_hit: self.config.questions_per_hit,
            assignments_per_hit: self.config.votes_per_task,
            reward_per_hit: 0.02,
        });
        let raw = platform.run_campaign(&workers, &truths, &activity, rng)?;
        raw.with_empirical_qualities()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn paper_campaign_dimensions() {
        let config = AmtCampaignConfig::default();
        assert_eq!(config.num_tasks, 600);
        assert_eq!(config.num_workers, 128);
        assert_eq!(config.votes_per_task, 20);
    }

    #[test]
    fn quality_mixture_matches_reported_statistics() {
        let sim = AmtSimulator::paper_campaign();
        let mut rng = StdRng::seed_from_u64(17);
        let qualities: Vec<f64> = (0..5_000).map(|_| sim.sample_quality(&mut rng)).collect();
        let mean = jury_model::stats::mean(&qualities);
        assert!((mean - 0.71).abs() < 0.04, "mean latent quality {mean}");
        let above_08 =
            qualities.iter().filter(|&&q| q > 0.8).count() as f64 / qualities.len() as f64;
        // The paper reports 40 / 128 ≈ 31 % above 0.8.
        assert!(
            (0.15..0.45).contains(&above_08),
            "fraction above 0.8: {above_08}"
        );
        let below_06 =
            qualities.iter().filter(|&&q| q < 0.6).count() as f64 / qualities.len() as f64;
        // The paper reports about 10 % below 0.6.
        assert!(
            (0.02..0.25).contains(&below_06),
            "fraction below 0.6: {below_06}"
        );
    }

    #[test]
    fn small_campaign_produces_a_consistent_dataset() {
        let sim = AmtSimulator::new(AmtCampaignConfig::small());
        let mut rng = StdRng::seed_from_u64(23);
        let dataset = sim.run(&mut rng).unwrap();
        assert_eq!(dataset.num_tasks(), 60);
        assert_eq!(dataset.num_workers(), 40);
        for task in dataset.tasks() {
            assert_eq!(task.num_votes(), 10);
        }
        // Empirical qualities are plugged into the pool.
        let mean_quality = dataset.workers().mean_quality();
        assert!(
            mean_quality > 0.55 && mean_quality < 0.9,
            "mean {mean_quality}"
        );
    }

    #[test]
    fn campaign_is_reproducible_for_a_fixed_seed() {
        let sim = AmtSimulator::new(AmtCampaignConfig::small());
        let a = sim.run(&mut StdRng::seed_from_u64(7)).unwrap();
        let b = sim.run(&mut StdRng::seed_from_u64(7)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn activity_is_heavy_tailed() {
        let sim = AmtSimulator::paper_campaign();
        let mut rng = StdRng::seed_from_u64(31);
        let activity = sim.generate_activity(&mut rng);
        assert_eq!(activity.len(), 128);
        let max = activity.iter().cloned().fold(0.0f64, f64::max);
        let median = jury_model::stats::median(&activity);
        assert!(
            max / median > 5.0,
            "activity skew too small: max {max}, median {median}"
        );
    }

    #[test]
    fn full_paper_campaign_statistics() {
        // One full-size campaign: 600 tasks × 20 votes = 12 000 votes over
        // 128 workers ⇒ 93.75 answers per worker on average.
        let sim = AmtSimulator::paper_campaign();
        let mut rng = StdRng::seed_from_u64(41);
        let dataset = sim.run(&mut rng).unwrap();
        assert_eq!(dataset.num_tasks(), 600);
        assert_eq!(dataset.num_votes(), 600 * 20);
        assert!((dataset.mean_answers_per_worker() - 93.75).abs() < 1e-9);
        let mean_quality = dataset.mean_empirical_quality();
        assert!(
            (mean_quality - 0.71).abs() < 0.08,
            "mean empirical quality {mean_quality}"
        );
        // Participation is skewed: the busiest worker answers far more than
        // the median worker.
        let stats = dataset.worker_stats();
        let answered: Vec<f64> = stats.iter().map(|s| s.answered as f64).collect();
        let max = answered.iter().cloned().fold(0.0f64, f64::max);
        assert!(max >= 300.0, "busiest worker answered only {max}");
    }

    #[test]
    fn cost_std_dev_zero_gives_constant_costs() {
        let sim = AmtSimulator::new(AmtCampaignConfig::small().with_cost_std_dev(0.0));
        let mut rng = StdRng::seed_from_u64(2);
        let workers = sim.generate_workers(&mut rng);
        assert!(workers.iter().all(|w| (w.cost() - 0.05).abs() < 1e-12));
    }
}
