//! Simulation of individual worker answers.
//!
//! The paper's worker model (Section 2.1) states that worker `j_i` votes the
//! true answer with probability `q_i`, independently of everyone else. This
//! module draws such votes, both for the single-quality binary model and for
//! the confusion-matrix multi-class model of Section 7.

use rand::Rng;

use jury_model::{Answer, ConfusionMatrix, Jury, Label, ModelResult, Worker};

/// Draws one binary vote from a worker given the true answer: the vote is
/// correct with probability `quality`.
pub fn draw_vote<R: Rng + ?Sized>(worker: &Worker, truth: Answer, rng: &mut R) -> Answer {
    if rng.gen::<f64>() < worker.quality() {
        truth
    } else {
        truth.flip()
    }
}

/// Draws a full voting (one vote per juror) given the true answer.
pub fn draw_voting<R: Rng + ?Sized>(jury: &Jury, truth: Answer, rng: &mut R) -> Vec<Answer> {
    jury.workers()
        .iter()
        .map(|w| draw_vote(w, truth, rng))
        .collect()
}

/// Draws one multi-class vote from a confusion matrix given the true label:
/// the vote is sampled from the matrix row of the true label.
pub fn draw_label_vote<R: Rng + ?Sized>(
    confusion: &ConfusionMatrix,
    truth: Label,
    rng: &mut R,
) -> ModelResult<Label> {
    truth.validate(confusion.num_choices())?;
    let row = confusion.row(truth);
    let u: f64 = rng.gen();
    let mut cumulative = 0.0;
    for (k, &p) in row.iter().enumerate() {
        cumulative += p;
        if u < cumulative {
            return Ok(Label(k));
        }
    }
    // Guard against rounding: return the last label.
    Ok(Label(confusion.num_choices() - 1))
}

/// Empirically estimates the probability that a jury + strategy pair answers
/// a task correctly, by Monte-Carlo simulation of `trials` independent
/// votings. This is the "measured" counterpart of the analytic JQ and is used
/// in tests and in the Figure 10(d) style evaluations.
pub fn simulate_strategy_accuracy<R, S>(
    jury: &Jury,
    strategy: &S,
    prior: jury_model::Prior,
    trials: usize,
    rng: &mut R,
) -> f64
where
    R: Rng,
    S: jury_voting::VotingStrategy + ?Sized,
{
    if trials == 0 {
        return 0.0;
    }
    let mut correct = 0usize;
    for _ in 0..trials {
        // Draw the latent truth from the prior, then the votes, then decide.
        let truth = if rng.gen::<f64>() < prior.alpha() {
            Answer::No
        } else {
            Answer::Yes
        };
        let votes = draw_voting(jury, truth, rng);
        let decided = strategy
            .decide(jury, &votes, prior, rng)
            .expect("simulated votes always match the jury size");
        if decided == truth {
            correct += 1;
        }
    }
    correct as f64 / trials as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use jury_model::{Prior, WorkerId};
    use jury_voting::{BayesianVoting, MajorityVoting};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn vote_frequency_matches_quality() {
        let worker = Worker::free(WorkerId(0), 0.8).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let trials = 20_000;
        let correct = (0..trials)
            .filter(|_| draw_vote(&worker, Answer::Yes, &mut rng) == Answer::Yes)
            .count();
        let freq = correct as f64 / trials as f64;
        assert!((freq - 0.8).abs() < 0.02, "frequency {freq}");
    }

    #[test]
    fn perfect_and_adversarial_workers() {
        let perfect = Worker::free(WorkerId(0), 1.0).unwrap();
        let hopeless = Worker::free(WorkerId(1), 0.0).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            assert_eq!(draw_vote(&perfect, Answer::No, &mut rng), Answer::No);
            assert_eq!(draw_vote(&hopeless, Answer::No, &mut rng), Answer::Yes);
        }
    }

    #[test]
    fn voting_has_one_vote_per_juror() {
        let jury = Jury::from_qualities(&[0.9, 0.7, 0.6]).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let votes = draw_voting(&jury, Answer::Yes, &mut rng);
        assert_eq!(votes.len(), 3);
    }

    #[test]
    fn label_vote_distribution_follows_the_matrix() {
        let m =
            ConfusionMatrix::new(3, vec![0.7, 0.2, 0.1, 0.1, 0.8, 0.1, 0.25, 0.25, 0.5]).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let trials = 30_000;
        let mut counts = [0usize; 3];
        for _ in 0..trials {
            counts[draw_label_vote(&m, Label(2), &mut rng).unwrap().index()] += 1;
        }
        let freqs: Vec<f64> = counts.iter().map(|&c| c as f64 / trials as f64).collect();
        assert!((freqs[0] - 0.25).abs() < 0.02);
        assert!((freqs[1] - 0.25).abs() < 0.02);
        assert!((freqs[2] - 0.5).abs() < 0.02);
        // Invalid truth labels are rejected.
        assert!(draw_label_vote(&m, Label(7), &mut rng).is_err());
    }

    #[test]
    fn simulated_accuracy_tracks_analytic_jq() {
        // Example 2/3: MV has JQ 79.2 %, BV has JQ 90 %. Monte Carlo over
        // many trials should land near those values.
        let jury = Jury::from_qualities(&[0.9, 0.6, 0.6]).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let mv = simulate_strategy_accuracy(
            &jury,
            &MajorityVoting::new(),
            Prior::uniform(),
            30_000,
            &mut rng,
        );
        let bv = simulate_strategy_accuracy(
            &jury,
            &BayesianVoting::new(),
            Prior::uniform(),
            30_000,
            &mut rng,
        );
        assert!((mv - 0.792).abs() < 0.01, "MV simulated {mv}");
        assert!((bv - 0.900).abs() < 0.01, "BV simulated {bv}");
        assert!(bv > mv);
    }

    #[test]
    fn zero_trials_is_harmless() {
        let jury = Jury::from_qualities(&[0.9]).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let acc = simulate_strategy_accuracy(
            &jury,
            &MajorityVoting::new(),
            Prior::uniform(),
            0,
            &mut rng,
        );
        assert_eq!(acc, 0.0);
    }
}
