//! Realized accuracy vs. predicted jury quality on collected datasets —
//! the machinery behind the paper's "Is JQ a good prediction?" experiment
//! (Section 6.2.3, Figure 10(d)).
//!
//! For every task, the first `z` votes of its answering sequence are
//! replayed: the jury is the set of workers who cast those votes (with their
//! estimated qualities), the realized result is what Bayesian voting decides
//! on the actual votes, and the prediction is the analytic `JQ` of that
//! jury. Averaging both over all tasks gives one point of the Figure 10(d)
//! curves; the paper's finding — reproduced by the integration tests — is
//! that the two curves track each other closely.

use jury_jq::JqEngine;
use jury_model::{Answer, CrowdDataset, Jury, Prior, TaskRecord};
use jury_voting::BayesianVoting;

/// The two curves of Figure 10(d) at one value of `z`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccuracyPoint {
    /// Number of votes replayed per task.
    pub votes_used: usize,
    /// Fraction of tasks whose BV result matches the ground truth.
    pub accuracy: f64,
    /// Average analytic JQ of the replayed juries.
    pub average_jq: f64,
}

/// Builds the jury formed by the first `z` voters of a task, using the
/// qualities stored in the dataset's worker pool.
pub fn prefix_jury(dataset: &CrowdDataset, task: &TaskRecord, z: usize) -> Jury {
    let members = task
        .first_votes(z)
        .iter()
        .filter_map(|vote| dataset.workers().get(vote.worker).ok().cloned())
        .collect();
    Jury::new(members)
}

/// The votes cast by the first `z` voters of a task, aligned with
/// [`prefix_jury`].
pub fn prefix_votes(task: &TaskRecord, z: usize) -> Vec<Answer> {
    task.first_votes(z).iter().map(|vote| vote.answer).collect()
}

/// Evaluates one value of `z`: realized BV accuracy and average predicted JQ
/// over every task that received at least one vote.
pub fn evaluate_prefix(
    dataset: &CrowdDataset,
    z: usize,
    prior: Prior,
    engine: &JqEngine,
) -> AccuracyPoint {
    let mut correct = 0usize;
    let mut evaluated = 0usize;
    let mut jq_sum = 0.0;
    for task in dataset.tasks() {
        let jury = prefix_jury(dataset, task, z);
        if jury.is_empty() {
            continue;
        }
        let votes = prefix_votes(task, z);
        let decided = BayesianVoting::result(&jury, &votes, prior)
            .expect("prefix votes always align with the prefix jury");
        evaluated += 1;
        if decided == task.ground_truth() {
            correct += 1;
        }
        jq_sum += engine.bv_jq(&jury, prior).value;
    }
    let accuracy = if evaluated == 0 {
        0.0
    } else {
        correct as f64 / evaluated as f64
    };
    let average_jq = if evaluated == 0 {
        0.0
    } else {
        jq_sum / evaluated as f64
    };
    AccuracyPoint {
        votes_used: z,
        accuracy,
        average_jq,
    }
}

/// Sweeps `z` over a range, producing the full Figure 10(d) series.
pub fn prefix_sweep(
    dataset: &CrowdDataset,
    zs: &[usize],
    prior: Prior,
    engine: &JqEngine,
) -> Vec<AccuracyPoint> {
    zs.iter()
        .map(|&z| evaluate_prefix(dataset, z, prior, engine))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::amt::{AmtCampaignConfig, AmtSimulator};
    use jury_model::{TaskId, WorkerId, WorkerPool};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_dataset() -> CrowdDataset {
        let pool = WorkerPool::from_qualities(&[0.9, 0.8, 0.3]).unwrap();
        let mut t0 = TaskRecord::new(TaskId(0), Prior::uniform(), Answer::Yes);
        t0.push_vote(WorkerId(0), Answer::Yes);
        t0.push_vote(WorkerId(1), Answer::Yes);
        t0.push_vote(WorkerId(2), Answer::No);
        let mut t1 = TaskRecord::new(TaskId(1), Prior::uniform(), Answer::No);
        t1.push_vote(WorkerId(1), Answer::No);
        t1.push_vote(WorkerId(0), Answer::Yes);
        CrowdDataset::new(pool, vec![t0, t1]).unwrap()
    }

    #[test]
    fn prefix_jury_and_votes_align() {
        let dataset = tiny_dataset();
        let task = dataset.task(TaskId(0)).unwrap();
        let jury = prefix_jury(&dataset, task, 2);
        let votes = prefix_votes(task, 2);
        assert_eq!(jury.size(), 2);
        assert_eq!(votes.len(), 2);
        assert_eq!(jury.ids(), vec![WorkerId(0), WorkerId(1)]);
        // Asking for more votes than exist returns everything.
        assert_eq!(prefix_jury(&dataset, task, 10).size(), 3);
    }

    #[test]
    fn evaluate_prefix_counts_correct_decisions() {
        let dataset = tiny_dataset();
        let engine = JqEngine::default();
        // With z = 2: task 0 has two Yes votes (correct), task 1 has one No
        // from the 0.8 worker and one Yes from the 0.9 worker — BV follows
        // the stronger worker and answers Yes, which is wrong.
        let point = evaluate_prefix(&dataset, 2, Prior::uniform(), &engine);
        assert_eq!(point.votes_used, 2);
        assert!((point.accuracy - 0.5).abs() < 1e-12);
        assert!(point.average_jq > 0.5 && point.average_jq <= 1.0);
    }

    #[test]
    fn jq_prediction_tracks_realized_accuracy_on_a_simulated_campaign() {
        // The Figure 10(d) claim on a small simulated campaign: for a range
        // of z the average predicted JQ stays within a few points of the
        // realized BV accuracy.
        let sim = AmtSimulator::new(AmtCampaignConfig {
            num_tasks: 200,
            num_workers: 40,
            votes_per_task: 10,
            questions_per_hit: 10,
            cost_mean: 0.05,
            cost_std_dev: 0.2,
        });
        let mut rng = StdRng::seed_from_u64(37);
        let dataset = sim.run(&mut rng).unwrap();
        let engine = JqEngine::default();
        for &z in &[3usize, 5, 9] {
            let point = evaluate_prefix(&dataset, z, Prior::uniform(), &engine);
            assert!(
                (point.accuracy - point.average_jq).abs() < 0.08,
                "z={z}: accuracy {} vs predicted {}",
                point.accuracy,
                point.average_jq
            );
        }
    }

    #[test]
    fn accuracy_improves_with_more_votes() {
        let sim = AmtSimulator::new(AmtCampaignConfig::small());
        let mut rng = StdRng::seed_from_u64(43);
        let dataset = sim.run(&mut rng).unwrap();
        let engine = JqEngine::default();
        let sweep = prefix_sweep(&dataset, &[1, 3, 9], Prior::uniform(), &engine);
        assert_eq!(sweep.len(), 3);
        // More votes should not make the predicted JQ worse (Lemma 1), and
        // realized accuracy should broadly improve as well.
        assert!(sweep[2].average_jq >= sweep[0].average_jq - 1e-9);
        assert!(sweep[2].accuracy >= sweep[0].accuracy - 0.05);
    }

    #[test]
    fn empty_dataset_gives_zero_point() {
        let dataset =
            CrowdDataset::new(WorkerPool::from_qualities(&[0.7]).unwrap(), vec![]).unwrap();
        let point = evaluate_prefix(&dataset, 3, Prior::uniform(), &JqEngine::default());
        assert_eq!(point.accuracy, 0.0);
        assert_eq!(point.average_jq, 0.0);
    }
}
