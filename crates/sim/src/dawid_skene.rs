//! Dawid–Skene expectation-maximization for worker-quality estimation
//! without ground truth.
//!
//! The paper's related-work section (Section 8, citing Ipeirotis et al. \[18\]
//! and Dawid & Skene \[1\]) describes estimating worker quality by iterating
//! between (a) inferring each task's answer from the current quality
//! estimates and (b) re-estimating each worker's quality from the inferred
//! answers. This module implements the binary special case: each worker is a
//! single quality parameter `q_j = Pr(vote = truth)` and each task has a
//! latent binary answer.
//!
//! It is the quality-estimation substrate for running the selection
//! experiments when ground truth is withheld, and a sanity check that the
//! simulated platform produces learnable data.

use std::collections::BTreeMap;

use jury_model::{Answer, CrowdDataset, TaskId, WorkerId};

/// Configuration of the EM fit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DawidSkeneConfig {
    /// Maximum number of EM iterations.
    pub max_iterations: usize,
    /// Stop early when the largest quality change between iterations falls
    /// below this threshold.
    pub tolerance: f64,
    /// Laplace smoothing added to the per-worker correct/total counts in the
    /// M-step, keeping qualities away from 0 and 1.
    pub smoothing: f64,
    /// Prior probability of the answer `No` used in the E-step.
    pub prior_no: f64,
}

impl Default for DawidSkeneConfig {
    fn default() -> Self {
        DawidSkeneConfig {
            max_iterations: 50,
            tolerance: 1e-6,
            smoothing: 1.0,
            prior_no: 0.5,
        }
    }
}

/// The result of an EM fit.
#[derive(Debug, Clone, PartialEq)]
pub struct DawidSkeneFit {
    /// Estimated worker qualities.
    pub qualities: BTreeMap<WorkerId, f64>,
    /// Posterior probability that each task's answer is `No`.
    pub posterior_no: BTreeMap<TaskId, f64>,
    /// Number of EM iterations actually performed.
    pub iterations: usize,
    /// Whether the fit converged before hitting the iteration cap.
    pub converged: bool,
}

impl DawidSkeneFit {
    /// The maximum-a-posteriori answer for a task, if it was part of the fit.
    pub fn map_answer(&self, task: TaskId) -> Option<Answer> {
        self.posterior_no
            .get(&task)
            .map(|&p| if p >= 0.5 { Answer::No } else { Answer::Yes })
    }

    /// The fraction of tasks whose MAP answer matches the dataset's ground
    /// truth — a convenience for evaluating the fit on simulated data.
    pub fn accuracy_against(&self, dataset: &CrowdDataset) -> f64 {
        let mut correct = 0usize;
        let mut total = 0usize;
        for task in dataset.tasks() {
            if let Some(answer) = self.map_answer(task.id()) {
                total += 1;
                if answer == task.ground_truth() {
                    correct += 1;
                }
            }
        }
        if total == 0 {
            0.0
        } else {
            correct as f64 / total as f64
        }
    }
}

/// Fits the binary Dawid–Skene model to a dataset by EM, ignoring the stored
/// ground truth entirely (it is only used afterwards for evaluation).
pub fn fit(dataset: &CrowdDataset, config: DawidSkeneConfig) -> DawidSkeneFit {
    let worker_ids = dataset.workers().ids();
    // Initialize qualities from majority agreement so the EM starts from an
    // informative point.
    let mut qualities: BTreeMap<WorkerId, f64> =
        crate::estimation::majority_agreement_qualities(dataset)
            .into_iter()
            .map(|(w, q)| (w, q.clamp(0.05, 0.95)))
            .collect();
    for id in &worker_ids {
        qualities.entry(*id).or_insert(0.6);
    }

    let mut posterior_no: BTreeMap<TaskId, f64> = BTreeMap::new();
    let mut iterations = 0usize;
    let mut converged = false;

    for _ in 0..config.max_iterations {
        iterations += 1;

        // E-step: posterior of each task's answer given current qualities.
        posterior_no.clear();
        for task in dataset.tasks() {
            let mut log_no = config.prior_no.max(1e-12).ln();
            let mut log_yes = (1.0 - config.prior_no).max(1e-12).ln();
            for vote in task.votes() {
                let q = qualities
                    .get(&vote.worker)
                    .copied()
                    .unwrap_or(0.6)
                    .clamp(1e-6, 1.0 - 1e-6);
                match vote.answer {
                    Answer::No => {
                        log_no += q.ln();
                        log_yes += (1.0 - q).ln();
                    }
                    Answer::Yes => {
                        log_no += (1.0 - q).ln();
                        log_yes += q.ln();
                    }
                }
            }
            let max = log_no.max(log_yes);
            let p_no = (log_no - max).exp() / ((log_no - max).exp() + (log_yes - max).exp());
            posterior_no.insert(task.id(), p_no);
        }

        // M-step: re-estimate worker qualities from the soft labels.
        let mut delta: f64 = 0.0;
        let mut expected_correct: BTreeMap<WorkerId, f64> = BTreeMap::new();
        let mut answered: BTreeMap<WorkerId, f64> = BTreeMap::new();
        for task in dataset.tasks() {
            let p_no = posterior_no[&task.id()];
            for vote in task.votes() {
                let p_correct = match vote.answer {
                    Answer::No => p_no,
                    Answer::Yes => 1.0 - p_no,
                };
                *expected_correct.entry(vote.worker).or_insert(0.0) += p_correct;
                *answered.entry(vote.worker).or_insert(0.0) += 1.0;
            }
        }
        for id in &worker_ids {
            let correct = expected_correct.get(id).copied().unwrap_or(0.0);
            let total = answered.get(id).copied().unwrap_or(0.0);
            let new_quality = if total == 0.0 {
                0.5
            } else {
                (correct + config.smoothing) / (total + 2.0 * config.smoothing)
            };
            let old = qualities.insert(*id, new_quality).unwrap_or(0.5);
            delta = delta.max((new_quality - old).abs());
        }

        if delta < config.tolerance {
            converged = true;
            break;
        }
    }

    DawidSkeneFit {
        qualities,
        posterior_no,
        iterations,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::{PlatformConfig, SimulatedPlatform};
    use jury_model::WorkerPool;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn simulated(seed: u64, latent: &[f64], votes_per_task: usize) -> (WorkerPool, CrowdDataset) {
        let workers = WorkerPool::from_qualities(latent).unwrap();
        let platform = SimulatedPlatform::new(PlatformConfig {
            questions_per_hit: 50,
            assignments_per_hit: votes_per_task,
            reward_per_hit: 0.02,
        });
        let truths: Vec<Answer> = (0..300)
            .map(|i| if i % 3 == 0 { Answer::No } else { Answer::Yes })
            .collect();
        let activity = vec![1.0; workers.len()];
        let mut rng = StdRng::seed_from_u64(seed);
        let dataset = platform
            .run_campaign(&workers, &truths, &activity, &mut rng)
            .unwrap();
        (workers, dataset)
    }

    #[test]
    fn em_recovers_latent_qualities_without_ground_truth() {
        let latent = [0.9, 0.85, 0.8, 0.75, 0.7, 0.65, 0.6, 0.55];
        let (workers, dataset) = simulated(3, &latent, 6);
        let fit = fit(&dataset, DawidSkeneConfig::default());
        assert!(
            fit.converged,
            "EM did not converge in {} iterations",
            fit.iterations
        );
        let reference: BTreeMap<WorkerId, f64> =
            workers.iter().map(|w| (w.id(), w.quality())).collect();
        let mae = crate::estimation::mean_absolute_error(&fit.qualities, &reference);
        assert!(mae < 0.06, "EM MAE {mae} too large");
    }

    #[test]
    fn em_labels_tasks_accurately() {
        let latent = [0.9, 0.85, 0.8, 0.75, 0.7];
        let (_workers, dataset) = simulated(5, &latent, 5);
        let fit = fit(&dataset, DawidSkeneConfig::default());
        let accuracy = fit.accuracy_against(&dataset);
        assert!(accuracy > 0.9, "EM labelling accuracy {accuracy}");
        // The MAP answers are defined for every task in the dataset.
        assert_eq!(fit.posterior_no.len(), dataset.num_tasks());
        assert!(fit.map_answer(TaskId(0)).is_some());
        assert!(fit.map_answer(TaskId(9_999)).is_none());
    }

    #[test]
    fn em_beats_or_matches_majority_agreement() {
        let latent = [0.92, 0.6, 0.58, 0.55, 0.87];
        let (workers, dataset) = simulated(7, &latent, 5);
        let reference: BTreeMap<WorkerId, f64> =
            workers.iter().map(|w| (w.id(), w.quality())).collect();
        let em = fit(&dataset, DawidSkeneConfig::default());
        let em_mae = crate::estimation::mean_absolute_error(&em.qualities, &reference);
        let mv = crate::estimation::majority_agreement_qualities(&dataset);
        let mv_mae = crate::estimation::mean_absolute_error(&mv, &reference);
        assert!(
            em_mae <= mv_mae + 0.02,
            "EM MAE {em_mae} should not be much worse than majority MAE {mv_mae}"
        );
    }

    #[test]
    fn em_respects_the_iteration_cap() {
        let latent = [0.8, 0.7, 0.6];
        let (_workers, dataset) = simulated(9, &latent, 3);
        let config = DawidSkeneConfig {
            max_iterations: 1,
            tolerance: 0.0,
            ..Default::default()
        };
        let fit = fit(&dataset, config);
        assert_eq!(fit.iterations, 1);
        assert!(!fit.converged);
    }

    #[test]
    fn empty_dataset_is_handled() {
        let workers = WorkerPool::from_qualities(&[0.7]).unwrap();
        let dataset = CrowdDataset::new(workers, vec![]).unwrap();
        let fit = fit(&dataset, DawidSkeneConfig::default());
        assert!(fit.posterior_no.is_empty());
        assert_eq!(fit.qualities.len(), 1);
        assert_eq!(fit.accuracy_against(&dataset), 0.0);
    }
}
