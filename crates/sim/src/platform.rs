//! A simulated crowdsourcing platform (the Amazon-Mechanical-Turk substitute
//! described in DESIGN.md).
//!
//! The paper collected its real dataset on AMT (Section 6.2.1): questions are
//! batched into HITs, each HIT is replicated into `m` assignments, and each
//! assignment is answered by one worker for a fixed reward. This module
//! simulates that process end to end: tasks are batched into HITs, workers
//! pick up assignments according to their activity weights (so a few workers
//! answer almost everything and many answer a single HIT, as observed on
//! AMT), and every answer is drawn from the worker's latent quality.

use rand::Rng;

use jury_model::{
    Answer, CrowdDataset, ModelError, ModelResult, Prior, TaskId, TaskRecord, WorkerId, WorkerPool,
};

use crate::answering::draw_vote;

/// Configuration of the simulated platform.
#[derive(Debug, Clone, PartialEq)]
pub struct PlatformConfig {
    /// Number of questions batched into one HIT (the paper uses 20).
    pub questions_per_hit: usize,
    /// Number of assignments per HIT, i.e. how many distinct workers answer
    /// each question (the paper sets `m = 20`).
    pub assignments_per_hit: usize,
    /// Reward per HIT in dollars (the paper pays $0.02); recorded for
    /// reporting, the selection experiments use per-worker costs instead.
    pub reward_per_hit: f64,
}

impl Default for PlatformConfig {
    fn default() -> Self {
        PlatformConfig {
            questions_per_hit: 20,
            assignments_per_hit: 20,
            reward_per_hit: 0.02,
        }
    }
}

/// One published HIT: a batch of task ids.
#[derive(Debug, Clone, PartialEq)]
pub struct Hit {
    /// Index of the HIT within the batch run.
    pub index: usize,
    /// The tasks contained in the HIT.
    pub tasks: Vec<TaskId>,
}

/// The simulated platform.
#[derive(Debug, Clone)]
pub struct SimulatedPlatform {
    config: PlatformConfig,
}

impl SimulatedPlatform {
    /// Creates a platform with the given configuration.
    pub fn new(config: PlatformConfig) -> Self {
        SimulatedPlatform { config }
    }

    /// Creates a platform with the paper's AMT settings (20 questions per
    /// HIT, 20 assignments, $0.02 per HIT).
    pub fn paper_settings() -> Self {
        SimulatedPlatform::new(PlatformConfig::default())
    }

    /// The configuration.
    pub fn config(&self) -> &PlatformConfig {
        &self.config
    }

    /// Batches `num_tasks` tasks into HITs of `questions_per_hit`.
    pub fn batch_into_hits(&self, num_tasks: usize) -> Vec<Hit> {
        let per = self.config.questions_per_hit.max(1);
        (0..num_tasks)
            .map(|i| TaskId(i as u64))
            .collect::<Vec<_>>()
            .chunks(per)
            .enumerate()
            .map(|(index, chunk)| Hit {
                index,
                tasks: chunk.to_vec(),
            })
            .collect()
    }

    /// Runs a full crowdsourcing campaign: every task in `truths` is
    /// published, batched into HITs, assigned to `assignments_per_hit`
    /// distinct workers (sampled proportionally to `activity` without
    /// replacement within a HIT), and answered according to each worker's
    /// latent quality.
    ///
    /// `activity[i]` is the relative propensity of worker `i` to pick up a
    /// HIT; uniform activity gives every worker the same expected load.
    pub fn run_campaign<R: Rng + ?Sized>(
        &self,
        workers: &WorkerPool,
        truths: &[Answer],
        activity: &[f64],
        rng: &mut R,
    ) -> ModelResult<CrowdDataset> {
        if workers.is_empty() {
            return Err(ModelError::Empty {
                what: "worker pool",
            });
        }
        if workers.len() != activity.len() {
            return Err(ModelError::VoteCountMismatch {
                votes: activity.len(),
                jurors: workers.len(),
            });
        }
        if self.config.assignments_per_hit > workers.len() {
            return Err(ModelError::Empty {
                what: "worker pool (fewer workers than assignments per HIT)",
            });
        }

        let hits = self.batch_into_hits(truths.len());
        let mut records: Vec<TaskRecord> = truths
            .iter()
            .enumerate()
            .map(|(i, &t)| TaskRecord::new(TaskId(i as u64), Prior::uniform(), t))
            .collect();

        for hit in &hits {
            let assignees = sample_distinct_weighted(
                workers.len(),
                self.config.assignments_per_hit,
                activity,
                rng,
            );
            for &worker_index in &assignees {
                let worker = &workers.workers()[worker_index];
                for &task_id in &hit.tasks {
                    let record = &mut records[task_id.raw() as usize];
                    let vote = draw_vote(worker, record.ground_truth(), rng);
                    record.push_vote(WorkerId(worker.id().raw()), vote);
                }
            }
        }

        CrowdDataset::new(workers.clone(), records)
    }
}

/// Samples `k` distinct indices from `0..n` with probability proportional to
/// `weights`, by repeated weighted draws without replacement.
fn sample_distinct_weighted<R: Rng + ?Sized>(
    n: usize,
    k: usize,
    weights: &[f64],
    rng: &mut R,
) -> Vec<usize> {
    let mut remaining: Vec<usize> = (0..n).collect();
    let local_weights: Vec<f64> = weights.iter().map(|w| w.max(1e-12)).collect();
    let mut chosen = Vec::with_capacity(k.min(n));
    for _ in 0..k.min(n) {
        let total: f64 = remaining.iter().map(|&i| local_weights[i]).sum();
        let mut u = rng.gen::<f64>() * total;
        let mut pick_pos = 0usize;
        for (pos, &i) in remaining.iter().enumerate() {
            u -= local_weights[i];
            if u <= 0.0 {
                pick_pos = pos;
                break;
            }
            pick_pos = pos;
        }
        let picked = remaining.swap_remove(pick_pos);
        chosen.push(picked);
    }
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn truths(n: usize) -> Vec<Answer> {
        (0..n)
            .map(|i| if i % 2 == 0 { Answer::Yes } else { Answer::No })
            .collect()
    }

    #[test]
    fn hits_are_batched_in_order() {
        let platform = SimulatedPlatform::paper_settings();
        let hits = platform.batch_into_hits(45);
        assert_eq!(hits.len(), 3);
        assert_eq!(hits[0].tasks.len(), 20);
        assert_eq!(hits[2].tasks.len(), 5);
        assert_eq!(hits[1].tasks[0], TaskId(20));
        assert_eq!(hits[2].index, 2);
    }

    #[test]
    fn campaign_produces_the_expected_vote_counts() {
        let platform = SimulatedPlatform::new(PlatformConfig {
            questions_per_hit: 10,
            assignments_per_hit: 5,
            reward_per_hit: 0.02,
        });
        let workers = WorkerPool::from_qualities(&[0.9, 0.8, 0.7, 0.6, 0.75, 0.85, 0.65]).unwrap();
        let activity = vec![1.0; workers.len()];
        let mut rng = StdRng::seed_from_u64(1);
        let dataset = platform
            .run_campaign(&workers, &truths(30), &activity, &mut rng)
            .unwrap();
        assert_eq!(dataset.num_tasks(), 30);
        // Every task receives exactly `assignments_per_hit` votes from
        // distinct workers.
        for task in dataset.tasks() {
            assert_eq!(task.num_votes(), 5);
            let mut voters = task.answering_workers();
            voters.sort();
            voters.dedup();
            assert_eq!(voters.len(), 5);
        }
        assert_eq!(dataset.num_votes(), 30 * 5);
    }

    #[test]
    fn campaign_accuracy_tracks_worker_quality() {
        // High-quality workers should answer mostly correctly.
        let platform = SimulatedPlatform::new(PlatformConfig {
            questions_per_hit: 25,
            assignments_per_hit: 3,
            reward_per_hit: 0.02,
        });
        let workers = WorkerPool::from_qualities(&[0.95, 0.9, 0.92]).unwrap();
        let activity = vec![1.0; 3];
        let mut rng = StdRng::seed_from_u64(2);
        let dataset = platform
            .run_campaign(&workers, &truths(200), &activity, &mut rng)
            .unwrap();
        let mean_quality = dataset.mean_empirical_quality();
        assert!(mean_quality > 0.85, "observed quality {mean_quality}");
    }

    #[test]
    fn skewed_activity_skews_participation() {
        let platform = SimulatedPlatform::new(PlatformConfig {
            questions_per_hit: 5,
            assignments_per_hit: 2,
            reward_per_hit: 0.02,
        });
        let workers = WorkerPool::from_qualities(&[0.7; 10]).unwrap();
        // Worker 0 is hundreds of times more active than the rest.
        let mut activity = vec![0.01; 10];
        activity[0] = 5.0;
        let mut rng = StdRng::seed_from_u64(3);
        let dataset = platform
            .run_campaign(&workers, &truths(100), &activity, &mut rng)
            .unwrap();
        let stats = dataset.worker_stats();
        let busiest = stats.iter().max_by_key(|s| s.answered).unwrap();
        assert_eq!(busiest.worker, WorkerId(0));
        assert!(
            busiest.answered >= 90,
            "dominant worker answered {}",
            busiest.answered
        );
    }

    #[test]
    fn configuration_errors_are_reported() {
        let platform = SimulatedPlatform::paper_settings();
        let workers = WorkerPool::from_qualities(&[0.7, 0.8]).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        // More assignments than workers.
        assert!(platform
            .run_campaign(&workers, &truths(10), &[1.0, 1.0], &mut rng)
            .is_err());
        // Mismatched activity length.
        let platform = SimulatedPlatform::new(PlatformConfig {
            questions_per_hit: 5,
            assignments_per_hit: 2,
            reward_per_hit: 0.02,
        });
        assert!(platform
            .run_campaign(&workers, &truths(10), &[1.0], &mut rng)
            .is_err());
        // Empty pool.
        assert!(platform
            .run_campaign(&WorkerPool::new(), &truths(10), &[], &mut rng)
            .is_err());
    }

    #[test]
    fn weighted_sampling_returns_distinct_indices() {
        let mut rng = StdRng::seed_from_u64(5);
        let weights = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        for _ in 0..100 {
            let mut picked = sample_distinct_weighted(5, 3, &weights, &mut rng);
            picked.sort();
            picked.dedup();
            assert_eq!(picked.len(), 3);
            assert!(picked.iter().all(|&i| i < 5));
        }
        // Asking for more than available returns everything.
        let all = sample_distinct_weighted(3, 10, &[1.0, 1.0, 1.0], &mut rng);
        assert_eq!(all.len(), 3);
    }
}
