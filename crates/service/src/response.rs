//! Selection responses: what the service reports back for a request —
//! binary ([`SelectionResponse`]), multi-class
//! ([`MultiClassSelectionResponse`]), either-kind batch slots
//! ([`MixedResponse`]), and the online repair loop's [`RepairResponse`].

use std::time::Duration;

use jury_model::{Jury, MatrixJury, MatrixWorker, WorkerId};
use jury_stream::SelectionId;

use crate::cache::CacheStats;
use crate::error::ServiceError;
use crate::request::{SolverPolicy, Strategy};

/// The outcome of a successfully served [`crate::SelectionRequest`].
#[derive(Debug, Clone, PartialEq)]
pub struct SelectionResponse {
    /// The selected jury (empty only when the request allowed it).
    pub jury: Jury,
    /// The jury's estimated quality under the requested strategy.
    pub quality: f64,
    /// The jury's cost (what the caller actually pays).
    pub cost: f64,
    /// The strategy the selection optimized.
    pub strategy: Strategy,
    /// The policy the request asked for.
    pub policy: SolverPolicy,
    /// The concrete solver that ran (e.g. `"exhaustive"`).
    pub solver: &'static str,
    /// Objective evaluations requested by the search.
    pub evaluations: u64,
    /// How many of those evaluations were served by the shared JQ cache.
    pub cache_hits: u64,
    /// Wall-clock time of the search.
    pub elapsed: Duration,
}

impl SelectionResponse {
    /// The selected workers' ids, sorted.
    pub fn worker_ids(&self) -> Vec<WorkerId> {
        let mut ids = self.jury.ids();
        ids.sort();
        ids
    }

    /// Number of selected workers.
    pub fn jury_size(&self) -> usize {
        self.jury.size()
    }
}

/// The outcome of a successfully served
/// [`crate::MultiClassSelectionRequest`] — shaped exactly like
/// [`SelectionResponse`], with confusion-matrix members instead of a binary
/// jury (and no strategy field: multi-class selection always optimizes
/// Bayesian voting).
#[derive(Debug, Clone, PartialEq)]
pub struct MultiClassSelectionResponse {
    /// The selected workers with their confusion matrices (empty only when
    /// the request allowed it).
    pub members: Vec<MatrixWorker>,
    /// The jury's estimated `JQ(J, BV, ~α)`.
    pub quality: f64,
    /// The jury's cost (what the caller actually pays).
    pub cost: f64,
    /// The policy the request asked for.
    pub policy: SolverPolicy,
    /// The concrete solver that ran (e.g. `"simulated-annealing"`).
    pub solver: &'static str,
    /// Objective evaluations requested by the search (incremental-session
    /// probes included).
    pub evaluations: u64,
    /// How many of those evaluations were served by the shared JQ cache.
    pub cache_hits: u64,
    /// Wall-clock time of the search.
    pub elapsed: Duration,
}

impl MultiClassSelectionResponse {
    /// The selected workers' ids, sorted.
    pub fn worker_ids(&self) -> Vec<WorkerId> {
        let mut ids: Vec<WorkerId> = self.members.iter().map(|w| w.id()).collect();
        ids.sort();
        ids
    }

    /// Number of selected workers.
    pub fn jury_size(&self) -> usize {
        self.members.len()
    }

    /// The selected jury as a [`MatrixJury`], or `None` for the empty jury
    /// (which `MatrixJury` cannot represent).
    pub fn matrix_jury(&self) -> Option<MatrixJury> {
        MatrixJury::new(self.members.clone()).ok()
    }
}

/// A response of either kind, matching the [`crate::MixedRequest`] slot it
/// answers.
#[derive(Debug, Clone, PartialEq)]
pub enum MixedResponse {
    /// The outcome of a binary request slot.
    Binary(SelectionResponse),
    /// The outcome of a multi-class request slot.
    MultiClass(MultiClassSelectionResponse),
}

impl MixedResponse {
    /// The binary response, if this slot held a binary request.
    pub fn as_binary(&self) -> Option<&SelectionResponse> {
        match self {
            MixedResponse::Binary(response) => Some(response),
            MixedResponse::MultiClass(_) => None,
        }
    }

    /// The multi-class response, if this slot held a multi-class request.
    pub fn as_multi_class(&self) -> Option<&MultiClassSelectionResponse> {
        match self {
            MixedResponse::MultiClass(response) => Some(response),
            MixedResponse::Binary(_) => None,
        }
    }
}

/// Serving-side counters for one batch call — what the admission gate and
/// the sharded store saw while the batch ran (see
/// [`crate::JuryService::select_batch_with_metrics`]).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BatchMetrics {
    /// Requests served at full fidelity (under the admission limit, or with
    /// admission control disabled).
    pub admitted: usize,
    /// Requests rejected with [`ServiceError::Overloaded`]
    /// ([`crate::OverloadPolicy::Shed`]).
    pub shed: usize,
    /// Requests served with their solver policy downgraded to greedy
    /// ([`crate::OverloadPolicy::Coarsen`]).
    pub coarsened: usize,
    /// The highest number of requests observed in flight at once during
    /// this batch (0 when admission control is disabled — the gate is the
    /// only thing that counts).
    pub peak_in_flight: usize,
    /// Per-shard snapshots of the shared JQ store, taken when the batch
    /// finished (lifetime counters, not deltas), in shard order.
    pub shards: Vec<CacheStats>,
}

/// A batch's per-request results plus its [`BatchMetrics`] — what the
/// `*_with_metrics` batch entry points return. Result order matches the
/// request order, exactly like the plain batch methods.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchOutcome<R> {
    /// Per-request outcomes, in request order.
    pub results: Vec<Result<R, ServiceError>>,
    /// What the admission gate and the sharded store saw.
    pub metrics: BatchMetrics,
}

/// What a [`crate::JuryService::repair`] call did to a tracked jury.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepairOutcome {
    /// The jury was left as handed out — either its fresh quality is still
    /// within the drift threshold of the baseline, or no swap or push could
    /// improve it.
    Unchanged,
    /// The incremental swap session patched the jury in place, within the
    /// original budget.
    Patched {
        /// Member-for-candidate swaps committed by the repair search.
        swaps: usize,
        /// Additional members pushed into unused budget.
        pushes: usize,
    },
    /// The greedy patch stayed stuck below the drift threshold, so the
    /// instance was re-solved cold and the re-solve won.
    Resolved,
}

/// The outcome of repairing one tracked selection against fresh registry
/// estimates ([`crate::JuryService::repair`] /
/// [`crate::JuryService::repair_batch`]).
#[derive(Debug, Clone, PartialEq)]
pub struct RepairResponse {
    /// The drift-detector ledger id of the repaired selection.
    pub id: SelectionId,
    /// What the repair did.
    pub outcome: RepairOutcome,
    /// The jury after repair (identical members when
    /// [`RepairOutcome::Unchanged`]).
    pub jury: Jury,
    /// The jury's quality under the fresh estimates.
    pub quality: f64,
    /// The quality the selection was promised at before this repair (its
    /// previous baseline).
    pub previous_baseline: f64,
    /// The repaired jury's cost (never exceeds the tracked budget).
    pub cost: f64,
    /// The registry epoch of the estimates the repair ran against — the
    /// selection's new baseline epoch.
    pub epoch: u64,
    /// Objective evaluations requested by the repair (incremental-session
    /// probes included).
    pub evaluations: u64,
    /// How many of those evaluations were served by the shared JQ cache.
    pub cache_hits: u64,
    /// Whether a repair deadline cut the swap search short (see
    /// [`crate::JuryService::repair_with_deadline`]). The committed jury is
    /// still never worse than the pre-repair baseline — the search only
    /// commits improving moves — it just may have stopped before finding
    /// every improvement.
    pub truncated: bool,
    /// Wall-clock time of the repair.
    pub elapsed: Duration,
}

impl RepairResponse {
    /// The repaired jury's worker ids, sorted.
    pub fn worker_ids(&self) -> Vec<WorkerId> {
        let mut ids = self.jury.ids();
        ids.sort();
        ids
    }

    /// Number of members after repair.
    pub fn jury_size(&self) -> usize {
        self.jury.size()
    }

    /// Whether the repair changed the jury's members.
    pub fn changed(&self) -> bool {
        !matches!(self.outcome, RepairOutcome::Unchanged)
    }

    /// Signed quality movement committed by this repair:
    /// `quality − previous_baseline`.
    pub fn delta(&self) -> f64 {
        self.quality - self.previous_baseline
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_reflect_the_jury() {
        let jury = Jury::from_qualities(&[0.9, 0.6]).unwrap();
        let response = SelectionResponse {
            jury,
            quality: 0.9,
            cost: 0.0,
            strategy: Strategy::Bv,
            policy: SolverPolicy::Auto,
            solver: "exhaustive",
            evaluations: 4,
            cache_hits: 0,
            elapsed: Duration::from_millis(1),
        };
        assert_eq!(response.jury_size(), 2);
        assert_eq!(response.worker_ids().len(), 2);
    }

    #[test]
    fn multiclass_accessors_reflect_the_members() {
        let pool =
            jury_model::MatrixPool::from_qualities_and_costs(&[0.9, 0.7], &[2.0, 1.0], 3).unwrap();
        let response = MultiClassSelectionResponse {
            members: pool.workers().to_vec(),
            quality: 0.8,
            cost: 3.0,
            policy: SolverPolicy::Auto,
            solver: "exhaustive",
            evaluations: 7,
            cache_hits: 1,
            elapsed: Duration::from_millis(1),
        };
        assert_eq!(response.jury_size(), 2);
        assert_eq!(response.worker_ids().len(), 2);
        let jury = response.matrix_jury().unwrap();
        assert_eq!(jury.size(), 2);
        assert_eq!(jury.num_choices(), 3);

        let empty = MultiClassSelectionResponse {
            members: Vec::new(),
            ..response.clone()
        };
        assert!(empty.matrix_jury().is_none());
        assert_eq!(empty.jury_size(), 0);

        let mixed = MixedResponse::MultiClass(response);
        assert!(mixed.as_multi_class().is_some());
        assert!(mixed.as_binary().is_none());
    }

    #[test]
    fn repair_accessors_report_change_and_delta() {
        let response = RepairResponse {
            id: SelectionId(3),
            outcome: RepairOutcome::Patched {
                swaps: 1,
                pushes: 0,
            },
            jury: Jury::from_qualities(&[0.9, 0.8]).unwrap(),
            quality: 0.9,
            previous_baseline: 0.8,
            cost: 0.0,
            epoch: 12,
            evaluations: 5,
            cache_hits: 1,
            truncated: false,
            elapsed: Duration::from_millis(1),
        };
        assert!(response.changed());
        assert!((response.delta() - 0.1).abs() < 1e-12);
        assert_eq!(response.jury_size(), 2);

        let unchanged = RepairResponse {
            outcome: RepairOutcome::Unchanged,
            ..response
        };
        assert!(!unchanged.changed());
    }
}
