//! Selection responses: what the service reports back for a request.

use std::time::Duration;

use jury_model::{Jury, WorkerId};

use crate::request::{SolverPolicy, Strategy};

/// The outcome of a successfully served [`crate::SelectionRequest`].
#[derive(Debug, Clone, PartialEq)]
pub struct SelectionResponse {
    /// The selected jury (empty only when the request allowed it).
    pub jury: Jury,
    /// The jury's estimated quality under the requested strategy.
    pub quality: f64,
    /// The jury's cost (what the caller actually pays).
    pub cost: f64,
    /// The strategy the selection optimized.
    pub strategy: Strategy,
    /// The policy the request asked for.
    pub policy: SolverPolicy,
    /// The concrete solver that ran (e.g. `"exhaustive"`).
    pub solver: &'static str,
    /// Objective evaluations requested by the search.
    pub evaluations: u64,
    /// How many of those evaluations were served by the shared JQ cache.
    pub cache_hits: u64,
    /// Wall-clock time of the search.
    pub elapsed: Duration,
}

impl SelectionResponse {
    /// The selected workers' ids, sorted.
    pub fn worker_ids(&self) -> Vec<WorkerId> {
        let mut ids = self.jury.ids();
        ids.sort();
        ids
    }

    /// Number of selected workers.
    pub fn jury_size(&self) -> usize {
        self.jury.size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_reflect_the_jury() {
        let jury = Jury::from_qualities(&[0.9, 0.6]).unwrap();
        let response = SelectionResponse {
            jury,
            quality: 0.9,
            cost: 0.0,
            strategy: Strategy::Bv,
            policy: SolverPolicy::Auto,
            solver: "exhaustive",
            evaluations: 4,
            cache_hits: 0,
            elapsed: Duration::from_millis(1),
        };
        assert_eq!(response.jury_size(), 2);
        assert_eq!(response.worker_ids().len(), 2);
    }
}
