//! Selection requests: what a caller asks the service to do.

use serde::{Deserialize, Serialize};

use jury_model::{Prior, WorkerPool};

use crate::config::ServiceConfig;

/// Which jury-quality objective the selection maximizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Strategy {
    /// Bayesian voting — the optimal strategy (Theorem 1); what OPTJS uses.
    Bv,
    /// Majority voting — the Cao et al. baseline objective; what MVJS uses.
    Mv,
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Strategy::Bv => write!(f, "BV"),
            Strategy::Mv => write!(f, "MV"),
        }
    }
}

/// Which search algorithm solves the (NP-hard) selection problem.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SolverPolicy {
    /// Exhaustive enumeration for small pools, simulated annealing
    /// otherwise (the paper's system behaviour). The default.
    Auto,
    /// Exhaustive enumeration, failing with
    /// [`crate::ServiceError::PoolTooLargeForExact`] on oversized pools.
    Exact,
    /// The simulated-annealing heuristic regardless of pool size.
    Annealing,
    /// The cheap greedy baselines (best of quality-first and
    /// quality-per-cost-first).
    Greedy,
}

impl std::fmt::Display for SolverPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolverPolicy::Auto => write!(f, "auto"),
            SolverPolicy::Exact => write!(f, "exact"),
            SolverPolicy::Annealing => write!(f, "annealing"),
            SolverPolicy::Greedy => write!(f, "greedy"),
        }
    }
}

/// One jury-selection request: pool, budget, prior, strategy, solver policy,
/// and optional per-request configuration overrides.
///
/// Built with a fluent builder; nothing is validated until the request hits
/// [`crate::JuryService::select`], which reports every problem as a
/// [`crate::ServiceError`] value — the request path never panics.
///
/// ```
/// use jury_model::{paper_example_pool, Prior};
/// use jury_service::{JuryService, SelectionRequest, Strategy};
///
/// let service = JuryService::paper_experiments();
/// let request = SelectionRequest::new(paper_example_pool(), 15.0)
///     .with_prior(Prior::uniform())
///     .with_strategy(Strategy::Bv);
/// let response = service.select(&request).unwrap();
/// assert!((response.quality - 0.845).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SelectionRequest {
    pool: WorkerPool,
    budget: f64,
    prior_alpha: f64,
    strategy: Strategy,
    policy: SolverPolicy,
    allow_empty: bool,
    config: Option<ServiceConfig>,
}

impl SelectionRequest {
    /// Starts a request for the given pool and budget, with a uniform prior,
    /// the BV strategy, and the `Auto` solver policy.
    pub fn new(pool: WorkerPool, budget: f64) -> Self {
        SelectionRequest {
            pool,
            budget,
            prior_alpha: 0.5,
            strategy: Strategy::Bv,
            policy: SolverPolicy::Auto,
            allow_empty: false,
            config: None,
        }
    }

    /// Sets the task prior.
    pub fn with_prior(mut self, prior: Prior) -> Self {
        self.prior_alpha = prior.alpha();
        self
    }

    /// Sets the task prior from a raw `α = Pr(t = 0)` value. Unlike
    /// [`Prior::new`], the value is *not* validated here: the service checks
    /// it at `select` time and reports [`crate::ServiceError::InvalidPrior`],
    /// so callers forwarding untrusted input need no pre-validation.
    pub fn with_prior_alpha(mut self, alpha: f64) -> Self {
        self.prior_alpha = alpha;
        self
    }

    /// Sets the selection strategy.
    pub fn with_strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Sets the solver policy.
    pub fn with_policy(mut self, policy: SolverPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Overrides the service configuration for this request only.
    pub fn with_config(mut self, config: ServiceConfig) -> Self {
        self.config = Some(config);
        self
    }

    /// Whether a budget that affords no worker yields an empty-jury response
    /// (quality = max(α, 1 − α)) instead of
    /// [`crate::ServiceError::BudgetBelowCheapestWorker`]. Off by default;
    /// the paper-reproduction facades turn it on to keep the seed semantics.
    pub fn allow_empty_selection(mut self, allow: bool) -> Self {
        self.allow_empty = allow;
        self
    }

    /// The candidate pool.
    pub fn pool(&self) -> &WorkerPool {
        &self.pool
    }

    /// The budget.
    pub fn budget(&self) -> f64 {
        self.budget
    }

    /// The raw prior `α` (possibly not yet validated).
    pub fn prior_alpha(&self) -> f64 {
        self.prior_alpha
    }

    /// The strategy.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// The solver policy.
    pub fn policy(&self) -> SolverPolicy {
        self.policy
    }

    /// The per-request configuration override, if any.
    pub fn config(&self) -> Option<&ServiceConfig> {
        self.config.as_ref()
    }

    /// Whether empty selections are allowed.
    pub fn empty_selection_allowed(&self) -> bool {
        self.allow_empty
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jury_model::paper_example_pool;

    #[test]
    fn builder_defaults_and_overrides() {
        let request = SelectionRequest::new(paper_example_pool(), 15.0);
        assert_eq!(request.strategy(), Strategy::Bv);
        assert_eq!(request.policy(), SolverPolicy::Auto);
        assert!((request.prior_alpha() - 0.5).abs() < 1e-12);
        assert!(request.config().is_none());
        assert!(!request.empty_selection_allowed());

        let request = request
            .with_strategy(Strategy::Mv)
            .with_policy(SolverPolicy::Exact)
            .with_prior(Prior::new(0.7).unwrap())
            .with_config(ServiceConfig::fast())
            .allow_empty_selection(true);
        assert_eq!(request.strategy(), Strategy::Mv);
        assert_eq!(request.policy(), SolverPolicy::Exact);
        assert!((request.prior_alpha() - 0.7).abs() < 1e-12);
        assert_eq!(request.config(), Some(&ServiceConfig::fast()));
        assert!(request.empty_selection_allowed());
    }

    #[test]
    fn raw_prior_is_stored_unvalidated() {
        let request = SelectionRequest::new(paper_example_pool(), 15.0).with_prior_alpha(2.5);
        assert!((request.prior_alpha() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn display_labels() {
        assert_eq!(Strategy::Bv.to_string(), "BV");
        assert_eq!(Strategy::Mv.to_string(), "MV");
        assert_eq!(SolverPolicy::Auto.to_string(), "auto");
        assert_eq!(SolverPolicy::Greedy.to_string(), "greedy");
    }
}
