//! Selection requests: what a caller asks the service to do — binary
//! accuracy pools ([`SelectionRequest`]), confusion-matrix pools
//! ([`MultiClassSelectionRequest`]), and mixed batches ([`MixedRequest`]).

use std::time::Duration;

use serde::{Deserialize, Serialize};

use jury_model::{CategoricalPrior, MatrixPool, Prior, WorkerPool};
use jury_selection::PortfolioMember;

use crate::config::ServiceConfig;

/// Which jury-quality objective the selection maximizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Strategy {
    /// Bayesian voting — the optimal strategy (Theorem 1); what OPTJS uses.
    Bv,
    /// Majority voting — the Cao et al. baseline objective; what MVJS uses.
    Mv,
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Strategy::Bv => write!(f, "BV"),
            Strategy::Mv => write!(f, "MV"),
        }
    }
}

/// Which search algorithm solves the (NP-hard) selection problem.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum SolverPolicy {
    /// Exhaustive enumeration for small pools, simulated annealing
    /// otherwise (the paper's system behaviour). The default.
    Auto,
    /// Exhaustive enumeration, failing with
    /// [`crate::ServiceError::PoolTooLargeForExact`] on oversized pools.
    Exact,
    /// The simulated-annealing heuristic regardless of pool size.
    Annealing,
    /// The cheap greedy baselines (best of quality-first and
    /// quality-per-cost-first).
    Greedy,
    /// The anytime solver portfolio: race the listed members round-robin
    /// under one shared search budget and return the best jury found (small
    /// pools still go to the exact solver, as under `Auto`). An empty member
    /// list races the default lineup
    /// ([`PortfolioMember::default_lineup`]).
    Portfolio(Vec<PortfolioMember>),
}

impl std::fmt::Display for SolverPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolverPolicy::Auto => write!(f, "auto"),
            SolverPolicy::Exact => write!(f, "exact"),
            SolverPolicy::Annealing => write!(f, "annealing"),
            SolverPolicy::Greedy => write!(f, "greedy"),
            SolverPolicy::Portfolio(_) => write!(f, "portfolio"),
        }
    }
}

// Hand-written serde glue: the derive shim only handles unit enum variants,
// and `Portfolio` carries its member list. Unit variants keep the derive's
// wire shape (a variant-name string); `Portfolio` maps to a one-entry object
// keyed by the variant name, so old payloads still round-trip unchanged.
impl Serialize for SolverPolicy {
    fn to_value(&self) -> serde::Value {
        match self {
            SolverPolicy::Auto => serde::Value::String("Auto".to_string()),
            SolverPolicy::Exact => serde::Value::String("Exact".to_string()),
            SolverPolicy::Annealing => serde::Value::String("Annealing".to_string()),
            SolverPolicy::Greedy => serde::Value::String("Greedy".to_string()),
            SolverPolicy::Portfolio(members) => {
                serde::Value::Object(vec![("Portfolio".to_string(), members.to_value())])
            }
        }
    }
}

impl Deserialize for SolverPolicy {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        match value {
            serde::Value::String(_) => match value.as_variant()? {
                "Auto" => Ok(SolverPolicy::Auto),
                "Exact" => Ok(SolverPolicy::Exact),
                "Annealing" => Ok(SolverPolicy::Annealing),
                "Greedy" => Ok(SolverPolicy::Greedy),
                other => Err(serde::Error::custom(format!(
                    "unknown SolverPolicy variant `{other}`"
                ))),
            },
            serde::Value::Object(_) => {
                let members = value.field("Portfolio")?;
                Ok(SolverPolicy::Portfolio(Vec::<PortfolioMember>::from_value(
                    members,
                )?))
            }
            other => Err(serde::Error::custom(format!(
                "expected SolverPolicy string or object, got {}",
                other.kind()
            ))),
        }
    }
}

/// One jury-selection request: pool, budget, prior, strategy, solver policy,
/// and optional per-request configuration overrides.
///
/// Built with a fluent builder; nothing is validated until the request hits
/// [`crate::JuryService::select`], which reports every problem as a
/// [`crate::ServiceError`] value — the request path never panics.
///
/// ```
/// use jury_model::{paper_example_pool, Prior};
/// use jury_service::{JuryService, SelectionRequest, Strategy};
///
/// let service = JuryService::paper_experiments();
/// let request = SelectionRequest::new(paper_example_pool(), 15.0)
///     .with_prior(Prior::uniform())
///     .with_strategy(Strategy::Bv);
/// let response = service.select(&request).unwrap();
/// assert!((response.quality - 0.845).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SelectionRequest {
    pool: WorkerPool,
    budget: f64,
    prior_alpha: f64,
    strategy: Strategy,
    policy: SolverPolicy,
    allow_empty: bool,
    config: Option<ServiceConfig>,
    deadline: Option<Duration>,
    max_evaluations: Option<u64>,
}

impl SelectionRequest {
    /// Starts a request for the given pool and budget, with a uniform prior,
    /// the BV strategy, and the `Auto` solver policy.
    pub fn new(pool: WorkerPool, budget: f64) -> Self {
        SelectionRequest {
            pool,
            budget,
            prior_alpha: 0.5,
            strategy: Strategy::Bv,
            policy: SolverPolicy::Auto,
            allow_empty: false,
            config: None,
            deadline: None,
            max_evaluations: None,
        }
    }

    /// Sets the task prior.
    pub fn with_prior(mut self, prior: Prior) -> Self {
        self.prior_alpha = prior.alpha();
        self
    }

    /// Sets the task prior from a raw `α = Pr(t = 0)` value. Unlike
    /// [`Prior::new`], the value is *not* validated here: the service checks
    /// it at `select` time and reports [`crate::ServiceError::InvalidPrior`],
    /// so callers forwarding untrusted input need no pre-validation.
    pub fn with_prior_alpha(mut self, alpha: f64) -> Self {
        self.prior_alpha = alpha;
        self
    }

    /// Sets the selection strategy.
    pub fn with_strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Sets the solver policy.
    pub fn with_policy(mut self, policy: SolverPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Overrides the service configuration for this request only.
    pub fn with_config(mut self, config: ServiceConfig) -> Self {
        self.config = Some(config);
        self
    }

    /// Whether a budget that affords no worker yields an empty-jury response
    /// (quality = max(α, 1 − α)) instead of
    /// [`crate::ServiceError::BudgetBelowCheapestWorker`]. Off by default;
    /// the paper-reproduction facades turn it on to keep the seed semantics.
    pub fn allow_empty_selection(mut self, allow: bool) -> Self {
        self.allow_empty = allow;
        self
    }

    /// Gives this request a wall-clock deadline, measured from the moment
    /// the service starts serving it. The heuristic searches poll the
    /// deadline at cooperative checkpoints and stop early with
    /// [`crate::ServiceError::DeadlineExceeded`], carrying the best feasible
    /// jury found so far (anytime semantics). Without a deadline the search
    /// runs bit-identically to a deadline-free service.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Caps the number of objective evaluations the search may spend — the
    /// deterministic cousin of [`with_deadline`](Self::with_deadline):
    /// exceeding the cap reports the same
    /// [`crate::ServiceError::DeadlineExceeded`] without any clock reads.
    pub fn with_evaluation_limit(mut self, max_evaluations: u64) -> Self {
        self.max_evaluations = Some(max_evaluations);
        self
    }

    /// The candidate pool.
    pub fn pool(&self) -> &WorkerPool {
        &self.pool
    }

    /// The budget.
    pub fn budget(&self) -> f64 {
        self.budget
    }

    /// The raw prior `α` (possibly not yet validated).
    pub fn prior_alpha(&self) -> f64 {
        self.prior_alpha
    }

    /// The strategy.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// The solver policy.
    pub fn policy(&self) -> SolverPolicy {
        self.policy.clone()
    }

    /// The per-request configuration override, if any.
    pub fn config(&self) -> Option<&ServiceConfig> {
        self.config.as_ref()
    }

    /// Whether empty selections are allowed.
    pub fn empty_selection_allowed(&self) -> bool {
        self.allow_empty
    }

    /// The per-request wall-clock deadline, if any.
    pub fn deadline(&self) -> Option<Duration> {
        self.deadline
    }

    /// The per-request objective-evaluation cap, if any.
    pub fn max_evaluations(&self) -> Option<u64> {
        self.max_evaluations
    }
}

/// One **multi-class** jury-selection request: a confusion-matrix candidate
/// pool ([`MatrixPool`]), a budget, a categorical prior, a solver policy,
/// and optional per-request configuration overrides — the Section 7 serving
/// path of [`crate::JuryService::select_multiclass`].
///
/// Built with the same fluent-builder convention as [`SelectionRequest`];
/// nothing is validated until the request hits the service, which reports
/// every problem as a [`crate::ServiceError`] value — the request path never
/// panics. The objective is always multi-class Bayesian voting (the optimal
/// strategy; there is no MV baseline for confusion matrices), so unlike the
/// binary request there is no strategy knob.
///
/// ```
/// use jury_model::{CategoricalPrior, MatrixPool};
/// use jury_service::{JuryService, MultiClassSelectionRequest};
///
/// let pool = MatrixPool::from_qualities_and_costs(
///     &[0.9, 0.75, 0.7, 0.65, 0.6],
///     &[3.0, 2.0, 1.0, 1.0, 1.0],
///     3,
/// )
/// .unwrap();
/// let service = JuryService::paper_experiments();
/// let request = MultiClassSelectionRequest::new(pool, 5.0)
///     .with_prior(CategoricalPrior::uniform(3).unwrap());
/// let response = service.select_multiclass(&request).unwrap();
/// assert!(response.cost <= 5.0 + 1e-9);
/// assert!(response.quality >= 1.0 / 3.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MultiClassSelectionRequest {
    pool: MatrixPool,
    budget: f64,
    prior_probs: Option<Vec<f64>>,
    policy: SolverPolicy,
    allow_empty: bool,
    config: Option<ServiceConfig>,
    deadline: Option<Duration>,
    max_evaluations: Option<u64>,
}

impl MultiClassSelectionRequest {
    /// Starts a request for the given pool and budget, with a uniform
    /// categorical prior over the pool's label space and the `Auto` solver
    /// policy.
    pub fn new(pool: MatrixPool, budget: f64) -> Self {
        MultiClassSelectionRequest {
            pool,
            budget,
            prior_probs: None,
            policy: SolverPolicy::Auto,
            allow_empty: false,
            config: None,
            deadline: None,
            max_evaluations: None,
        }
    }

    /// Sets the categorical task prior.
    pub fn with_prior(mut self, prior: CategoricalPrior) -> Self {
        self.prior_probs = Some(prior.probs().to_vec());
        self
    }

    /// Sets the prior from a raw probability vector. Unlike
    /// [`CategoricalPrior::new`], the vector is *not* validated here: the
    /// service checks it at `select_multiclass` time and reports
    /// [`crate::ServiceError::InvalidPriorVector`], so callers forwarding
    /// untrusted input need no pre-validation.
    pub fn with_prior_probs(mut self, probs: Vec<f64>) -> Self {
        self.prior_probs = Some(probs);
        self
    }

    /// Sets the solver policy.
    pub fn with_policy(mut self, policy: SolverPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Overrides the service configuration for this request only.
    pub fn with_config(mut self, config: ServiceConfig) -> Self {
        self.config = Some(config);
        self
    }

    /// Whether a budget that affords no worker yields an empty-jury
    /// response (quality = the prior's argmax mass) instead of
    /// [`crate::ServiceError::BudgetBelowCheapestWorker`]. Off by default.
    pub fn allow_empty_selection(mut self, allow: bool) -> Self {
        self.allow_empty = allow;
        self
    }

    /// Gives this request a wall-clock deadline measured from its own serve
    /// start — same anytime semantics as
    /// [`SelectionRequest::with_deadline`].
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Caps the objective evaluations the search may spend — same
    /// semantics as [`SelectionRequest::with_evaluation_limit`].
    pub fn with_evaluation_limit(mut self, max_evaluations: u64) -> Self {
        self.max_evaluations = Some(max_evaluations);
        self
    }

    /// The confusion-matrix candidate pool.
    pub fn pool(&self) -> &MatrixPool {
        &self.pool
    }

    /// The budget.
    pub fn budget(&self) -> f64 {
        self.budget
    }

    /// The raw prior probabilities (possibly not yet validated), or `None`
    /// for the uniform default.
    pub fn prior_probs(&self) -> Option<&[f64]> {
        self.prior_probs.as_deref()
    }

    /// The solver policy.
    pub fn policy(&self) -> SolverPolicy {
        self.policy.clone()
    }

    /// The per-request configuration override, if any.
    pub fn config(&self) -> Option<&ServiceConfig> {
        self.config.as_ref()
    }

    /// Whether empty selections are allowed.
    pub fn empty_selection_allowed(&self) -> bool {
        self.allow_empty
    }

    /// The per-request wall-clock deadline, if any.
    pub fn deadline(&self) -> Option<Duration> {
        self.deadline
    }

    /// The per-request objective-evaluation cap, if any.
    pub fn max_evaluations(&self) -> Option<u64> {
        self.max_evaluations
    }
}

/// A request of either kind, for mixed batches served by
/// [`crate::JuryService::select_mixed_batch`]: binary-accuracy and
/// confusion-matrix selections travel through the same thread-parallel
/// machinery and share the one JQ-evaluation cache.
#[derive(Debug, Clone, PartialEq)]
pub enum MixedRequest {
    /// A binary-accuracy selection request.
    Binary(SelectionRequest),
    /// A confusion-matrix selection request.
    MultiClass(MultiClassSelectionRequest),
}

impl From<SelectionRequest> for MixedRequest {
    fn from(request: SelectionRequest) -> Self {
        MixedRequest::Binary(request)
    }
}

impl From<MultiClassSelectionRequest> for MixedRequest {
    fn from(request: MultiClassSelectionRequest) -> Self {
        MixedRequest::MultiClass(request)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jury_model::paper_example_pool;

    #[test]
    fn builder_defaults_and_overrides() {
        let request = SelectionRequest::new(paper_example_pool(), 15.0);
        assert_eq!(request.strategy(), Strategy::Bv);
        assert_eq!(request.policy(), SolverPolicy::Auto);
        assert!((request.prior_alpha() - 0.5).abs() < 1e-12);
        assert!(request.config().is_none());
        assert!(!request.empty_selection_allowed());

        let request = request
            .with_strategy(Strategy::Mv)
            .with_policy(SolverPolicy::Exact)
            .with_prior(Prior::new(0.7).unwrap())
            .with_config(ServiceConfig::fast())
            .allow_empty_selection(true);
        assert_eq!(request.strategy(), Strategy::Mv);
        assert_eq!(request.policy(), SolverPolicy::Exact);
        assert!((request.prior_alpha() - 0.7).abs() < 1e-12);
        assert_eq!(request.config(), Some(&ServiceConfig::fast()));
        assert!(request.empty_selection_allowed());
    }

    #[test]
    fn raw_prior_is_stored_unvalidated() {
        let request = SelectionRequest::new(paper_example_pool(), 15.0).with_prior_alpha(2.5);
        assert!((request.prior_alpha() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn deadline_and_evaluation_cap_default_off() {
        let request = SelectionRequest::new(paper_example_pool(), 15.0);
        assert!(request.deadline().is_none());
        assert!(request.max_evaluations().is_none());
        let request = request
            .with_deadline(Duration::from_millis(50))
            .with_evaluation_limit(1000);
        assert_eq!(request.deadline(), Some(Duration::from_millis(50)));
        assert_eq!(request.max_evaluations(), Some(1000));

        let multi = MultiClassSelectionRequest::new(matrix_pool(), 3.0);
        assert!(multi.deadline().is_none());
        assert!(multi.max_evaluations().is_none());
        let multi = multi
            .with_deadline(Duration::from_secs(1))
            .with_evaluation_limit(7);
        assert_eq!(multi.deadline(), Some(Duration::from_secs(1)));
        assert_eq!(multi.max_evaluations(), Some(7));
    }

    fn matrix_pool() -> MatrixPool {
        MatrixPool::from_qualities_and_costs(&[0.8, 0.7], &[1.0, 2.0], 3).unwrap()
    }

    #[test]
    fn multiclass_builder_defaults_and_overrides() {
        let request = MultiClassSelectionRequest::new(matrix_pool(), 3.0);
        assert_eq!(request.policy(), SolverPolicy::Auto);
        assert!(request.prior_probs().is_none());
        assert!(request.config().is_none());
        assert!(!request.empty_selection_allowed());
        assert_eq!(request.pool().num_choices(), 3);

        let request = request
            .with_policy(SolverPolicy::Greedy)
            .with_prior(CategoricalPrior::new(vec![0.2, 0.5, 0.3]).unwrap())
            .with_config(ServiceConfig::fast())
            .allow_empty_selection(true);
        assert_eq!(request.policy(), SolverPolicy::Greedy);
        assert_eq!(request.prior_probs(), Some(&[0.2, 0.5, 0.3][..]));
        assert_eq!(request.config(), Some(&ServiceConfig::fast()));
        assert!(request.empty_selection_allowed());
    }

    #[test]
    fn multiclass_raw_prior_is_stored_unvalidated() {
        let request =
            MultiClassSelectionRequest::new(matrix_pool(), 3.0).with_prior_probs(vec![2.0, -1.0]);
        assert_eq!(request.prior_probs(), Some(&[2.0, -1.0][..]));
    }

    #[test]
    fn mixed_requests_wrap_both_kinds() {
        let binary: MixedRequest = SelectionRequest::new(paper_example_pool(), 15.0).into();
        let multi: MixedRequest = MultiClassSelectionRequest::new(matrix_pool(), 3.0).into();
        assert!(matches!(binary, MixedRequest::Binary(_)));
        assert!(matches!(multi, MixedRequest::MultiClass(_)));
    }

    #[test]
    fn display_labels() {
        assert_eq!(Strategy::Bv.to_string(), "BV");
        assert_eq!(Strategy::Mv.to_string(), "MV");
        assert_eq!(SolverPolicy::Auto.to_string(), "auto");
        assert_eq!(SolverPolicy::Greedy.to_string(), "greedy");
        assert_eq!(SolverPolicy::Portfolio(Vec::new()).to_string(), "portfolio");
    }

    #[test]
    fn solver_policy_round_trips_through_serde() {
        let policies = [
            SolverPolicy::Auto,
            SolverPolicy::Exact,
            SolverPolicy::Annealing,
            SolverPolicy::Greedy,
            SolverPolicy::Portfolio(Vec::new()),
            SolverPolicy::Portfolio(PortfolioMember::default_lineup()),
            SolverPolicy::Portfolio(vec![PortfolioMember::Tabu]),
        ];
        for policy in policies {
            let value = policy.to_value();
            assert_eq!(SolverPolicy::from_value(&value).unwrap(), policy);
        }
        assert!(SolverPolicy::from_value(&serde::Value::String("Bogus".to_string())).is_err());
        assert!(SolverPolicy::from_value(&serde::Value::Null).is_err());
    }
}
