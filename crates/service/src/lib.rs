//! # jury-service
//!
//! The fallible, batch-first selection service API over the Jury Selection
//! Problem solvers of *"On Optimality of Jury Selection in Crowdsourcing"*
//! (EDBT 2015).
//!
//! The historical system layer exposed two near-duplicate structs (`Optjs` /
//! `Mvjs`) that solved one instance at a time and panicked on invalid
//! budgets. This crate replaces that surface with a request/response API
//! designed for serving:
//!
//! * [`SelectionRequest`] — a builder carrying pool + budget + prior +
//!   [`Strategy`] (`Bv`/`Mv`) + [`SolverPolicy`]
//!   (`Auto`/`Exact`/`Annealing`/`Greedy`) + optional per-request
//!   [`ServiceConfig`] overrides;
//! * [`JuryService::select`] — returns `Result<SelectionResponse,
//!   ServiceError>`; **nothing on the request path panics**;
//! * [`JuryService::select_batch`] — data-parallel batch execution across
//!   worker threads, with per-request error reporting and a shared JQ
//!   evaluation cache (guarded by `parking_lot` locks) keyed by quantized
//!   jury signatures ([`jury_jq::signature`]);
//! * [`JuryService::budget_quality_table`] — the Figure 1 budget–quality
//!   sweep, built on the same batched path.
//!
//! Both paper systems are now *configurations* of one generic engine: the
//! solvers are generic over `jury_selection::JuryObjective`, and the service
//! provides a single cache-backed objective per strategy. The old
//! `jury_optjs::{Optjs, Mvjs}` types survive as thin facades delegating
//! here.
//!
//! ```
//! use jury_model::{paper_example_pool, Prior};
//! use jury_service::{JuryService, SelectionRequest, Strategy};
//!
//! let service = JuryService::paper_experiments();
//!
//! // The paper's running example: budget 15 selects {B, C, G} at 84.5 %.
//! let request = SelectionRequest::new(paper_example_pool(), 15.0)
//!     .with_prior(Prior::uniform());
//! let response = service.select(&request).unwrap();
//! assert!((response.quality - 0.845).abs() < 1e-9);
//!
//! // Invalid input is an error value, not a panic.
//! let bad = SelectionRequest::new(paper_example_pool(), -1.0);
//! assert!(service.select(&bad).is_err());
//!
//! // Batches run in parallel and share the JQ cache.
//! let batch = vec![request.clone(), bad, request];
//! let results = service.select_batch(&batch);
//! assert!(results[0].is_ok() && results[1].is_err() && results[2].is_ok());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod config;
pub mod error;
pub mod request;
pub mod response;
pub mod service;

pub use cache::CacheStats;
pub use config::ServiceConfig;
pub use error::ServiceError;
pub use request::{SelectionRequest, SolverPolicy, Strategy};
pub use response::SelectionResponse;
pub use service::JuryService;
