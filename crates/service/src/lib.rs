//! # jury-service
//!
//! The fallible, batch-first selection service API over the Jury Selection
//! Problem solvers of *"On Optimality of Jury Selection in Crowdsourcing"*
//! (EDBT 2015).
//!
//! The historical system layer exposed two near-duplicate structs (`Optjs` /
//! `Mvjs`) that solved one instance at a time and panicked on invalid
//! budgets. This crate replaces that surface with a request/response API
//! designed for serving:
//!
//! * [`SelectionRequest`] — a builder carrying pool + budget + prior +
//!   [`Strategy`] (`Bv`/`Mv`) + [`SolverPolicy`]
//!   (`Auto`/`Exact`/`Annealing`/`Greedy`) + optional per-request
//!   [`ServiceConfig`] overrides;
//! * [`MultiClassSelectionRequest`] — the Section 7 serving path: the same
//!   builder convention over a confusion-matrix
//!   [`jury_model::MatrixPool`], served by
//!   [`JuryService::select_multiclass`] through the same solver policies
//!   (exhaustive over the shadow projection, annealing, marginal greedy
//!   with `IncrementalMultiClassJq` sessions past the measured crossover);
//! * [`JuryService::select`] — returns `Result<SelectionResponse,
//!   ServiceError>`; **nothing on the request path panics**;
//! * [`JuryService::select_batch`] / [`JuryService::select_mixed_batch`] —
//!   data-parallel batch execution across worker threads, with per-request
//!   error reporting and one shared **sharded** JQ evaluation cache: the
//!   store is striped into [`ServiceConfig::cache_shards`] independently
//!   locked segments routed by quantized jury signature hash
//!   ([`jury_jq::signature`]) — binary entries under
//!   [`jury_jq::jury_signature`], multi-class entries under
//!   [`jury_jq::multiclass_signature`], disjoint by construction and
//!   accounted per kind and per shard in [`CacheStats`];
//! * **deadline-aware serving** — every request can carry a wall-clock
//!   deadline ([`SelectionRequest::with_deadline`]) or an evaluation cap;
//!   solvers poll a cheap [`SearchBudget`] token at cooperative checkpoints
//!   and stop early with the best feasible jury found so far, surfaced as
//!   [`ServiceError::DeadlineExceeded`] with an **anytime** `best_so_far`
//!   payload (and as a truncation flag on sweeps and repairs);
//! * **admission control** — [`ServiceConfig::max_in_flight`] bounds
//!   concurrent batch work behind a non-blocking gate; over the limit,
//!   [`OverloadPolicy::Shed`] rejects with [`ServiceError::Overloaded`]
//!   while [`OverloadPolicy::Coarsen`] downgrades the solver policy to
//!   greedy, with per-batch gate counters and per-shard store snapshots in
//!   [`BatchMetrics`] (see [`JuryService::select_batch_with_metrics`]);
//! * [`JuryService::budget_quality_table`] and
//!   [`JuryService::multiclass_budget_quality_table`] — the Figure 1
//!   budget–quality sweep, routed by [`SweepPolicy`]: cold per-budget
//!   solves, a warm marginal sweep, or a warm **annealing** sweep that
//!   seeds each budget with the previous budget's jury;
//! * [`JuryService::drift_scan`] / [`JuryService::repair`] /
//!   [`JuryService::repair_batch`] — the **online serving loop** over
//!   `jury-stream`: answers fold into a streaming
//!   [`jury_stream::WorkerRegistry`], a [`jury_stream::DriftDetector`]
//!   re-scores handed-out juries against fresh snapshots through the shared
//!   JQ cache, and flagged juries are patched in place by the incremental
//!   swap search (`jury_selection::repair_jury`) under their original
//!   budget, with a cold re-solve fallback — outcomes come back as typed
//!   [`RepairOutcome`]s.
//!
//! Both paper systems are now *configurations* of one generic engine: the
//! solvers are generic over `jury_selection::JuryObjective`, and the service
//! provides a single cache-backed objective per strategy. The old
//! `jury_optjs::{Optjs, Mvjs}` types survive as thin facades delegating
//! here.
//!
//! ```
//! use jury_model::{paper_example_pool, Prior};
//! use jury_service::{JuryService, SelectionRequest, Strategy};
//!
//! let service = JuryService::paper_experiments();
//!
//! // The paper's running example: budget 15 selects {B, C, G} at 84.5 %.
//! let request = SelectionRequest::new(paper_example_pool(), 15.0)
//!     .with_prior(Prior::uniform());
//! let response = service.select(&request).unwrap();
//! assert!((response.quality - 0.845).abs() < 1e-9);
//!
//! // Invalid input is an error value, not a panic.
//! let bad = SelectionRequest::new(paper_example_pool(), -1.0);
//! assert!(service.select(&bad).is_err());
//!
//! // Batches run in parallel and share the JQ cache.
//! let batch = vec![request.clone(), bad, request];
//! let results = service.select_batch(&batch);
//! assert!(results[0].is_ok() && results[1].is_err() && results[2].is_ok());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod config;
pub mod error;
pub mod repair;
pub mod request;
pub mod response;
pub mod service;

pub use cache::{CacheKindStats, CacheStats};
pub use config::{OverloadPolicy, ServiceConfig, SweepPolicy};
pub use error::ServiceError;
pub use jury_selection::SearchBudget;
pub use request::{
    MixedRequest, MultiClassSelectionRequest, SelectionRequest, SolverPolicy, Strategy,
};
pub use response::{
    BatchMetrics, BatchOutcome, MixedResponse, MultiClassSelectionResponse, RepairOutcome,
    RepairResponse, SelectionResponse,
};
pub use service::JuryService;
