//! The service itself: validated, fallible, batch-first jury selection.

use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::thread;
use std::time::{Duration, Instant};

use jury_jq::MultiClassIncrementalConfig;
use jury_model::{CategoricalPrior, MatrixPool, Prior, WorkerPool};
use jury_selection::{
    AnnealingSolver, BudgetQualityRow, BudgetQualityTable, ExhaustiveSolver, GreedyMarginalSolver,
    GreedyQualitySolver, GreedyRatioSolver, JspInstance, JuryObjective, JurySolver, MultiClassJsp,
    MvjsSolver, ParallelPolicy, PortfolioConfig, PortfolioSolver, SearchBudget, SolverResult,
    MAX_EXHAUSTIVE_POOL,
};

use crate::cache::{CacheStats, CachedMultiClassObjective, CachedObjective, JqCache};
use crate::config::{OverloadPolicy, ServiceConfig, SweepPolicy};
use crate::error::ServiceError;
use crate::request::{
    MixedRequest, MultiClassSelectionRequest, SelectionRequest, SolverPolicy, Strategy,
};
use crate::response::{
    BatchMetrics, BatchOutcome, MixedResponse, MultiClassSelectionResponse, SelectionResponse,
};

/// RAII in-flight slot: decrements the service's concurrency counter when
/// the request finishes, even if the serving closure unwinds.
struct InFlightGuard<'a>(&'a AtomicUsize);

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Per-batch admission counters, shared across the batch worker threads.
#[derive(Default)]
struct AdmissionCounters {
    admitted: AtomicUsize,
    shed: AtomicUsize,
    coarsened: AtomicUsize,
    peak_in_flight: AtomicUsize,
}

impl AdmissionCounters {
    fn into_metrics(self, shards: Vec<CacheStats>) -> BatchMetrics {
        BatchMetrics {
            admitted: self.admitted.into_inner(),
            shed: self.shed.into_inner(),
            coarsened: self.coarsened.into_inner(),
            peak_in_flight: self.peak_in_flight.into_inner(),
            shards,
        }
    }
}

/// Renders a caught panic payload for [`ServiceError::Internal`].
fn panic_reason(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(message) = payload.downcast_ref::<&str>() {
        format!("a solver thread panicked: {message}")
    } else if let Some(message) = payload.downcast_ref::<String>() {
        format!("a solver thread panicked: {message}")
    } else {
        "a solver thread panicked".to_string()
    }
}

/// The jury-selection service: owns the configuration and the shared JQ
/// cache, and serves [`SelectionRequest`]s one at a time or in parallel
/// batches. All request handling is fallible — invalid input comes back as a
/// [`ServiceError`], never as a panic.
///
/// ```
/// use jury_model::paper_example_pool;
/// use jury_service::{JuryService, SelectionRequest};
///
/// let service = JuryService::paper_experiments();
/// let response = service
///     .select(&SelectionRequest::new(paper_example_pool(), 15.0))
///     .unwrap();
/// assert!((response.quality - 0.845).abs() < 1e-9); // the {B, C, G} jury
/// assert!((response.cost - 14.0).abs() < 1e-9);
/// ```
#[derive(Debug)]
pub struct JuryService {
    config: ServiceConfig,
    cache: JqCache,
    /// Requests currently inside the admission gate of the batch entry
    /// points (see [`ServiceConfig::max_in_flight`]).
    in_flight: AtomicUsize,
}

impl Default for JuryService {
    fn default() -> Self {
        JuryService::new(ServiceConfig::default())
    }
}

impl JuryService {
    /// Creates a service with the given configuration.
    pub fn new(config: ServiceConfig) -> Self {
        JuryService {
            cache: JqCache::new(config.cache_capacity, config.cache_shards),
            config,
            in_flight: AtomicUsize::new(0),
        }
    }

    /// Creates a service with the paper's experimental configuration.
    pub fn paper_experiments() -> Self {
        JuryService::new(ServiceConfig::paper_experiments())
    }

    /// The service configuration (requests can override it individually).
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Counters of the shared JQ-evaluation cache, aggregated over all
    /// shards.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Per-shard counters of the shared JQ-evaluation cache, in shard
    /// order (see [`ServiceConfig::cache_shards`]).
    pub fn cache_shard_stats(&self) -> Vec<CacheStats> {
        self.cache.shard_stats()
    }

    /// Number of lock-independent shards the JQ store was built with
    /// (a `cache_shards` of 0 is promoted to 1 at construction).
    pub fn num_cache_shards(&self) -> usize {
        self.cache.num_shards()
    }

    /// The shared JQ cache, for the crate's other endpoint modules (the
    /// repair loop scores fresh juries through the same store).
    pub(crate) fn jq_cache(&self) -> &JqCache {
        &self.cache
    }

    /// Serves one selection request.
    ///
    /// The request is validated first — a bad budget, prior, or pool comes
    /// back as a [`ServiceError`] value, never a panic. Valid requests are
    /// dispatched to the solver chosen by the request's
    /// [`SolverPolicy`]; every JQ evaluation goes
    /// through this service's shared signature-keyed cache, and the
    /// neighbourhood searches additionally run on the incremental JQ engine
    /// (`jury_jq::IncrementalJq`), paying `O(buckets)` per candidate jury.
    ///
    /// ```
    /// use jury_model::{paper_example_pool, Prior};
    /// use jury_service::{JuryService, SelectionRequest, ServiceError};
    ///
    /// let service = JuryService::paper_experiments();
    ///
    /// // Budget 15 on the paper's pool selects {B, C, G} at 84.5 %.
    /// let request = SelectionRequest::new(paper_example_pool(), 15.0)
    ///     .with_prior(Prior::uniform());
    /// let response = service.select(&request)?;
    /// assert_eq!(response.jury.size(), 3);
    /// assert!((response.quality - 0.845).abs() < 1e-9);
    ///
    /// // Failures are typed values.
    /// let err = service
    ///     .select(&SelectionRequest::new(paper_example_pool(), f64::NAN))
    ///     .unwrap_err();
    /// assert!(matches!(err, ServiceError::InvalidBudget { .. }));
    /// # Ok::<(), ServiceError>(())
    /// ```
    pub fn select(&self, request: &SelectionRequest) -> Result<SelectionResponse, ServiceError> {
        self.select_inner(request, false)
    }

    /// [`Self::select`] with the batch-over-solver thread priority applied:
    /// when the surrounding batch has already fanned its slots out across
    /// worker threads (`sequential_solver`), this request's solve runs its
    /// lanes sequentially instead of oversubscribing the same cores.
    fn select_inner(
        &self,
        request: &SelectionRequest,
        sequential_solver: bool,
    ) -> Result<SelectionResponse, ServiceError> {
        let started = Instant::now();
        let mut config = request.config().copied().unwrap_or(self.config);
        if sequential_solver {
            config.solver_threads = 1;
        }

        let prior = Prior::new(request.prior_alpha()).map_err(|_| ServiceError::InvalidPrior {
            value: request.prior_alpha(),
        })?;
        // An empty pool — like an unaffordable one — only admits the empty
        // jury, so it is an error exactly when empty selections are not
        // allowed (the paper facades allow them to keep the seed semantics,
        // e.g. dataset replays over tasks nobody answered).
        if request.pool().is_empty() && !request.empty_selection_allowed() {
            return Err(ServiceError::EmptyPool);
        }
        let budget = request.budget();
        if !budget.is_finite()
            || budget < 0.0
            || (budget == 0.0 && !request.empty_selection_allowed())
        {
            return Err(ServiceError::InvalidBudget { value: budget });
        }
        let cheapest = request
            .pool()
            .iter()
            .map(|w| w.cost())
            .min_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        if let Some(cheapest) = cheapest {
            if cheapest > budget && !request.empty_selection_allowed() {
                return Err(ServiceError::BudgetBelowCheapestWorker { budget, cheapest });
            }
        }

        let instance = JspInstance::new(request.pool().clone(), budget, prior)?;
        let objective = CachedObjective::new(config.jq_engine(), request.strategy(), &self.cache);
        let search_budget = Self::effective_budget(
            started,
            request.deadline(),
            request.max_evaluations(),
            &config,
        );
        let result = self.run_solver(&instance, &objective, request, &config, search_budget)?;

        let truncated = result.truncated;
        let response = SelectionResponse {
            quality: result.objective_value,
            cost: result.jury.cost(),
            jury: result.jury,
            strategy: request.strategy(),
            policy: request.policy(),
            solver: result.solver,
            evaluations: objective.evaluations(),
            cache_hits: objective.local_hits(),
            elapsed: started.elapsed(),
        };
        if truncated {
            return Err(ServiceError::DeadlineExceeded {
                best_so_far: Some(Box::new(MixedResponse::Binary(response))),
            });
        }
        Ok(response)
    }

    /// The [`SearchBudget`] a request's deadline knobs induce, anchored at
    /// the request's own serve start — so mid-batch peers each count their
    /// deadline from the moment their own search began, not from batch
    /// submission.
    fn request_budget(
        started: Instant,
        deadline: Option<Duration>,
        max_evaluations: Option<u64>,
    ) -> SearchBudget {
        let mut budget = SearchBudget::unlimited();
        if let Some(deadline) = deadline {
            // A deadline too far out to represent is no deadline at all.
            if let Some(at) = started.checked_add(deadline) {
                budget = budget.with_deadline_at(at);
            }
        }
        if let Some(max) = max_evaluations {
            budget = budget.with_max_evaluations(max);
        }
        budget
    }

    /// The budget a request actually runs under: its own deadline knobs
    /// intersected **tightest-wins** with the service-wide defaults
    /// ([`ServiceConfig::default_deadline`],
    /// [`ServiceConfig::default_max_evaluations`]) — whichever side names
    /// the earlier deadline or the smaller evaluation cap governs, and a
    /// limit present on only one side still applies.
    fn effective_budget(
        started: Instant,
        deadline: Option<Duration>,
        max_evaluations: Option<u64>,
        config: &ServiceConfig,
    ) -> SearchBudget {
        Self::request_budget(started, deadline, max_evaluations).intersect(Self::request_budget(
            started,
            config.default_deadline,
            config.default_max_evaluations,
        ))
    }

    fn run_solver(
        &self,
        instance: &JspInstance,
        objective: &CachedObjective<'_>,
        request: &SelectionRequest,
        config: &ServiceConfig,
        search_budget: SearchBudget,
    ) -> Result<SolverResult, ServiceError> {
        // The MV baseline keeps its odd-size top-quality candidates on
        // large `Auto` pools, exactly like the historical Mvjs system.
        let mv_baseline = request.strategy() == Strategy::Mv;
        self.dispatch_solver(
            instance,
            objective,
            request.policy(),
            mv_baseline,
            config,
            search_budget,
        )
    }

    /// The one [`SolverPolicy`] dispatch behind both the binary and the
    /// multi-class request paths, generic over the (cache-backed)
    /// objective. `mv_baseline` routes large `Auto` pools through the
    /// [`MvjsSolver`] instead of plain annealing — the binary MV strategy's
    /// historical behaviour; multi-class selection never sets it.
    ///
    /// `search_budget` is polled at the cooperative checkpoints of the
    /// annealing and marginal-greedy searches; an exhausted budget comes
    /// back as `truncated: true` on the result, carrying the best feasible
    /// jury found so far. The exact and MVJS paths are not budgeted: exact
    /// enumeration only runs on pools bounded by the exact cutoff, and the
    /// MVJS baseline's candidate scan is a single `O(n log n)` pass.
    pub(crate) fn dispatch_solver<O: JuryObjective>(
        &self,
        instance: &JspInstance,
        objective: &O,
        policy: SolverPolicy,
        mv_baseline: bool,
        config: &ServiceConfig,
        search_budget: SearchBudget,
    ) -> Result<SolverResult, ServiceError> {
        let small_pool = instance.num_candidates() <= config.exact_cutoff.min(MAX_EXHAUSTIVE_POOL);
        let result = match policy {
            SolverPolicy::Exact => ExhaustiveSolver::new(objective).try_solve(instance)?,
            SolverPolicy::Auto if small_pool => {
                ExhaustiveSolver::new(objective).try_solve(instance)?
            }
            SolverPolicy::Auto if mv_baseline => {
                MvjsSolver::with_annealing_config(config.annealing)
                    .solve_with_objective(instance, objective)
            }
            SolverPolicy::Auto | SolverPolicy::Annealing => {
                AnnealingSolver::with_config(objective, config.annealing)
                    .with_budget(search_budget)
                    .solve(instance)
            }
            // Small pools keep the provably-optimal enumeration, exactly
            // like `Auto`; the race only engages where the exact solver
            // cannot go.
            SolverPolicy::Portfolio(_) if small_pool => {
                ExhaustiveSolver::new(objective).try_solve(instance)?
            }
            SolverPolicy::Portfolio(members) => {
                let portfolio = PortfolioConfig::default()
                    .with_annealing(config.annealing)
                    .with_tabu(config.tabu)
                    .with_restart(config.restart)
                    .with_parallel(config.solver_parallelism());
                PortfolioSolver::with_members(objective, members)
                    .with_config(portfolio)
                    .with_budget(search_budget)
                    .solve(instance)
            }
            SolverPolicy::Greedy => {
                // Three greedy flavours, best-of: the two cheap orderings
                // plus the objective-driven marginal greedy, which probes
                // pool-many extensions per round through the incremental
                // session. Ties keep the earlier (cheaper) candidate. Only
                // the marginal search has checkpoints; if the budget cut it
                // short the whole best-of is reported truncated, whichever
                // flavour won.
                let mut best = GreedyQualitySolver::new(objective).solve(instance);
                let ratio = GreedyRatioSolver::new(objective).solve(instance);
                if ratio.objective_value > best.objective_value {
                    best = ratio;
                }
                let marginal = GreedyMarginalSolver::new(objective)
                    .with_budget(search_budget)
                    .with_parallelism(config.solver_parallelism())
                    .solve(instance);
                let truncated = marginal.truncated;
                if marginal.objective_value > best.objective_value {
                    best = marginal;
                }
                best.truncated = truncated;
                best
            }
        };
        Ok(result)
    }

    /// Serves one **multi-class** (confusion-matrix) selection request —
    /// the Section 7 serving path.
    ///
    /// Validation mirrors [`Self::select`]: a bad budget or prior vector
    /// comes back as a [`ServiceError`] value, never a panic (an *empty*
    /// pool cannot even be constructed — [`MatrixPool::new`] rejects it at
    /// the model layer). The candidate set then travels through the same
    /// [`SolverPolicy`] dispatch as binary requests — exhaustive
    /// enumeration over the pool's mean-accuracy **shadow projection**,
    /// simulated annealing, or marginal greedy — while every jury is scored
    /// on its full confusion matrices: exactly for small voting spaces,
    /// through the Section 7 tuple-key bucket DP otherwise, and via
    /// `jury_jq::IncrementalMultiClassJq` sessions inside the search loops
    /// once the pool is past the measured scratch/incremental crossover
    /// ([`ServiceConfig::multiclass_session_cutoff`]). Batch evaluations
    /// memoize into this service's shared JQ store under quantized
    /// confusion-matrix signatures (`jury_jq::multiclass_signature`), so
    /// binary and multi-class traffic share one cache.
    ///
    /// A pool that *requires* sessions but whose coarsest possible grid
    /// would overflow the configured dense-box cell budget is refused with
    /// [`ServiceError::MultiClassStateTooLarge`] instead of silently
    /// falling back to the exponential scratch DP.
    ///
    /// ```
    /// use jury_model::MatrixPool;
    /// use jury_service::{JuryService, MultiClassSelectionRequest, ServiceError};
    ///
    /// let pool = MatrixPool::from_qualities_and_costs(
    ///     &[0.9, 0.75, 0.7, 0.65, 0.6],
    ///     &[3.0, 2.0, 1.0, 1.0, 1.0],
    ///     3,
    /// )
    /// .unwrap();
    /// let service = JuryService::paper_experiments();
    /// let response = service
    ///     .select_multiclass(&MultiClassSelectionRequest::new(pool.clone(), 5.0))
    ///     .unwrap();
    /// assert!(response.cost <= 5.0 + 1e-9);
    /// assert_eq!(response.matrix_jury().unwrap().num_choices(), 3);
    ///
    /// // Failures are typed values.
    /// let err = service
    ///     .select_multiclass(&MultiClassSelectionRequest::new(pool, f64::NAN))
    ///     .unwrap_err();
    /// assert!(matches!(err, ServiceError::InvalidBudget { .. }));
    /// ```
    pub fn select_multiclass(
        &self,
        request: &MultiClassSelectionRequest,
    ) -> Result<MultiClassSelectionResponse, ServiceError> {
        self.select_multiclass_inner(request, false)
    }

    /// [`Self::select_multiclass`] with the batch-over-solver thread
    /// priority applied — same contract as [`Self::select_inner`].
    fn select_multiclass_inner(
        &self,
        request: &MultiClassSelectionRequest,
        sequential_solver: bool,
    ) -> Result<MultiClassSelectionResponse, ServiceError> {
        let started = Instant::now();
        let mut config = request.config().copied().unwrap_or(self.config);
        if sequential_solver {
            config.solver_threads = 1;
        }
        let pool = request.pool();

        let prior = match request.prior_probs() {
            Some(probs) => CategoricalPrior::new(probs.to_vec())?,
            None => CategoricalPrior::uniform(pool.num_choices())?,
        };
        // A prior whose label count disagrees with the pool's is rejected
        // by `MultiClassJsp::new` below and surfaces as
        // `ServiceError::InvalidPriorVector` through the `ModelError`
        // conversion — no duplicate arity check here.
        let budget = request.budget();
        if !budget.is_finite()
            || budget < 0.0
            || (budget == 0.0 && !request.empty_selection_allowed())
        {
            return Err(ServiceError::InvalidBudget { value: budget });
        }
        let cheapest = pool
            .iter()
            .map(|w| w.cost())
            .min_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        if let Some(cheapest) = cheapest {
            if cheapest > budget && !request.empty_selection_allowed() {
                return Err(ServiceError::BudgetBelowCheapestWorker { budget, cheapest });
            }
        }
        let problem = MultiClassJsp::new(pool.clone(), budget, prior.clone())?;
        let objective = CachedMultiClassObjective::new(pool, &prior, &config, &self.cache)?;
        if request.policy() != SolverPolicy::Exact {
            Self::check_multiclass_capacity(&objective, pool, &config)?;
        }
        // Same policy dispatch as the binary path (never the MV baseline —
        // multi-class selection always optimizes Bayesian voting), running
        // the solvers over the shadow instance while the cached objective
        // scores the full matrices.
        let search_budget = Self::effective_budget(
            started,
            request.deadline(),
            request.max_evaluations(),
            &config,
        );
        let result = self.dispatch_solver(
            problem.instance(),
            &objective,
            request.policy(),
            false,
            &config,
            search_budget,
        )?;

        // The objective's own resolution (borrowed members, foreign ids
        // dropped) is the single source of truth for what was scored.
        let members = objective
            .members(&result.jury)
            .into_iter()
            .cloned()
            .collect();
        let truncated = result.truncated;
        let response = MultiClassSelectionResponse {
            quality: result.objective_value,
            cost: result.jury.cost(),
            members,
            policy: request.policy(),
            solver: result.solver,
            evaluations: objective.evaluations(),
            cache_hits: objective.local_hits(),
            elapsed: started.elapsed(),
        };
        if truncated {
            return Err(ServiceError::DeadlineExceeded {
                best_so_far: Some(Box::new(MixedResponse::MultiClass(response))),
            });
        }
        Ok(response)
    }

    /// Whether a multi-class pool of this size can be served at all under
    /// the configured cell budget: when the search would *require*
    /// incremental sessions (past both the session crossover and the exact
    /// voting-space cutoff) but even a one-bucket-per-worker grid overflows
    /// `max_cells`, refuse with a typed error instead of silently running
    /// the exponential scratch DP on the serving path.
    fn check_multiclass_capacity(
        objective: &CachedMultiClassObjective<'_>,
        pool: &MatrixPool,
        config: &ServiceConfig,
    ) -> Result<(), ServiceError> {
        // Both halves of the decision live at their own layers: the
        // objective owns the session-gating rule, the incremental config
        // owns the grid geometry — the service only combines them.
        if objective.session_required(pool.len())
            && config
                .multiclass_incremental
                .resolve_buckets(pool.len(), pool.num_choices())
                .is_none()
        {
            return Err(ServiceError::MultiClassStateTooLarge {
                cells: MultiClassIncrementalConfig::min_cells(pool.len(), pool.num_choices()),
                max: config.multiclass_incremental.max_cells as u64,
            });
        }
        Ok(())
    }

    /// The shared thread-parallel batch engine behind [`Self::select_batch`]
    /// and its multi-class and mixed siblings: dynamic scheduling, where
    /// workers pull the next unclaimed item from a shared counter, so a few
    /// expensive requests cannot serialize the batch behind one thread the
    /// way static chunking would.
    ///
    /// Every serve call runs under `catch_unwind`: a panicking solver fills
    /// its own slot with [`ServiceError::Internal`] instead of unwinding
    /// the batch, and the shared store stays usable (its `parking_lot`
    /// locks do not poison).
    pub(crate) fn run_batch<T, R, F>(&self, items: &[T], serve: F) -> Vec<Result<R, ServiceError>>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> Result<R, ServiceError> + Sync,
    {
        let caught = |item: &T| -> Result<R, ServiceError> {
            std::panic::catch_unwind(AssertUnwindSafe(|| serve(item))).unwrap_or_else(|payload| {
                Err(ServiceError::Internal {
                    reason: panic_reason(payload),
                })
            })
        };
        let threads = self.batch_threads(items.len());
        if threads <= 1 {
            return items.iter().map(caught).collect();
        }

        let next = AtomicUsize::new(0);
        let (sender, receiver) = mpsc::channel();
        thread::scope(|scope| {
            for _ in 0..threads {
                let sender = sender.clone();
                let next = &next;
                let caught = &caught;
                scope.spawn(move || loop {
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    let Some(item) = items.get(index) else {
                        break;
                    };
                    if sender.send((index, caught(item))).is_err() {
                        break;
                    }
                });
            }
        });
        drop(sender);

        let mut slots: Vec<Option<Result<R, ServiceError>>> =
            (0..items.len()).map(|_| None).collect();
        for (index, result) in receiver {
            slots[index] = Some(result);
        }
        slots
            .into_iter()
            .map(|slot| {
                slot.unwrap_or_else(|| {
                    Err(ServiceError::Internal {
                        reason: "a batch slot was never filled".to_string(),
                    })
                })
            })
            .collect()
    }

    /// One request's trip through the admission gate of the batch entry
    /// points. Never blocks: with admission control off
    /// (`max_in_flight == 0`) the request is served directly; otherwise the
    /// in-flight counter is taken for the duration of the serve, and a
    /// request arriving over capacity is either rejected immediately
    /// ([`OverloadPolicy::Shed`]) or served in coarsened mode
    /// ([`OverloadPolicy::Coarsen`] — the closure's flag).
    fn serve_gated<T, R>(
        &self,
        item: &T,
        counters: &AdmissionCounters,
        serve: impl Fn(&T, bool) -> Result<R, ServiceError>,
    ) -> Result<R, ServiceError> {
        let max_in_flight = self.config.max_in_flight;
        if max_in_flight == 0 {
            counters.admitted.fetch_add(1, Ordering::Relaxed);
            return serve(item, false);
        }
        let occupied = self.in_flight.fetch_add(1, Ordering::SeqCst) + 1;
        let _slot = InFlightGuard(&self.in_flight);
        counters
            .peak_in_flight
            .fetch_max(occupied, Ordering::Relaxed);
        if occupied <= max_in_flight {
            counters.admitted.fetch_add(1, Ordering::Relaxed);
            serve(item, false)
        } else {
            match self.config.overload {
                OverloadPolicy::Shed => {
                    counters.shed.fetch_add(1, Ordering::Relaxed);
                    Err(ServiceError::Overloaded {
                        in_flight: occupied,
                        max_in_flight,
                    })
                }
                OverloadPolicy::Coarsen => {
                    counters.coarsened.fetch_add(1, Ordering::Relaxed);
                    serve(item, true)
                }
            }
        }
    }

    /// Serves a batch of requests, data-parallel across worker threads, all
    /// sharing this service's JQ-evaluation cache.
    ///
    /// Failures are per-request: one invalid request yields an `Err` in its
    /// slot without disturbing the others. The result order matches the
    /// request order. When [`ServiceConfig::max_in_flight`] is set, every
    /// request passes the admission gate (see [`OverloadPolicy`]).
    pub fn select_batch(
        &self,
        requests: &[SelectionRequest],
    ) -> Vec<Result<SelectionResponse, ServiceError>> {
        self.select_batch_with_metrics(requests).results
    }

    /// [`Self::select_batch`] plus the batch's [`BatchMetrics`]: admission
    /// counts, the in-flight peak, and per-shard cache snapshots.
    ///
    /// ```
    /// use jury_model::paper_example_pool;
    /// use jury_service::{JuryService, SelectionRequest};
    ///
    /// let service = JuryService::paper_experiments();
    /// let batch = vec![SelectionRequest::new(paper_example_pool(), 15.0); 4];
    /// let outcome = service.select_batch_with_metrics(&batch);
    /// assert_eq!(outcome.results.len(), 4);
    /// // Admission control is off by default: everything is admitted.
    /// assert_eq!(outcome.metrics.admitted, 4);
    /// assert_eq!(outcome.metrics.shed + outcome.metrics.coarsened, 0);
    /// assert_eq!(outcome.metrics.shards.len(), 8);
    /// ```
    pub fn select_batch_with_metrics(
        &self,
        requests: &[SelectionRequest],
    ) -> BatchOutcome<SelectionResponse> {
        let counters = AdmissionCounters::default();
        // Batch wins the cores: once the batch itself fans out across
        // worker threads, each slot's solver runs its lanes sequentially
        // rather than oversubscribing (see `ServiceConfig::solver_threads`).
        let sequential_solver = self.batch_threads(requests.len()) > 1;
        let results = self.run_batch(requests, |request| {
            self.serve_gated(request, &counters, |request, coarsen| {
                if coarsen {
                    self.select_inner(
                        &request.clone().with_policy(SolverPolicy::Greedy),
                        sequential_solver,
                    )
                } else {
                    self.select_inner(request, sequential_solver)
                }
            })
        });
        BatchOutcome {
            results,
            metrics: counters.into_metrics(self.cache.shard_stats()),
        }
    }

    /// Serves a batch of multi-class requests through the same
    /// thread-parallel machinery (and the same shared cache) as
    /// [`Self::select_batch`]; per-request failure semantics, result
    /// ordering, and the admission gate are identical.
    pub fn select_multiclass_batch(
        &self,
        requests: &[MultiClassSelectionRequest],
    ) -> Vec<Result<MultiClassSelectionResponse, ServiceError>> {
        let counters = AdmissionCounters::default();
        let sequential_solver = self.batch_threads(requests.len()) > 1;
        self.run_batch(requests, |request| {
            self.serve_gated(request, &counters, |request, coarsen| {
                if coarsen {
                    self.select_multiclass_inner(
                        &request.clone().with_policy(SolverPolicy::Greedy),
                        sequential_solver,
                    )
                } else {
                    self.select_multiclass_inner(request, sequential_solver)
                }
            })
        })
    }

    /// Serves a **mixed** batch — binary and multi-class requests side by
    /// side — through the one thread-parallel engine. Both kinds memoize
    /// into the one shared JQ store (their signature key spaces are
    /// disjoint), so overlapping work across kinds is paid once per batch;
    /// [`Self::cache_stats`] reports the per-kind hit accounting.
    ///
    /// ```
    /// use jury_model::{paper_example_pool, MatrixPool};
    /// use jury_service::{JuryService, MixedRequest, MultiClassSelectionRequest, SelectionRequest};
    ///
    /// let service = JuryService::paper_experiments();
    /// let matrix_pool =
    ///     MatrixPool::from_qualities_and_costs(&[0.9, 0.7, 0.6], &[2.0, 1.0, 1.0], 3).unwrap();
    /// let batch: Vec<MixedRequest> = vec![
    ///     SelectionRequest::new(paper_example_pool(), 15.0).into(),
    ///     MultiClassSelectionRequest::new(matrix_pool, 3.0).into(),
    /// ];
    /// let responses = service.select_mixed_batch(&batch);
    /// assert!(responses[0].as_ref().unwrap().as_binary().is_some());
    /// assert!(responses[1].as_ref().unwrap().as_multi_class().is_some());
    /// ```
    pub fn select_mixed_batch(
        &self,
        requests: &[MixedRequest],
    ) -> Vec<Result<MixedResponse, ServiceError>> {
        self.select_mixed_batch_with_metrics(requests).results
    }

    /// [`Self::select_mixed_batch`] plus the batch's [`BatchMetrics`] —
    /// the mixed-kind sibling of [`Self::select_batch_with_metrics`].
    ///
    /// With admission control on, over-capacity slots are shed or
    /// coarsened regardless of their kind:
    ///
    /// ```
    /// use jury_model::paper_example_pool;
    /// use jury_service::{
    ///     JuryService, MixedRequest, OverloadPolicy, SelectionRequest, ServiceConfig,
    /// };
    ///
    /// let service = JuryService::new(
    ///     ServiceConfig::fast()
    ///         .with_max_in_flight(1)
    ///         .with_overload_policy(OverloadPolicy::Coarsen)
    ///         .with_batch_threads(2),
    /// );
    /// let batch: Vec<MixedRequest> =
    ///     vec![SelectionRequest::new(paper_example_pool(), 15.0).into(); 6];
    /// let outcome = service.select_mixed_batch_with_metrics(&batch);
    /// // Coarsening never sheds: every slot is served.
    /// assert!(outcome.results.iter().all(|slot| slot.is_ok()));
    /// assert_eq!(
    ///     outcome.metrics.admitted + outcome.metrics.coarsened,
    ///     batch.len()
    /// );
    /// ```
    pub fn select_mixed_batch_with_metrics(
        &self,
        requests: &[MixedRequest],
    ) -> BatchOutcome<MixedResponse> {
        let counters = AdmissionCounters::default();
        let sequential_solver = self.batch_threads(requests.len()) > 1;
        let results = self.run_batch(requests, |request| {
            self.serve_gated(request, &counters, |request, coarsen| match request {
                MixedRequest::Binary(request) => if coarsen {
                    self.select_inner(
                        &request.clone().with_policy(SolverPolicy::Greedy),
                        sequential_solver,
                    )
                } else {
                    self.select_inner(request, sequential_solver)
                }
                .map(MixedResponse::Binary),
                MixedRequest::MultiClass(request) => if coarsen {
                    self.select_multiclass_inner(
                        &request.clone().with_policy(SolverPolicy::Greedy),
                        sequential_solver,
                    )
                } else {
                    self.select_multiclass_inner(request, sequential_solver)
                }
                .map(MixedResponse::MultiClass),
            })
        });
        BatchOutcome {
            results,
            metrics: counters.into_metrics(self.cache.shard_stats()),
        }
    }

    fn batch_threads(&self, batch_len: usize) -> usize {
        // Batch fan-out resolves its thread count through the same policy
        // as the intra-solve lanes (`0` = one per core, clamped to the
        // work), so `ServiceConfig::with_worker_threads` means the same
        // thing at both levels.
        ParallelPolicy::Threads(self.config.batch_threads).lanes(batch_len)
    }

    /// Builds the Figure-1 style budget–quality table.
    ///
    /// Pools within the exact cutoff are served one selection per budget
    /// through [`Self::select_batch`] (parallel, cached, BV strategy, `Auto`
    /// policy), so small tables stay exhaustively optimal. Larger pools —
    /// where every budget would otherwise pay a full heuristic search — are
    /// served according to the configured [`SweepPolicy`]:
    ///
    /// * [`SweepPolicy::WarmMarginal`] (default) — one marginal-gain search
    ///   state and one incremental JQ session carried from each budget to
    ///   the next ([`jury_selection::BudgetQualityTable::build_warm`]),
    ///   pushing only the marginal workers instead of re-solving cold;
    /// * [`SweepPolicy::WarmAnnealing`] — each budget's annealing run
    ///   seeded with the previous budget's jury
    ///   ([`jury_selection::BudgetQualityTable::build_warm_annealing`]),
    ///   for quality-critical sweeps on heterogeneous costs;
    /// * [`SweepPolicy::Cold`] — one full solve per budget through the
    ///   batch path.
    ///
    /// Every warm row is re-scored through this service's cached batch
    /// objective. Budgets below the cheapest worker yield empty-jury rows,
    /// matching the table's exploratory semantics.
    pub fn budget_quality_table(
        &self,
        pool: &WorkerPool,
        budgets: &[f64],
        prior: Prior,
    ) -> Result<BudgetQualityTable, ServiceError> {
        self.budget_table_budgeted(pool, budgets, prior, SearchBudget::unlimited())
            .map(|(table, _)| table)
    }

    /// [`Self::budget_quality_table`] under one shared wall-clock deadline
    /// for the whole sweep. Returns the table plus a flag reporting whether
    /// the deadline cut the search short — anytime semantics: a truncated
    /// table's rows are still feasible, budget-respecting juries, they just
    /// may trail what an uncut sweep would have found. The deadline is
    /// polled at the warm sweeps' cooperative checkpoints; on the
    /// small-pool batch path the exhaustive per-budget solves are bounded
    /// by the exact cutoff and run to completion.
    pub fn budget_quality_table_with_deadline(
        &self,
        pool: &WorkerPool,
        budgets: &[f64],
        prior: Prior,
        deadline: Duration,
    ) -> Result<(BudgetQualityTable, bool), ServiceError> {
        self.budget_table_budgeted(
            pool,
            budgets,
            prior,
            SearchBudget::unlimited().with_deadline_in(deadline),
        )
    }

    fn budget_table_budgeted(
        &self,
        pool: &WorkerPool,
        budgets: &[f64],
        prior: Prior,
        search_budget: SearchBudget,
    ) -> Result<(BudgetQualityTable, bool), ServiceError> {
        let beyond_exact = pool.len() > self.config.exact_cutoff.min(MAX_EXHAUSTIVE_POOL);
        if beyond_exact && self.config.sweep != SweepPolicy::Cold {
            Self::validate_sweep_budgets(budgets)?;
            let objective =
                CachedObjective::new(self.config.jq_engine(), Strategy::Bv, &self.cache);
            return Ok(match self.config.sweep {
                SweepPolicy::WarmMarginal => BudgetQualityTable::build_warm_budgeted(
                    pool,
                    budgets,
                    prior,
                    &objective,
                    search_budget,
                ),
                SweepPolicy::WarmAnnealing => BudgetQualityTable::build_warm_annealing_budgeted(
                    pool,
                    budgets,
                    prior,
                    &objective,
                    self.config.annealing,
                    search_budget,
                ),
                SweepPolicy::Cold => unreachable!("cold sweeps take the batch path"),
            });
        }
        // Batch path: per-budget requests. Without a deadline they are
        // served thread-parallel as one batch. Under a sweep deadline the
        // rows are served sequentially instead, each granted an equal share
        // of the time *still remaining* — recomputed after every completed
        // row, so time a fast row leaves unspent is reclaimed by the rows
        // behind it and the whole sweep is bounded by the one deadline
        // (handing every row the full remainder up front would let the
        // sweep run for rows × deadline). Rows that exhaust their share
        // keep their anytime best-so-far jury and flip the truncation flag
        // instead of erroring.
        let build_request = |budget: f64| {
            let mut request = SelectionRequest::new(pool.clone(), budget)
                .with_prior(prior)
                .allow_empty_selection(true);
            if let Some(max) = search_budget.max_evaluations() {
                request = request.with_evaluation_limit(max);
            }
            request
        };
        let results: Vec<Result<SelectionResponse, ServiceError>> = match search_budget.deadline() {
            Some(at) => budgets
                .iter()
                .enumerate()
                .map(|(row, &budget)| {
                    let rows_left = (budgets.len() - row) as u32;
                    let share = at.saturating_duration_since(Instant::now()) / rows_left;
                    self.select(&build_request(budget).with_deadline(share))
                })
                .collect(),
            None => {
                let requests: Vec<SelectionRequest> = budgets
                    .iter()
                    .map(|&budget| build_request(budget))
                    .collect();
                self.select_batch(&requests)
            }
        };
        let mut truncated = false;
        let rows = results
            .into_iter()
            .zip(budgets)
            .map(|(result, &budget)| {
                let response = match result {
                    Ok(response) => response,
                    Err(ServiceError::DeadlineExceeded {
                        best_so_far: Some(best),
                    }) => match *best {
                        MixedResponse::Binary(response) => {
                            truncated = true;
                            response
                        }
                        other => {
                            return Err(ServiceError::DeadlineExceeded {
                                best_so_far: Some(Box::new(other)),
                            })
                        }
                    },
                    Err(err) => return Err(err),
                };
                Ok(BudgetQualityRow {
                    budget,
                    jury: response.worker_ids(),
                    quality: response.quality,
                    required_budget: response.cost,
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok((BudgetQualityTable::from_rows(rows), truncated))
    }

    /// Builds the budget–quality table for a **multi-class**
    /// (confusion-matrix) pool — the same sweep-policy routing as
    /// [`Self::budget_quality_table`], with every row scored as
    /// `JQ(J, BV, ~α)` on the full matrices through this service's shared
    /// cache.
    ///
    /// Large pools ride the warm sweeps on the pool's shadow projection
    /// (the solvers move `(id, cost)` candidates; the cached multi-class
    /// objective looks the matrices back up by id), carrying one search
    /// state — and one `IncrementalMultiClassJq` session, past the
    /// crossover cutoff — across ascending budgets. Small pools are solved
    /// per budget through [`Self::select_multiclass_batch`], exhaustively
    /// within the exact cutoff.
    pub fn multiclass_budget_quality_table(
        &self,
        pool: &MatrixPool,
        budgets: &[f64],
        prior: &CategoricalPrior,
    ) -> Result<BudgetQualityTable, ServiceError> {
        self.multiclass_budget_table_budgeted(pool, budgets, prior, SearchBudget::unlimited())
            .map(|(table, _)| table)
    }

    /// [`Self::multiclass_budget_quality_table`] under one shared
    /// wall-clock deadline — the multi-class sibling of
    /// [`Self::budget_quality_table_with_deadline`], with the same anytime
    /// semantics for the returned truncation flag.
    pub fn multiclass_budget_quality_table_with_deadline(
        &self,
        pool: &MatrixPool,
        budgets: &[f64],
        prior: &CategoricalPrior,
        deadline: Duration,
    ) -> Result<(BudgetQualityTable, bool), ServiceError> {
        self.multiclass_budget_table_budgeted(
            pool,
            budgets,
            prior,
            SearchBudget::unlimited().with_deadline_in(deadline),
        )
    }

    fn multiclass_budget_table_budgeted(
        &self,
        pool: &MatrixPool,
        budgets: &[f64],
        prior: &CategoricalPrior,
        search_budget: SearchBudget,
    ) -> Result<(BudgetQualityTable, bool), ServiceError> {
        let beyond_exact = pool.len() > self.config.exact_cutoff.min(MAX_EXHAUSTIVE_POOL);
        if beyond_exact && self.config.sweep != SweepPolicy::Cold {
            Self::validate_sweep_budgets(budgets)?;
            // A prior/pool label-count mismatch is rejected by the objective
            // constructor and surfaces as `ServiceError::InvalidPriorVector`
            // through the `ModelError` conversion.
            let objective = CachedMultiClassObjective::new(pool, prior, &self.config, &self.cache)?;
            Self::check_multiclass_capacity(&objective, pool, &self.config)?;
            let shadow = pool.shadow_pool();
            // The binary prior slot of the shadow instances is unused — the
            // categorical prior is part of the objective's identity.
            return Ok(match self.config.sweep {
                SweepPolicy::WarmMarginal => BudgetQualityTable::build_warm_budgeted(
                    &shadow,
                    budgets,
                    Prior::uniform(),
                    &objective,
                    search_budget,
                ),
                SweepPolicy::WarmAnnealing => BudgetQualityTable::build_warm_annealing_budgeted(
                    &shadow,
                    budgets,
                    Prior::uniform(),
                    &objective,
                    self.config.annealing,
                    search_budget,
                ),
                SweepPolicy::Cold => unreachable!("cold sweeps take the batch path"),
            });
        }
        // Same per-row deadline redistribution as the binary table path:
        // sequential rows under a deadline, each granted an equal share of
        // the time still remaining so unspent time flows to later rows.
        let build_request = |budget: f64| {
            let mut request = MultiClassSelectionRequest::new(pool.clone(), budget)
                .with_prior(prior.clone())
                .allow_empty_selection(true);
            if let Some(max) = search_budget.max_evaluations() {
                request = request.with_evaluation_limit(max);
            }
            request
        };
        let results: Vec<Result<MultiClassSelectionResponse, ServiceError>> =
            match search_budget.deadline() {
                Some(at) => budgets
                    .iter()
                    .enumerate()
                    .map(|(row, &budget)| {
                        let rows_left = (budgets.len() - row) as u32;
                        let share = at.saturating_duration_since(Instant::now()) / rows_left;
                        self.select_multiclass(&build_request(budget).with_deadline(share))
                    })
                    .collect(),
                None => {
                    let requests: Vec<MultiClassSelectionRequest> = budgets
                        .iter()
                        .map(|&budget| build_request(budget))
                        .collect();
                    self.select_multiclass_batch(&requests)
                }
            };
        let mut truncated = false;
        let rows = results
            .into_iter()
            .zip(budgets)
            .map(|(result, &budget)| {
                let response = match result {
                    Ok(response) => response,
                    Err(ServiceError::DeadlineExceeded {
                        best_so_far: Some(best),
                    }) => match *best {
                        MixedResponse::MultiClass(response) => {
                            truncated = true;
                            response
                        }
                        other => {
                            return Err(ServiceError::DeadlineExceeded {
                                best_so_far: Some(Box::new(other)),
                            })
                        }
                    },
                    Err(err) => return Err(err),
                };
                Ok(BudgetQualityRow {
                    budget,
                    jury: response.worker_ids(),
                    quality: response.quality,
                    required_budget: response.cost,
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok((BudgetQualityTable::from_rows(rows), truncated))
    }

    /// The warm sweep builders assert on bad budgets (their per-budget
    /// instances would); the service validates them up front so the table
    /// entry points keep the no-panic contract.
    fn validate_sweep_budgets(budgets: &[f64]) -> Result<(), ServiceError> {
        for &budget in budgets {
            if !budget.is_finite() || budget < 0.0 {
                return Err(ServiceError::InvalidBudget { value: budget });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jury_model::{paper_example_pool, WorkerId, WorkerPool};

    fn paper_service() -> JuryService {
        JuryService::paper_experiments()
    }

    #[test]
    fn paper_example_selects_bcg_at_budget_15() {
        let service = paper_service();
        let response = service
            .select(&SelectionRequest::new(paper_example_pool(), 15.0))
            .unwrap();
        assert_eq!(
            response.worker_ids(),
            vec![WorkerId(1), WorkerId(2), WorkerId(6)]
        );
        assert!((response.quality - 0.845).abs() < 1e-9);
        assert!((response.cost - 14.0).abs() < 1e-9);
        assert_eq!(response.strategy, Strategy::Bv);
        assert_eq!(response.solver, "exhaustive");
        assert!(response.evaluations > 0);
    }

    #[test]
    fn select_batch_matches_select_and_shares_the_cache() {
        let service = paper_service();
        let request = SelectionRequest::new(paper_example_pool(), 15.0);
        let single = service.select(&request).unwrap();

        let batch: Vec<SelectionRequest> = (0..64).map(|_| request.clone()).collect();
        let responses = service.select_batch(&batch);
        assert_eq!(responses.len(), 64);
        for response in responses {
            let response = response.unwrap();
            assert_eq!(response.worker_ids(), single.worker_ids());
            assert!((response.quality - single.quality).abs() < 1e-12);
        }
        let stats = service.cache_stats();
        assert!(
            stats.hits > stats.misses,
            "batch should be cache-dominated: {stats:?}"
        );
    }

    #[test]
    fn mv_strategy_reproduces_the_mvjs_baseline() {
        let service = paper_service();
        let response = service
            .select(&SelectionRequest::new(paper_example_pool(), 20.0).with_strategy(Strategy::Mv))
            .unwrap();
        // The MV-optimal jury at B = 20 is {A, C, G} (the introduction's
        // prior-work solution).
        assert_eq!(
            response.worker_ids(),
            vec![WorkerId(0), WorkerId(2), WorkerId(6)]
        );
        let bv = service
            .select(&SelectionRequest::new(paper_example_pool(), 20.0))
            .unwrap();
        assert!(bv.quality >= response.quality - 1e-9);
    }

    #[test]
    fn policies_agree_on_the_paper_pool() {
        let service = paper_service();
        let mut qualities = Vec::new();
        for policy in [
            SolverPolicy::Auto,
            SolverPolicy::Exact,
            SolverPolicy::Annealing,
            SolverPolicy::Greedy,
        ] {
            let response = service
                .select(
                    &SelectionRequest::new(paper_example_pool(), 15.0).with_policy(policy.clone()),
                )
                .unwrap();
            assert!(response.cost <= 15.0 + 1e-9, "{policy}");
            qualities.push((policy, response.quality));
        }
        let exact = qualities[1].1;
        for (policy, quality) in qualities {
            assert!(quality <= exact + 1e-9, "{policy} beat exact");
        }
    }

    #[test]
    fn exact_policy_fails_cleanly_on_large_pools() {
        let pool = WorkerPool::from_qualities_and_costs(&[0.7; 23], &[1.0; 23]).unwrap();
        let service = paper_service();
        let err = service
            .select(&SelectionRequest::new(pool, 5.0).with_policy(SolverPolicy::Exact))
            .unwrap_err();
        assert_eq!(
            err,
            ServiceError::PoolTooLargeForExact {
                size: 23,
                max: MAX_EXHAUSTIVE_POOL
            }
        );
    }

    #[test]
    fn per_request_config_overrides_apply() {
        let service = JuryService::new(ServiceConfig::default());
        // Force the annealing path on the 7-worker pool by lowering the
        // exact cutoff to zero for this request only.
        let response = service
            .select(
                &SelectionRequest::new(paper_example_pool(), 15.0)
                    .with_config(ServiceConfig::default().with_exact_cutoff(0)),
            )
            .unwrap();
        assert_eq!(response.solver, "simulated-annealing");
        assert!((response.quality - 0.845).abs() < 1e-6);
    }

    #[test]
    fn budget_quality_table_reproduces_figure_1() {
        let service = paper_service();
        let table = service
            .budget_quality_table(
                &paper_example_pool(),
                &[5.0, 10.0, 15.0, 20.0],
                Prior::uniform(),
            )
            .unwrap();
        let qualities: Vec<f64> = table.rows().iter().map(|r| r.quality).collect();
        let expected = [0.75, 0.80, 0.845, 0.8695];
        for (got, want) in qualities.iter().zip(expected.iter()) {
            assert!((got - want).abs() < 1e-9, "{got} vs {want}");
        }
        assert!((table.rows()[2].required_budget - 14.0).abs() < 1e-9);
    }

    #[test]
    fn empty_jury_allowed_when_opted_in() {
        let pool = WorkerPool::from_qualities_and_costs(&[0.8], &[5.0]).unwrap();
        let service = paper_service();
        let response = service
            .select(&SelectionRequest::new(pool, 1.0).allow_empty_selection(true))
            .unwrap();
        assert!(response.jury.is_empty());
        assert!((response.quality - 0.5).abs() < 1e-12);
        assert_eq!(response.cost, 0.0);
    }

    #[test]
    fn empty_pool_yields_empty_jury_when_opted_in() {
        // Seed semantics for the facades: an empty candidate set (e.g. a
        // dataset task nobody answered) selects the empty jury instead of
        // erroring.
        let service = paper_service();
        let request = SelectionRequest::new(WorkerPool::new(), 1.0).allow_empty_selection(true);
        let response = service.select(&request).unwrap();
        assert!(response.jury.is_empty());
        assert!((response.quality - 0.5).abs() < 1e-12);
        // Without the opt-in it stays an error.
        let strict = SelectionRequest::new(WorkerPool::new(), 1.0);
        assert_eq!(
            service.select(&strict).unwrap_err(),
            ServiceError::EmptyPool
        );
    }

    #[test]
    fn large_pools_run_the_incremental_search_path() {
        // 40 candidates is well above the exact cutoff, so Auto/Annealing
        // steer through the incremental BV engine and Greedy adds the
        // marginal-gain probes; results must stay feasible, non-trivial, and
        // deterministic.
        let qualities: Vec<f64> = (0..40).map(|i| 0.52 + 0.012 * (i % 30) as f64).collect();
        let costs: Vec<f64> = (0..40).map(|i| 0.5 + (i % 7) as f64 * 0.25).collect();
        let pool = WorkerPool::from_qualities_and_costs(&qualities, &costs).unwrap();
        let service = paper_service();
        for policy in [
            SolverPolicy::Auto,
            SolverPolicy::Annealing,
            SolverPolicy::Greedy,
        ] {
            let request = SelectionRequest::new(pool.clone(), 5.0).with_policy(policy.clone());
            let response = service.select(&request).unwrap();
            assert!(response.cost <= 5.0 + 1e-9, "{policy}");
            assert!(!response.jury.is_empty(), "{policy}");
            assert!(response.quality >= 0.5, "{policy}");
            assert!(response.evaluations > 0, "{policy}");
            let again = service.select(&request).unwrap();
            assert_eq!(response.worker_ids(), again.worker_ids(), "{policy}");
        }
        // The MV strategy drives the incremental Poisson-binomial engine.
        let mv = service
            .select(&SelectionRequest::new(pool, 5.0).with_strategy(Strategy::Mv))
            .unwrap();
        assert!(mv.quality >= 0.5);
    }

    #[test]
    fn warm_sweep_matches_cold_per_budget_solves_on_large_uniform_pools() {
        // Uniform costs and descending qualities: the warm marginal sweep,
        // the cold annealing solves, and Lemma 2's top-k optimum all agree,
        // so the two execution paths must produce the same row qualities.
        let qualities: Vec<f64> = (0..24).map(|i| 0.9 - 0.012 * i as f64).collect();
        let pool = WorkerPool::from_qualities_and_costs(&qualities, &[1.0; 24]).unwrap();
        let budgets = [2.0, 4.0, 6.0, 9.0];

        let warm_service = JuryService::new(ServiceConfig::fast());
        let warm = warm_service
            .budget_quality_table(&pool, &budgets, Prior::uniform())
            .unwrap();
        let cold_service =
            JuryService::new(ServiceConfig::fast().with_sweep_policy(SweepPolicy::Cold));
        let cold = cold_service
            .budget_quality_table(&pool, &budgets, Prior::uniform())
            .unwrap();

        let mut previous = 0.0;
        for (w, c) in warm.rows().iter().zip(cold.rows()) {
            assert!(
                (w.quality - c.quality).abs() < 1e-9,
                "budget {}: warm {} vs cold {}",
                w.budget,
                w.quality,
                c.quality
            );
            assert!(w.required_budget <= w.budget + 1e-9);
            assert!(
                w.quality >= previous - 1e-12,
                "warm rows must stay monotone"
            );
            previous = w.quality;
        }
        // The warm sweep still routes evaluations through the shared cache.
        assert!(warm_service.cache_stats().misses > 0);
    }

    #[test]
    fn warm_sweep_validates_budgets() {
        let qualities: Vec<f64> = (0..20).map(|i| 0.85 - 0.01 * i as f64).collect();
        let pool = WorkerPool::from_qualities_and_costs(&qualities, &[1.0; 20]).unwrap();
        let service = JuryService::new(ServiceConfig::fast());
        for bad in [f64::NAN, f64::INFINITY, -1.0] {
            let err = service
                .budget_quality_table(&pool, &[1.0, bad], Prior::uniform())
                .unwrap_err();
            assert!(matches!(err, ServiceError::InvalidBudget { .. }), "{bad}");
        }
    }

    #[test]
    fn small_pools_keep_the_exhaustive_table_path() {
        // The paper pool is within the exact cutoff, so the warm-sweep flag
        // must not change the exhaustively-optimal Figure 1 rows.
        let service = paper_service();
        assert!(service.config().warm_sweeps());
        let table = service
            .budget_quality_table(
                &paper_example_pool(),
                &[5.0, 10.0, 15.0, 20.0],
                Prior::uniform(),
            )
            .unwrap();
        assert!((table.rows()[3].quality - 0.8695).abs() < 1e-9);
    }

    #[test]
    fn warm_annealing_sweep_matches_cold_rows_on_large_uniform_pools() {
        // Same Lemma-2 territory as the marginal warm-sweep test: on a
        // uniform-cost pool the seeded annealing sweep, the marginal sweep,
        // and the cold solves must all land on the same row qualities.
        let qualities: Vec<f64> = (0..24).map(|i| 0.9 - 0.012 * i as f64).collect();
        let pool = WorkerPool::from_qualities_and_costs(&qualities, &[1.0; 24]).unwrap();
        let budgets = [2.0, 4.0, 6.0, 9.0];

        let annealing_service =
            JuryService::new(ServiceConfig::fast().with_sweep_policy(SweepPolicy::WarmAnnealing));
        let warm = annealing_service
            .budget_quality_table(&pool, &budgets, Prior::uniform())
            .unwrap();
        let cold_service =
            JuryService::new(ServiceConfig::fast().with_sweep_policy(SweepPolicy::Cold));
        let cold = cold_service
            .budget_quality_table(&pool, &budgets, Prior::uniform())
            .unwrap();
        let mut previous = 0.0;
        for (w, c) in warm.rows().iter().zip(cold.rows()) {
            assert!(
                (w.quality - c.quality).abs() < 1e-9,
                "budget {}: warm-annealing {} vs cold {}",
                w.budget,
                w.quality,
                c.quality
            );
            assert!(w.quality >= previous - 1e-12, "rows must stay monotone");
            previous = w.quality;
        }
        // Bad budgets stay typed errors on this path too.
        let err = annealing_service
            .budget_quality_table(&pool, &[1.0, f64::NAN], Prior::uniform())
            .unwrap_err();
        assert!(matches!(err, ServiceError::InvalidBudget { .. }));
    }

    #[test]
    fn batch_threads_clamp_to_batch_length() {
        let service = JuryService::new(ServiceConfig::default().with_batch_threads(16));
        assert_eq!(service.batch_threads(1), 1);
        assert_eq!(service.batch_threads(4), 4);
        assert_eq!(service.batch_threads(100), 16);
        let auto = JuryService::default();
        assert!(auto.batch_threads(1000) >= 1);
    }

    use jury_model::{CategoricalPrior, MatrixPool};

    fn matrix_pool() -> MatrixPool {
        MatrixPool::from_qualities_and_costs(
            &[0.9, 0.6, 0.7, 0.8, 0.65],
            &[2.0, 2.0, 2.0, 2.0, 2.0],
            3,
        )
        .unwrap()
    }

    #[test]
    fn multiclass_select_round_trips_the_exhaustive_optimum() {
        let service = paper_service();
        let request = MultiClassSelectionRequest::new(matrix_pool(), 6.0);
        let response = service.select_multiclass(&request).unwrap();
        assert_eq!(response.solver, "exhaustive");
        assert_eq!(response.policy, SolverPolicy::Auto);
        assert!(response.cost <= 6.0 + 1e-9);
        assert!(response.quality >= 1.0 / 3.0);
        assert!(response.evaluations > 0);
        let jury = response.matrix_jury().unwrap();
        assert_eq!(jury.num_choices(), 3);
        // Same request again: all evaluations come back from the cache.
        let again = service.select_multiclass(&request).unwrap();
        assert_eq!(again.worker_ids(), response.worker_ids());
        assert!(again.cache_hits > 0);
        let stats = service.cache_stats();
        assert!(stats.multiclass.hits > 0);
        assert_eq!(stats.binary, crate::cache::CacheKindStats::default());
    }

    #[test]
    fn multiclass_batch_matches_single_selects() {
        let service = paper_service();
        let request = MultiClassSelectionRequest::new(matrix_pool(), 6.0);
        let single = service.select_multiclass(&request).unwrap();
        let batch: Vec<MultiClassSelectionRequest> = (0..16).map(|_| request.clone()).collect();
        for response in service.select_multiclass_batch(&batch) {
            let response = response.unwrap();
            assert_eq!(response.worker_ids(), single.worker_ids());
            assert!((response.quality - single.quality).abs() < 1e-12);
        }
    }

    #[test]
    fn mixed_batches_serve_both_kinds_and_share_the_store() {
        let service = paper_service();
        let mut batch: Vec<MixedRequest> = Vec::new();
        for _ in 0..8 {
            batch.push(SelectionRequest::new(paper_example_pool(), 15.0).into());
            batch.push(MultiClassSelectionRequest::new(matrix_pool(), 6.0).into());
        }
        let responses = service.select_mixed_batch(&batch);
        assert_eq!(responses.len(), 16);
        for (i, response) in responses.iter().enumerate() {
            let response = response.as_ref().unwrap();
            if i % 2 == 0 {
                let binary = response.as_binary().unwrap();
                assert!((binary.quality - 0.845).abs() < 1e-9);
            } else {
                let multi = response.as_multi_class().unwrap();
                assert!(multi.quality >= 1.0 / 3.0);
            }
        }
        let stats = service.cache_stats();
        assert!(stats.binary.hits > 0, "{stats:?}");
        assert!(stats.multiclass.hits > 0, "{stats:?}");
        assert_eq!(stats.hits, stats.binary.hits + stats.multiclass.hits);
    }

    #[test]
    fn multiclass_error_paths_are_typed() {
        let service = paper_service();
        // Non-finite and negative budgets.
        for bad in [f64::NAN, f64::INFINITY, -2.0] {
            let err = service
                .select_multiclass(&MultiClassSelectionRequest::new(matrix_pool(), bad))
                .unwrap_err();
            assert!(matches!(err, ServiceError::InvalidBudget { .. }), "{bad}");
        }
        // Invalid prior vectors (not a distribution / wrong arity).
        let err = service
            .select_multiclass(
                &MultiClassSelectionRequest::new(matrix_pool(), 6.0)
                    .with_prior_probs(vec![0.7, 0.7, 0.7]),
            )
            .unwrap_err();
        assert!(matches!(err, ServiceError::InvalidPriorVector { .. }));
        let err = service
            .select_multiclass(
                &MultiClassSelectionRequest::new(matrix_pool(), 6.0)
                    .with_prior_probs(vec![0.5, 0.5]),
            )
            .unwrap_err();
        assert!(matches!(err, ServiceError::InvalidPriorVector { .. }));
        // Budget below the cheapest worker without the empty opt-in.
        let err = service
            .select_multiclass(&MultiClassSelectionRequest::new(matrix_pool(), 1.0))
            .unwrap_err();
        assert!(matches!(
            err,
            ServiceError::BudgetBelowCheapestWorker { .. }
        ));
        // With the opt-in the empty jury answers the prior argmax.
        let response = service
            .select_multiclass(
                &MultiClassSelectionRequest::new(matrix_pool(), 1.0)
                    .with_prior(CategoricalPrior::new(vec![0.2, 0.5, 0.3]).unwrap())
                    .allow_empty_selection(true),
            )
            .unwrap();
        assert_eq!(response.jury_size(), 0);
        assert!((response.quality - 0.5).abs() < 1e-12);
        assert_eq!(response.cost, 0.0);
    }

    #[test]
    fn multiclass_cell_budget_overflow_is_a_typed_error() {
        // 24 candidates over 4 labels is past both the session crossover and
        // the exact voting cutoff; with a one-cell budget even the coarsest
        // grid cannot fit, so the service must refuse, not panic or silently
        // run the exponential scratch DP.
        let qualities: Vec<f64> = (0..24).map(|i| 0.5 + 0.015 * (i % 20) as f64).collect();
        let costs = vec![1.0; 24];
        let pool = MatrixPool::from_qualities_and_costs(&qualities, &costs, 4).unwrap();
        let config = ServiceConfig::fast().with_multiclass_incremental(
            jury_jq::MultiClassIncrementalConfig::default().with_max_cells(1),
        );
        let service = JuryService::new(config);
        let err = service
            .select_multiclass(&MultiClassSelectionRequest::new(pool.clone(), 6.0))
            .unwrap_err();
        let ServiceError::MultiClassStateTooLarge { cells, max } = err else {
            panic!("expected MultiClassStateTooLarge, got {err}");
        };
        assert_eq!(max, 1);
        assert_eq!(cells, 49u64.pow(3));
        // The same guard protects the warm multi-class sweep.
        let err = service
            .multiclass_budget_quality_table(
                &pool,
                &[2.0, 4.0],
                &CategoricalPrior::uniform(4).unwrap(),
            )
            .unwrap_err();
        assert!(matches!(err, ServiceError::MultiClassStateTooLarge { .. }));
    }

    #[test]
    fn multiclass_budget_quality_table_small_pool_is_exhaustive() {
        let service = paper_service();
        let prior = CategoricalPrior::uniform(3).unwrap();
        let table = service
            .multiclass_budget_quality_table(&matrix_pool(), &[2.0, 4.0, 6.0, 10.0], &prior)
            .unwrap();
        assert_eq!(table.rows().len(), 4);
        let mut previous = 0.0;
        for row in table.rows() {
            assert!(row.required_budget <= row.budget + 1e-9);
            assert!(row.quality >= previous - 1e-12);
            previous = row.quality;
        }
    }

    #[test]
    fn a_panicking_batch_slot_reports_internal_and_leaves_the_store_usable() {
        let service = JuryService::new(ServiceConfig::fast().with_batch_threads(4));
        // Warm the shared store so the post-panic request genuinely reads
        // through the same shards the panicking threads touched.
        let request = SelectionRequest::new(paper_example_pool(), 15.0);
        let before = service.select(&request).unwrap();

        let results = service.run_batch(&[0usize, 1, 2, 3], |&slot| {
            if slot == 2 {
                panic!("solver blew up on slot {slot}");
            }
            service.select(&request)
        });
        for (slot, result) in results.iter().enumerate() {
            if slot == 2 {
                let Err(ServiceError::Internal { reason }) = result else {
                    panic!("slot 2 should be Internal, got {result:?}");
                };
                assert!(reason.contains("slot 2"), "reason was {reason:?}");
            } else {
                assert!(result.is_ok(), "slot {slot} was {result:?}");
            }
        }

        // parking_lot locks do not poison: the store survives the unwound
        // worker thread and keeps serving identical answers.
        let after = service.select(&request).unwrap();
        assert_eq!(after.worker_ids(), before.worker_ids());
        assert!((after.quality - before.quality).abs() < 1e-12);
        assert!(service.cache_stats().hits > 0);
    }

    #[test]
    fn a_panicking_select_batch_slot_does_not_unwind_the_batch() {
        // An end-to-end variant through the public batch API: a pool whose
        // construction invariants hold but whose serve panics is hard to
        // fabricate from outside, so this pins the seam run_batch itself
        // guards — every public batch entry point shares it.
        let service = JuryService::new(ServiceConfig::fast().with_batch_threads(2));
        let results = service.run_batch(&[0usize, 1], |&slot| {
            if slot == 0 {
                panic!("boom");
            }
            service.select(&SelectionRequest::new(paper_example_pool(), 15.0))
        });
        assert!(matches!(results[0], Err(ServiceError::Internal { .. })));
        assert!(results[1].is_ok());
    }

    /// Unwraps a serve result that may have been truncated by a search
    /// budget: both the `Ok` response and the anytime best-so-far carried
    /// by `DeadlineExceeded` count as served.
    fn salvage_binary(result: Result<SelectionResponse, ServiceError>) -> SelectionResponse {
        match result {
            Ok(response) => response,
            Err(ServiceError::DeadlineExceeded {
                best_so_far: Some(best),
            }) => match *best {
                MixedResponse::Binary(response) => response,
                other => panic!("unexpected best-so-far kind: {other:?}"),
            },
            Err(err) => panic!("unexpected error: {err}"),
        }
    }

    fn large_pool(n: usize) -> WorkerPool {
        let qualities: Vec<f64> = (0..n).map(|i| 0.52 + 0.012 * (i % 30) as f64).collect();
        let costs: Vec<f64> = (0..n).map(|i| 0.5 + (i % 7) as f64 * 0.25).collect();
        WorkerPool::from_qualities_and_costs(&qualities, &costs).unwrap()
    }

    #[test]
    fn portfolio_policy_matches_exact_on_small_pools() {
        // The paper pool has 10 candidates — within the exact cutoff, so
        // the portfolio arm routes to the same exhaustive enumeration Auto
        // uses and must match the exact optimum to 1e-9 at every budget.
        let service = paper_service();
        for budget in [5.0, 10.0, 15.0, 20.0] {
            let raced = service
                .select(
                    &SelectionRequest::new(paper_example_pool(), budget)
                        .with_policy(SolverPolicy::Portfolio(Vec::new())),
                )
                .unwrap();
            let exact = service
                .select(
                    &SelectionRequest::new(paper_example_pool(), budget)
                        .with_policy(SolverPolicy::Exact),
                )
                .unwrap();
            assert!(
                (raced.quality - exact.quality).abs() < 1e-9,
                "budget {budget}: portfolio {} vs exact {}",
                raced.quality,
                exact.quality
            );
            assert_eq!(raced.solver, "exhaustive");
            assert_eq!(raced.policy, SolverPolicy::Portfolio(Vec::new()));
        }
    }

    #[test]
    fn portfolio_races_on_large_pools_and_records_the_winner() {
        let service = paper_service();
        let request = SelectionRequest::new(large_pool(40), 5.0)
            .with_policy(SolverPolicy::Portfolio(Vec::new()));
        let response = service.select(&request).unwrap();
        assert!(
            response.solver.starts_with("portfolio:"),
            "provenance records the winning member, got {}",
            response.solver
        );
        assert!(response.cost <= 5.0 + 1e-9);
        assert!(!response.jury.is_empty());
        // Deterministic: the members' RNG streams are seeded.
        let again = service.select(&request).unwrap();
        assert_eq!(response.worker_ids(), again.worker_ids());
        assert_eq!(response.solver, again.solver);
        // The race can only improve on plain annealing when unbudgeted:
        // its annealing lane replays the same restarts.
        let annealed = service
            .select(
                &SelectionRequest::new(large_pool(40), 5.0).with_policy(SolverPolicy::Annealing),
            )
            .unwrap();
        assert!(response.quality >= annealed.quality - 1e-9);
    }

    #[test]
    fn solver_threads_do_not_change_the_served_jury() {
        // The unbudgeted parallel race keeps every lane a pure replay, so a
        // threaded service serves exactly the sequential service's jury.
        let sequential = JuryService::paper_experiments();
        let threaded = JuryService::new(ServiceConfig::paper_experiments().with_solver_threads(2));
        let request = SelectionRequest::new(large_pool(40), 5.0)
            .with_policy(SolverPolicy::Portfolio(Vec::new()));
        let base = sequential.select(&request).unwrap();
        let raced = threaded.select(&request).unwrap();
        assert_eq!(base.worker_ids(), raced.worker_ids());
        assert_eq!(base.solver, raced.solver);
        assert!((base.quality - raced.quality).abs() < 1e-12);

        // Batch wins the cores: whether or not the batch fans out on this
        // machine (forcing the slots' solvers sequential), every slot still
        // serves the same jury as the single select.
        let batch = vec![request.clone(); 4];
        for slot in threaded.select_batch(&batch) {
            let slot = slot.unwrap();
            assert_eq!(slot.worker_ids(), base.worker_ids());
            assert!((slot.quality - base.quality).abs() < 1e-12);
        }
    }

    #[test]
    fn portfolio_beats_or_ties_annealing_at_equal_evaluation_budgets() {
        // The quality-per-evaluation claim behind the portfolio: at the
        // same evaluation cap, racing heterogeneous members returns a jury
        // at least as good as spending the whole cap on annealing alone.
        // Evaluation caps never read the clock, so this is deterministic.
        let service = paper_service();
        let pool = large_pool(60);
        for cap in [200u64, 800, 2_000] {
            let raced = salvage_binary(
                service.select(
                    &SelectionRequest::new(pool.clone(), 6.0)
                        .with_policy(SolverPolicy::Portfolio(Vec::new()))
                        .with_evaluation_limit(cap),
                ),
            );
            let annealed = salvage_binary(
                service.select(
                    &SelectionRequest::new(pool.clone(), 6.0)
                        .with_policy(SolverPolicy::Annealing)
                        .with_evaluation_limit(cap),
                ),
            );
            assert!(
                raced.quality >= annealed.quality - 1e-9,
                "cap {cap}: portfolio {} below annealing {}",
                raced.quality,
                annealed.quality
            );
        }
    }

    #[test]
    fn service_and_request_budget_limits_merge_tightest_wins() {
        // All four combinations of (request cap, service default cap),
        // exercised with evaluation caps so the outcome is deterministic.
        let pool = large_pool(200);
        let tight = 200u64;
        let loose = 1_000_000u64;
        let slack = 16; // batch evaluations outside the checkpoints

        // Neither side caps: the solve runs to completion.
        let service = paper_service();
        let request = SelectionRequest::new(pool.clone(), 8.0);
        let uncapped = service.select(&request).unwrap();
        assert!(uncapped.evaluations > tight + slack);

        // Only the request caps.
        let capped = salvage_binary(service.select(&request.clone().with_evaluation_limit(tight)));
        assert!(
            capped.evaluations <= tight + slack,
            "{}",
            capped.evaluations
        );

        // Only the service config caps.
        let config = ServiceConfig::paper_experiments().with_default_evaluation_limit(Some(tight));
        let capped = salvage_binary(JuryService::new(config).select(&request));
        assert!(
            capped.evaluations <= tight + slack,
            "{}",
            capped.evaluations
        );

        // Both sides cap: the tighter one governs, whichever side it is on.
        let loose_config =
            ServiceConfig::paper_experiments().with_default_evaluation_limit(Some(loose));
        let capped = salvage_binary(
            JuryService::new(loose_config).select(&request.clone().with_evaluation_limit(tight)),
        );
        assert!(
            capped.evaluations <= tight + slack,
            "{}",
            capped.evaluations
        );
        let tight_config =
            ServiceConfig::paper_experiments().with_default_evaluation_limit(Some(tight));
        let capped = salvage_binary(
            JuryService::new(tight_config).select(&request.with_evaluation_limit(loose)),
        );
        assert!(
            capped.evaluations <= tight + slack,
            "{}",
            capped.evaluations
        );
    }

    #[test]
    fn table_deadline_is_shared_across_rows_not_multiplied() {
        // Regression test for the per-row deadline split: the old logic
        // handed every row the full remaining deadline anchored at its own
        // serve start, so a 12-row sweep whose rows each exhaust their time
        // ran for ~12 × deadline. The fix serves rows sequentially with the
        // remaining time re-divided before each row, bounding the whole
        // sweep by the one deadline (plus per-row checkpoint overrun).
        let deadline = Duration::from_millis(50);
        let budgets: Vec<f64> = (1..=12).map(|b| b as f64).collect();
        // Cold sweeps route per-row requests through the batch path, and a
        // 400-candidate pool makes each uncapped row solve far exceed its
        // slice — exactly the shape that multiplied the deadline before.
        let service = JuryService::new(
            ServiceConfig::paper_experiments().with_sweep_policy(SweepPolicy::Cold),
        );
        let started = Instant::now();
        let (table, truncated) = service
            .budget_quality_table_with_deadline(
                &large_pool(400),
                &budgets,
                Prior::uniform(),
                deadline,
            )
            .unwrap();
        let elapsed = started.elapsed();
        assert!(truncated, "every row should have been cut short");
        assert_eq!(table.rows().len(), budgets.len());
        assert!(
            elapsed < 6 * deadline,
            "sweep took {elapsed:?}; the old per-row split would run for ~12 × {deadline:?}"
        );
    }
}
