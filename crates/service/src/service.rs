//! The service itself: validated, fallible, batch-first jury selection.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::thread;
use std::time::Instant;

use jury_model::{Prior, WorkerPool};
use jury_selection::{
    AnnealingSolver, BudgetQualityRow, BudgetQualityTable, ExhaustiveSolver, GreedyMarginalSolver,
    GreedyQualitySolver, GreedyRatioSolver, JspInstance, JuryObjective, JurySolver, MvjsSolver,
    SolverResult, MAX_EXHAUSTIVE_POOL,
};

use crate::cache::{CacheStats, CachedObjective, JqCache};
use crate::config::ServiceConfig;
use crate::error::ServiceError;
use crate::request::{SelectionRequest, SolverPolicy, Strategy};
use crate::response::SelectionResponse;

/// The jury-selection service: owns the configuration and the shared JQ
/// cache, and serves [`SelectionRequest`]s one at a time or in parallel
/// batches. All request handling is fallible — invalid input comes back as a
/// [`ServiceError`], never as a panic.
///
/// ```
/// use jury_model::paper_example_pool;
/// use jury_service::{JuryService, SelectionRequest};
///
/// let service = JuryService::paper_experiments();
/// let response = service
///     .select(&SelectionRequest::new(paper_example_pool(), 15.0))
///     .unwrap();
/// assert!((response.quality - 0.845).abs() < 1e-9); // the {B, C, G} jury
/// assert!((response.cost - 14.0).abs() < 1e-9);
/// ```
#[derive(Debug)]
pub struct JuryService {
    config: ServiceConfig,
    cache: JqCache,
}

impl Default for JuryService {
    fn default() -> Self {
        JuryService::new(ServiceConfig::default())
    }
}

impl JuryService {
    /// Creates a service with the given configuration.
    pub fn new(config: ServiceConfig) -> Self {
        JuryService {
            cache: JqCache::new(config.cache_capacity),
            config,
        }
    }

    /// Creates a service with the paper's experimental configuration.
    pub fn paper_experiments() -> Self {
        JuryService::new(ServiceConfig::paper_experiments())
    }

    /// The service configuration (requests can override it individually).
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Counters of the shared JQ-evaluation cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Serves one selection request.
    ///
    /// The request is validated first — a bad budget, prior, or pool comes
    /// back as a [`ServiceError`] value, never a panic. Valid requests are
    /// dispatched to the solver chosen by the request's
    /// [`SolverPolicy`]; every JQ evaluation goes
    /// through this service's shared signature-keyed cache, and the
    /// neighbourhood searches additionally run on the incremental JQ engine
    /// (`jury_jq::IncrementalJq`), paying `O(buckets)` per candidate jury.
    ///
    /// ```
    /// use jury_model::{paper_example_pool, Prior};
    /// use jury_service::{JuryService, SelectionRequest, ServiceError};
    ///
    /// let service = JuryService::paper_experiments();
    ///
    /// // Budget 15 on the paper's pool selects {B, C, G} at 84.5 %.
    /// let request = SelectionRequest::new(paper_example_pool(), 15.0)
    ///     .with_prior(Prior::uniform());
    /// let response = service.select(&request)?;
    /// assert_eq!(response.jury.size(), 3);
    /// assert!((response.quality - 0.845).abs() < 1e-9);
    ///
    /// // Failures are typed values.
    /// let err = service
    ///     .select(&SelectionRequest::new(paper_example_pool(), f64::NAN))
    ///     .unwrap_err();
    /// assert!(matches!(err, ServiceError::InvalidBudget { .. }));
    /// # Ok::<(), ServiceError>(())
    /// ```
    pub fn select(&self, request: &SelectionRequest) -> Result<SelectionResponse, ServiceError> {
        let started = Instant::now();
        let config = request.config().copied().unwrap_or(self.config);

        let prior = Prior::new(request.prior_alpha()).map_err(|_| ServiceError::InvalidPrior {
            value: request.prior_alpha(),
        })?;
        // An empty pool — like an unaffordable one — only admits the empty
        // jury, so it is an error exactly when empty selections are not
        // allowed (the paper facades allow them to keep the seed semantics,
        // e.g. dataset replays over tasks nobody answered).
        if request.pool().is_empty() && !request.empty_selection_allowed() {
            return Err(ServiceError::EmptyPool);
        }
        let budget = request.budget();
        if !budget.is_finite()
            || budget < 0.0
            || (budget == 0.0 && !request.empty_selection_allowed())
        {
            return Err(ServiceError::InvalidBudget { value: budget });
        }
        let cheapest = request
            .pool()
            .iter()
            .map(|w| w.cost())
            .min_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        if let Some(cheapest) = cheapest {
            if cheapest > budget && !request.empty_selection_allowed() {
                return Err(ServiceError::BudgetBelowCheapestWorker { budget, cheapest });
            }
        }

        let instance = JspInstance::new(request.pool().clone(), budget, prior)?;
        let objective = CachedObjective::new(config.jq_engine(), request.strategy(), &self.cache);
        let result = self.run_solver(&instance, &objective, request, &config)?;

        Ok(SelectionResponse {
            quality: result.objective_value,
            cost: result.jury.cost(),
            jury: result.jury,
            strategy: request.strategy(),
            policy: request.policy(),
            solver: result.solver,
            evaluations: objective.evaluations(),
            cache_hits: objective.local_hits(),
            elapsed: started.elapsed(),
        })
    }

    fn run_solver(
        &self,
        instance: &JspInstance,
        objective: &CachedObjective<'_>,
        request: &SelectionRequest,
        config: &ServiceConfig,
    ) -> Result<SolverResult, ServiceError> {
        let small_pool = instance.num_candidates() <= config.exact_cutoff.min(MAX_EXHAUSTIVE_POOL);
        let result = match request.policy() {
            SolverPolicy::Exact => ExhaustiveSolver::new(objective).try_solve(instance)?,
            SolverPolicy::Auto if small_pool => {
                ExhaustiveSolver::new(objective).try_solve(instance)?
            }
            SolverPolicy::Auto => match request.strategy() {
                Strategy::Bv => {
                    AnnealingSolver::with_config(objective, config.annealing).solve(instance)
                }
                // The MV baseline keeps its odd-size top-quality candidates
                // on large pools, exactly like the historical Mvjs system.
                Strategy::Mv => MvjsSolver::with_annealing_config(config.annealing)
                    .solve_with_objective(instance, objective),
            },
            SolverPolicy::Annealing => {
                AnnealingSolver::with_config(objective, config.annealing).solve(instance)
            }
            SolverPolicy::Greedy => {
                // Three greedy flavours, best-of: the two cheap orderings
                // plus the objective-driven marginal greedy, which probes
                // pool-many extensions per round through the incremental
                // session. Ties keep the earlier (cheaper) candidate.
                let mut best = GreedyQualitySolver::new(objective).solve(instance);
                for candidate in [
                    GreedyRatioSolver::new(objective).solve(instance),
                    GreedyMarginalSolver::new(objective).solve(instance),
                ] {
                    if candidate.objective_value > best.objective_value {
                        best = candidate;
                    }
                }
                best
            }
        };
        Ok(result)
    }

    /// Serves a batch of requests, data-parallel across worker threads, all
    /// sharing this service's JQ-evaluation cache.
    ///
    /// Failures are per-request: one invalid request yields an `Err` in its
    /// slot without disturbing the others. The result order matches the
    /// request order.
    pub fn select_batch(
        &self,
        requests: &[SelectionRequest],
    ) -> Vec<Result<SelectionResponse, ServiceError>> {
        let threads = self.batch_threads(requests.len());
        if threads <= 1 {
            return requests.iter().map(|r| self.select(r)).collect();
        }

        // Dynamic scheduling: workers pull the next unclaimed request from a
        // shared counter, so a few expensive requests cannot serialize the
        // batch behind one thread the way static chunking would.
        let next = AtomicUsize::new(0);
        let (sender, receiver) = mpsc::channel();
        thread::scope(|scope| {
            for _ in 0..threads {
                let sender = sender.clone();
                let next = &next;
                scope.spawn(move || loop {
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    let Some(request) = requests.get(index) else {
                        break;
                    };
                    if sender.send((index, self.select(request))).is_err() {
                        break;
                    }
                });
            }
        });
        drop(sender);

        let mut slots: Vec<Option<Result<SelectionResponse, ServiceError>>> =
            (0..requests.len()).map(|_| None).collect();
        for (index, result) in receiver {
            slots[index] = Some(result);
        }
        slots
            .into_iter()
            .map(|slot| slot.expect("every request index is claimed exactly once"))
            .collect()
    }

    fn batch_threads(&self, batch_len: usize) -> usize {
        let configured = if self.config.batch_threads == 0 {
            thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.config.batch_threads
        };
        configured.clamp(1, batch_len.max(1))
    }

    /// Builds the Figure-1 style budget–quality table.
    ///
    /// Pools within the exact cutoff are served one selection per budget
    /// through [`Self::select_batch`] (parallel, cached, BV strategy, `Auto`
    /// policy), so small tables stay exhaustively optimal. Larger pools —
    /// where every budget would otherwise pay a full heuristic search —
    /// default to a **warm-started sweep**
    /// ([`jury_selection::BudgetQualityTable::build_warm`]): one marginal-
    /// gain search state and one incremental JQ session carried from each
    /// budget to the next, pushing only the marginal workers instead of
    /// re-solving cold, with every row re-scored through this service's
    /// cached batch objective. Disable via
    /// [`crate::ServiceConfig::with_warm_sweeps`] to force per-budget cold
    /// solves.
    ///
    /// Budgets below the cheapest worker yield empty-jury rows, matching
    /// the table's exploratory semantics.
    pub fn budget_quality_table(
        &self,
        pool: &WorkerPool,
        budgets: &[f64],
        prior: Prior,
    ) -> Result<BudgetQualityTable, ServiceError> {
        if self.config.warm_sweeps && pool.len() > self.config.exact_cutoff.min(MAX_EXHAUSTIVE_POOL)
        {
            return self.budget_quality_table_warm(pool, budgets, prior);
        }
        let requests: Vec<SelectionRequest> = budgets
            .iter()
            .map(|&budget| {
                SelectionRequest::new(pool.clone(), budget)
                    .with_prior(prior)
                    .allow_empty_selection(true)
            })
            .collect();
        let rows = self
            .select_batch(&requests)
            .into_iter()
            .zip(budgets)
            .map(|(result, &budget)| {
                result.map(|response| BudgetQualityRow {
                    budget,
                    jury: response.worker_ids(),
                    quality: response.quality,
                    required_budget: response.cost,
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(BudgetQualityTable::from_rows(rows))
    }

    /// The warm-started sweep behind [`Self::budget_quality_table`]: budgets
    /// are validated up front (the sweep itself is infallible), then one
    /// incremental search walks them in ascending order against the shared
    /// JQ cache.
    fn budget_quality_table_warm(
        &self,
        pool: &WorkerPool,
        budgets: &[f64],
        prior: Prior,
    ) -> Result<BudgetQualityTable, ServiceError> {
        for &budget in budgets {
            if !budget.is_finite() || budget < 0.0 {
                return Err(ServiceError::InvalidBudget { value: budget });
            }
        }
        let objective = CachedObjective::new(self.config.jq_engine(), Strategy::Bv, &self.cache);
        Ok(BudgetQualityTable::build_warm(
            pool, budgets, prior, &objective,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jury_model::{paper_example_pool, WorkerId, WorkerPool};

    fn paper_service() -> JuryService {
        JuryService::paper_experiments()
    }

    #[test]
    fn paper_example_selects_bcg_at_budget_15() {
        let service = paper_service();
        let response = service
            .select(&SelectionRequest::new(paper_example_pool(), 15.0))
            .unwrap();
        assert_eq!(
            response.worker_ids(),
            vec![WorkerId(1), WorkerId(2), WorkerId(6)]
        );
        assert!((response.quality - 0.845).abs() < 1e-9);
        assert!((response.cost - 14.0).abs() < 1e-9);
        assert_eq!(response.strategy, Strategy::Bv);
        assert_eq!(response.solver, "exhaustive");
        assert!(response.evaluations > 0);
    }

    #[test]
    fn select_batch_matches_select_and_shares_the_cache() {
        let service = paper_service();
        let request = SelectionRequest::new(paper_example_pool(), 15.0);
        let single = service.select(&request).unwrap();

        let batch: Vec<SelectionRequest> = (0..64).map(|_| request.clone()).collect();
        let responses = service.select_batch(&batch);
        assert_eq!(responses.len(), 64);
        for response in responses {
            let response = response.unwrap();
            assert_eq!(response.worker_ids(), single.worker_ids());
            assert!((response.quality - single.quality).abs() < 1e-12);
        }
        let stats = service.cache_stats();
        assert!(
            stats.hits > stats.misses,
            "batch should be cache-dominated: {stats:?}"
        );
    }

    #[test]
    fn mv_strategy_reproduces_the_mvjs_baseline() {
        let service = paper_service();
        let response = service
            .select(&SelectionRequest::new(paper_example_pool(), 20.0).with_strategy(Strategy::Mv))
            .unwrap();
        // The MV-optimal jury at B = 20 is {A, C, G} (the introduction's
        // prior-work solution).
        assert_eq!(
            response.worker_ids(),
            vec![WorkerId(0), WorkerId(2), WorkerId(6)]
        );
        let bv = service
            .select(&SelectionRequest::new(paper_example_pool(), 20.0))
            .unwrap();
        assert!(bv.quality >= response.quality - 1e-9);
    }

    #[test]
    fn policies_agree_on_the_paper_pool() {
        let service = paper_service();
        let mut qualities = Vec::new();
        for policy in [
            SolverPolicy::Auto,
            SolverPolicy::Exact,
            SolverPolicy::Annealing,
            SolverPolicy::Greedy,
        ] {
            let response = service
                .select(&SelectionRequest::new(paper_example_pool(), 15.0).with_policy(policy))
                .unwrap();
            assert!(response.cost <= 15.0 + 1e-9, "{policy}");
            qualities.push((policy, response.quality));
        }
        let exact = qualities[1].1;
        for (policy, quality) in qualities {
            assert!(quality <= exact + 1e-9, "{policy} beat exact");
        }
    }

    #[test]
    fn exact_policy_fails_cleanly_on_large_pools() {
        let pool = WorkerPool::from_qualities_and_costs(&[0.7; 23], &[1.0; 23]).unwrap();
        let service = paper_service();
        let err = service
            .select(&SelectionRequest::new(pool, 5.0).with_policy(SolverPolicy::Exact))
            .unwrap_err();
        assert_eq!(
            err,
            ServiceError::PoolTooLargeForExact {
                size: 23,
                max: MAX_EXHAUSTIVE_POOL
            }
        );
    }

    #[test]
    fn per_request_config_overrides_apply() {
        let service = JuryService::new(ServiceConfig::default());
        // Force the annealing path on the 7-worker pool by lowering the
        // exact cutoff to zero for this request only.
        let response = service
            .select(
                &SelectionRequest::new(paper_example_pool(), 15.0)
                    .with_config(ServiceConfig::default().with_exact_cutoff(0)),
            )
            .unwrap();
        assert_eq!(response.solver, "simulated-annealing");
        assert!((response.quality - 0.845).abs() < 1e-6);
    }

    #[test]
    fn budget_quality_table_reproduces_figure_1() {
        let service = paper_service();
        let table = service
            .budget_quality_table(
                &paper_example_pool(),
                &[5.0, 10.0, 15.0, 20.0],
                Prior::uniform(),
            )
            .unwrap();
        let qualities: Vec<f64> = table.rows().iter().map(|r| r.quality).collect();
        let expected = [0.75, 0.80, 0.845, 0.8695];
        for (got, want) in qualities.iter().zip(expected.iter()) {
            assert!((got - want).abs() < 1e-9, "{got} vs {want}");
        }
        assert!((table.rows()[2].required_budget - 14.0).abs() < 1e-9);
    }

    #[test]
    fn empty_jury_allowed_when_opted_in() {
        let pool = WorkerPool::from_qualities_and_costs(&[0.8], &[5.0]).unwrap();
        let service = paper_service();
        let response = service
            .select(&SelectionRequest::new(pool, 1.0).allow_empty_selection(true))
            .unwrap();
        assert!(response.jury.is_empty());
        assert!((response.quality - 0.5).abs() < 1e-12);
        assert_eq!(response.cost, 0.0);
    }

    #[test]
    fn empty_pool_yields_empty_jury_when_opted_in() {
        // Seed semantics for the facades: an empty candidate set (e.g. a
        // dataset task nobody answered) selects the empty jury instead of
        // erroring.
        let service = paper_service();
        let request = SelectionRequest::new(WorkerPool::new(), 1.0).allow_empty_selection(true);
        let response = service.select(&request).unwrap();
        assert!(response.jury.is_empty());
        assert!((response.quality - 0.5).abs() < 1e-12);
        // Without the opt-in it stays an error.
        let strict = SelectionRequest::new(WorkerPool::new(), 1.0);
        assert_eq!(
            service.select(&strict).unwrap_err(),
            ServiceError::EmptyPool
        );
    }

    #[test]
    fn large_pools_run_the_incremental_search_path() {
        // 40 candidates is well above the exact cutoff, so Auto/Annealing
        // steer through the incremental BV engine and Greedy adds the
        // marginal-gain probes; results must stay feasible, non-trivial, and
        // deterministic.
        let qualities: Vec<f64> = (0..40).map(|i| 0.52 + 0.012 * (i % 30) as f64).collect();
        let costs: Vec<f64> = (0..40).map(|i| 0.5 + (i % 7) as f64 * 0.25).collect();
        let pool = WorkerPool::from_qualities_and_costs(&qualities, &costs).unwrap();
        let service = paper_service();
        for policy in [
            SolverPolicy::Auto,
            SolverPolicy::Annealing,
            SolverPolicy::Greedy,
        ] {
            let request = SelectionRequest::new(pool.clone(), 5.0).with_policy(policy);
            let response = service.select(&request).unwrap();
            assert!(response.cost <= 5.0 + 1e-9, "{policy}");
            assert!(!response.jury.is_empty(), "{policy}");
            assert!(response.quality >= 0.5, "{policy}");
            assert!(response.evaluations > 0, "{policy}");
            let again = service.select(&request).unwrap();
            assert_eq!(response.worker_ids(), again.worker_ids(), "{policy}");
        }
        // The MV strategy drives the incremental Poisson-binomial engine.
        let mv = service
            .select(&SelectionRequest::new(pool, 5.0).with_strategy(Strategy::Mv))
            .unwrap();
        assert!(mv.quality >= 0.5);
    }

    #[test]
    fn warm_sweep_matches_cold_per_budget_solves_on_large_uniform_pools() {
        // Uniform costs and descending qualities: the warm marginal sweep,
        // the cold annealing solves, and Lemma 2's top-k optimum all agree,
        // so the two execution paths must produce the same row qualities.
        let qualities: Vec<f64> = (0..24).map(|i| 0.9 - 0.012 * i as f64).collect();
        let pool = WorkerPool::from_qualities_and_costs(&qualities, &[1.0; 24]).unwrap();
        let budgets = [2.0, 4.0, 6.0, 9.0];

        let warm_service = JuryService::new(ServiceConfig::fast());
        let warm = warm_service
            .budget_quality_table(&pool, &budgets, Prior::uniform())
            .unwrap();
        let cold_service = JuryService::new(ServiceConfig::fast().with_warm_sweeps(false));
        let cold = cold_service
            .budget_quality_table(&pool, &budgets, Prior::uniform())
            .unwrap();

        let mut previous = 0.0;
        for (w, c) in warm.rows().iter().zip(cold.rows()) {
            assert!(
                (w.quality - c.quality).abs() < 1e-9,
                "budget {}: warm {} vs cold {}",
                w.budget,
                w.quality,
                c.quality
            );
            assert!(w.required_budget <= w.budget + 1e-9);
            assert!(
                w.quality >= previous - 1e-12,
                "warm rows must stay monotone"
            );
            previous = w.quality;
        }
        // The warm sweep still routes evaluations through the shared cache.
        assert!(warm_service.cache_stats().misses > 0);
    }

    #[test]
    fn warm_sweep_validates_budgets() {
        let qualities: Vec<f64> = (0..20).map(|i| 0.85 - 0.01 * i as f64).collect();
        let pool = WorkerPool::from_qualities_and_costs(&qualities, &[1.0; 20]).unwrap();
        let service = JuryService::new(ServiceConfig::fast());
        for bad in [f64::NAN, f64::INFINITY, -1.0] {
            let err = service
                .budget_quality_table(&pool, &[1.0, bad], Prior::uniform())
                .unwrap_err();
            assert!(matches!(err, ServiceError::InvalidBudget { .. }), "{bad}");
        }
    }

    #[test]
    fn small_pools_keep_the_exhaustive_table_path() {
        // The paper pool is within the exact cutoff, so the warm-sweep flag
        // must not change the exhaustively-optimal Figure 1 rows.
        let service = paper_service();
        assert!(service.config().warm_sweeps);
        let table = service
            .budget_quality_table(
                &paper_example_pool(),
                &[5.0, 10.0, 15.0, 20.0],
                Prior::uniform(),
            )
            .unwrap();
        assert!((table.rows()[3].quality - 0.8695).abs() < 1e-9);
    }

    #[test]
    fn batch_threads_clamp_to_batch_length() {
        let service = JuryService::new(ServiceConfig::default().with_batch_threads(16));
        assert_eq!(service.batch_threads(1), 1);
        assert_eq!(service.batch_threads(4), 4);
        assert_eq!(service.batch_threads(100), 16);
        let auto = JuryService::default();
        assert!(auto.batch_threads(1000) >= 1);
    }
}
